//! `spack-asp-rs` — a Rust reproduction of *Using Answer Set Programming for HPC
//! Dependency Solving* (SC'22).
//!
//! This umbrella crate re-exports the workspace's six member crates and owns the
//! cross-crate integration tests (`tests/`) and runnable examples (`examples/`). See the
//! repository `README.md` for the crate map and a quickstart.
//!
//! ```
//! use spack_asp_rs::concretizer::Concretizer;
//! use spack_asp_rs::repo::builtin_repo;
//!
//! let repo = builtin_repo();
//! let result = Concretizer::new(&repo).concretize_str("zlib").unwrap();
//! assert_eq!(result.spec.node("zlib").unwrap().version.to_string(), "1.2.12");
//! ```

#![warn(missing_docs)]

pub use asp;
pub use spack_concretizer as concretizer;
pub use spack_repo as repo;
pub use spack_spec as spec;
pub use spack_store as store;

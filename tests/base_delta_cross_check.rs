//! Cross-checks of in-place base patching against fresh freezes.
//!
//! [`spack_concretizer::ConcretizerSession::apply_base_delta`] patches a frozen
//! base in place — semi-naive continuation for pure additions, an id-exact
//! closure rebuild for removals — which is an entirely different code path from
//! freezing the post-delta universe from scratch. These tests pin the contract
//! that the two are *observationally identical*: after every delta in a random
//! sequence, the patched session's concretizations (SAT and UNSAT interleaved)
//! render byte-identically to a session frozen fresh against the post-delta
//! repository and buildcache, the base digests agree, and a removal followed by
//! re-adding the same fact round-trips to the original digest.

use proptest::prelude::*;

use spack_concretizer::{
    BaseDelta, Concretization, ConcretizeError, Concretizer, SiteConfig, SolveOptions,
};
use spack_repo::{builtin_repo, synth_repo, Repository, SynthConfig};
use spack_store::Database;

/// Render everything a caller can observe about a result, for equality comparison.
fn render(result: &Result<Concretization, ConcretizeError>) -> String {
    match result {
        Ok(c) => {
            let mut reused = c.reused.clone();
            reused.sort();
            let mut built = c.built.clone();
            built.sort();
            format!("OK\n{}\ncost={:?}\nreused={reused:?}\nbuilt={built:?}", c.spec, c.cost)
        }
        Err(ConcretizeError::Unsatisfiable { diagnostics, .. }) => {
            let lines: Vec<String> = diagnostics
                .iter()
                .map(|d| {
                    format!(
                        "{:?}|{}|{}|{}|{:?}",
                        d.severity, d.priority, d.code, d.message, d.provenance
                    )
                })
                .collect();
            format!("UNSAT\n{}", lines.join("\n"))
        }
        Err(e) => format!("ERR {e}"),
    }
}

/// A request mix for one step: plain roots, a version that never exists (UNSAT),
/// and an any-version range — interleaved on the same session.
fn requests_for(repo: &Repository, picks: &[usize]) -> Vec<String> {
    let names: Vec<String> = repo.names().map(str::to_string).collect();
    picks
        .iter()
        .enumerate()
        .map(|(i, pick)| {
            let name = &names[pick % names.len()];
            match i % 3 {
                0 => name.clone(),
                1 => format!("{name}@9999.0"), // never declared: UNSAT
                _ => format!("{name}@0:"),     // satisfied by every version
            }
        })
        .collect()
}

/// Decode one random delta descriptor against the current repository. Kinds:
/// publish a brand-new newest version (rebuild path: preference weights shift),
/// publish an ancient version (addition path), yank a declared version (only
/// when more than one remains), push a package's closure to the buildcache,
/// remove a package's records from it.
fn decode_delta(repo: &Repository, kind: u8, pick: usize, salt: u8) -> BaseDelta {
    let names: Vec<String> = repo.names().map(str::to_string).collect();
    let name = names[pick % names.len()].clone();
    let mut delta = BaseDelta::default();
    match kind % 5 {
        0 => delta.add_versions.push((name, format!("99.{salt}"))),
        1 => delta.add_versions.push((name, format!("0.0.{salt}"))),
        2 => {
            let def = repo.get(&name).expect("picked a listed package");
            if def.versions.len() > 1 {
                let ver = def.versions[salt as usize % def.versions.len()].version.to_string();
                delta.remove_versions.push((name, ver));
            } else {
                // Yanking the last version would leave the package unsolvable in
                // a way unrelated to patching; publish instead.
                delta.add_versions.push((name, format!("99.{salt}")));
            }
        }
        3 => delta.install.push(name),
        _ => delta.uninstall.push(name),
    }
    delta
}

/// A fresh session of the given universe — the oracle a patched session must be
/// observationally identical to.
fn fresh_session<'a>(
    repo: &'a Repository,
    database: Option<&'a Database>,
) -> spack_concretizer::ConcretizerSession<'a> {
    let mut options = SolveOptions::new().site(SiteConfig::minimal());
    if let Some(db) = database {
        options = options.database(db);
    }
    Concretizer::new(repo).with_options(options).session().expect("fresh session build")
}

/// Drive one random delta sequence: pre-compute every universe (they must
/// outlive the session that borrows them), then patch one session through the
/// sequence, cross-checking renderings and digests against a fresh freeze of
/// each post-delta universe.
fn assert_deltas_match_fresh_freezes(
    repo: Repository,
    deltas: &[(u8, usize, u8)],
    picks: &[usize],
) {
    let mut universes: Vec<(Repository, Option<Database>)> = vec![(repo, None)];
    let mut applied: Vec<BaseDelta> = Vec::new();
    for (kind, pick, salt) in deltas {
        let (repo, database) = universes.last().expect("seeded");
        let delta = decode_delta(repo, *kind, *pick, *salt);
        universes.push(delta.apply(repo, database.as_ref()));
        applied.push(delta);
    }

    let (repo0, db0) = &universes[0];
    let mut session = fresh_session(repo0, db0.as_ref());
    for (step, (repo, database)) in universes.iter().enumerate().skip(1) {
        session
            .apply_base_delta(repo, database.as_ref())
            .unwrap_or_else(|e| panic!("step {step} ({:?}): patch failed: {e}", applied[step - 1]));
        let fresh = fresh_session(repo, database.as_ref());
        assert_eq!(
            session.base_digest(),
            fresh.base_digest(),
            "step {step} ({:?}): patched digest must match a fresh freeze",
            applied[step - 1]
        );
        for spec in requests_for(repo, picks) {
            let patched = render(&session.concretize_str(&spec));
            let scratch = render(&fresh.concretize_str(&spec));
            assert_eq!(
                patched,
                scratch,
                "step {step} ({:?}), spec `{spec}`: patched session differs from fresh freeze",
                applied[step - 1]
            );
        }
    }
    let stats = session.stats();
    assert_eq!(stats.base_grounds, 1, "patching must never re-ground the base");
    assert_eq!(stats.base_patches, applied.len() as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Random delta sequences over medium-shaped synthetic repositories: version
    /// publishes (newest and ancient), yanks, buildcache pushes and removals,
    /// with SAT/UNSAT request mixes cross-checked after every step.
    #[test]
    fn random_delta_sequences_match_fresh_freezes(
        seed in 0u64..200,
        deltas in proptest::collection::vec((0u8..5, 0usize..50, 0u8..4), 2..4),
        picks in proptest::collection::vec(0usize..50, 3..5),
    ) {
        let repo = synth_repo(&SynthConfig {
            packages: 30,
            chain_depth: 8,
            extra_virtuals: 2,
            seed,
            ..Default::default()
        });
        assert_deltas_match_fresh_freezes(repo, &deltas, &picks);
    }
}

/// Removal-then-re-add round trip, pinned deterministically: yanking a version
/// and re-publishing it must return the session to the original digest and the
/// original answers.
#[test]
fn remove_then_re_add_round_trips_to_the_original_digest() {
    let repo = builtin_repo();
    let universes = {
        let publish = BaseDelta {
            add_versions: vec![("zlib".to_string(), "2.0".to_string())],
            ..BaseDelta::default()
        };
        let yank = BaseDelta {
            remove_versions: vec![("zlib".to_string(), "2.0".to_string())],
            ..BaseDelta::default()
        };
        let u1 = publish.apply(&repo, None);
        let u2 = yank.apply(&u1.0, u1.1.as_ref());
        let u3 = publish.apply(&u2.0, u2.1.as_ref());
        vec![(repo, None), u1, u2, u3]
    };
    let mut session = fresh_session(&universes[0].0, None);
    let original_digest = session.base_digest();
    let original_answer = render(&session.concretize_str("zlib"));

    session.apply_base_delta(&universes[1].0, universes[1].1.as_ref()).expect("publish");
    let published_digest = session.base_digest();
    let published_answer = render(&session.concretize_str("zlib"));
    assert_ne!(published_digest, original_digest, "publishing must change the digest");
    assert_ne!(published_answer, original_answer, "zlib@2.0 must win once published");

    session.apply_base_delta(&universes[2].0, universes[2].1.as_ref()).expect("yank");
    assert_eq!(
        session.base_digest(),
        original_digest,
        "yanking the publish must round-trip the digest"
    );
    assert_eq!(
        render(&session.concretize_str("zlib")),
        original_answer,
        "yanking the publish must round-trip the answers"
    );

    session.apply_base_delta(&universes[3].0, universes[3].1.as_ref()).expect("re-publish");
    assert_eq!(session.base_digest(), published_digest, "re-publishing must round-trip again");
    assert_eq!(render(&session.concretize_str("zlib")), published_answer);
    assert_eq!(session.stats().base_patches, 3);
    assert_eq!(session.stats().base_grounds, 1);
}

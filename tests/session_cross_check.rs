//! Cross-checks of multi-shot sessions against one-shot solves.
//!
//! A [`spack_concretizer::ConcretizerSession`] answers requests from a frozen,
//! whole-repository base through relevance-restricted delta grounding — an entirely
//! different code path from a one-shot [`spack_concretizer::Concretizer::concretize`]
//! call, which grounds the request's closure from scratch. These tests pin the
//! contract that the two are *observationally identical*: same DAG (rendered), same
//! reuse/build partition, same objective vector, and — for unsatisfiable requests —
//! the same diagnostics, over randomized synthetic repositories shaped like the
//! bench's `Medium` and `Wide` tiers, with SAT and UNSAT requests interleaved on one
//! session and batch mode cross-checked against both.

use proptest::prelude::*;

use spack_concretizer::{Concretization, ConcretizeError, Concretizer, SiteConfig};
use spack_repo::{builtin_repo, synth_repo, SynthConfig};
use spack_spec::parse_spec;
use spack_store::{synthesize_buildcache, BuildcacheConfig};

/// Render everything a caller can observe about a result, for equality comparison.
fn render(result: &Result<Concretization, ConcretizeError>) -> String {
    match result {
        Ok(c) => {
            let mut reused = c.reused.clone();
            reused.sort();
            let mut built = c.built.clone();
            built.sort();
            format!("OK\n{}\ncost={:?}\nreused={reused:?}\nbuilt={built:?}", c.spec, c.cost)
        }
        Err(ConcretizeError::Unsatisfiable { diagnostics, .. }) => {
            let lines: Vec<String> = diagnostics
                .iter()
                .map(|d| {
                    format!(
                        "{:?}|{}|{}|{}|{:?}",
                        d.severity, d.priority, d.code, d.message, d.provenance
                    )
                })
                .collect();
            format!("UNSAT\n{}", lines.join("\n"))
        }
        Err(e) => format!("ERR {e}"),
    }
}

/// The request list for a synthetic repository: a mix of plain roots, a pinned
/// version that usually exists, and a pinned version that never does (UNSAT).
fn requests_for(repo: &spack_repo::Repository, picks: &[usize]) -> Vec<String> {
    let names: Vec<String> = repo.names().map(str::to_string).collect();
    let mut specs = Vec::new();
    for (i, pick) in picks.iter().enumerate() {
        let name = &names[pick % names.len()];
        match i % 3 {
            0 => specs.push(name.clone()),
            1 => specs.push(format!("{name}@9999.0")), // never declared: UNSAT
            _ => specs.push(format!("{name}@0:")),     // satisfied by every version
        }
    }
    specs
}

/// Session-mode, batch-mode, and one-shot solves must be observationally identical,
/// including interleaved SAT and UNSAT requests on one long-lived session.
fn assert_session_matches_one_shot(repo: &spack_repo::Repository, specs: &[String]) {
    let concretizer = Concretizer::new(repo).with_site(SiteConfig::minimal());
    let session = concretizer.session().expect("session build");
    // Interleaved sequential requests on ONE session.
    for spec in specs {
        let one = render(&concretizer.concretize_str(spec));
        let ses = render(&session.concretize_str(spec));
        assert_eq!(one, ses, "spec `{spec}`: session result differs from one-shot");
    }
    // Batch mode on the same session, cross-checked against the one-shot renderings.
    let parsed: Vec<Vec<spack_spec::Spec>> =
        specs.iter().filter_map(|s| parse_spec(s).ok().map(|p| vec![p])).collect();
    let batch = session.concretize_batch(&parsed);
    assert_eq!(batch.len(), parsed.len());
    for (request, result) in parsed.iter().zip(&batch) {
        let text = request[0].to_string();
        let one = render(&concretizer.concretize(request));
        assert_eq!(one, render(result), "spec `{text}`: batch result differs from one-shot");
    }
    let stats = session.stats();
    assert_eq!(stats.base_grounds, 1, "the base must be ground exactly once");
    assert_eq!(stats.requests, (specs.len() + parsed.len()) as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Medium-shaped synthetic repositories (dependency chain + extra virtuals, the
    /// bench `Scale::Medium` structure at test-friendly size).
    #[test]
    fn session_matches_one_shot_on_medium_shaped_repos(
        seed in 0u64..200,
        picks in proptest::collection::vec(0usize..50, 4..7),
    ) {
        let repo = synth_repo(&SynthConfig {
            packages: 48,
            chain_depth: 10,
            extra_virtuals: 2,
            seed,
            ..Default::default()
        });
        let specs = requests_for(&repo, &picks);
        assert_session_matches_one_shot(&repo, &specs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Wide-shaped synthetic repositories (high fan-out, virtual-heavy — the bench
    /// `Scale::Wide` structure at test-friendly size).
    #[test]
    fn session_matches_one_shot_on_wide_shaped_repos(
        seed in 0u64..200,
        picks in proptest::collection::vec(0usize..50, 4..7),
    ) {
        let repo = synth_repo(&SynthConfig {
            packages: 40,
            max_deps: 8,
            mpi_fraction: 0.6,
            seed,
            ..Default::default()
        });
        let specs = requests_for(&repo, &picks);
        assert_session_matches_one_shot(&repo, &specs);
    }
}

/// Reuse coverage: with an installed database behind the session, results (including
/// the reused/built partition and the reuse criteria in the objective vector) stay
/// identical to one-shot solves.
#[test]
fn session_matches_one_shot_with_buildcache() {
    let repo = builtin_repo();
    let cache = synthesize_buildcache(&repo, &BuildcacheConfig::default());
    let concretizer = Concretizer::new(&repo).with_site(SiteConfig::quartz()).with_database(&cache);
    let session = concretizer.session().expect("session build");
    for spec in ["zlib", "hdf5", "mpileaks", "zlib@9.9", "example~bzip", "netcdf-c ^hdf5~mpi"] {
        let one = render(&concretizer.concretize_str(spec));
        let ses = render(&session.concretize_str(spec));
        assert_eq!(one, ses, "spec `{spec}` (with reuse): session differs from one-shot");
    }
}

/// A session answering many requests (>= 8, SAT and UNSAT interleaved) grounds the
/// base exactly once; every request grounding is an incremental delta that reuses
/// frozen base instances and pays no program-parsing time.
#[test]
fn session_grounds_base_once_across_many_requests() {
    let repo = builtin_repo();
    let concretizer = Concretizer::new(&repo).with_site(SiteConfig::quartz());
    let session = concretizer.session().expect("session build");
    let specs = [
        "zlib",
        "zlib@9.9",
        "bzip2",
        "hdf5",
        "example",
        "netcdf-c ^hdf5~mpi",
        "mpileaks",
        "example~bzip",
        "hdf5@1.10:",
    ];
    assert!(specs.len() >= 8);
    for spec in specs {
        match session.concretize_str(spec) {
            Ok(result) => {
                assert!(result.stats.ground.delta, "{spec}: must ground incrementally");
                assert!(result.stats.ground.reused_rules > 0, "{spec}: must reuse the base");
                assert_eq!(
                    result.timings.load,
                    std::time::Duration::ZERO,
                    "{spec}: program parsing is amortized into the session"
                );
            }
            Err(ConcretizeError::Unsatisfiable { stats, .. }) => {
                assert_eq!(
                    stats.second_phase_ground,
                    std::time::Duration::ZERO,
                    "{spec}: diagnostics must not reground"
                );
            }
            Err(other) => panic!("{spec}: unexpected error {other}"),
        }
    }
    let stats = session.stats();
    assert_eq!(stats.base_grounds, 1);
    assert_eq!(stats.requests, specs.len() as u64);
}

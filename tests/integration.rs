//! Cross-crate integration tests: repository + store + ASP engine + concretizer working
//! together on realistic requests, with solution *validity* checked independently of the
//! solver (the checks of Section III-C1 of the paper: virtuals replaced, dependencies
//! resolved, all parameters assigned, all input constraints satisfied).

use std::collections::BTreeSet;

use spack_concretizer::{Concretization, Concretizer, SiteConfig};
use spack_repo::{builtin_repo, synth_repo, Repository, SynthConfig};
use spack_spec::{parse_spec, Compiler, Platform, VariantValue};
use spack_store::{synthesize_buildcache, BuildcacheConfig, Database};

/// Independently validate a concrete spec against the repository: every node fully
/// assigned, every unconditional dependency present, every conditional dependency
/// consistent with the chosen variants, every conflict avoided, and the DAG acyclic.
fn validate(repo: &Repository, result: &Concretization) {
    let spec = &result.spec;
    assert!(!spec.is_empty(), "solution must not be empty");
    // Acyclicity.
    let order = spec.topological_order();
    assert_eq!(order.len(), spec.len());
    for (i, node) in spec.nodes.iter().enumerate() {
        let pkg = repo.get(&node.name);
        // Every node has all parameters assigned.
        assert!(!node.version.to_string().is_empty());
        assert!(!node.compiler.name.is_empty());
        assert!(!node.os.is_empty());
        assert!(!node.target.is_empty());
        if let Some(pkg) = pkg {
            // The chosen version must be a declared one unless the node was reused.
            let reused = result.reused.iter().any(|(name, _)| name == &node.name);
            if !reused {
                assert!(
                    pkg.versions.iter().any(|v| v.version == node.version),
                    "{}@{} is not a declared version",
                    node.name,
                    node.version
                );
                // Every declared variant has a value.
                for variant in &pkg.variants {
                    assert!(
                        node.variants.contains_key(&variant.name),
                        "{} is missing a value for variant {}",
                        node.name,
                        variant.name
                    );
                }
            }
            // Unconditional dependencies must be present (resolved through providers for
            // virtuals).
            for dep in &pkg.dependencies {
                if !dep.when.is_empty() {
                    continue;
                }
                let dep_name = dep.spec.name.as_deref().unwrap();
                let target_names: Vec<String> = if repo.is_virtual(dep_name) {
                    repo.providers(dep_name).to_vec()
                } else {
                    vec![dep_name.to_string()]
                };
                let satisfied =
                    node.deps.iter().any(|&(d, _)| target_names.contains(&spec.nodes[d].name));
                assert!(
                    satisfied,
                    "{} is missing its unconditional dependency {}",
                    node.name, dep_name
                );
            }
            // No conflict directive may match.
            for conflict in &pkg.conflicts {
                let mut when = conflict.when.clone();
                when.name = None;
                let mut conflicting = conflict.spec.clone();
                if conflicting.dependencies.is_empty() {
                    conflicting.name = None;
                }
                let when_matches = conflict.when.is_empty() || spec.node_satisfies(i, &when);
                let spec_matches = spec.node_satisfies(i, &conflicting);
                assert!(
                    !(when_matches && spec_matches),
                    "conflict {} (when {}) triggered on {}",
                    conflict.spec,
                    conflict.when,
                    node.name
                );
            }
        }
    }
}

fn quartz_concretizer(repo: &Repository) -> Concretizer<'_> {
    Concretizer::new(repo).with_site(SiteConfig::quartz())
}

#[test]
fn hdf5_full_stack_is_valid() {
    let repo = builtin_repo();
    let result = quartz_concretizer(&repo).concretize_str("hdf5").unwrap();
    validate(&repo, &result);
    assert!(result.spec.len() >= 10, "hdf5 pulls in a real stack");
    for required in ["zlib", "cmake", "pkgconf"] {
        assert!(result.spec.contains(required), "missing {required}");
    }
    // The solution satisfies the abstract input spec.
    assert!(result.spec.satisfies(&parse_spec("hdf5").unwrap()));
    assert!(result.spec.satisfies(&parse_spec("hdf5+mpi").unwrap()));
}

#[test]
fn user_constraints_flow_to_dependencies() {
    let repo = builtin_repo();
    let result = quartz_concretizer(&repo)
        .concretize_str("hdf5@1.10.8 ^zlib@1.2.8 ^cmake@3.21.1~ssl")
        .unwrap();
    validate(&repo, &result);
    assert_eq!(result.spec.node("hdf5").unwrap().version.to_string(), "1.10.8");
    assert_eq!(result.spec.node("zlib").unwrap().version.to_string(), "1.2.8");
    let cmake = result.spec.node("cmake").unwrap();
    assert_eq!(cmake.version.to_string(), "3.21.1");
    assert_eq!(cmake.variants.get("ssl"), Some(&VariantValue::Bool(false)));
    // cmake~ssl must not depend on openssl.
    let openssl_dep = cmake.deps.iter().any(|&(d, _)| result.spec.nodes[d].name == "openssl");
    assert!(!openssl_dep, "cmake~ssl must not link openssl");
}

#[test]
fn defaults_follow_table2_preferences() {
    let repo = builtin_repo();
    let result = quartz_concretizer(&repo).concretize_str("example").unwrap();
    validate(&repo, &result);
    let example = result.spec.node("example").unwrap();
    // Newest version, default variant values, preferred compiler, best target.
    assert_eq!(example.version.to_string(), "1.1.0");
    assert_eq!(example.variants.get("bzip"), Some(&VariantValue::Bool(true)));
    assert_eq!(example.compiler, Compiler::new("gcc", "11.2.0"));
    assert_eq!(example.target, "icelake");
    assert_eq!(example.platform, Platform::Linux);
    // The conditional zlib version bump for @1.1.0: applies.
    let zlib = result.spec.node("zlib").unwrap();
    assert!(parse_spec("zlib@1.2.8:").unwrap().versions.satisfies(&zlib.version));
}

#[test]
fn compiler_choice_limits_the_target() {
    // With only an old gcc available, the paper's example: skylake and newer cannot be
    // targeted, so the solver must fall back to an older microarchitecture.
    let repo = builtin_repo();
    let site =
        SiteConfig { compilers: vec![Compiler::new("gcc", "4.8.5")], ..SiteConfig::minimal() };
    let result = Concretizer::new(&repo).with_site(site).concretize_str("zlib").unwrap();
    let zlib = result.spec.node("zlib").unwrap();
    assert_eq!(zlib.compiler, Compiler::new("gcc", "4.8.5"));
    assert_ne!(zlib.target, "skylake");
    assert_ne!(zlib.target, "icelake");
    let catalog = spack_spec::TargetCatalog::builtin();
    assert!(catalog.compiler_supports("gcc", &Compiler::new("gcc", "4.8.5").version, &zlib.target));
}

#[test]
fn conflicts_prune_the_search_space() {
    // example conflicts with %intel: requesting it must be unsatisfiable, and the default
    // solve must avoid intel even though it is available.
    let repo = builtin_repo();
    let err = quartz_concretizer(&repo).concretize_str("example%intel");
    assert!(err.is_err(), "example%intel must be rejected");
    let ok = quartz_concretizer(&repo).concretize_str("example").unwrap();
    assert_ne!(ok.spec.node("example").unwrap().compiler.name, "intel");
}

#[test]
fn multiple_roots_share_one_dag() {
    let repo = builtin_repo();
    let roots = vec![parse_spec("mpileaks").unwrap(), parse_spec("hdf5").unwrap()];
    let result = quartz_concretizer(&repo).concretize(&roots).unwrap();
    validate(&repo, &result);
    assert_eq!(result.spec.roots.len(), 2);
    assert!(result.spec.contains("mpileaks"));
    assert!(result.spec.contains("hdf5"));
    // Exactly one MPI provider serves both roots.
    let providers: Vec<&str> = repo
        .providers("mpi")
        .iter()
        .map(|s| s.as_str())
        .filter(|p| result.spec.contains(p))
        .collect();
    assert_eq!(providers.len(), 1, "one provider shared across roots: {providers:?}");
}

#[test]
fn reuse_prefers_installed_packages_and_respects_constraints() {
    let repo = builtin_repo();
    let site = SiteConfig::quartz();
    // Cache the result of a previous concretization — reuse should then be total.
    let mut db = Database::new();
    let previous = Concretizer::new(&repo).with_site(site.clone()).concretize_str("hdf5").unwrap();
    db.add_concrete_spec(&previous.spec);

    let with_reuse = Concretizer::new(&repo)
        .with_site(site.clone())
        .with_database(&db)
        .concretize_str("hdf5")
        .unwrap();
    assert_eq!(with_reuse.build_count(), 0, "identical request must be fully reused");
    assert_eq!(with_reuse.reuse_count(), with_reuse.spec.len());

    // A conflicting constraint forces a (partial) rebuild.
    let constrained = Concretizer::new(&repo)
        .with_site(site)
        .with_database(&db)
        .concretize_str("hdf5~shared")
        .unwrap();
    assert!(constrained.build_count() >= 1);
    assert_eq!(
        constrained.spec.node("hdf5").unwrap().variants.get("shared"),
        Some(&VariantValue::Bool(false))
    );
}

#[test]
fn buildcache_scopes_affect_fact_count_not_correctness() {
    let repo = builtin_repo();
    let site = SiteConfig::quartz();
    let cache = synthesize_buildcache(&repo, &BuildcacheConfig::default());
    let scopes = BuildcacheConfig::paper_scopes();
    let mut previous_facts = 0usize;
    for (name, scope) in scopes {
        let scoped = scope.apply(&cache);
        let result = Concretizer::new(&repo)
            .with_site(site.clone())
            .with_database(&scoped)
            .concretize_str("hdf5")
            .unwrap_or_else(|e| panic!("scope {name}: {e}"));
        validate(&repo, &result);
        // Bigger caches mean more facts (the effect measured in Fig. 7e).
        assert!(result.setup.facts >= previous_facts);
        previous_facts = result.setup.facts;
    }
}

#[test]
fn synthetic_repository_concretizes_cleanly() {
    let repo = synth_repo(&SynthConfig::small());
    let site = SiteConfig::minimal();
    let concretizer = Concretizer::new(&repo).with_site(site);
    let mut solved = 0;
    for root in spack_repo::e4s_roots(&repo).iter().take(4) {
        let result = concretizer.concretize_str(root).unwrap_or_else(|e| panic!("{root}: {e}"));
        validate(&repo, &result);
        assert!(result.spec.contains(root));
        solved += 1;
    }
    assert!(solved > 0);
}

#[test]
fn cost_vector_is_lexicographically_consistent() {
    // Concretizing with an explicit non-default variant must cost more at the
    // "non-default variants (roots)" level and never less at higher levels.
    let repo = builtin_repo();
    let default = quartz_concretizer(&repo).concretize_str("hdf5").unwrap();
    let tweaked = quartz_concretizer(&repo).concretize_str("hdf5~shared").unwrap();
    let get = |c: &Concretization, prio: i64| {
        c.cost.iter().find(|(p, _)| *p == prio).map(|(_, v)| *v).unwrap_or(0)
    };
    // Criterion 3 (non-default variant values on roots) in the build bucket is 213.
    assert!(get(&tweaked, 213) > get(&default, 213));
    // Deprecated-version criterion stays zero in both.
    assert_eq!(get(&default, 215), 0);
    assert_eq!(get(&tweaked, 215), 0);
}

#[test]
fn identical_requests_are_deterministic() {
    let repo = builtin_repo();
    let a = quartz_concretizer(&repo).concretize_str("mpileaks").unwrap();
    let b = quartz_concretizer(&repo).concretize_str("mpileaks").unwrap();
    let names = |c: &Concretization| -> BTreeSet<String> {
        c.spec.nodes.iter().map(|n| n.format_node()).collect()
    };
    assert_eq!(names(&a), names(&b));
    assert_eq!(a.cost, b.cost);
    // And the DAG hash of the root is identical, too.
    let ra = a.spec.roots[0];
    let rb = b.spec.roots[0];
    assert_eq!(a.spec.node_hash(ra), b.spec.node_hash(rb));
}

/// Build a concrete spec by hand and check the store round-trip used by the reuse path.
#[test]
fn store_roundtrip_preserves_reusability() {
    let repo = builtin_repo();
    let site = SiteConfig::quartz();
    let result = Concretizer::new(&repo).with_site(site.clone()).concretize_str("example").unwrap();
    let mut db = Database::new();
    let roots = db.add_concrete_spec(&result.spec);
    assert_eq!(roots.len(), 1);
    // The stored root must be findable by exact hash from an identical concretization.
    let again = Concretizer::new(&repo).with_site(site).concretize_str("example").unwrap();
    let root_index = again.spec.roots[0];
    assert!(db.query_exact(&again.spec, root_index).is_some());
}

#[test]
fn unsatisfiable_combinations_are_detected_not_mis_solved() {
    let repo = builtin_repo();
    // netcdf-c requires hdf5+mpi; force ~mpi through the command line: no valid solution.
    let err = quartz_concretizer(&repo).concretize_str("netcdf-c ^hdf5~mpi");
    assert!(err.is_err());
    // And the error is Unsatisfiable (not a crash or a wrong answer), carrying an
    // actionable explanation.
    match err {
        Err(spack_concretizer::ConcretizeError::Unsatisfiable { diagnostics, .. }) => {
            assert!(!diagnostics.is_empty(), "unsat errors must carry diagnostics");
        }
        other => panic!("expected Unsatisfiable, got {other:?}"),
    }
}

#[test]
fn concrete_spec_display_round_trips_through_store() {
    let repo = builtin_repo();
    let result = quartz_concretizer(&repo).concretize_str("callpath").unwrap();
    let text = result.spec.to_string();
    assert!(text.contains("callpath@"));
    assert!(text.contains("arch=linux-"));
    let mut db = Database::new();
    db.add_concrete_spec(&result.spec);
    assert_eq!(db.with_name("callpath").len(), 1, "exactly one callpath record stored");
}

//! Scenario tests: every worked example in the paper, end to end.
//!
//! * Section III-B / Fig. 2 — the `example` package,
//! * Section III-C — the concrete spec shown for `example@1.0.0 ^zlib@1.2.11`, and the
//!   backtracking scenario ("imagine that mpich had a conflict with bzip2@1.0.7"),
//! * Section V-B1 — `hpctoolkit ^mpich` (completeness),
//! * Section V-B2 — conflicts as constraints rather than post-hoc validation,
//! * Section V-B3 — `berkeleygw` forcing `openblas threads=openmp`,
//! * Section V (target selection) — compiler-limited targets,
//! * Section VI — cmake keeps networking (openssl) even when minimizing builds,
//! * Fig. 4 — the mpileaks DAG and per-node hashes.

use spack_concretizer::{Concretizer, GreedyConcretizer, GreedyError, SiteConfig};
use spack_repo::builtin_repo;
use spack_spec::{parse_spec, VariantValue};
use spack_store::{synthesize_buildcache, BuildcacheConfig, Database};

fn concretizer(repo: &spack_repo::Repository) -> Concretizer<'_> {
    Concretizer::new(repo).with_site(SiteConfig::quartz())
}

#[test]
fn section3c_example_with_zlib_constraint() {
    // The paper's walk-through: `example@1.0.0 ^zlib@1.2.11`.
    let repo = builtin_repo();
    let result = concretizer(&repo).concretize_str("example@1.0.0 ^zlib@1.2.11").unwrap();
    let example = result.spec.node("example").unwrap();
    assert_eq!(example.version.to_string(), "1.0.0");
    // +bzip default on, bzip2 at 1.0.7-or-higher, zlib pinned, some MPI provider chosen.
    assert_eq!(example.variants.get("bzip"), Some(&VariantValue::Bool(true)));
    let bzip2 = result.spec.node("bzip2").unwrap();
    assert!(parse_spec("bzip2@1.0.7:").unwrap().versions.satisfies(&bzip2.version));
    assert_eq!(result.spec.node("zlib").unwrap().version.to_string(), "1.2.11");
    let repo2 = builtin_repo();
    let mpi_provider = repo2.providers("mpi").iter().find(|p| result.spec.contains(p));
    assert!(mpi_provider.is_some(), "a concrete MPI implementation must be selected");
    // All node parameters assigned (validity, Section III-C1).
    for node in &result.spec.nodes {
        assert!(!node.target.is_empty() && !node.os.is_empty());
    }
}

#[test]
fn section3c_backtracking_over_bzip2_versions() {
    // "Imagine that mpich had a conflict with bzip2@1.0.7": the builtin mpich@3.1
    // declares exactly that conflict. Forcing example to use mpich@3.1 and bzip2@:1.0.7
    // leaves bzip2@1.0.7 as the only version in range, so a complete solver must detect
    // unsatisfiability, while with a free bzip2 it must pick a different version rather
    // than fail.
    let repo = builtin_repo();
    let ok = concretizer(&repo).concretize_str("example ^mpich@3.1 ^bzip2@1.0.7:").unwrap();
    let bzip2 = ok.spec.node("bzip2").unwrap();
    assert!(
        bzip2.version > spack_spec::Version::new("1.0.7"),
        "the solver must back off bzip2 1.0.7 to satisfy mpich@3.1's conflict"
    );

    let unsat = concretizer(&repo).concretize_str("example ^mpich@3.1 ^bzip2@1.0.7");
    assert!(unsat.is_err(), "bzip2 pinned to 1.0.7 with mpich@3.1 cannot be satisfied");

    // The greedy baseline cannot recover in the first case: it picks bzip2@1.0.8 (newest
    // in range) only by luck of preference order; when the range forces 1.0.7 it simply
    // errors after the fact.
    let greedy = GreedyConcretizer::new(&repo, SiteConfig::quartz());
    let err =
        greedy.concretize(&parse_spec("example ^mpich@3.1 ^bzip2@1.0.7").unwrap()).unwrap_err();
    assert!(matches!(
        err,
        GreedyError::ConflictTriggered { .. } | GreedyError::ConflictingDecision { .. }
    ));
}

#[test]
fn section5b1_hpctoolkit_completeness() {
    let repo = builtin_repo();
    // Old concretizer: fails, demands over-constraining.
    let greedy = GreedyConcretizer::new(&repo, SiteConfig::quartz());
    let err = greedy.concretize(&parse_spec("hpctoolkit ^mpich").unwrap()).unwrap_err();
    assert_eq!(err.to_string(), "Package hpctoolkit does not depend on mpich");
    // ASP concretizer: finds the +mpi flip on its own.
    let result = concretizer(&repo).concretize_str("hpctoolkit ^mpich").unwrap();
    assert_eq!(
        result.spec.node("hpctoolkit").unwrap().variants.get("mpi"),
        Some(&VariantValue::Bool(true))
    );
    assert!(result.spec.contains("mpich"));
    // And without the ^mpich request the default (no MPI) is kept.
    let default = concretizer(&repo).concretize_str("hpctoolkit").unwrap();
    assert_eq!(
        default.spec.node("hpctoolkit").unwrap().variants.get("mpi"),
        Some(&VariantValue::Bool(false))
    );
    assert!(!default.spec.contains("mpich"));
}

#[test]
fn section5b2_conflicts_are_constraints_not_postmortems() {
    let repo = builtin_repo();
    // dyninst conflicts with %intel. Asking for hpctoolkit%intel must still succeed for
    // the parts that can use intel… but dyninst is a mandatory dependency, so the solver
    // must give dyninst a different compiler rather than fail (the greedy baseline would
    // have errored only after computing an invalid solution).
    let result = concretizer(&repo).concretize_str("hpctoolkit%intel").unwrap();
    assert_eq!(result.spec.node("hpctoolkit").unwrap().compiler.name, "intel");
    assert_ne!(result.spec.node("dyninst").unwrap().compiler.name, "intel");

    let greedy = GreedyConcretizer::new(&repo, SiteConfig::quartz());
    // The greedy algorithm propagates nothing across the conflict: whatever it decides,
    // it cannot produce the mixed-compiler solution above in one pass.
    // Erroring is acceptable too; either way it needed the ASP solver to do better.
    if let Ok(result) = greedy.concretize(&parse_spec("hpctoolkit%intel").unwrap()) {
        // If it "succeeds" it has silently used intel everywhere except where the
        // validation would have caught it — i.e. it did not mix compilers.
        assert_eq!(result.spec.node("dyninst").unwrap().compiler.name, "gcc");
    }
}

#[test]
fn section5b3_berkeleygw_provider_specialization() {
    let repo = builtin_repo();
    // `berkeleygw+openmp ^openblas`: openblas (as the chosen lapack provider) must get
    // threads=openmp, a conditional constraint on a virtual provider that the old
    // concretizer could not express.
    let result = concretizer(&repo).concretize_str("berkeleygw+openmp ^openblas").unwrap();
    let openblas = result.spec.node("openblas").unwrap();
    assert_eq!(openblas.variants.get("threads"), Some(&VariantValue::Value("openmp".into())));
    assert!(openblas.provides.contains(&"lapack".to_string()));
    // fftw+openmp is imposed by the same condition chain.
    let fftw = result.spec.node("fftw").unwrap();
    assert_eq!(fftw.variants.get("openmp"), Some(&VariantValue::Bool(true)));

    // Without +openmp (default is true in the recipe, so disable it): openblas keeps its
    // default threading model.
    let result = concretizer(&repo).concretize_str("berkeleygw~openmp ^openblas").unwrap();
    let openblas = result.spec.node("openblas").unwrap();
    assert_eq!(openblas.variants.get("threads"), Some(&VariantValue::Value("none".into())));
}

#[test]
fn section5_target_selection_respects_compiler_support() {
    let repo = builtin_repo();
    // With the full Quartz compiler set the preferred compiler is a recent gcc and the
    // best target (icelake) is chosen; pinning the old gcc forces an older target.
    let new = concretizer(&repo).concretize_str("zlib").unwrap();
    assert_eq!(new.spec.node("zlib").unwrap().target, "icelake");
    let old = concretizer(&repo).concretize_str("zlib%gcc@4.8.5").unwrap();
    let node = old.spec.node("zlib").unwrap();
    assert_eq!(node.compiler.version.to_string(), "4.8.5");
    assert!(
        ["haswell", "broadwell", "x86_64_v2", "x86_64"].contains(&node.target.as_str()),
        "old gcc cannot target skylake-or-newer, got {}",
        node.target
    );
}

#[test]
fn section6_built_packages_keep_their_defaults() {
    // The cmake example of Section VI: when minimizing builds, a *built* cmake must still
    // get its default (+ssl → openssl in the graph), because the criteria for built
    // packages rank above the number of builds (Fig. 5).
    let repo = builtin_repo();
    let site = SiteConfig::quartz();
    // Cache that contains cmake's dependencies but not cmake itself, and no openssl —
    // a pure build-minimizer would be tempted to drop the ssl variant.
    let cache = synthesize_buildcache(
        &repo,
        &BuildcacheConfig {
            architectures: vec![(
                spack_spec::Platform::Linux,
                "centos8".to_string(),
                "icelake".to_string(),
            )],
            compilers: vec![spack_spec::Compiler::new("gcc", "11.2.0")],
            replicas: 1,
            seed: 3,
        },
    )
    .filter(|r| r.name != "cmake" && r.name != "openssl");
    let result = Concretizer::new(&repo)
        .with_site(site)
        .with_database(&cache)
        .concretize_str("cmake")
        .unwrap();
    let cmake = result.spec.node("cmake").unwrap();
    assert_eq!(
        cmake.variants.get("ssl"),
        Some(&VariantValue::Bool(true)),
        "a built cmake must keep its networking default"
    );
    assert!(result.spec.contains("openssl"));
    assert!(result.built.contains(&"cmake".to_string()));
    assert!(result.reuse_count() > 0, "dependencies available in the cache are reused");
}

#[test]
fn fig4_mpileaks_dag_and_hashes() {
    let repo = builtin_repo();
    let result = concretizer(&repo).concretize_str("mpileaks").unwrap();
    // The DAG of Fig. 4: mpileaks -> callpath -> dyninst -> libdwarf -> libelf, plus mpi.
    for name in ["mpileaks", "callpath", "dyninst", "libdwarf", "libelf"] {
        assert!(result.spec.contains(name), "missing {name}");
    }
    let mpileaks = result.spec.find("mpileaks").unwrap();
    let callpath = result.spec.find("callpath").unwrap();
    assert!(result.spec.nodes[mpileaks].deps.iter().any(|&(d, _)| d == callpath));
    // Per-node hashes: distinct packages get distinct hashes, and the same node hashed
    // twice gets the same value (step 2 of Fig. 4).
    let mut db = Database::new();
    db.add_concrete_spec(&result.spec);
    assert_eq!(db.len(), result.spec.len(), "every node stored under a unique hash");
    let h1 = result.spec.node_hash(mpileaks);
    let h2 = result.spec.node_hash(mpileaks);
    assert_eq!(h1, h2);
    assert_ne!(h1, result.spec.node_hash(callpath));
}

#[test]
fn spec_strings_from_the_paper_parse() {
    // Abstract and concrete spec strings that appear verbatim in the paper.
    for text in [
        "hdf5",
        "hdf5@1.10.2 ^zlib%gcc ^cmake target=aarch64",
        "example@1.0.0 ^zlib@1.2.11",
        "example@1.0.0+bzip%gcc@11.2.0 arch=linux-centos8-skylake",
        "bzip2@1.0.8+pic%gcc@11.2.0 arch=linux-centos8-skylake",
        "mpich@3.1 pmi=pmix %gcc@11.2.0 arch=linux-centos8-skylake",
        "hpctoolkit ^mpich",
        "hpctoolkit+mpi ^mpich",
        "openblas threads=openmp",
        "+openmp ^openblas",
        "png@1.6.0:",
        "zlib@1.2.11",
    ] {
        parse_spec(text).unwrap_or_else(|e| panic!("'{text}' failed to parse: {e}"));
    }
}

#[test]
fn logic_program_is_declarative_and_compact() {
    // The paper reports ~800 lines of ASP for the full software model; our reproduction's
    // model is a faithful subset and must stay in the same order of magnitude.
    let lines = spack_concretizer::CONCRETIZE_LP
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.trim().starts_with('%'))
        .count();
    assert!(lines > 60, "the model should be non-trivial, got {lines} lines");
    assert!(lines < 800, "the model should stay compact, got {lines} lines");
    // And it contains the signature rules shown in the paper.
    for fragment in [
        "condition_holds(ID)",
        "imposed_constraint",
        "path(A, B)",
        "#minimize",
        "build_priority",
        "installed_hash",
    ] {
        assert!(
            spack_concretizer::CONCRETIZE_LP.contains(fragment),
            "logic program is missing '{fragment}'"
        );
    }
}

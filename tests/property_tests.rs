//! Property-based tests (proptest) on the core data structures and on solver invariants.
//!
//! * version ordering is a total order consistent with parsing/printing,
//! * spec parsing round-trips through `Display`,
//! * DAG hashing is deterministic and sensitive to every field,
//! * the ASP solver returns only valid (stable) models for random positive programs, and
//! * concretization of random synthetic repositories either produces a *valid* DAG or a
//!   clean `Unsatisfiable` error — never a panic or an invalid solution.

use proptest::prelude::*;

use spack_concretizer::{ConcretizeError, Concretizer, SiteConfig};
use spack_repo::{synth_repo, SynthConfig};
use spack_spec::hash::dag_hash;
use spack_spec::{parse_spec, Spec, VariantValue, Version, VersionConstraint, VersionRange};

// ---------- generators -------------------------------------------------------------------

fn version_strategy() -> impl Strategy<Value = Version> {
    proptest::collection::vec(0u64..50, 1..4).prop_map(|parts| {
        let text: Vec<String> = parts.iter().map(|p| p.to_string()).collect();
        Version::new(&text.join("."))
    })
}

fn package_name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{1,8}(-[a-z0-9]{1,4})?"
}

fn simple_spec_strategy() -> impl Strategy<Value = String> {
    (
        package_name_strategy(),
        proptest::option::of(version_strategy()),
        proptest::option::of(("[a-z]{2,6}", any::<bool>())),
        proptest::option::of(proptest::sample::select(vec![
            "skylake", "icelake", "haswell", "x86_64",
        ])),
    )
        .prop_map(|(name, version, variant, target)| {
            let mut s = name;
            if let Some(v) = version {
                s.push_str(&format!("@{v}"));
            }
            if let Some((vname, on)) = variant {
                s.push(if on { '+' } else { '~' });
                s.push_str(&vname);
            }
            if let Some(t) = target {
                s.push_str(&format!(" target={t}"));
            }
            s
        })
}

// ---------- version properties -------------------------------------------------------------

proptest! {
    #[test]
    fn version_ordering_is_total_and_antisymmetric(a in version_strategy(), b in version_strategy()) {
        use std::cmp::Ordering;
        let ab = a.cmp(&b);
        let ba = b.cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        if ab == Ordering::Equal {
            prop_assert_eq!(a.to_string(), b.to_string());
        }
    }

    #[test]
    fn version_display_parse_roundtrip(v in version_strategy()) {
        let reparsed = Version::new(&v.to_string());
        prop_assert_eq!(&reparsed, &v);
        prop_assert_eq!(reparsed.cmp(&v), std::cmp::Ordering::Equal);
    }

    #[test]
    fn version_ranges_contain_their_endpoints(lo in version_strategy(), hi in version_strategy()) {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let range = VersionRange::between(lo.clone(), hi.clone());
        prop_assert!(range.contains(&lo));
        prop_assert!(range.contains(&hi));
        let constraint = VersionConstraint::from_ranges(vec![range]);
        prop_assert!(constraint.satisfies(&lo) && constraint.satisfies(&hi));
    }

    #[test]
    fn version_constraint_parse_agrees_with_range_semantics(v in version_strategy(), bound in version_strategy()) {
        // "@bound:" means at least `bound`.
        let at_least = VersionConstraint::parse(&format!("{bound}:"));
        if v >= bound {
            prop_assert!(at_least.satisfies(&v));
        }
        let at_most = VersionConstraint::parse(&format!(":{bound}"));
        if v <= bound {
            prop_assert!(at_most.satisfies(&v));
        }
    }
}

// ---------- spec parsing properties -----------------------------------------------------------

proptest! {
    #[test]
    fn spec_parse_display_roundtrip(text in simple_spec_strategy()) {
        let parsed: Spec = parse_spec(&text).expect("generated specs parse");
        let reparsed = parse_spec(&parsed.to_string()).expect("canonical form parses");
        prop_assert_eq!(parsed, reparsed);
    }

    #[test]
    fn spec_with_dependencies_roundtrip(
        root in simple_spec_strategy(),
        dep in simple_spec_strategy(),
    ) {
        let text = format!("{root} ^{dep}");
        if let Ok(parsed) = parse_spec(&text) {
            let reparsed = parse_spec(&parsed.to_string()).expect("canonical form parses");
            prop_assert_eq!(parsed, reparsed);
        }
    }

    #[test]
    fn parser_never_panics(text in "[ -~]{0,40}") {
        let _ = parse_spec(&text);
    }
}

// ---------- hashing properties ----------------------------------------------------------------

proptest! {
    #[test]
    fn dag_hash_is_deterministic_and_sensitive(
        desc in "[ -~]{1,40}",
        deps in proptest::collection::vec("[a-z0-9]{8}", 0..4),
    ) {
        let h1 = dag_hash(&desc, &deps);
        let h2 = dag_hash(&desc, &deps);
        prop_assert_eq!(&h1, &h2);
        prop_assert_eq!(h1.len(), spack_spec::hash::HASH_LEN);
        // Changing the description changes the hash.
        let other = dag_hash(&format!("{desc}!"), &deps);
        prop_assert_ne!(h1, other);
    }
}

// ---------- ASP solver properties ---------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random positive dependency graphs with a choice over roots: every returned stable
    /// model must be closed under the rules (if a chosen node depends on another, that
    /// other node is in the model too).
    #[test]
    fn asp_models_are_closed_under_rules(
        edges in proptest::collection::vec((0u8..6, 0u8..6), 1..10),
    ) {
        let mut ctl = asp::Control::new(asp::SolverConfig::default());
        for (a, b) in &edges {
            if a != b {
                ctl.add_fact("depends_on", &[format!("p{a}").into(), format!("p{b}").into()]);
            }
        }
        ctl.add_fact("root", &["p0".into()]);
        ctl.add_program(
            "node(P) :- root(P).\n node(D) :- node(P), depends_on(P, D).",
        ).unwrap();
        ctl.ground().unwrap();
        let outcome = ctl.solve().unwrap();
        let model = outcome.model().expect("positive programs are satisfiable");
        let nodes: std::collections::BTreeSet<String> =
            model.with_pred("node").map(|args| args[0].as_str()).collect();
        prop_assert!(nodes.contains("p0"));
        for (a, b) in &edges {
            if a != b && nodes.contains(&format!("p{a}")) {
                prop_assert!(nodes.contains(&format!("p{b}")),
                    "node p{a} is in the model but its dependency p{b} is not");
            }
        }
    }

    /// Cardinality bounds are respected in every model of a random "pick k of n" program.
    #[test]
    fn asp_cardinality_choices_are_respected(n in 2usize..6, k in 1usize..3) {
        let k = k.min(n);
        let mut ctl = asp::Control::new(asp::SolverConfig::default());
        for i in 0..n {
            ctl.add_fact("candidate", &[format!("c{i}").into()]);
        }
        ctl.add_program(&format!(
            "{k} {{ pick(C) : candidate(C) }} {k}.",
        )).unwrap();
        ctl.ground().unwrap();
        let outcome = ctl.solve().unwrap();
        let model = outcome.model().expect("satisfiable");
        prop_assert_eq!(model.with_pred("pick").count(), k);
    }
}

// ---------- concretizer properties ----------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Concretizing random packages of random synthetic repositories never panics and
    /// never produces an invalid DAG: either a solution where the root is present, every
    /// node has a declared version and values for all declared variants, and the graph is
    /// acyclic — or a clean Unsatisfiable/UnknownPackage error.
    #[test]
    fn concretization_is_sound_on_random_repositories(seed in 0u64..500, pick in 0usize..20) {
        let repo = synth_repo(&SynthConfig { packages: 30, seed, ..Default::default() });
        let names: Vec<String> = repo.names().map(|s| s.to_string()).collect();
        let root = names[pick % names.len()].clone();
        let concretizer = Concretizer::new(&repo).with_site(SiteConfig::minimal());
        match concretizer.concretize_str(&root) {
            Ok(result) => {
                prop_assert!(result.spec.contains(&root));
                // Topological order visits every node exactly once (acyclicity).
                prop_assert_eq!(result.spec.topological_order().len(), result.spec.len());
                for node in &result.spec.nodes {
                    let pkg = repo.get(&node.name).expect("solution nodes come from the repo");
                    prop_assert!(pkg.versions.iter().any(|v| v.version == node.version),
                        "{} got an undeclared version {}", node.name, node.version);
                    for variant in &pkg.variants {
                        let value = node.variants.get(&variant.name);
                        prop_assert!(value.is_some(),
                            "{} missing variant {}", node.name, variant.name);
                        if !variant.values.is_empty() {
                            if let Some(VariantValue::Value(v)) = value {
                                prop_assert!(variant.values.contains(v),
                                    "{}: {} is not an allowed value of {}", node.name, v, variant.name);
                            }
                        }
                    }
                }
            }
            Err(ConcretizeError::Unsatisfiable { .. }) | Err(ConcretizeError::UnknownPackage(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }
}

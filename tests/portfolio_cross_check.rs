//! The determinism harness for parallel solving.
//!
//! Portfolio mode races differently-seeded solver configurations per optimization
//! level and takes the first winner; the shared nogood store transfers learned
//! clauses across requests with the same closure digest. Both are *pure
//! accelerations*: the engine re-derives every returned model (and re-proves every
//! returned core) on a canonical serial configuration, so results must be
//! **byte-identical** to serial mode — same DAG, same objective vector, same
//! reuse/build partition, same diagnostics — regardless of thread timing, portfolio
//! width, or what the store happens to contain. These tests pin that contract:
//!
//! * proptests over random synthetic repositories and solver seeds, portfolio-3
//!   sessions vs serial sessions vs one-shot solves, SAT and UNSAT interleaved on
//!   one session with the shared store on (its default);
//! * a store on-vs-off proptest (soundness: transferred clauses change nothing
//!   observable);
//! * a mutation-style test that a deliberately-corrupted transferred clause is
//!   caught by the debug-mode canonical-form assertion in the trusted bulk loader;
//! * a threaded stress test — several OS threads hammering one portfolio session —
//!   cross-checked against a serial oracle under a watchdog timeout.

use proptest::prelude::*;

use spack_concretizer::{Concretization, ConcretizeError, Concretizer, SiteConfig};
use spack_repo::{builtin_repo, synth_repo, SynthConfig};

/// Render everything a caller can observe about a result, for equality comparison
/// (the same shape `tests/session_cross_check.rs` uses).
fn render(result: &Result<Concretization, ConcretizeError>) -> String {
    match result {
        Ok(c) => {
            let mut reused = c.reused.clone();
            reused.sort();
            let mut built = c.built.clone();
            built.sort();
            format!("OK\n{}\ncost={:?}\nreused={reused:?}\nbuilt={built:?}", c.spec, c.cost)
        }
        Err(ConcretizeError::Unsatisfiable { diagnostics, .. }) => {
            let lines: Vec<String> = diagnostics
                .iter()
                .map(|d| {
                    format!(
                        "{:?}|{}|{}|{}|{:?}",
                        d.severity, d.priority, d.code, d.message, d.provenance
                    )
                })
                .collect();
            format!("UNSAT\n{}", lines.join("\n"))
        }
        Err(e) => format!("ERR {e}"),
    }
}

/// The request list for a synthetic repository: plain roots, a pinned version that
/// never exists (UNSAT), and an always-satisfiable version range, interleaved.
fn requests_for(repo: &spack_repo::Repository, picks: &[usize]) -> Vec<String> {
    let names: Vec<String> = repo.names().map(str::to_string).collect();
    let mut specs = Vec::new();
    for (i, pick) in picks.iter().enumerate() {
        let name = &names[pick % names.len()];
        match i % 3 {
            0 => specs.push(name.clone()),
            1 => specs.push(format!("{name}@9999.0")), // never declared: UNSAT
            _ => specs.push(format!("{name}@0:")),     // satisfied by every version
        }
    }
    specs
}

/// A concretizer over `repo` with the given solver seed and portfolio width.
fn concretizer(repo: &spack_repo::Repository, seed: u64, portfolio: usize) -> Concretizer<'_> {
    Concretizer::new(repo)
        .with_site(SiteConfig::minimal())
        .with_solver_config(asp::SolverConfig { seed, ..Default::default() })
        .with_portfolio(portfolio)
}

/// The determinism contract: one-shot serial, a serial session, and a portfolio-3
/// session (shared nogood store on, its default) must be observationally identical
/// on an interleaved SAT/UNSAT request stream.
fn assert_portfolio_matches_serial(repo: &spack_repo::Repository, seed: u64, specs: &[String]) {
    let serial = concretizer(repo, seed, 1);
    let serial_session = serial.session().expect("serial session build");
    let portfolio_session = concretizer(repo, seed, 3).session().expect("portfolio session build");
    for spec in specs {
        let one = render(&serial.concretize_str(spec));
        let ser = render(&serial_session.concretize_str(spec));
        let par = render(&portfolio_session.concretize_str(spec));
        assert_eq!(one, ser, "spec `{spec}` (seed {seed}): serial session differs from one-shot");
        assert_eq!(one, par, "spec `{spec}` (seed {seed}): portfolio session differs from serial");
    }
}

/// Soundness of the cross-request transfer: a session with the shared store
/// disabled must produce exactly what the default (store-on) session produces.
fn assert_store_changes_nothing(repo: &spack_repo::Repository, seed: u64, specs: &[String]) {
    let with_store = concretizer(repo, seed, 1).session().expect("session build");
    let without_store =
        concretizer(repo, seed, 1).with_nogood_store(false).session().expect("session build");
    for spec in specs {
        // Solve every spec twice so the store-on session actually transfers clauses
        // between identical requests (first publishes, second fetches).
        for round in 0..2 {
            let on = render(&with_store.concretize_str(spec));
            let off = render(&without_store.concretize_str(spec));
            assert_eq!(
                on, off,
                "spec `{spec}` (seed {seed}, round {round}): nogood store changed the result"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Medium-shaped synthetic repositories (dependency chain + extra virtuals),
    /// across solver seeds: portfolio results are byte-identical to serial.
    #[test]
    fn portfolio_matches_serial_on_medium_shaped_repos(
        repo_seed in 0u64..200,
        solver_seed in 0u64..8,
        picks in proptest::collection::vec(0usize..50, 3..6),
    ) {
        let repo = synth_repo(&SynthConfig {
            packages: 48,
            chain_depth: 10,
            extra_virtuals: 2,
            seed: repo_seed,
            ..Default::default()
        });
        let specs = requests_for(&repo, &picks);
        assert_portfolio_matches_serial(&repo, solver_seed, &specs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Wide-shaped synthetic repositories (high fan-out, virtual-heavy), across
    /// solver seeds: portfolio results are byte-identical to serial.
    #[test]
    fn portfolio_matches_serial_on_wide_shaped_repos(
        repo_seed in 0u64..200,
        solver_seed in 0u64..8,
        picks in proptest::collection::vec(0usize..50, 3..6),
    ) {
        let repo = synth_repo(&SynthConfig {
            packages: 40,
            max_deps: 8,
            mpi_fraction: 0.6,
            seed: repo_seed,
            ..Default::default()
        });
        let specs = requests_for(&repo, &picks);
        assert_portfolio_matches_serial(&repo, solver_seed, &specs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Cross-request nogood transfer is invisible: store-on and store-off sessions
    /// agree on every request, including repeats that actually hit the store.
    #[test]
    fn nogood_store_changes_no_observable_result(
        repo_seed in 0u64..200,
        solver_seed in 0u64..8,
        picks in proptest::collection::vec(0usize..50, 3..5),
    ) {
        let repo = synth_repo(&SynthConfig {
            packages: 48,
            chain_depth: 10,
            extra_virtuals: 2,
            seed: repo_seed,
            ..Default::default()
        });
        let specs = requests_for(&repo, &picks);
        assert_store_changes_nothing(&repo, solver_seed, &specs);
    }
}

/// Repeated identical requests on one session must hit the shared store and
/// transfer clauses — and still render identically.
#[test]
fn nogood_store_transfers_between_identical_requests() {
    let repo = builtin_repo();
    let session =
        Concretizer::new(&repo).with_site(SiteConfig::quartz()).session().expect("session build");
    // mpileaks is the builtin root whose optimization reliably learns
    // provenance-safe clauses to publish (small closures can learn none).
    let first = render(&session.concretize_str("mpileaks"));
    let second = render(&session.concretize_str("mpileaks"));
    assert_eq!(first, second, "repeated request must be byte-identical");
    let stats = session.stats();
    assert!(stats.store_misses > 0, "the first request must miss the empty store");
    assert!(stats.store_hits > 0, "the repeated request must hit the shared store");
    assert!(stats.store_transferred > 0, "clauses must transfer across requests");
}

/// The aggregated solve stats stay meaningful under parallelism: the serial winner
/// seed is deterministic across runs, and a portfolio solve (whatever worker wins
/// the race) reports the same observable result.
#[test]
fn winner_seed_is_deterministic_serially_and_result_invariant_under_racing() {
    let repo = builtin_repo();
    let serial = Concretizer::new(&repo).with_site(SiteConfig::quartz());
    let a = serial.concretize_str("mpileaks").expect("sat");
    let b = serial.concretize_str("mpileaks").expect("sat");
    assert_eq!(a.stats.winner_seed, b.stats.winner_seed, "serial winner seed must be stable");
    assert!(a.stats.conflicts + a.stats.propagations > 0, "stats must be populated");
    let portfolio = Concretizer::new(&repo).with_site(SiteConfig::quartz()).with_portfolio(3);
    let c = portfolio.concretize_str("mpileaks").expect("sat");
    assert_eq!(render(&Ok(a)), render(&Ok(c)), "portfolio result must match serial");
}

/// Mutation-style soundness check at the public-API level: corrupt a shelved clause
/// behind the store's back (duplicate literal — a shape no canonicalized cache can
/// contain); the raw transfer hands it through and the trusted bulk loader's
/// debug-mode canonical-form assertion must fire rather than silently absorbing it.
#[test]
#[cfg(debug_assertions)]
fn corrupted_transferred_clause_is_caught_in_debug() {
    use asp::sat::{ClauseCache, Lit, SatConfig, Solver};
    let store = asp::SharedClauseStore::new();
    store.inject_raw_for_tests(7, vec![Lit::pos(1), Lit::pos(1), Lit::pos(0)]);
    let mut cache = ClauseCache::default();
    assert_eq!(store.fetch_into(7, &mut cache), 1, "the raw clause must transfer verbatim");
    let outcome = std::panic::catch_unwind(move || {
        let mut solver = Solver::new(4, SatConfig::default());
        solver.load_trusted_clauses(cache.clauses().iter().map(Vec::as_slice), true)
    });
    assert!(outcome.is_err(), "debug-mode trusted load must reject a non-canonical clause");
}

/// Threaded stress: several OS threads hammer one portfolio-2 session (shared store
/// on) with a mixed SAT/UNSAT request stream; every result must equal the serial
/// one-shot oracle, with no panic or deadlock. A watchdog thread bounds the test —
/// a deadlock fails loudly instead of hanging the suite.
#[test]
fn threaded_stress_matches_serial_oracle() {
    const THREADS: usize = 4;
    const ROUNDS: usize = 3;
    let (tx, rx) = std::sync::mpsc::channel::<()>();
    std::thread::spawn(move || {
        let repo = builtin_repo();
        let serial = Concretizer::new(&repo).with_site(SiteConfig::quartz());
        let specs = ["zlib", "hdf5", "zlib@9.9", "mpileaks", "example", "netcdf-c ^hdf5~mpi"];
        let oracle: Vec<String> = specs.iter().map(|s| render(&serial.concretize_str(s))).collect();
        let session = Concretizer::new(&repo)
            .with_site(SiteConfig::quartz())
            .with_portfolio(2)
            .session()
            .expect("portfolio session build");
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let (session, specs, oracle) = (&session, &specs, &oracle);
                scope.spawn(move || {
                    for round in 0..ROUNDS {
                        for (i, spec) in specs.iter().enumerate() {
                            let got = render(&session.concretize_str(spec));
                            assert_eq!(
                                got, oracle[i],
                                "thread {t} round {round} spec `{spec}`: differs from oracle"
                            );
                        }
                    }
                });
            }
        });
        tx.send(()).ok();
    });
    // Generous: the stress solves THREADS * ROUNDS * 6 full requests on one core in
    // the worst scheduling; well under a minute in practice.
    match rx.recv_timeout(std::time::Duration::from_secs(600)) {
        Ok(()) => {}
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
            panic!("threaded stress timed out — possible deadlock in the portfolio/session path")
        }
        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
            panic!("a stress thread panicked; see the assertion output above")
        }
    }
}

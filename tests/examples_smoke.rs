//! Smoke-runs every example in `examples/` with smoke-scale inputs, so the entry points
//! the README documents cannot silently rot.
//!
//! These tests shell out to `cargo run --release --example …` (reusing the build cache),
//! so they are `#[ignore]`d by default to keep plain `cargo test` fast; CI runs them
//! explicitly with `cargo test --release --test examples_smoke -- --ignored`.

use std::process::Command;

/// Run one example through cargo and assert it exits successfully.
fn run_example(name: &str, args: &[&str]) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut cmd = Command::new(cargo);
    cmd.args(["run", "--release", "-q", "--example", name]);
    if !args.is_empty() {
        cmd.arg("--");
        cmd.args(args);
    }
    let output = cmd.output().unwrap_or_else(|e| panic!("failed to spawn cargo for {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} {args:?} failed with {}:\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

#[test]
#[ignore = "shells out to cargo; run explicitly (CI does) with --ignored"]
fn quickstart_concretizes_a_small_spec() {
    run_example("quickstart", &["zlib"]);
}

#[test]
#[ignore = "shells out to cargo; run explicitly (CI does) with --ignored"]
fn spec_syntax_tour_runs() {
    run_example("spec_syntax", &[]);
}

#[test]
#[ignore = "shells out to cargo; run explicitly (CI does) with --ignored"]
fn conditional_deps_demo_runs() {
    run_example("conditional_deps", &[]);
}

#[test]
#[ignore = "shells out to cargo; run explicitly (CI does) with --ignored"]
fn reuse_demo_runs() {
    run_example("reuse_demo", &[]);
}

#[test]
#[ignore = "shells out to cargo; run explicitly (CI does) with --ignored"]
fn e4s_stack_runs_at_smoke_scale() {
    // 40 packages / 2 roots matches bench::Scale::Smoke.
    run_example("e4s_stack", &["40", "2"]);
}

//! Golden corpus of deliberately unsolvable requests, asserting the *exact* diagnostic
//! messages the single-grounding unsat pipeline produces (see
//! `spack_concretizer::diagnose`) — byte-identical to the output of the pre-fold
//! two-grounding pipeline, per the full-report corpus below.
//!
//! Every scenario must yield at least one specific, human-readable diagnostic — never a
//! bare "no valid configuration exists". The corpus covers the scenario classes of the
//! paper's error scheme: version conflicts, conflicting roots in one call, incompatible
//! variants (including the Section V-B `^hdf5~mpi` example), invalid/unknown variant
//! values, conflict directives, compiler/target constraints, compiler–target support,
//! unjustified `^dep` requirements, unusable providers, and exhausted reuse.

use spack_concretizer::{ConcretizeError, Concretizer, Diagnostic, SiteConfig};
use spack_repo::{builtin_repo, PackageBuilder, Repository};
use spack_spec::parse_spec;
use spack_store::{synthesize_buildcache, BuildcacheConfig};

/// Concretize `roots` against `repo` under the quartz site and return the diagnostics,
/// panicking when the request is (unexpectedly) satisfiable.
fn diagnose_with(
    repo: &Repository,
    site: SiteConfig,
    roots: &[&str],
    reuse: bool,
) -> Vec<Diagnostic> {
    let specs: Vec<_> =
        roots.iter().map(|r| parse_spec(r).expect("scenario specs parse")).collect();
    let cache;
    let mut concretizer = Concretizer::new(repo).with_site(site);
    if reuse {
        cache = synthesize_buildcache(repo, &BuildcacheConfig::default());
        concretizer = concretizer.with_database(&cache);
    }
    match concretizer.concretize(&specs) {
        Ok(result) => panic!("scenario {roots:?} unexpectedly solved: {}", result.spec),
        Err(ConcretizeError::Unsatisfiable { diagnostics, stats }) => {
            assert!(
                !diagnostics.is_empty(),
                "{roots:?}: unsat errors must always carry diagnostics"
            );
            assert_eq!(
                stats.minimized_core_size,
                diagnostics.iter().map(|d| d.provenance.len()).max().unwrap_or(0),
                "{roots:?}: provenance must reflect the minimized core"
            );
            diagnostics
        }
        Err(other) => panic!("scenario {roots:?}: expected Unsatisfiable, got {other:?}"),
    }
}

fn diagnose(roots: &[&str]) -> Vec<Diagnostic> {
    diagnose_with(&builtin_repo(), SiteConfig::quartz(), roots, false)
}

fn messages(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.message.as_str()).collect()
}

/// Assert the exact message is present, and that nothing in the report is the bare
/// unhelpful fallback.
fn assert_message(diags: &[Diagnostic], expected: &str) {
    assert!(
        diags.iter().any(|d| d.message == expected),
        "expected message {expected:?} in {:?}",
        messages(diags)
    );
    assert!(
        diags.iter().all(|d| d.message != "no valid configuration exists"),
        "bare fallback message in {:?}",
        messages(diags)
    );
}

#[test]
fn version_constraint_no_known_version() {
    let diags = diagnose(&["zlib@9.9"]);
    assert_message(&diags, "the requirement `zlib@9.9` cannot be satisfied");
    assert_message(&diags, "zlib: no known version satisfies the constraint @9.9");
    // The paper-scheme metadata rides along: code, priority, package, provenance.
    let d = diags.iter().find(|d| d.code == "version-constraint").unwrap();
    assert_eq!(d.priority, 90);
    assert_eq!(d.package.as_deref(), Some("zlib"));
    assert_eq!(d.provenance, vec!["zlib@9.9".to_string()]);
}

#[test]
fn conflicting_roots_in_one_call() {
    // Two roots in a single concretize() call pin zlib to two disjoint versions: the
    // minimized unsat core names both requirements.
    let diags = diagnose(&["zlib@1.2.8", "zlib@1.2.12"]);
    assert_message(&diags, "the requirements `zlib@1.2.8`, `zlib@1.2.12` cannot all hold together");
    assert!(diags.iter().any(|d| d.code == "conflicting-requirements"), "{:?}", messages(&diags));
}

#[test]
fn incompatible_variant_roots() {
    // +bzip and ~bzip on the same package across two roots of one call.
    let diags = diagnose(&["example+bzip", "example~bzip"]);
    assert_message(
        &diags,
        "the requirements `example+bzip`, `example~bzip` cannot all hold together",
    );
    assert_message(
        &diags,
        "conflicting values imposed on variant 'bzip' of example: false vs true",
    );
}

#[test]
fn section5b_dependency_variant_conflict() {
    // The paper's flagship diagnostic: netcdf-c needs hdf5+mpi, the user demands ~mpi.
    let diags = diagnose(&["netcdf-c ^hdf5~mpi"]);
    assert_message(&diags, "the requirement `^hdf5~mpi` cannot be satisfied");
    assert_message(&diags, "conflicting values imposed on variant 'mpi' of hdf5: false vs true");
    // The model-level error carries the specifics, so the core summary is a Note;
    // the variant conflict itself is the Error.
    let core = diags.iter().find(|d| d.code == "unsat-requirement").unwrap();
    assert_eq!(core.severity, spack_concretizer::Severity::Note);
    let conflict = diags.iter().find(|d| d.code == "variant-conflict").unwrap();
    assert_eq!(conflict.severity, spack_concretizer::Severity::Error);
}

#[test]
fn invalid_variant_value() {
    let diags = diagnose(&["example bzip=maybe"]);
    assert_message(&diags, "invalid value 'maybe' for variant 'bzip' of example");
}

#[test]
fn unknown_variant() {
    let diags = diagnose(&["zlib+bogus"]);
    assert_message(&diags, "package zlib has no variant 'bogus'");
}

#[test]
fn conflict_directive_triggered() {
    // example conflicts("%intel"); requesting %intel trips the directive.
    let diags = diagnose(&["example%intel"]);
    assert_message(&diags, "example: conflicts with %intel");
    let d = diags.iter().find(|d| d.code == "conflict").unwrap();
    assert_eq!(d.priority, 75);
}

#[test]
fn compiler_constraint_unsatisfiable() {
    let diags = diagnose(&["zlib%gcc@99.9"]);
    assert_message(&diags, "zlib: no available compiler satisfies %gcc@99.9");
}

#[test]
fn target_constraint_unsatisfiable() {
    let diags = diagnose(&["zlib target=rv64gc"]);
    assert_message(&diags, "zlib: no available target satisfies target=rv64gc");
}

#[test]
fn old_compiler_cannot_emit_new_target() {
    // Section V's gcc/skylake example, pinned both ways: the specific incompatibility
    // is reported, not a generic constraint mismatch.
    let diags = diagnose(&["zlib%gcc@4.8.5 target=skylake"]);
    assert_message(&diags, "compiler gcc@4.8.5 cannot build zlib for target skylake");
}

#[test]
fn unjustified_root_requirement() {
    // zlib has no bzip2 dependency, so `^bzip2` can never be justified by an edge.
    let diags = diagnose(&["zlib ^bzip2"]);
    assert_message(&diags, "bzip2 was requested but nothing in the solution depends on it");
}

#[test]
fn os_conflict_names_both_systems() {
    // The minimal site has exactly one OS, so the message is fully deterministic.
    let diags =
        diagnose_with(&builtin_repo(), SiteConfig::minimal(), &["zlib os=windowsxp"], false);
    assert_message(&diags, "conflicting operating systems imposed on zlib: centos8 vs windowsxp");
}

#[test]
fn exhausted_reuse_still_explains() {
    // A populated buildcache cannot rescue an impossible version pin — the diagnostic
    // must be just as specific with reuse enabled.
    let diags = diagnose_with(&builtin_repo(), SiteConfig::quartz(), &["zlib@9.9"], true);
    assert_message(&diags, "zlib: no known version satisfies the constraint @9.9");
}

#[test]
fn provider_that_cannot_provide() {
    // A virtual whose only provider's provides() condition can never hold: the chosen
    // provider is called out, not just "unsat".
    let mut repo = Repository::new();
    repo.add(PackageBuilder::new("mockblas").version("1.0").provides_when("blas", "@2:").build());
    repo.add(PackageBuilder::new("app").version("1.0").depends_on("blas").build());
    let diags = diagnose_with(&repo, SiteConfig::minimal(), &["app"], false);
    assert_message(&diags, "mockblas cannot provide 'blas' under the chosen configuration");
}

/// The full diagnostic reports of every golden scenario, byte for byte, captured from
/// the pre-fold (two-grounding) pipeline and asserted unchanged across the
/// single-grounding fold: one line per diagnostic as
/// `scenario|severity|priority|code|message|provenance(;-joined)`, in report order.
const GOLDEN_REPORTS: &str = "\
version_constraint|Note|110|unsat-requirement|the requirement `zlib@9.9` cannot be satisfied|zlib@9.9
version_constraint|Error|90|version-constraint|zlib: no known version satisfies the constraint @9.9|zlib@9.9
conflicting_roots|Note|110|conflicting-requirements|the requirements `zlib@1.2.8`, `zlib@1.2.12` cannot all hold together|zlib@1.2.8;zlib@1.2.12
conflicting_roots|Error|90|version-constraint|zlib: no known version satisfies the constraint @1.2.8|zlib@1.2.8;zlib@1.2.12
incompatible_variant_roots|Note|110|conflicting-requirements|the requirements `example+bzip`, `example~bzip` cannot all hold together|example+bzip;example~bzip
incompatible_variant_roots|Error|85|variant-conflict|conflicting values imposed on variant 'bzip' of example: false vs true|example+bzip;example~bzip
section5b|Note|110|unsat-requirement|the requirement `^hdf5~mpi` cannot be satisfied|^hdf5~mpi
section5b|Error|85|variant-conflict|conflicting values imposed on variant 'mpi' of hdf5: false vs true|^hdf5~mpi
invalid_variant_value|Note|110|unsat-requirement|the requirement `example bzip=maybe` cannot be satisfied|example bzip=maybe
invalid_variant_value|Error|83|variant-value|invalid value 'maybe' for variant 'bzip' of example|example bzip=maybe
unknown_variant|Note|110|unsat-requirement|the requirement `zlib+bogus` cannot be satisfied|zlib+bogus
unknown_variant|Error|80|unknown-variant|package zlib has no variant 'bogus'|zlib+bogus
conflict_directive|Note|110|unsat-requirement|the requirement `example%intel` cannot be satisfied|example%intel
conflict_directive|Error|75|conflict|example: conflicts with %intel|example%intel
compiler_constraint|Note|110|unsat-requirement|the requirement `zlib%gcc@99.9` cannot be satisfied|zlib%gcc@99.9
compiler_constraint|Error|68|compiler-constraint|zlib: no available compiler satisfies %gcc@99.9|zlib%gcc@99.9
target_constraint|Note|110|unsat-requirement|the requirement `zlib target=rv64gc` cannot be satisfied|zlib target=rv64gc
target_constraint|Error|60|target-constraint|zlib: no available target satisfies target=rv64gc|zlib target=rv64gc
compiler_target|Note|110|unsat-requirement|the requirement `zlib%gcc@4.8.5 target=skylake` cannot be satisfied|zlib%gcc@4.8.5 target=skylake
compiler_target|Error|59|compiler-target|compiler gcc@4.8.5 cannot build zlib for target skylake|zlib%gcc@4.8.5 target=skylake
unjustified_root|Error|40|not-needed|bzip2 was requested but nothing in the solution depends on it|
os_conflict|Note|110|unsat-requirement|the requirement `zlib os=windowsxp` cannot be satisfied|zlib os=windowsxp
os_conflict|Error|55|os-conflict|conflicting operating systems imposed on zlib: centos8 vs windowsxp|zlib os=windowsxp
exhausted_reuse|Note|110|unsat-requirement|the requirement `zlib@9.9` cannot be satisfied|zlib@9.9
exhausted_reuse|Error|90|version-constraint|zlib: no known version satisfies the constraint @9.9|zlib@9.9
provider_cannot_provide|Error|50|provider-invalid|mockblas cannot provide 'blas' under the chosen configuration|
";

fn render_report(name: &str, diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(|d| {
            format!(
                "{name}|{:?}|{}|{}|{}|{}\n",
                d.severity,
                d.priority,
                d.code,
                d.message,
                d.provenance.join(";")
            )
        })
        .collect()
}

#[test]
fn full_reports_match_the_prefold_golden_corpus() {
    // Every scenario's complete report — severity, priority, code, message, and
    // provenance of every diagnostic, in order — must be byte-identical to the
    // two-grounding pipeline's output captured before the single-grounding fold.
    let builtin = builtin_repo();
    let mut actual = String::new();
    let quartz_scenarios: [(&str, &[&str]); 11] = [
        ("version_constraint", &["zlib@9.9"]),
        ("conflicting_roots", &["zlib@1.2.8", "zlib@1.2.12"]),
        ("incompatible_variant_roots", &["example+bzip", "example~bzip"]),
        ("section5b", &["netcdf-c ^hdf5~mpi"]),
        ("invalid_variant_value", &["example bzip=maybe"]),
        ("unknown_variant", &["zlib+bogus"]),
        ("conflict_directive", &["example%intel"]),
        ("compiler_constraint", &["zlib%gcc@99.9"]),
        ("target_constraint", &["zlib target=rv64gc"]),
        ("compiler_target", &["zlib%gcc@4.8.5 target=skylake"]),
        ("unjustified_root", &["zlib ^bzip2"]),
    ];
    for (name, roots) in quartz_scenarios {
        let diags = diagnose_with(&builtin, SiteConfig::quartz(), roots, false);
        actual.push_str(&render_report(name, &diags));
    }
    let os = diagnose_with(&builtin, SiteConfig::minimal(), &["zlib os=windowsxp"], false);
    actual.push_str(&render_report("os_conflict", &os));
    let reuse = diagnose_with(&builtin, SiteConfig::quartz(), &["zlib@9.9"], true);
    actual.push_str(&render_report("exhausted_reuse", &reuse));
    let mut repo = Repository::new();
    repo.add(PackageBuilder::new("mockblas").version("1.0").provides_when("blas", "@2:").build());
    repo.add(PackageBuilder::new("app").version("1.0").depends_on("blas").build());
    let provider = diagnose_with(&repo, SiteConfig::minimal(), &["app"], false);
    actual.push_str(&render_report("provider_cannot_provide", &provider));
    assert_eq!(actual, GOLDEN_REPORTS, "diagnostic reports drifted from the golden corpus");
}

#[test]
fn diagnostics_order_is_most_severe_first() {
    let diags = diagnose(&["zlib@9.9"]);
    let priorities: Vec<i64> = diags.iter().map(|d| d.priority).collect();
    let mut sorted = priorities.clone();
    sorted.sort_by(|a, b| b.cmp(a));
    assert_eq!(priorities, sorted, "diagnostics must be ordered most severe first");
}

#[test]
fn second_phase_performs_no_setup_and_no_grounding() {
    // The single-grounding fold: the relaxed diagnostics solve reuses the normal
    // solve's control, so the second phase's grounding time must be exactly zero and
    // the combined per-phase accounting must carry the (single) grounding.
    let repo = builtin_repo();
    let err = Concretizer::new(&repo)
        .with_site(SiteConfig::quartz())
        .concretize_str("netcdf-c ^hdf5~mpi")
        .unwrap_err();
    match err {
        ConcretizeError::Unsatisfiable { stats, .. } => {
            assert_eq!(
                stats.second_phase_ground,
                std::time::Duration::ZERO,
                "the relaxed solve must not reground"
            );
            assert!(stats.phases.ground > std::time::Duration::ZERO, "combined grounding time");
            assert!(stats.phases.solve > std::time::Duration::ZERO, "combined solve time");
            assert!(
                stats.second_phase <= stats.phases.total(),
                "second phase is part of the combined accounting"
            );
        }
        other => panic!("expected Unsatisfiable, got {other:?}"),
    }
}

#[test]
fn unsat_errors_never_fabricate_emptiness() {
    // Regression for the old relaxed-phase error swallowing (`Err(_) => Ok(vec![])`):
    // every Unsatisfiable carries at least one diagnostic (the construction-site
    // invariant inserts the structural fallback), and engine failures — were any to
    // occur — surface as ConcretizeError::Solver, never as an empty report. Exercise
    // the invariant across every scenario class of this corpus plus the structural
    // Display path.
    let repo = builtin_repo();
    for spec in ["zlib@9.9", "netcdf-c ^hdf5~mpi", "zlib ^bzip2", "example%intel"] {
        match Concretizer::new(&repo).with_site(SiteConfig::quartz()).concretize_str(spec) {
            Err(ConcretizeError::Unsatisfiable { diagnostics, .. }) => {
                assert!(!diagnostics.is_empty(), "{spec}: fabricated empty report");
                let text =
                    ConcretizeError::Unsatisfiable { diagnostics, stats: Default::default() }
                        .to_string();
                assert_ne!(
                    text, "no valid configuration exists",
                    "{spec}: Display lost the leading diagnostic"
                );
            }
            other => panic!("{spec}: expected Unsatisfiable, got {other:?}"),
        }
    }
}

#[test]
fn satisfiable_costs_carry_no_error_levels() {
    // The guarded error levels (priority 1000+) are an implementation detail of the
    // diagnostics fold: the reported objective vector of a satisfiable solve must
    // contain only the Table II levels, exactly as before the fold.
    let repo = builtin_repo();
    let result =
        Concretizer::new(&repo).with_site(SiteConfig::quartz()).concretize_str("hdf5").unwrap();
    assert!(
        result.cost.iter().all(|&(p, _)| p < 1000),
        "error levels leaked into the cost vector: {:?}",
        result.cost
    );
    assert!(result.cost.iter().any(|&(p, _)| p == 100), "build-count level present");
}

#[test]
fn display_of_unsatisfiable_carries_the_first_message() {
    let repo = builtin_repo();
    let err = Concretizer::new(&repo)
        .with_site(SiteConfig::quartz())
        .concretize_str("zlib@9.9")
        .unwrap_err();
    let text = err.to_string();
    assert!(
        text.contains("the requirement `zlib@9.9` cannot be satisfied"),
        "Display must lead with a specific diagnostic: {text}"
    );
}

//! Completeness demo (Section V-B1 of the paper): `hpctoolkit ^mpich`.
//!
//! The old greedy concretizer decides the default value of the `mpi` variant (false)
//! before descending into dependencies, so it fails with
//! "Package hpctoolkit does not depend on mpich" and forces the user to over-constrain
//! the spec (`hpctoolkit+mpi ^mpich`). The ASP concretizer simply finds that enabling
//! `+mpi` is the only way for mpich to appear in the solution.
//!
//! Run with:
//! ```text
//! cargo run --release --example conditional_deps
//! ```

use spack_concretizer::{Concretizer, GreedyConcretizer, SiteConfig};
use spack_repo::builtin_repo;
use spack_spec::parse_spec;

fn main() {
    let repo = builtin_repo();
    let site = SiteConfig::quartz();
    let spec_text = "hpctoolkit ^mpich";
    let spec = parse_spec(spec_text).expect("valid spec");

    println!("$ spack spec {spec_text}\n");

    // --- the old concretizer -------------------------------------------------------------
    println!("[old concretizer — greedy fixed point]");
    let greedy = GreedyConcretizer::new(&repo, site.clone());
    match greedy.concretize(&spec) {
        Ok(result) => {
            println!("unexpectedly succeeded:\n{}", result.spec);
        }
        Err(err) => {
            println!("==> Error: {err}");
            println!("    (the user must over-constrain: `hpctoolkit+mpi ^mpich`)\n");
        }
    }
    let workaround = parse_spec("hpctoolkit+mpi ^mpich").unwrap();
    match greedy.concretize(&workaround) {
        Ok(result) => println!(
            "[old concretizer, with the manual workaround] {} packages, mpich included: {}\n",
            result.spec.len(),
            result.spec.contains("mpich")
        ),
        Err(err) => println!("workaround failed: {err}\n"),
    }

    // --- the ASP concretizer ----------------------------------------------------------------
    println!("[ASP concretizer — complete and optimal]");
    let concretizer = Concretizer::new(&repo).with_site(site);
    match concretizer.concretize(&[spec]) {
        Ok(result) => {
            let hpctoolkit = result.spec.node("hpctoolkit").expect("root present");
            println!(
                "solved without help: mpi variant = {}, mpich in DAG = {}",
                hpctoolkit.variants.get("mpi").map(|v| v.to_string()).unwrap_or_default(),
                result.spec.contains("mpich")
            );
            println!("\n{}", result.spec);
        }
        Err(err) => {
            eprintln!("==> Error: {err}");
            std::process::exit(1);
        }
    }
}

//! Concretize an E4S-like software stack (Section VII-C of the paper).
//!
//! The paper evaluates the concretizer on the ~600 packages of the Extreme-scale
//! Scientific Software Stack. That repository is substituted here by the synthetic
//! generator (`spack_repo::synth`), which reproduces its statistical structure (an MPI
//! hub virtual, layered dependencies, conditional variants). This example concretizes
//! several top-level "application" packages of the synthetic stack and reports solver
//! phase timings, like the instrumentation used for Fig. 7.
//!
//! Run with:
//! ```text
//! cargo run --release --example e4s_stack [n_packages] [n_roots]
//! ```

use spack_concretizer::{Concretizer, SiteConfig};
use spack_repo::{e4s_roots, synth_repo, SynthConfig};

fn main() {
    let n_packages: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(80);
    let n_roots: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(5);

    let config = SynthConfig { packages: n_packages, ..Default::default() };
    let repo = synth_repo(&config);
    let roots = e4s_roots(&repo);
    println!(
        "synthetic E4S-like repository: {} packages, {} top-level products, mpi providers: {}",
        repo.len(),
        roots.len(),
        repo.providers("mpi").len()
    );

    let site = SiteConfig::quartz();
    let concretizer = Concretizer::new(&repo).with_site(site);

    let mut total_nodes = 0usize;
    for root in roots.iter().take(n_roots) {
        let possible = repo.possible_dependency_count(root);
        match concretizer.concretize_str(root) {
            Ok(result) => {
                total_nodes += result.spec.len();
                println!(
                    "  {root:<10} possible deps {possible:>4}  solved nodes {:>3}  \
                     setup {:>7.1?}  ground {:>7.1?}  solve {:>7.1?}  total {:>7.1?}",
                    result.spec.len(),
                    result.timings.setup,
                    result.timings.ground,
                    result.timings.solve,
                    result.timings.total()
                );
            }
            Err(err) => println!("  {root:<10} FAILED: {err}"),
        }
    }
    println!("\nconcretized {n_roots} roots, {total_nodes} concrete nodes in total");
}

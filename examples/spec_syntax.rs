//! Spec syntax tour (Table I of the paper).
//!
//! Parses one spec for every sigil in Table I (and a few combined forms), shows what the
//! parser understood, and round-trips the result through `Display`.
//!
//! Run with:
//! ```text
//! cargo run --example spec_syntax
//! ```

use spack_spec::parse_spec;

fn main() {
    let examples: &[(&str, &str)] = &[
        ("hdf5%gcc", "use a particular compiler"),
        ("hdf5@1.10.2", "require version(s)"),
        ("hdf5%gcc@10.3.1", "require compiler version(s)"),
        ("hdf5+mpi", "enable a variant"),
        ("hdf5~mpi", "disable a variant"),
        ("hdf5 mpi=true", "require a particular variant value"),
        ("hdf5 api=default", "multi-valued variant"),
        ("hdf5 target=skylake", "build target value"),
        (
            "hdf5@1.10.2 ^zlib%gcc ^cmake target=aarch64",
            "recursive constraints on dependencies (Section III-A)",
        ),
        (
            "example@1.0.0+bzip%gcc@11.2.0 arch=linux-centos8-skylake",
            "a fully constrained node in one string",
        ),
        ("+openmp ^openblas", "an anonymous `when=` condition (Section V-A)"),
    ];

    println!("{:<55} meaning", "spec");
    println!("{}", "-".repeat(100));
    for (text, meaning) in examples {
        match parse_spec(text) {
            Ok(spec) => {
                println!("{text:<55} {meaning}");
                println!("    parsed name      : {:?}", spec.name);
                if !spec.versions.is_any() {
                    println!("    version constraint: @{}", spec.versions);
                }
                if let Some(c) = &spec.compiler {
                    println!("    compiler          : {c}");
                }
                if !spec.variants.is_empty() {
                    let variants: Vec<String> =
                        spec.variants.iter().map(|(k, v)| format!("{k}={v}")).collect();
                    println!("    variants          : {}", variants.join(", "));
                }
                if let Some(t) = &spec.target {
                    println!("    target            : {t}");
                }
                if !spec.dependencies.is_empty() {
                    let deps: Vec<String> =
                        spec.dependencies.iter().map(|d| d.to_string()).collect();
                    println!("    dependencies      : {}", deps.join(" | "));
                }
                let round_trip = parse_spec(&spec.to_string()).expect("round trip parses");
                assert_eq!(round_trip, spec, "display/parse round trip must be stable");
                println!("    canonical form    : {spec}");
            }
            Err(err) => println!("{text:<55} PARSE ERROR: {err}"),
        }
        println!();
    }
}

//! Build-reuse demo (Section VI and Fig. 6 of the paper).
//!
//! A buildcache is populated with installations of a slightly *older* software stack
//! (as a real site would have). Concretizing `hdf5` then shows:
//!
//! * with hash-based reuse only (the old scheme, Fig. 6a): every package misses and must
//!   be built, because small configuration differences change the DAG hash;
//! * with the ASP reuse optimization (Fig. 6b): most packages are reused and only a
//!   handful must be built, and reuse takes precedence over defaults for the reused
//!   packages (e.g. an older cmake is acceptable) while *built* packages still get their
//!   preferred defaults.
//!
//! Run with:
//! ```text
//! cargo run --release --example reuse_demo
//! ```

use spack_concretizer::{Concretizer, SiteConfig};
use spack_repo::builtin_repo;
use spack_spec::{Compiler, Platform};
use spack_store::{synthesize_buildcache, BuildcacheConfig, Database};

fn main() {
    let repo = builtin_repo();
    let site = SiteConfig::quartz();

    // A buildcache holding the stack as it was installed a little while ago: the same
    // toolchain, but slightly older package versions, and hdf5 itself not yet installed —
    // the situation of Fig. 6 in the paper.
    let cache_config = BuildcacheConfig {
        architectures: vec![(Platform::Linux, "centos8".to_string(), "icelake".to_string())],
        compilers: vec![Compiler::new("gcc", "11.2.0")],
        replicas: 2,
        seed: 7,
    };
    let buildcache: Database = synthesize_buildcache(&repo, &cache_config).filter(|r| {
        r.name != "hdf5"
            && repo
                .get(&r.name)
                .and_then(|p| p.preferred_version())
                .map(|v| *v != r.version)
                .unwrap_or(true)
    });
    println!("buildcache: {} installed packages\n", buildcache.len());

    // --- 1. hash-based reuse only (the old scheme, Fig. 6a) ------------------------------------
    let no_reuse = Concretizer::new(&repo)
        .with_site(site.clone())
        .concretize_str("hdf5")
        .expect("hdf5 concretizes");
    let hash_hits = (0..no_reuse.spec.len())
        .filter(|&i| buildcache.query_exact(&no_reuse.spec, i).is_some())
        .count();
    println!("[hash-based reuse (old concretizer behaviour)]");
    println!(
        "  {} packages in the DAG, {} exact hash matches, {} must be installed from source",
        no_reuse.spec.len(),
        hash_hits,
        no_reuse.spec.len() - hash_hits
    );

    // --- 2. reuse as an optimization target (Fig. 6b) -----------------------------------------
    let with_reuse = Concretizer::new(&repo)
        .with_site(site)
        .with_database(&buildcache)
        .concretize_str("hdf5")
        .expect("hdf5 concretizes with reuse");
    println!("\n[ASP reuse optimization]");
    println!(
        "  {} packages in the DAG, {} reused, {} to build",
        with_reuse.spec.len(),
        with_reuse.reuse_count(),
        with_reuse.build_count()
    );
    if !with_reuse.built.is_empty() {
        println!("  built from source: {}", with_reuse.built.join(", "));
    }
    let mut reused: Vec<String> = with_reuse
        .reused
        .iter()
        .map(|(name, hash)| format!("{name}/{}", &hash[..7.min(hash.len())]))
        .collect();
    reused.sort();
    println!("  reused: {}", reused.join(", "));

    println!("\nConcretized DAG with reuse:\n{}", with_reuse.spec);
}

//! Quickstart: concretize a single package with the ASP-based concretizer.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart [spec]
//! ```
//! The optional argument is any spec in the sigil syntax of Table I of the paper, e.g.
//! `hdf5@1.10.2 +mpi %gcc ^zlib@1.2.8:`. The default is `hdf5`.

use spack_concretizer::{describe_priority, Concretizer, SiteConfig};
use spack_repo::builtin_repo;

fn main() {
    let spec_text = std::env::args().nth(1).unwrap_or_else(|| "hdf5".to_string());
    let repo = builtin_repo();
    let concretizer = Concretizer::new(&repo).with_site(SiteConfig::quartz());

    println!("Input spec");
    println!("--------------------------------");
    println!("{spec_text}\n");

    match concretizer.concretize_str(&spec_text) {
        Ok(result) => {
            println!("Concretized");
            println!("--------------------------------");
            print!("{}", result.spec);
            println!();
            println!(
                "{} packages in the DAG, {} to build, {} reused",
                result.spec.len(),
                result.build_count(),
                result.reuse_count()
            );
            println!(
                "phases: setup {:.1?}  load {:.1?}  ground {:.1?}  solve {:.1?}  (total {:.1?})",
                result.timings.setup,
                result.timings.load,
                result.timings.ground,
                result.timings.solve,
                result.timings.total()
            );
            println!(
                "problem size: {} possible packages, {} facts, {} conditions",
                result.setup.possible_packages, result.setup.facts, result.setup.conditions
            );
            println!("\nnon-zero optimization criteria (priority, value):");
            for (priority, value) in result.cost.iter().filter(|(_, v)| *v != 0) {
                let (bucket, description) = describe_priority(*priority);
                println!("  [{bucket:>6}] {description}: {value}");
            }
        }
        Err(err) => {
            eprintln!("==> Error: {err}");
            std::process::exit(1);
        }
    }
}

//! A minimal, dependency-free stand-in for the `rayon` crate.
//!
//! Implements the one shape this workspace uses: `collection.par_iter().map(f).collect()`
//! over slices and `Vec`s. Work is distributed over `std::thread::available_parallelism`
//! scoped threads with an atomic work-stealing cursor, and results are returned in input
//! order — the same observable behaviour as rayon for this pattern.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The rayon-style prelude: import the parallel-iterator traits.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Types whose references can be iterated in parallel (`&self -> par_iter()`).
pub trait IntoParallelRefIterator {
    /// The element type yielded by reference.
    type Item;

    /// A parallel iterator over references to the elements.
    fn par_iter(&self) -> ParIter<'_, Self::Item>;
}

impl<T: Sync> IntoParallelRefIterator for [T] {
    type Item = T;

    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

impl<T: Sync> IntoParallelRefIterator for Vec<T> {
    type Item = T;

    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self }
    }
}

/// A borrowed parallel iterator (the result of `par_iter()`).
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map every element through `f` (executed on the pool at `collect` time).
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap { items: self.items, f }
    }
}

/// A mapped parallel iterator awaiting collection.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Run the map on a scoped thread pool and gather the results in input order.
    pub fn collect<R>(self) -> Vec<R>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        let n = self.items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = pool_size().min(n);
        if workers <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let cursor = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let value = (self.f)(&self.items[i]);
                    results.lock().unwrap()[i] = Some(value);
                });
            }
        });
        results
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|v| v.expect("every index was processed"))
            .collect()
    }
}

/// The worker count: the `RAYON_NUM_THREADS` environment variable when set to a
/// positive integer (the same override real rayon honours — CI uses it to pin its
/// 2-thread and 4-thread test matrix), the machine's available parallelism otherwise.
fn pool_size() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1))
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn results_preserve_input_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let input: Vec<u8> = Vec::new();
        let out: Vec<u8> = input.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}

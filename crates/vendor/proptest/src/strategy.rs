//! The [`Strategy`] trait and its core implementations: integer ranges, tuples,
//! regex-pattern `&str`s, and the `prop_map` combinator.

use core::ops::Range;

use crate::string::generate_from_pattern;
use crate::test_runner::TestRng;

/// A generator of random values of one type. The no-shrinking analogue of
/// `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function, like `proptest`'s `prop_map`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `&str` patterns are string strategies, as in proptest: the pattern is a regex
/// (restricted here to character classes, `{m,n}` repetition, `?`, and groups).
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// A strategy that always yields clones of one value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_and_map_compose() {
        let mut rng = TestRng::deterministic("strategy");
        let s = (0u8..10, 5usize..6).prop_map(|(a, b)| a as usize + b);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((5..15).contains(&v));
        }
    }

    #[test]
    fn str_patterns_generate_strings() {
        let mut rng = TestRng::deterministic("pattern");
        for _ in 0..50 {
            let s = "[a-z]{2,4}".new_value(&mut rng);
            assert!((2..=4).contains(&s.len()), "{s}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }
}

//! Generation of random strings from a practical regex subset.
//!
//! Supports what the workspace's generators use: literal characters, character classes
//! with ranges (`[a-z0-9]`, `[ -~]`), bounded repetition (`{n}`, `{m,n}`), the `?`
//! quantifier, and non-capturing sequence groups (`(...)`). Alternation, `*`/`+`, and
//! anchors are intentionally out of scope.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Node {
    /// A set of candidate characters.
    Class(Vec<char>),
    /// A literal character.
    Lit(char),
    /// A grouped sequence.
    Group(Vec<Repeat>),
}

#[derive(Debug, Clone)]
struct Repeat {
    node: Node,
    min: usize,
    max: usize,
}

/// Generate one random string matching `pattern`. Panics on syntax this subset does not
/// support — a test-authoring error, not a runtime condition.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let (nodes, consumed) = parse_sequence(&chars, 0, None);
    assert_eq!(consumed, chars.len(), "unparsed trailing pattern in '{pattern}'");
    let mut out = String::new();
    emit_sequence(&nodes, rng, &mut out);
    out
}

fn emit_sequence(nodes: &[Repeat], rng: &mut TestRng, out: &mut String) {
    for rep in nodes {
        let count =
            if rep.min == rep.max { rep.min } else { rep.min + rng.below(rep.max - rep.min + 1) };
        for _ in 0..count {
            match &rep.node {
                Node::Lit(c) => out.push(*c),
                Node::Class(set) => out.push(set[rng.below(set.len())]),
                Node::Group(inner) => emit_sequence(inner, rng, out),
            }
        }
    }
}

/// Parse a sequence of quantified nodes starting at `pos`, stopping at `stop` (the
/// closing delimiter of a group) or end of input. Returns the nodes and the index just
/// past the last consumed character (including `stop` when present).
fn parse_sequence(chars: &[char], mut pos: usize, stop: Option<char>) -> (Vec<Repeat>, usize) {
    let mut nodes = Vec::new();
    while pos < chars.len() {
        if stop == Some(chars[pos]) {
            return (nodes, pos + 1);
        }
        let (node, next) = parse_atom(chars, pos);
        let (min, max, next) = parse_quantifier(chars, next);
        nodes.push(Repeat { node, min, max });
        pos = next;
    }
    assert!(stop.is_none(), "unterminated group in pattern");
    (nodes, pos)
}

fn parse_atom(chars: &[char], pos: usize) -> (Node, usize) {
    match chars[pos] {
        '[' => parse_class(chars, pos + 1),
        '(' => {
            let (inner, next) = parse_sequence(chars, pos + 1, Some(')'));
            (Node::Group(inner), next)
        }
        '\\' => (Node::Lit(chars[pos + 1]), pos + 2),
        c => (Node::Lit(c), pos + 1),
    }
}

fn parse_class(chars: &[char], mut pos: usize) -> (Node, usize) {
    let mut set = Vec::new();
    while pos < chars.len() && chars[pos] != ']' {
        let lo = if chars[pos] == '\\' {
            pos += 1;
            chars[pos]
        } else {
            chars[pos]
        };
        // A range like `a-z` (a trailing `-` is a literal).
        if pos + 2 < chars.len() && chars[pos + 1] == '-' && chars[pos + 2] != ']' {
            let hi = chars[pos + 2];
            assert!(lo <= hi, "inverted class range");
            for c in lo..=hi {
                set.push(c);
            }
            pos += 3;
        } else {
            set.push(lo);
            pos += 1;
        }
    }
    assert!(pos < chars.len(), "unterminated character class");
    assert!(!set.is_empty(), "empty character class");
    (Node::Class(set), pos + 1)
}

/// Parse an optional quantifier after an atom: `{n}`, `{m,n}`, or `?`.
fn parse_quantifier(chars: &[char], pos: usize) -> (usize, usize, usize) {
    match chars.get(pos) {
        Some('?') => (0, 1, pos + 1),
        Some('{') => {
            let close =
                chars[pos..].iter().position(|&c| c == '}').expect("unterminated quantifier") + pos;
            let body: String = chars[pos + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad quantifier min"),
                    n.trim().parse().expect("bad quantifier max"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad quantifier count");
                    (n, n)
                }
            };
            assert!(min <= max, "inverted quantifier bounds");
            (min, max, close + 1)
        }
        _ => (1, 1, pos),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, n: usize) -> Vec<String> {
        let mut rng = TestRng::deterministic(pattern);
        (0..n).map(|_| generate_from_pattern(pattern, &mut rng)).collect()
    }

    #[test]
    fn package_name_pattern() {
        for s in gen("[a-z][a-z0-9]{1,8}(-[a-z0-9]{1,4})?", 200) {
            assert!(s.chars().next().unwrap().is_ascii_lowercase(), "{s}");
            assert!((2..=14).contains(&s.len()), "{s}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    #[test]
    fn printable_ascii_class_with_space() {
        for s in gen("[ -~]{0,40}", 100) {
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
        // The zero-length case is reachable.
        assert!(gen("[ -~]{0,40}", 200).iter().any(|s| s.is_empty()));
    }

    #[test]
    fn exact_count_and_optional_group() {
        for s in gen("[a-z0-9]{8}", 50) {
            assert_eq!(s.len(), 8);
        }
        let opts = gen("x(yz)?", 100);
        assert!(opts.iter().any(|s| s == "x"));
        assert!(opts.iter().any(|s| s == "xyz"));
    }
}

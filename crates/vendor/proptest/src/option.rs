//! Option strategies (`proptest::option` subset).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy yielding `Some` of an inner strategy's value or `None`.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

/// Yield `Some(value)` roughly half the time and `None` otherwise, like
/// `proptest::option::of`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.bool() {
            Some(self.inner.new_value(rng))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_variants_occur() {
        let mut rng = TestRng::deterministic("option");
        let s = of(0u8..3);
        let values: Vec<_> = (0..100).map(|_| s.new_value(&mut rng)).collect();
        assert!(values.iter().any(|v| v.is_some()));
        assert!(values.iter().any(|v| v.is_none()));
    }
}

//! Test execution support: configuration and the deterministic RNG behind strategies.

/// Per-test configuration, mirroring the fields of `proptest::test_runner::Config`
/// that the workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG strategies draw from. SplitMix64, seeded from the test's module path so every
/// run of a given test sees the same case sequence (reproducible CI failures).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded deterministically from a label (the test name).
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label.
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: seed }
    }

    /// Next raw 64-bit value (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `usize` in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        (self.next_u64() % bound as u64) as usize
    }

    /// A uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_seeding() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("y");
        assert_ne!(TestRng::deterministic("x").next_u64(), c.next_u64());
    }
}

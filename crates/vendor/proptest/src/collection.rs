//! Collection strategies (`proptest::collection` subset).

use core::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy generating `Vec`s of values from an element strategy, with a length drawn
/// uniformly from a half-open range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Generate vectors with lengths in `len` (half-open, like `proptest::collection::vec`).
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.start + rng.below(self.len.end - self.len.start);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_the_range() {
        let mut rng = TestRng::deterministic("vec");
        let s = vec(0u8..5, 1..4);
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}

//! The [`Arbitrary`] trait and `any::<T>()` (`proptest::arbitrary` subset).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical default strategy.
pub trait Arbitrary {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A`, like `proptest::prelude::any`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Uniform booleans.
#[derive(Debug, Clone, Copy)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;

    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;

    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty => $s:ident),*) => {$(
        /// Full-range integers of the named type.
        #[derive(Debug, Clone, Copy)]
        pub struct $s;

        impl Strategy for $s {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = $s;

            fn arbitrary() -> $s {
                $s
            }
        }
    )*};
}

impl_arbitrary_int! {
    u8 => U8Strategy, u16 => U16Strategy, u32 => U32Strategy, u64 => U64Strategy,
    i8 => I8Strategy, i16 => I16Strategy, i32 => I32Strategy, i64 => I64Strategy,
    usize => UsizeStrategy, isize => IsizeStrategy
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_covers_both_values() {
        let mut rng = TestRng::deterministic("any");
        let s = any::<bool>();
        let values: Vec<bool> = (0..64).map(|_| s.new_value(&mut rng)).collect();
        assert!(values.contains(&true) && values.contains(&false));
    }
}

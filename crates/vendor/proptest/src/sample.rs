//! Sampling strategies (`proptest::sample` subset).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy picking one element of a fixed list.
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    choices: Vec<T>,
}

/// Pick uniformly from `choices`, like `proptest::sample::select`.
pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
    assert!(!choices.is_empty(), "select() needs at least one choice");
    Select { choices }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.choices[rng.below(self.choices.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_choice_is_reachable() {
        let mut rng = TestRng::deterministic("select");
        let s = select(vec!["a", "b", "c"]);
        let seen: std::collections::BTreeSet<&str> =
            (0..100).map(|_| s.new_value(&mut rng)).collect();
        assert_eq!(seen.len(), 3);
    }
}

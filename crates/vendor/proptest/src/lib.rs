//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property tests use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`, implemented for integer
//!   ranges, tuples, and `&str` regex patterns (a practical subset: character classes,
//!   `{m,n}` repetition, optional groups),
//! * [`collection::vec`], [`option::of`], [`sample::select`], `any::<bool>()`,
//! * the [`proptest!`] macro with optional `#![proptest_config(...)]`, and the
//!   `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` assertions.
//!
//! Differences from real proptest: failing cases are **not shrunk** (the panic message
//! reports the case number instead), and generation is deterministic per test name so
//! CI failures reproduce locally.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a property test needs in scope, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests. Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(expr)]` inner attribute followed by `#[test]` functions whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($config:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let __run = || {
                        $(let $arg = $crate::strategy::Strategy::new_value(&$strat, &mut __rng);)+
                        $body
                    };
                    if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)) {
                        eprintln!(
                            "proptest: {} failed at case {}/{} (no shrinking in the offline shim)",
                            stringify!($name), __case + 1, __config.cases
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a property test (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property test (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property test (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

//! A minimal, dependency-free stand-in for the `criterion` benchmarking crate.
//!
//! Implements the subset this workspace's benches use: [`Criterion`],
//! [`Criterion::benchmark_group`] with `sample_size` / `measurement_time`,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark runs its closure repeatedly until
//! either the configured sample count or the measurement-time budget is exhausted, and
//! the wall-clock mean per iteration is printed. No statistical analysis, outlier
//! rejection, or HTML reports — regressions are read off the printed means.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// The benchmark driver. One instance is threaded through every registered function by
/// [`criterion_group!`].
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 50, default_measurement_time: Duration::from_secs(3) }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        let measurement_time = self.default_measurement_time;
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size, measurement_time }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_bench(self.default_sample_size, self.default_measurement_time, |b| f(b));
        println!("{name:<50} {report}");
        self
    }
}

/// A named benchmark within a group, with an optional parameter, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{parameter}", name.into()) }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// A group of benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmark a closure under a name.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_bench(self.sample_size, self.measurement_time, |b| f(b));
        println!("{}/{:<40} {report}", self.name, id.into_benchmark_id().label);
        self
    }

    /// Benchmark a closure that receives a shared input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let report = run_bench(self.sample_size, self.measurement_time, |b| f(b, input));
        println!("{}/{:<40} {report}", self.name, id.into_benchmark_id().label);
        self
    }

    /// Finish the group (a no-op here; real criterion renders summary reports).
    pub fn finish(self) {}
}

/// Conversion into a [`BenchmarkId`], so `bench_function` accepts both plain strings and
/// explicit ids, like criterion does.
pub trait IntoBenchmarkId {
    /// Convert into an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Timing context handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    max_samples: usize,
}

impl Bencher {
    /// Measure a closure: run it repeatedly within the sample/time budget, recording the
    /// wall-clock duration of each run.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One untimed warm-up run.
        std::hint::black_box(f());
        let started = Instant::now();
        loop {
            let t = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t.elapsed());
            if self.samples.len() >= self.max_samples || started.elapsed() >= self.budget {
                break;
            }
        }
    }
}

/// One benchmark's printed result.
struct Report {
    mean: Duration,
    samples: usize,
}

impl Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "time: {:>12.3?}  (mean of {} samples)", self.mean, self.samples)
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(sample_size: usize, budget: Duration, mut f: F) -> Report {
    let mut bencher = Bencher {
        samples: Vec::new(),
        // Use a fraction of criterion's budget: the shim reports a mean, not a
        // distribution, so long measurement phases buy nothing.
        budget: budget / 3,
        max_samples: sample_size,
    };
    f(&mut bencher);
    let samples = bencher.samples.len().max(1);
    let total: Duration = bencher.samples.iter().sum();
    Report { mean: total / samples as u32, samples }
}

/// Register benchmark functions under a group name, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the named groups, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples_and_reports_mean() {
        let report =
            run_bench(5, Duration::from_millis(50), |b| b.iter(|| std::hint::black_box(1 + 1)));
        assert!(report.samples >= 1 && report.samples <= 5);
        assert!(report.mean < Duration::from_millis(50));
    }

    #[test]
    fn groups_chain_configuration() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).measurement_time(Duration::from_millis(30));
        group.bench_function(BenchmarkId::from_parameter("x"), |b| b.iter(|| 2 * 2));
        group.bench_with_input(BenchmarkId::new("f", 7), &7i32, |b, &n| b.iter(|| n * n));
        group.finish();
    }
}

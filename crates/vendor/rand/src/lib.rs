//! A minimal, dependency-free stand-in for the `rand` crate (0.8 API subset).
//!
//! The workspace uses random numbers only for deterministic, seeded generation
//! (synthetic repositories, synthetic buildcaches, solver tie-breaking), so this shim
//! implements exactly that surface: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] helpers `gen_range` / `gen_bool`.
//! The generator is SplitMix64 — high quality for this purpose, and stable across
//! platforms so seeded tests stay reproducible.

#![warn(missing_docs)]

use core::ops::Range;

/// Seedable random number generators (the subset of `rand::SeedableRng` in use).
pub trait SeedableRng: Sized {
    /// Create a generator from a `u64` seed. Identical seeds yield identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types that can be sampled uniformly from a `Range` (the subset of
/// `rand::distributions::uniform::SampleUniform` in use).
pub trait SampleUniform: Copy + PartialOrd {
    /// Map a raw 64-bit random value into `lo..hi`. Panics when the range is empty.
    fn sample_from(raw: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_from(raw: u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (raw as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Random value generation helpers (the subset of `rand::Rng` in use).
pub trait Rng {
    /// The next raw 64-bit value from the generator.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open, like `rand::Rng::gen_range`).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        let raw = self.next_u64();
        T::sample_from(raw, range.start, range.end)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 uniform mantissa bits, the same precision rand uses.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard (deterministic) RNG: SplitMix64.
    ///
    /// Not cryptographic — used for synthetic data generation and solver tie-breaking
    /// only, where stability across platforms matters more than stream quality.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): one 64-bit state, full period.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn identical_seeds_give_identical_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(1..6);
            assert!((1..6).contains(&v));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
            let i: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes_and_frequency() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}

//! `bench` — the perf-regression harness behind `BENCH_baseline_small.json` and the CI gate.
//!
//! ```text
//! cargo run --release -p bench --bin bench -- [--scale medium] [--full] \
//!     [--label after] [--out bench.json] [--compare BENCH_baseline_small.json] \
//!     [--threshold 1.25] [--counter-threshold 1.6] [--session-ratio 0.75] \
//!     [--patch-ratio 0.5]
//! ```
//!
//! Runs the hot-path benchmark groups of the paper's evaluation (the same groups as the
//! Criterion benches in `benches/paper.rs`, but in "quick mode": few samples, fixed
//! workloads) and writes a JSON report with, per benchmark, the wall-clock mean/min,
//! the per-stage times (setup / load / ground / solve), and the engine's
//! `GroundStats` / `SatStats` counters — plus, for the `unsat_diagnostics` group, the
//! unsat-core size, minimization rounds, and second-phase time, so the cost of
//! explanations is tracked like any other hot path.
//!
//! The `session_throughput` group measures the multi-shot service scenario: a mixed
//! request stream (including an unsatisfiable request) solved one-shot versus on a
//! long-lived `ConcretizerSession` (steady state: the base is ground once, outside
//! the measurement), sequentially and as a parallel batch. Its counters carry the
//! summed per-request stage times in microseconds (`ground_us`, `setup_us`,
//! `solve_us`) next to the usual engine counters.
//!
//! The `parallel_solve` group compares the same request mix on a serial session
//! against a session racing a two-worker solver portfolio per optimization level
//! (`--portfolio 2`), with the cross-request nogood store active in both; every
//! portfolio result is asserted byte-identical to the serial session's before it
//! counts, and the report carries the store's hit/transfer counters.
//!
//! The `base_update` group prices the live-update path behind `spack-solved`'s
//! `update` request: freezing a post-delta universe from scratch (`full_refreeze`)
//! versus absorbing a publish + yank round trip on a frozen session in place via
//! `apply_base_delta` (`incremental_patch`, digest-checked to round-trip), plus the
//! request latency on a patched session (`patched_solve`, every answer asserted
//! byte-identical to a fresh freeze of the same universe).
//!
//! `--compare <baseline>` turns the run into a **regression gate** (the verdict logic
//! lives in [`bench::gate`], where it is unit-tested): per benchmark group, the
//! summed means of the benches present in both reports are compared, and the process
//! exits non-zero when any group's mean regressed by more than the threshold (default
//! 1.25×, overridable via `--threshold` or the `BENCH_GATE_THRESHOLD` environment
//! variable for slower runner fleets). Next to the wall clock, the gate also compares
//! the machine-independent engine counters (grounder atoms/rules, solver
//! conflicts/propagations) with their own threshold (default 1.6×,
//! `--counter-threshold` / `BENCH_GATE_COUNTER_THRESHOLD`) — an algorithmic
//! regression trips this even on hardware whose absolute speed no longer matches the
//! machine that recorded the baseline. Groups absent from the committed baseline are
//! warned about and skipped, never failed, so adding a group needs no flag-day
//! baseline refresh. Finally, the gate asserts — within the current run, so no
//! baseline or machine speed is involved — that session-mode per-request grounding
//! stays below one-shot grounding by the gated ratio (default 0.75×,
//! `--session-ratio` / `BENCH_GATE_SESSION_RATIO`), and that one incremental base
//! patch stays below a full re-freeze by its own within-run ratio (default 0.5×,
//! `--patch-ratio` / `BENCH_GATE_PATCH_RATIO`). CI runs the small tier against
//! the committed `BENCH_baseline_small.json` and fails the job on regression.
//!
//! The workloads are sized for the *medium* tier by default — large enough that the
//! grounder's join/delta behaviour and the solver's propagation dominate, small enough
//! to finish in seconds.

use std::time::{Duration, Instant};

use asp::SolverConfig;
use bench::gate::{
    base_patch_gate, compare_against_baseline, parse_report, render_json, session_ground_gate,
    Record,
};
use bench::{
    chain_closure_program, service_buildcache, wide_join_program, workload_buildcache,
    workload_repo, Scale,
};
use spack_concretizer::{BaseDelta, ConcretizeError, Concretizer, ConcretizerSession, SiteConfig};
use spack_repo::builtin_repo;
use spack_store::BuildcacheConfig;

/// A stage breakdown plus engine counters describing one measured run.
type RunDetail = (Vec<(&'static str, f64)>, Vec<(&'static str, u64)>);

struct Runner {
    samples: usize,
    budget: Duration,
    records: Vec<Record>,
}

impl Runner {
    /// Run `f` repeatedly (up to the sample/budget limits), recording wall times; `f`
    /// returns the stage breakdown and counters describing the run.
    fn measure<F>(&mut self, group: &'static str, bench: &str, mut f: F)
    where
        F: FnMut() -> RunDetail,
    {
        let mut times = Vec::new();
        let mut detail = (Vec::new(), Vec::new());
        let started = Instant::now();
        while times.len() < self.samples {
            let t = Instant::now();
            detail = f();
            times.push(t.elapsed());
            if started.elapsed() >= self.budget && !times.is_empty() {
                break;
            }
        }
        // With enough samples, drop the single slowest one before averaging: the first
        // iteration routinely eats cold caches / page faults, and one descheduling
        // blip should not move a regression-gate verdict.
        if times.len() >= 5 {
            let slowest = times.iter().enumerate().max_by_key(|(_, t)| **t).map(|(i, _)| i);
            if let Some(i) = slowest {
                times.remove(i);
            }
        }
        let total: Duration = times.iter().sum();
        let mean = total / times.len() as u32;
        let min = *times.iter().min().unwrap();
        eprintln!(
            "  {group}/{bench:<28} mean {mean:>10.3?}  min {min:>10.3?}  ({} samples)",
            times.len()
        );
        self.records.push(Record {
            group,
            bench: bench.to_string(),
            samples: times.len(),
            mean,
            min,
            stages: detail.0,
            counters: detail.1,
        });
    }
}

fn asp_stats_detail(stats: &asp::Stats) -> RunDetail {
    let stages = vec![
        ("load", stats.load_time.as_secs_f64()),
        ("ground", stats.ground_time.as_secs_f64()),
        ("solve", stats.solve_time.as_secs_f64()),
    ];
    let counters = ground_and_sat_counters(stats);
    (stages, counters)
}

fn ground_and_sat_counters(stats: &asp::Stats) -> Vec<(&'static str, u64)> {
    vec![
        ("atoms", stats.ground.atoms as u64),
        ("rules", stats.ground.rules as u64),
        ("choices", stats.ground.choices as u64),
        ("minimize", stats.ground.minimize as u64),
        ("rounds", stats.ground.rounds as u64),
        ("variables", stats.variables as u64),
        ("clauses", stats.clauses as u64),
        ("conflicts", stats.conflicts),
        ("decisions", stats.decisions),
        ("propagations", stats.propagations),
        ("restarts", stats.restarts),
        ("learned", stats.learned),
        ("deleted", stats.deleted),
        ("models_examined", stats.models_examined),
        ("solver_runs", stats.solver_runs),
        ("loop_nogoods", stats.loop_nogoods),
    ]
}

fn concretize_detail(result: &spack_concretizer::Concretization) -> RunDetail {
    let mut stages = vec![("setup", result.timings.setup.as_secs_f64())];
    let (more, counters) = asp_stats_detail(&result.stats);
    stages.extend(more);
    (stages, counters)
}

/// Ground + enumerate a pure-ASP program, as in the Fig. 3 bench group.
fn ground_and_enumerate(program: &str, limit: usize) -> RunDetail {
    let mut ctl = asp::Control::new(SolverConfig::default());
    ctl.add_program(program).unwrap();
    ctl.ground().unwrap();
    let models = ctl.solve_models(limit).unwrap();
    std::hint::black_box(models.len());
    asp_stats_detail(ctl.stats())
}

/// Aggregate accounting for a mixed request stream (the `session_throughput` group):
/// summed stage times plus the engine counters the gate compares.
#[derive(Default)]
struct MixAggregate {
    specs: u64,
    unsat: u64,
    setup: Duration,
    ground: Duration,
    solve: Duration,
    atoms: u64,
    rules: u64,
    conflicts: u64,
    propagations: u64,
}

impl MixAggregate {
    fn add(&mut self, result: Result<spack_concretizer::Concretization, ConcretizeError>) {
        self.specs += 1;
        match result {
            Ok(r) => {
                self.setup += r.timings.setup;
                self.ground += r.timings.ground;
                self.solve += r.timings.solve;
                self.atoms += r.stats.ground.atoms as u64;
                self.rules += r.stats.ground.rules as u64;
                self.conflicts += r.stats.conflicts;
                self.propagations += r.stats.propagations;
            }
            Err(ConcretizeError::Unsatisfiable { stats, .. }) => {
                self.unsat += 1;
                self.setup += stats.phases.setup;
                self.ground += stats.phases.ground;
                self.solve += stats.phases.solve;
            }
            Err(other) => panic!("mix spec failed: {other}"),
        }
    }

    fn detail(&self, wall: Duration) -> RunDetail {
        let specs_per_sec = self.specs as f64 / wall.as_secs_f64().max(1e-9);
        (
            vec![
                ("setup", self.setup.as_secs_f64()),
                ("ground", self.ground.as_secs_f64()),
                ("solve", self.solve.as_secs_f64()),
                ("specs_per_sec", specs_per_sec),
            ],
            vec![
                ("specs", self.specs),
                ("unsat", self.unsat),
                ("setup_us", self.setup.as_micros() as u64),
                ("ground_us", self.ground.as_micros() as u64),
                ("solve_us", self.solve.as_micros() as u64),
                ("atoms", self.atoms),
                ("rules", self.rules),
                ("conflicts", self.conflicts),
                ("propagations", self.propagations),
            ],
        )
    }
}

/// Render the observable result of a request — DAG identity, objective vector,
/// reuse/build partition, or the full diagnostics — for the byte-equality
/// cross-check of the `parallel_solve` group (the same shape
/// `tests/portfolio_cross_check.rs` pins under proptest).
fn render_outcome(result: &Result<spack_concretizer::Concretization, ConcretizeError>) -> String {
    match result {
        Ok(c) => {
            let mut reused = c.reused.clone();
            reused.sort();
            let mut built = c.built.clone();
            built.sort();
            format!("OK\n{}\ncost={:?}\nreused={reused:?}\nbuilt={built:?}", c.spec, c.cost)
        }
        Err(ConcretizeError::Unsatisfiable { diagnostics, .. }) => {
            let lines: Vec<String> = diagnostics
                .iter()
                .map(|d| {
                    format!(
                        "{:?}|{}|{}|{}|{:?}",
                        d.severity, d.priority, d.code, d.message, d.provenance
                    )
                })
                .collect();
            format!("UNSAT\n{}", lines.join("\n"))
        }
        Err(e) => format!("ERR {e}"),
    }
}

/// Append a session's shared-nogood-store counters to a run detail, so the report
/// tracks how much cross-request clause transfer the mix actually exercises.
fn with_store_counters(detail: RunDetail, session: &ConcretizerSession<'_>) -> RunDetail {
    let (stages, mut counters) = detail;
    let s = session.stats();
    counters.push(("store_hits", s.store_hits));
    counters.push(("store_misses", s.store_misses));
    counters.push(("store_transferred", s.store_transferred));
    (stages, counters)
}

/// The request mix of the `session_throughput` group: a realistic stream across the
/// workload repo — small and large closures, the deep chain, a virtual-heavy app, and
/// one unsatisfiable request (whose single-grounding diagnostics both modes pay for).
fn session_mix(repo: &spack_repo::Repository) -> Vec<String> {
    ["zlib", "hdf5", "mpileaks", "chain-root", "vapp-00", "example", "bzip2", "zlib@9.9"]
        .iter()
        .filter(|s| {
            let name = s.split(['@', '~', '+', '^', ' ']).next().unwrap();
            repo.get(name).is_some()
        })
        .map(|s| s.to_string())
        .collect()
}

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };
    let scale = get("--scale").and_then(|s| Scale::parse(&s)).unwrap_or(Scale::Medium);
    let full = args.iter().any(|a| a == "--full");
    let label = get("--label").unwrap_or_else(|| "after".to_string());
    let out = get("--out").unwrap_or_else(|| "bench.json".to_string());
    let compare = get("--compare");
    // Threshold resolution: CLI flag > environment > default. The env overrides let a
    // slower (or noisier) runner fleet widen the wall-clock gate without editing the
    // workflow, while the counter gate keeps its own, machine-independent threshold.
    let env_threshold = |name: &str| std::env::var(name).ok().and_then(|t| t.parse().ok());
    let threshold: f64 = get("--threshold")
        .and_then(|t| t.parse().ok())
        .or_else(|| env_threshold("BENCH_GATE_THRESHOLD"))
        .unwrap_or(1.25);
    let counter_threshold: f64 = get("--counter-threshold")
        .and_then(|t| t.parse().ok())
        .or_else(|| env_threshold("BENCH_GATE_COUNTER_THRESHOLD"))
        .unwrap_or(1.6);
    let session_ratio: f64 = get("--session-ratio")
        .and_then(|t| t.parse().ok())
        .or_else(|| env_threshold("BENCH_GATE_SESSION_RATIO"))
        .unwrap_or(0.75);
    let patch_ratio: f64 = get("--patch-ratio")
        .and_then(|t| t.parse().ok())
        .or_else(|| env_threshold("BENCH_GATE_PATCH_RATIO"))
        .unwrap_or(0.5);

    // Gate runs (--compare) take more samples: the mean of 3 is too noisy to hold a
    // 1.25x threshold, and the gate's verdict must be worth trusting.
    let mut runner = Runner {
        samples: if full || compare.is_some() { 9 } else { 3 },
        budget: Duration::from_secs(if full || compare.is_some() { 90 } else { 40 }),
        records: Vec::new(),
    };
    eprintln!("# bench harness: scale {scale:?}, label {label:?}, quick={}", !full);
    let started = Instant::now();

    // ---- fig3_ground_and_enumerate: the grounder hot path --------------------------------
    let fig3 = r#"
        depends_on(a, b).
        depends_on(a, c).
        depends_on(b, d).
        depends_on(c, d).
        node(Dep) :- node(Pkg), depends_on(Pkg, Dep).
        1 { node(a); node(b) }.
    "#;
    runner.measure("fig3_ground_and_enumerate", "paper_example", || ground_and_enumerate(fig3, 8));
    let chain = chain_closure_program(256);
    runner.measure("fig3_ground_and_enumerate", "chain_closure_256", || {
        ground_and_enumerate(&chain, 4)
    });
    let wide = wide_join_program(1200);
    runner
        .measure("fig3_ground_and_enumerate", "wide_join_1200", || ground_and_enumerate(&wide, 2));

    // ---- fig7a_grounding: setup + ground on the curated repo ------------------------------
    let builtin = builtin_repo();
    let site = SiteConfig::quartz();
    for package in ["zlib", "hdf5"] {
        runner.measure("fig7a_grounding", package, || {
            let spec = spack_spec::parse_spec(package).unwrap();
            let (mut ctl, _info) = spack_concretizer::setup_problem(
                &builtin,
                &site,
                None,
                std::slice::from_ref(&spec),
                SolverConfig::default(),
            )
            .unwrap();
            ctl.add_program(spack_concretizer::CONCRETIZE_LP).unwrap();
            ctl.ground().unwrap();
            asp_stats_detail(ctl.stats())
        });
    }

    // ---- table2_optimization: the full optimizing solve -----------------------------------
    for package in ["example", "mpileaks"] {
        runner.measure("table2_optimization", package, || {
            let result =
                Concretizer::new(&builtin).with_site(site.clone()).concretize_str(package).unwrap();
            concretize_detail(&result)
        });
    }

    // ---- fig6_reuse: optimization against a buildcache ------------------------------------
    let builtin_cache = spack_store::synthesize_buildcache(
        &builtin,
        &BuildcacheConfig {
            architectures: vec![(
                spack_spec::Platform::Linux,
                "centos8".to_string(),
                "icelake".to_string(),
            )],
            compilers: vec![spack_spec::Compiler::new("gcc", "11.2.0")],
            replicas: 2,
            seed: 11,
        },
    );
    runner.measure("fig6_reuse", "hdf5_no_reuse", || {
        let result =
            Concretizer::new(&builtin).with_site(site.clone()).concretize_str("hdf5").unwrap();
        concretize_detail(&result)
    });
    runner.measure("fig6_reuse", "hdf5_with_reuse", || {
        let result = Concretizer::new(&builtin)
            .with_site(site.clone())
            .with_database(&builtin_cache)
            .concretize_str("hdf5")
            .unwrap();
        concretize_detail(&result)
    });

    // Medium-tier reuse: the synthetic workload repo with a populated buildcache.
    let medium = workload_repo(scale);
    let medium_cache = workload_buildcache(&medium, scale);
    let medium_roots = ["hdf5", "chain-root", "vapp-00"];
    for root in medium_roots {
        if medium.get(root).is_none() {
            continue;
        }
        runner.measure("fig6_reuse", &format!("{root}_{}_cache", scale_name(scale)), || {
            let result = Concretizer::new(&medium)
                .with_site(site.clone())
                .with_database(&medium_cache)
                .concretize_str(root)
                .unwrap();
            concretize_detail(&result)
        });
    }

    // ---- unsat_diagnostics: the single-grounding explanation pipeline ---------------------
    // Deliberately infeasible requests: wall-clock covers the failed solve plus core
    // minimization and the relaxed re-solve (which reuses the first solve's ground
    // program — second-phase grounding must be zero — and warm-starts from its loop
    // nogoods and provenance-safe learned clauses through the session clause cache);
    // the stages and counters expose the diagnostics cost per phase.
    for (name, spec) in [("version_pin", "zlib@9.9"), ("variant_pin", "netcdf-c ^hdf5~mpi")] {
        runner.measure("unsat_diagnostics", name, || {
            match Concretizer::new(&builtin).with_site(site.clone()).concretize_str(spec) {
                Ok(_) => panic!("{spec} must be unsatisfiable"),
                Err(ConcretizeError::Unsatisfiable { diagnostics, stats }) => {
                    assert_eq!(
                        stats.second_phase_ground,
                        Duration::ZERO,
                        "{spec}: the relaxed solve must not reground"
                    );
                    (
                        vec![
                            ("setup", stats.phases.setup.as_secs_f64()),
                            ("load", stats.phases.load.as_secs_f64()),
                            ("ground", stats.phases.ground.as_secs_f64()),
                            ("solve", stats.phases.solve.as_secs_f64()),
                            ("second_phase", stats.second_phase.as_secs_f64()),
                            ("second_phase_ground", stats.second_phase_ground.as_secs_f64()),
                        ],
                        vec![
                            ("core_size", stats.core_size as u64),
                            ("minimized_core", stats.minimized_core_size as u64),
                            ("minimize_rounds", stats.minimization_rounds),
                            ("diagnostics", diagnostics.len() as u64),
                            ("warm_clauses", stats.warm_clauses),
                        ],
                    )
                }
                Err(other) => panic!("{spec}: unexpected error {other}"),
            }
        });
    }

    // ---- session_throughput: multi-shot sessions vs one-shot solves -----------------------
    // The ROADMAP's service scenario: a mixed request stream against the workload repo
    // with its buildcache, answered (a) one-shot — full setup + load + ground per
    // request, (b) on a long-lived session, sequentially, and (c) on the same session
    // as a parallel batch. The session is built once, before measurement: the group
    // measures steady-state serving, and the base build cost is reported separately
    // below. Results are cross-checked: both modes must agree on which requests are
    // satisfiable.
    let mix = session_mix(&medium);
    let service_cache = service_buildcache(&medium, scale);
    let oneshot = Concretizer::new(&medium).with_site(site.clone()).with_database(&service_cache);
    let session: ConcretizerSession<'_> = oneshot.session().expect("session build");
    {
        let s = session.stats();
        eprintln!(
            "# session base: {} packages, {} facts, ground once in {:.2?} ({} frozen instances)",
            s.possible_packages,
            s.base_facts,
            s.base_setup + s.base_load + s.base_ground,
            s.frozen_instances
        );
    }
    runner.measure("session_throughput", "oneshot_mix", || {
        let started = Instant::now();
        let mut agg = MixAggregate::default();
        for spec in &mix {
            agg.add(oneshot.concretize_str(spec));
        }
        agg.detail(started.elapsed())
    });
    runner.measure("session_throughput", "session_mix", || {
        let started = Instant::now();
        let mut agg = MixAggregate::default();
        for spec in &mix {
            agg.add(session.concretize_str(spec));
        }
        agg.detail(started.elapsed())
    });
    let batch_requests: Vec<Vec<spack_spec::Spec>> =
        mix.iter().map(|s| vec![spack_spec::parse_spec(s).unwrap()]).collect();
    runner.measure("session_throughput", "session_batch", || {
        let started = Instant::now();
        let mut agg = MixAggregate::default();
        for result in session.concretize_batch(&batch_requests) {
            agg.add(result);
        }
        agg.detail(started.elapsed())
    });
    report_specs_per_sec(&runner.records);

    // ---- parallel_solve: portfolio racing on a long-lived session -------------------------
    // The same mix, on two fresh sessions with the cross-request nogood store on (its
    // default): one serial, one racing two diversified solver configurations per
    // optimization level (`--portfolio 2`). Every portfolio result is asserted
    // byte-identical to the serial session's render — the determinism contract is
    // part of the measurement, not a separate test. On a single-core runner the
    // portfolio bench mostly prices the racing overhead; CI's multi-thread matrix
    // and any multi-core machine show the speedup.
    let serial_solver =
        Concretizer::new(&medium).with_site(site.clone()).with_database(&service_cache);
    let serial_session: ConcretizerSession<'_> = serial_solver.session().expect("session build");
    let expected: Vec<String> =
        mix.iter().map(|s| render_outcome(&serial_session.concretize_str(s))).collect();
    runner.measure("parallel_solve", "serial_mix", || {
        let run = Instant::now();
        let mut agg = MixAggregate::default();
        for spec in &mix {
            agg.add(serial_session.concretize_str(spec));
        }
        with_store_counters(agg.detail(run.elapsed()), &serial_session)
    });
    let parallel_solver = Concretizer::new(&medium)
        .with_site(site.clone())
        .with_database(&service_cache)
        .with_portfolio(2);
    let parallel_session: ConcretizerSession<'_> =
        parallel_solver.session().expect("portfolio session build");
    runner.measure("parallel_solve", "portfolio2_mix", || {
        let run = Instant::now();
        let mut agg = MixAggregate::default();
        for (spec, want) in mix.iter().zip(&expected) {
            let result = parallel_session.concretize_str(spec);
            assert_eq!(
                &render_outcome(&result),
                want,
                "portfolio result for `{spec}` differs from the serial session"
            );
            agg.add(result);
        }
        with_store_counters(agg.detail(run.elapsed()), &parallel_session)
    });
    report_portfolio_ratio(&runner.records);

    // ---- batch_durable: checkpoint overhead of the durable batch pipeline -----------------
    // The same request mix, run through `durable::run_batch` on the long-lived session,
    // without and with a state directory. The checkpointed bench pays the full
    // durability tax — manifest validation, one atomic temp+rename per item record,
    // and the final DLQ regeneration — against a fresh state dir every iteration (a
    // reused dir would resume instead of solving). Target: <5% overhead on the
    // medium tier; the headline line below prints the measured ratio.
    let batch_items: Vec<(usize, String)> =
        mix.iter().enumerate().map(|(i, s)| (i + 1, s.clone())).collect();
    let batch_options = format!("bench batch_durable scale={}", scale_name(scale));
    let batch_detail = |outcome: &spack_concretizer::BatchOutcome| -> RunDetail {
        (
            Vec::new(),
            vec![
                ("items", outcome.records.len() as u64),
                ("solved", outcome.counters.solved),
                ("unsat", outcome.counters.unsat),
                ("dead_lettered", outcome.counters.dead_lettered),
            ],
        )
    };
    runner.measure("batch_durable", "mix_no_state", || {
        let outcome = spack_concretizer::durable::run_batch(&session, &batch_items, 0, None, false)
            .expect("batch without state dir");
        batch_detail(&outcome)
    });
    let mut state_seq = 0u64;
    runner.measure("batch_durable", "mix_checkpointed", || {
        state_seq += 1;
        let dir = std::env::temp_dir()
            .join(format!("spack-bench-durable-{}-{state_seq}", std::process::id()));
        let digest = spack_concretizer::durable::batch_digest(&batch_items, &batch_options);
        let state =
            spack_concretizer::StateDir::open(&dir, digest, batch_items.len(), &batch_options)
                .expect("open state dir");
        let outcome =
            spack_concretizer::durable::run_batch(&session, &batch_items, 0, Some(&state), false)
                .expect("checkpointed batch");
        let detail = batch_detail(&outcome);
        let _ = std::fs::remove_dir_all(&dir);
        detail
    });
    report_checkpoint_overhead(&runner.records);

    // ---- server_throughput: the spack-solved serving layer, in process --------------------
    // The same mix as NDJSON requests through `server::serve_pipe` — request parsing,
    // admission, shard routing, the bounded queue, and response rendering all included.
    // Each iteration starts a cold server (one base ground on its quartz shard) and
    // feeds the mix three times, so steady-state serving dominates without hiding the
    // startup cost. Two variants: one worker (fully serialized) and four workers
    // (out-of-order streaming through the shared sink).
    let request_lines: String = (0..3)
        .flat_map(|round| {
            mix.iter().enumerate().map(move |(i, s)| {
                format!("{{\"v\": 1, \"id\": \"{round}-{i}\", \"specs\": [\"{s}\"]}}\n")
            })
        })
        .collect();
    for (bench, workers) in [("pipe_1worker", 1usize), ("pipe_4workers", 4)] {
        runner.measure("server_throughput", bench, || {
            let config = spack_concretizer::server::ServerConfig { workers, ..Default::default() };
            let mut out: Vec<u8> = Vec::new();
            let stats = spack_concretizer::server::serve_pipe(
                &medium,
                Some(&service_cache),
                &config,
                std::io::Cursor::new(request_lines.clone()),
                &mut out,
            );
            let responses = out.iter().filter(|b| **b == b'\n').count();
            assert_eq!(responses as u64, stats.jobs_completed, "every request must be answered");
            (
                Vec::new(),
                vec![
                    ("responses", responses as u64),
                    ("jobs_completed", stats.jobs_completed),
                    ("shards", stats.shards.len() as u64),
                    ("base_grounds", stats.shards.iter().map(|s| s.base_grounds).sum()),
                ],
            )
        });
    }

    // ---- base_update: live base churn, in-place patch vs full re-freeze -------------------
    // The live-update path behind `spack-solved`'s `update` request: the repository
    // churns and a frozen session absorbs the delta in place via `apply_base_delta`
    // instead of being torn down. `full_refreeze` prices the teardown path — a fresh
    // session of a post-delta universe per sample. `incremental_patch` applies one
    // delta per patch path per sample: publishing an ancient version (the
    // additions-only semi-naive continuation) and yanking it again (the
    // removal-forced id-exact rebuild), asserting the paths taken and that the base
    // digest round-trips — so every sample does identical, state-restoring work.
    // `patched_solve` prices request latency on a session patched to a universe with
    // a new newest zlib, every answer asserted byte-identical to a fresh freeze of
    // the same universe — the observational-identity contract is part of the
    // measurement, as in `parallel_solve`. Under `--compare`, `base_patch_gate`
    // holds the per-patch mean below the re-freeze mean by `--patch-ratio`
    // (default 0.5x).
    let ancient = BaseDelta {
        add_versions: vec![("zlib".to_string(), "0.0.1".to_string())],
        ..BaseDelta::default()
    };
    let (ancient_repo, _) = ancient.apply(&medium, None);
    let publish = BaseDelta {
        add_versions: vec![("zlib".to_string(), "2.0".to_string())],
        ..BaseDelta::default()
    };
    let (published_repo, _) = publish.apply(&medium, None);
    runner.measure("base_update", "full_refreeze", || {
        let solver = Concretizer::new(&published_repo).with_site(site.clone());
        let fresh = solver.session().expect("re-freeze session build");
        let s = fresh.stats();
        (
            vec![
                ("setup", s.base_setup.as_secs_f64()),
                ("load", s.base_load.as_secs_f64()),
                ("ground", s.base_ground.as_secs_f64()),
            ],
            vec![
                ("base_facts", s.base_facts as u64),
                ("base_atoms", s.base_atoms as u64),
                ("frozen_instances", s.frozen_instances as u64),
            ],
        )
    });
    let patch_solver = Concretizer::new(&medium).with_site(site.clone());
    let mut patch_session = patch_solver.session().expect("patch session build");
    let original_digest = patch_session.base_digest();
    runner.measure("base_update", "incremental_patch", || {
        let published =
            patch_session.apply_base_delta(&ancient_repo, None).expect("ancient publish patch");
        assert!(!published.rebuilt, "an ancient publish must take the additions-only path");
        let yanked = patch_session.apply_base_delta(&medium, None).expect("yank patch");
        assert!(yanked.rebuilt, "a yank must take the rebuild path");
        assert_eq!(
            patch_session.base_digest(),
            original_digest,
            "publish + yank must round-trip the base digest"
        );
        (
            vec![
                ("publish", published.duration.as_secs_f64()),
                ("yank", yanked.duration.as_secs_f64()),
            ],
            vec![
                ("patches", 2),
                ("added_facts", published.added_facts as u64),
                ("removed_facts", yanked.removed_facts as u64),
                (
                    "rules_reinstantiated",
                    (published.rules_reinstantiated + yanked.rules_reinstantiated) as u64,
                ),
                ("rules_reused", (published.rules_reused + yanked.rules_reused) as u64),
                ("rebuilds", u64::from(published.rebuilt) + u64::from(yanked.rebuilt)),
            ],
        )
    });
    // Leave the session patched to the published universe and price its request
    // latency against the fresh-freeze oracle of that same universe.
    patch_session.apply_base_delta(&published_repo, None).expect("patch to published universe");
    let fresh_solver = Concretizer::new(&published_repo).with_site(site.clone());
    let fresh_published = fresh_solver.session().expect("fresh published session build");
    let expected_published: Vec<String> =
        mix.iter().map(|s| render_outcome(&fresh_published.concretize_str(s))).collect();
    runner.measure("base_update", "patched_solve", || {
        let run = Instant::now();
        let mut agg = MixAggregate::default();
        for (spec, want) in mix.iter().zip(&expected_published) {
            let result = patch_session.concretize_str(spec);
            assert_eq!(
                &render_outcome(&result),
                want,
                "patched session answer for `{spec}` differs from a fresh freeze"
            );
            agg.add(result);
        }
        agg.detail(run.elapsed())
    });
    report_patch_ratio(&runner.records);

    eprintln!("# harness finished in {:.1?}", started.elapsed());
    let json = render_json(&label, scale_name(scale), &runner.records);
    std::fs::write(&out, json).expect("write report");
    eprintln!("# wrote {out}");

    if let Some(baseline_path) = compare {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("# cannot read baseline {baseline_path}: {e}");
                return std::process::ExitCode::FAILURE;
            }
        };
        let baseline = parse_report(&text);
        if baseline.is_empty() {
            eprintln!("# baseline {baseline_path} contains no results");
            return std::process::ExitCode::FAILURE;
        }
        eprintln!(
            "# regression gate vs {baseline_path} (wall {threshold:.2}x, counters {counter_threshold:.2}x, session ground {session_ratio:.2}x, base patch {patch_ratio:.2}x)"
        );
        let wall =
            compare_against_baseline(&baseline, &runner.records, threshold, counter_threshold);
        let sess = session_ground_gate(&runner.records, session_ratio);
        let patch = base_patch_gate(&runner.records, patch_ratio);
        if let Err(e) = wall.and(sess).and(patch) {
            eprintln!("# FAIL: {e}");
            return std::process::ExitCode::FAILURE;
        }
        eprintln!("# gate passed");
    }
    std::process::ExitCode::SUCCESS
}

/// Print the headline specs/sec comparison of the session_throughput group.
fn report_specs_per_sec(records: &[Record]) {
    let rate = |bench: &str| -> Option<f64> {
        records.iter().find(|r| r.group == "session_throughput" && r.bench == bench).and_then(|r| {
            r.counters
                .iter()
                .find(|(n, _)| *n == "specs")
                .map(|&(_, specs)| specs as f64 / r.mean.as_secs_f64().max(1e-9))
        })
    };
    if let (Some(one), Some(sess), Some(batch)) =
        (rate("oneshot_mix"), rate("session_mix"), rate("session_batch"))
    {
        eprintln!(
            "# session_throughput: one-shot {one:.1} specs/s, session {sess:.1} specs/s \
             ({:.2}x), parallel batch {batch:.1} specs/s ({:.2}x)",
            sess / one,
            batch / one
        );
    }
}

/// Print the headline portfolio-vs-serial comparison of the parallel_solve group.
fn report_portfolio_ratio(records: &[Record]) {
    let mean = |bench: &str| -> Option<f64> {
        records
            .iter()
            .find(|r| r.group == "parallel_solve" && r.bench == bench)
            .map(|r| r.mean.as_secs_f64())
    };
    if let (Some(serial), Some(portfolio)) = (mean("serial_mix"), mean("portfolio2_mix")) {
        let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        eprintln!(
            "# parallel_solve: serial {:.1}ms, portfolio-2 {:.1}ms ({:.2}x, {cores} cores, \
             byte-identical results)",
            serial * 1e3,
            portfolio * 1e3,
            serial / portfolio.max(1e-9)
        );
    }
}

/// Print the headline checkpoint-overhead comparison of the batch_durable group.
fn report_checkpoint_overhead(records: &[Record]) {
    let mean = |bench: &str| -> Option<f64> {
        records
            .iter()
            .find(|r| r.group == "batch_durable" && r.bench == bench)
            .map(|r| r.mean.as_secs_f64())
    };
    if let (Some(plain), Some(durable)) = (mean("mix_no_state"), mean("mix_checkpointed")) {
        eprintln!(
            "# batch_durable: no state {:.1}ms, checkpointed {:.1}ms ({:+.1}% overhead, \
             target <5%)",
            plain * 1e3,
            durable * 1e3,
            (durable / plain.max(1e-9) - 1.0) * 100.0
        );
    }
}

/// Print the headline patch-vs-refreeze comparison of the base_update group.
fn report_patch_ratio(records: &[Record]) {
    let find = |bench: &str| records.iter().find(|r| r.group == "base_update" && r.bench == bench);
    if let (Some(patch), Some(refreeze)) = (find("incremental_patch"), find("full_refreeze")) {
        let patches = patch
            .counters
            .iter()
            .find(|(n, _)| *n == "patches")
            .map(|&(_, v)| v)
            .unwrap_or(1)
            .max(1);
        let per_patch = patch.mean.as_secs_f64() / patches as f64;
        let full = refreeze.mean.as_secs_f64();
        eprintln!(
            "# base_update: full re-freeze {:.1}ms, incremental patch {:.1}ms \
             ({:.2}x, target <=0.50x, byte-identical answers)",
            full * 1e3,
            per_patch * 1e3,
            per_patch / full.max(1e-9)
        );
    }
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Smoke => "smoke",
        Scale::Small => "small",
        Scale::Medium => "medium",
        Scale::Wide => "wide",
        Scale::Deep => "deep",
        Scale::ManyVirtuals => "manyvirtuals",
        Scale::Paper => "paper",
    }
}

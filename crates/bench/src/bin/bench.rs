//! `bench` — the perf-regression harness behind `BENCH_pr2.json` and the CI gate.
//!
//! ```text
//! cargo run --release -p bench --bin bench -- [--scale medium] [--full] \
//!     [--label after] [--out bench.json] [--compare BENCH_baseline_small.json] \
//!     [--threshold 1.25] [--counter-threshold 1.6]
//! ```
//!
//! Runs the hot-path benchmark groups of the paper's evaluation (the same groups as the
//! Criterion benches in `benches/paper.rs`, but in "quick mode": few samples, fixed
//! workloads) and writes a JSON report with, per benchmark, the wall-clock mean/min,
//! the per-stage times (setup / load / ground / solve), and the engine's
//! `GroundStats` / `SatStats` counters — plus, for the `unsat_diagnostics` group, the
//! unsat-core size, minimization rounds, and second-phase time, so the cost of
//! explanations is tracked like any other hot path.
//!
//! `--compare <baseline>` turns the run into a **regression gate**: per benchmark
//! group, the summed means of the benches present in both reports are compared, and
//! the process exits non-zero when any group's mean regressed by more than the
//! threshold (default 1.25×, overridable via `--threshold` or the
//! `BENCH_GATE_THRESHOLD` environment variable for slower runner fleets). Next to the
//! wall clock, the gate also compares the machine-independent engine counters
//! (grounder atoms/rules, solver conflicts/propagations) with their own threshold
//! (default 1.6×, `--counter-threshold` / `BENCH_GATE_COUNTER_THRESHOLD`) — an
//! algorithmic regression trips this even on hardware whose absolute speed no longer
//! matches the machine that recorded the baseline. CI runs the small tier against the
//! committed `BENCH_baseline_small.json` and fails the job on regression.
//!
//! The workloads are sized for the *medium* tier by default — large enough that the
//! grounder's join/delta behaviour and the solver's propagation dominate, small enough
//! to finish in seconds.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use asp::SolverConfig;
use bench::{chain_closure_program, wide_join_program, workload_buildcache, workload_repo, Scale};
use spack_concretizer::{Concretizer, SiteConfig};
use spack_repo::builtin_repo;
use spack_store::BuildcacheConfig;

/// A stage breakdown plus engine counters describing one measured run.
type RunDetail = (Vec<(&'static str, f64)>, Vec<(&'static str, u64)>);

/// One measured benchmark: identity, wall-clock, stage breakdown, engine counters.
struct Record {
    group: &'static str,
    bench: String,
    samples: usize,
    mean: Duration,
    min: Duration,
    /// (stage name, seconds) pairs, from the last sample.
    stages: Vec<(&'static str, f64)>,
    /// (counter name, value) pairs, from the last sample.
    counters: Vec<(&'static str, u64)>,
}

struct Runner {
    samples: usize,
    budget: Duration,
    records: Vec<Record>,
}

impl Runner {
    /// Run `f` repeatedly (up to the sample/budget limits), recording wall times; `f`
    /// returns the stage breakdown and counters describing the run.
    fn measure<F>(&mut self, group: &'static str, bench: &str, mut f: F)
    where
        F: FnMut() -> RunDetail,
    {
        let mut times = Vec::new();
        let mut detail = (Vec::new(), Vec::new());
        let started = Instant::now();
        while times.len() < self.samples {
            let t = Instant::now();
            detail = f();
            times.push(t.elapsed());
            if started.elapsed() >= self.budget && !times.is_empty() {
                break;
            }
        }
        // With enough samples, drop the single slowest one before averaging: the first
        // iteration routinely eats cold caches / page faults, and one descheduling
        // blip should not move a regression-gate verdict.
        if times.len() >= 5 {
            let slowest = times.iter().enumerate().max_by_key(|(_, t)| **t).map(|(i, _)| i);
            if let Some(i) = slowest {
                times.remove(i);
            }
        }
        let total: Duration = times.iter().sum();
        let mean = total / times.len() as u32;
        let min = *times.iter().min().unwrap();
        eprintln!(
            "  {group}/{bench:<28} mean {mean:>10.3?}  min {min:>10.3?}  ({} samples)",
            times.len()
        );
        self.records.push(Record {
            group,
            bench: bench.to_string(),
            samples: times.len(),
            mean,
            min,
            stages: detail.0,
            counters: detail.1,
        });
    }
}

fn asp_stats_detail(stats: &asp::Stats) -> RunDetail {
    let stages = vec![
        ("load", stats.load_time.as_secs_f64()),
        ("ground", stats.ground_time.as_secs_f64()),
        ("solve", stats.solve_time.as_secs_f64()),
    ];
    let counters = ground_and_sat_counters(stats);
    (stages, counters)
}

fn ground_and_sat_counters(stats: &asp::Stats) -> Vec<(&'static str, u64)> {
    vec![
        ("atoms", stats.ground.atoms as u64),
        ("rules", stats.ground.rules as u64),
        ("choices", stats.ground.choices as u64),
        ("minimize", stats.ground.minimize as u64),
        ("rounds", stats.ground.rounds as u64),
        ("variables", stats.variables as u64),
        ("clauses", stats.clauses as u64),
        ("conflicts", stats.conflicts),
        ("decisions", stats.decisions),
        ("propagations", stats.propagations),
        ("restarts", stats.restarts),
        ("learned", stats.learned),
        ("deleted", stats.deleted),
        ("models_examined", stats.models_examined),
        ("solver_runs", stats.solver_runs),
        ("loop_nogoods", stats.loop_nogoods),
    ]
}

fn concretize_detail(result: &spack_concretizer::Concretization) -> RunDetail {
    let mut stages = vec![("setup", result.timings.setup.as_secs_f64())];
    let (more, counters) = asp_stats_detail(&result.stats);
    stages.extend(more);
    (stages, counters)
}

/// Ground + enumerate a pure-ASP program, as in the Fig. 3 bench group.
fn ground_and_enumerate(program: &str, limit: usize) -> RunDetail {
    let mut ctl = asp::Control::new(SolverConfig::default());
    ctl.add_program(program).unwrap();
    ctl.ground().unwrap();
    let models = ctl.solve_models(limit).unwrap();
    std::hint::black_box(models.len());
    asp_stats_detail(ctl.stats())
}

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };
    let scale = get("--scale").and_then(|s| Scale::parse(&s)).unwrap_or(Scale::Medium);
    let full = args.iter().any(|a| a == "--full");
    let label = get("--label").unwrap_or_else(|| "after".to_string());
    let out = get("--out").unwrap_or_else(|| "bench.json".to_string());
    let compare = get("--compare");
    // Threshold resolution: CLI flag > environment > default. The env overrides let a
    // slower (or noisier) runner fleet widen the wall-clock gate without editing the
    // workflow, while the counter gate keeps its own, machine-independent threshold.
    let env_threshold = |name: &str| std::env::var(name).ok().and_then(|t| t.parse().ok());
    let threshold: f64 = get("--threshold")
        .and_then(|t| t.parse().ok())
        .or_else(|| env_threshold("BENCH_GATE_THRESHOLD"))
        .unwrap_or(1.25);
    let counter_threshold: f64 = get("--counter-threshold")
        .and_then(|t| t.parse().ok())
        .or_else(|| env_threshold("BENCH_GATE_COUNTER_THRESHOLD"))
        .unwrap_or(1.6);

    // Gate runs (--compare) take more samples: the mean of 3 is too noisy to hold a
    // 1.25x threshold, and the gate's verdict must be worth trusting.
    let mut runner = Runner {
        samples: if full || compare.is_some() { 9 } else { 3 },
        budget: Duration::from_secs(if full || compare.is_some() { 60 } else { 25 }),
        records: Vec::new(),
    };
    eprintln!("# bench harness: scale {scale:?}, label {label:?}, quick={}", !full);
    let started = Instant::now();

    // ---- fig3_ground_and_enumerate: the grounder hot path --------------------------------
    let fig3 = r#"
        depends_on(a, b).
        depends_on(a, c).
        depends_on(b, d).
        depends_on(c, d).
        node(Dep) :- node(Pkg), depends_on(Pkg, Dep).
        1 { node(a); node(b) }.
    "#;
    runner.measure("fig3_ground_and_enumerate", "paper_example", || ground_and_enumerate(fig3, 8));
    let chain = chain_closure_program(256);
    runner.measure("fig3_ground_and_enumerate", "chain_closure_256", || {
        ground_and_enumerate(&chain, 4)
    });
    let wide = wide_join_program(1200);
    runner
        .measure("fig3_ground_and_enumerate", "wide_join_1200", || ground_and_enumerate(&wide, 2));

    // ---- fig7a_grounding: setup + ground on the curated repo ------------------------------
    let builtin = builtin_repo();
    let site = SiteConfig::quartz();
    for package in ["zlib", "hdf5"] {
        runner.measure("fig7a_grounding", package, || {
            let spec = spack_spec::parse_spec(package).unwrap();
            let (mut ctl, _info) = spack_concretizer::setup_problem(
                &builtin,
                &site,
                None,
                std::slice::from_ref(&spec),
                SolverConfig::default(),
            )
            .unwrap();
            ctl.add_program(spack_concretizer::CONCRETIZE_LP).unwrap();
            ctl.ground().unwrap();
            asp_stats_detail(ctl.stats())
        });
    }

    // ---- table2_optimization: the full optimizing solve -----------------------------------
    for package in ["example", "mpileaks"] {
        runner.measure("table2_optimization", package, || {
            let result =
                Concretizer::new(&builtin).with_site(site.clone()).concretize_str(package).unwrap();
            concretize_detail(&result)
        });
    }

    // ---- fig6_reuse: optimization against a buildcache ------------------------------------
    let builtin_cache = spack_store::synthesize_buildcache(
        &builtin,
        &BuildcacheConfig {
            architectures: vec![(
                spack_spec::Platform::Linux,
                "centos8".to_string(),
                "icelake".to_string(),
            )],
            compilers: vec![spack_spec::Compiler::new("gcc", "11.2.0")],
            replicas: 2,
            seed: 11,
        },
    );
    runner.measure("fig6_reuse", "hdf5_no_reuse", || {
        let result =
            Concretizer::new(&builtin).with_site(site.clone()).concretize_str("hdf5").unwrap();
        concretize_detail(&result)
    });
    runner.measure("fig6_reuse", "hdf5_with_reuse", || {
        let result = Concretizer::new(&builtin)
            .with_site(site.clone())
            .with_database(&builtin_cache)
            .concretize_str("hdf5")
            .unwrap();
        concretize_detail(&result)
    });

    // Medium-tier reuse: the synthetic workload repo with a populated buildcache.
    let medium = workload_repo(scale);
    let medium_cache = workload_buildcache(&medium, scale);
    let medium_roots = ["hdf5", "chain-root", "vapp-00"];
    for root in medium_roots {
        if medium.get(root).is_none() {
            continue;
        }
        runner.measure("fig6_reuse", &format!("{root}_{}_cache", scale_name(scale)), || {
            let result = Concretizer::new(&medium)
                .with_site(site.clone())
                .with_database(&medium_cache)
                .concretize_str(root)
                .unwrap();
            concretize_detail(&result)
        });
    }

    // ---- unsat_diagnostics: the single-grounding explanation pipeline ---------------------
    // Deliberately infeasible requests: wall-clock covers the failed solve plus core
    // minimization and the relaxed re-solve (which reuses the first solve's ground
    // program — second-phase grounding must be zero); the stages and counters expose
    // the diagnostics cost per phase.
    for (name, spec) in [("version_pin", "zlib@9.9"), ("variant_pin", "netcdf-c ^hdf5~mpi")] {
        runner.measure("unsat_diagnostics", name, || {
            match Concretizer::new(&builtin).with_site(site.clone()).concretize_str(spec) {
                Ok(_) => panic!("{spec} must be unsatisfiable"),
                Err(spack_concretizer::ConcretizeError::Unsatisfiable { diagnostics, stats }) => {
                    assert_eq!(
                        stats.second_phase_ground,
                        Duration::ZERO,
                        "{spec}: the relaxed solve must not reground"
                    );
                    (
                        vec![
                            ("setup", stats.phases.setup.as_secs_f64()),
                            ("load", stats.phases.load.as_secs_f64()),
                            ("ground", stats.phases.ground.as_secs_f64()),
                            ("solve", stats.phases.solve.as_secs_f64()),
                            ("second_phase", stats.second_phase.as_secs_f64()),
                            ("second_phase_ground", stats.second_phase_ground.as_secs_f64()),
                        ],
                        vec![
                            ("core_size", stats.core_size as u64),
                            ("minimized_core", stats.minimized_core_size as u64),
                            ("minimize_rounds", stats.minimization_rounds),
                            ("diagnostics", diagnostics.len() as u64),
                        ],
                    )
                }
                Err(other) => panic!("{spec}: unexpected error {other}"),
            }
        });
    }

    eprintln!("# harness finished in {:.1?}", started.elapsed());
    let json = render_json(&label, scale, &runner.records);
    std::fs::write(&out, json).expect("write report");
    eprintln!("# wrote {out}");

    if let Some(baseline_path) = compare {
        return compare_against_baseline(
            &baseline_path,
            &runner.records,
            threshold,
            counter_threshold,
        );
    }
    std::process::ExitCode::SUCCESS
}

/// The engine counters the gate tracks next to wall clock: grounder instantiation
/// work (possible atoms, ground rules) and solver search work (conflicts,
/// propagations). Unlike wall clock these are machine-independent — the committed
/// baseline stays meaningful even when the runner fleet's absolute speed drifts — so a
/// regression here is a real algorithmic change, not scheduler noise.
const GATED_COUNTERS: [&str; 4] = ["atoms", "rules", "conflicts", "propagations"];

/// One baseline record: the mean wall clock plus the engine counters.
struct BaselineEntry {
    mean_s: f64,
    counters: std::collections::BTreeMap<String, u64>,
}

/// The regression gate: compare this run's per-group mean against a baseline report,
/// failing (non-zero exit) when any group regressed beyond `threshold` — and, next to
/// the wall-clock check, compare the [`GATED_COUNTERS`] deltas against
/// `counter_threshold` so regressions show even when the runner fleet's absolute speed
/// differs from the machine that recorded the baseline. Only benches present in both
/// reports count, so adding or retiring benches never trips the gate; counters absent
/// from the baseline (older reports) are skipped the same way.
fn compare_against_baseline(
    baseline_path: &str,
    records: &[Record],
    threshold: f64,
    counter_threshold: f64,
) -> std::process::ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("# cannot read baseline {baseline_path}: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let baseline = parse_report(&text);
    if baseline.is_empty() {
        eprintln!("# baseline {baseline_path} contains no results");
        return std::process::ExitCode::FAILURE;
    }
    // Sum means per group over the benches common to both reports.
    let mut groups: Vec<&str> = Vec::new();
    for r in records {
        if !groups.contains(&r.group) {
            groups.push(r.group);
        }
    }
    eprintln!(
        "# regression gate vs {baseline_path} (wall {threshold:.2}x, counters {counter_threshold:.2}x)"
    );
    let mut failed = false;
    for group in groups {
        let mut current_sum = 0.0;
        let mut baseline_sum = 0.0;
        let mut compared = 0;
        // Per gated counter: summed (current, baseline) over benches carrying it.
        let mut counter_sums: Vec<(u64, u64)> = vec![(0, 0); GATED_COUNTERS.len()];
        for r in records.iter().filter(|r| r.group == group) {
            let Some(base) = baseline.get(&(group.to_string(), r.bench.clone())) else {
                continue;
            };
            current_sum += r.mean.as_secs_f64();
            baseline_sum += base.mean_s;
            compared += 1;
            for (ci, name) in GATED_COUNTERS.iter().enumerate() {
                let (Some(&base_v), Some(&(_, cur_v))) =
                    (base.counters.get(*name), r.counters.iter().find(|(n, _)| n == name))
                else {
                    continue;
                };
                counter_sums[ci].0 += cur_v;
                counter_sums[ci].1 += base_v;
            }
        }
        if compared == 0 || baseline_sum <= 0.0 {
            eprintln!("  {group:<28} (new group, no baseline — skipped)");
            continue;
        }
        let ratio = current_sum / baseline_sum;
        let verdict = if ratio > threshold { "REGRESSED" } else { "ok" };
        eprintln!(
            "  {group:<28} {compared} benches  baseline {:.4}s  current {:.4}s  ratio {ratio:.2}x  {verdict}",
            baseline_sum, current_sum
        );
        if ratio > threshold {
            failed = true;
        }
        let mut gated = 0;
        for (ci, name) in GATED_COUNTERS.iter().enumerate() {
            let (cur, base) = counter_sums[ci];
            if base == 0 && !baseline_has_counter(&baseline, group, records, name) {
                continue; // counter absent from the baseline report
            }
            gated += 1;
            // Ratio gate with a small absolute slack: tiny bases (a zero- or
            // double-digit conflict count) make pure ratios meaningless, while a
            // zero-to-millions jump must still fail — so a counter regresses when it
            // exceeds BOTH the ratio threshold and base + 256.
            let limit = (base as f64 * counter_threshold).max(base as f64 + 256.0);
            if cur as f64 > limit {
                let cratio = cur as f64 / (base.max(1)) as f64;
                eprintln!(
                    "  {group:<28}   counter {name}: baseline {base}  current {cur}  ratio {cratio:.2}x  REGRESSED"
                );
                failed = true;
            }
        }
        let current_has_gated = records.iter().any(|r| {
            r.group == group && r.counters.iter().any(|(n, v)| GATED_COUNTERS.contains(n) && *v > 0)
        });
        if gated == 0 && current_has_gated {
            // Loud, because silence here would quietly disable the machine-
            // independent half of the gate (e.g. a baseline whose counters object
            // failed to parse after a format change). Groups that never expose the
            // gated counters (like unsat_diagnostics) stay quiet.
            eprintln!(
                "  {group:<28}   WARNING: baseline carries no gated counters — counter gate \
                 inactive for this group"
            );
        }
    }
    if failed {
        eprintln!(
            "# FAIL: at least one group regressed beyond the wall-clock ({threshold:.2}x) or \
             counter ({counter_threshold:.2}x) threshold"
        );
        std::process::ExitCode::FAILURE
    } else {
        eprintln!("# gate passed");
        std::process::ExitCode::SUCCESS
    }
}

/// Does the baseline carry `name` (even at value zero) for any bench of `group` that
/// this run also measured? Distinguishes "recorded as zero" (gate with the absolute
/// slack) from "absent from the report" (skip).
fn baseline_has_counter(
    baseline: &std::collections::BTreeMap<(String, String), BaselineEntry>,
    group: &str,
    records: &[Record],
    name: &str,
) -> bool {
    records.iter().filter(|r| r.group == group).any(|r| {
        baseline
            .get(&(group.to_string(), r.bench.clone()))
            .is_some_and(|b| b.counters.contains_key(name))
    })
}

/// Parse a report produced by [`render_json`] into `(group, bench) ->`
/// [`BaselineEntry`]. The format is line-oriented (one result object per line), so a
/// small field scanner is enough — the workspace deliberately has no JSON dependency.
fn parse_report(text: &str) -> std::collections::BTreeMap<(String, String), BaselineEntry> {
    let mut map = std::collections::BTreeMap::new();
    for line in text.lines() {
        let (Some(group), Some(bench), Some(mean_s)) = (
            json_str_field(line, "group"),
            json_str_field(line, "bench"),
            json_num_field(line, "mean_s"),
        ) else {
            continue;
        };
        map.insert((group, bench), BaselineEntry { mean_s, counters: json_counters(line) });
    }
    map
}

/// Extract the `"counters": {"name": value, ...}` object of a single-line result.
fn json_counters(line: &str) -> std::collections::BTreeMap<String, u64> {
    let mut map = std::collections::BTreeMap::new();
    let Some(start) = line.find("\"counters\": {") else {
        return map;
    };
    let body = &line[start + "\"counters\": {".len()..];
    let Some(end) = body.find('}') else {
        return map;
    };
    for pair in body[..end].split(',') {
        let mut halves = pair.splitn(2, ':');
        let (Some(key), Some(value)) = (halves.next(), halves.next()) else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if let Ok(v) = value.trim().parse::<u64>() {
            map.insert(key.to_string(), v);
        }
    }
    map
}

/// Extract `"key": "value"` from a single-line JSON object rendering.
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_string())
}

/// Extract `"key": number` from a single-line JSON object rendering.
fn json_num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Smoke => "smoke",
        Scale::Small => "small",
        Scale::Medium => "medium",
        Scale::Wide => "wide",
        Scale::Deep => "deep",
        Scale::ManyVirtuals => "manyvirtuals",
        Scale::Paper => "paper",
    }
}

fn render_json(label: &str, scale: Scale, records: &[Record]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    writeln!(s, "  \"pr\": 4,").unwrap();
    writeln!(s, "  \"label\": \"{label}\",").unwrap();
    writeln!(s, "  \"scale\": \"{}\",", scale_name(scale)).unwrap();
    s.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        s.push_str("    {");
        write!(
            s,
            "\"group\": \"{}\", \"bench\": \"{}\", \"samples\": {}, \"mean_s\": {:.6}, \"min_s\": {:.6}",
            r.group,
            r.bench,
            r.samples,
            r.mean.as_secs_f64(),
            r.min.as_secs_f64()
        )
        .unwrap();
        s.push_str(", \"stages\": {");
        for (j, (name, secs)) in r.stages.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            write!(s, "\"{name}\": {secs:.6}").unwrap();
        }
        s.push_str("}, \"counters\": {");
        for (j, (name, value)) in r.counters.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            write!(s, "\"{name}\": {value}").unwrap();
        }
        s.push_str("}}");
        s.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

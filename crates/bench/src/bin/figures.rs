//! Regenerate the data behind every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p bench --bin figures -- [--scale smoke|small|paper] [--only fig7d,...]
//! ```
//!
//! For each experiment the harness prints the same rows/series the paper reports (scatter
//! rows for Figures 7a–7c, CDF series for Figures 7d–7h, the build/reuse counts of
//! Fig. 6, the criteria of Table II). Absolute times are not expected to match the
//! paper's (the substrate is a from-scratch ASP engine, not clingo on an LLNL cluster);
//! the *shape* of each result is what is reproduced — see EXPERIMENTS.md.

use std::collections::BTreeSet;
use std::time::Instant;

use rayon::prelude::*;

use asp::{Preset, SolverConfig};
use bench::{cdf, measure_one, summarize, workload_buildcache, workload_repo, Scale, SolveRecord};
use spack_concretizer::{Concretizer, GreedyConcretizer, SiteConfig, CRITERIA};
use spack_repo::Repository;
use spack_spec::parse_spec;
use spack_store::{BuildcacheConfig, Database};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| Scale::parse(s))
        .unwrap_or(Scale::Smoke);
    let only: Option<BTreeSet<String>> = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').map(|x| x.trim().to_string()).collect());
    let want = |id: &str| only.as_ref().map(|o| o.contains(id)).unwrap_or(true);

    println!("# spack-asp-rs figure harness (scale: {scale:?})");
    let started = Instant::now();

    let repo = workload_repo(scale);
    let site = SiteConfig::quartz();
    println!(
        "# repository: {} packages, {} mpi providers",
        repo.len(),
        repo.providers("mpi").len()
    );

    if want("table1") {
        table1();
    }
    if want("table2") {
        table2(&repo, &site);
    }
    if want("fig3") {
        fig3();
    }
    if want("fig6") {
        fig6(&repo, &site);
    }
    let sweep: Vec<SolveRecord> =
        if want("fig7a") || want("fig7b") || want("fig7c") || want("fig7h") {
            sweep_all_packages(&repo, &site, scale)
        } else {
            Vec::new()
        };
    if want("fig7a") {
        scatter("fig7a", "ground time vs possible dependencies", &sweep, |r| {
            r.ground.as_secs_f64()
        });
    }
    if want("fig7b") {
        scatter("fig7b", "solve time vs possible dependencies", &sweep, |r| r.solve.as_secs_f64());
    }
    if want("fig7c") {
        scatter("fig7c", "total time vs possible dependencies", &sweep, |r| r.total.as_secs_f64());
    }
    if want("fig7d") {
        fig7d(&repo, &site, scale);
    }
    if want("fig7e") || want("fig7f") || want("fig7g") {
        fig7efg(&repo, &site, scale);
    }
    if want("fig7h") {
        fig7h(&repo, &site, &sweep);
    }

    println!("\n# harness finished in {:.1?}", started.elapsed());
}

/// Table I: the spec sigil grammar.
fn table1() {
    println!("\n## Table I — spec sigils");
    let rows = [
        ("%", "hdf5%gcc", "Use a particular compiler"),
        ("@", "hdf5@1.10.2", "Require version(s)"),
        ("%@", "hdf5%gcc@10.3.1", "Require compiler version(s)"),
        ("+", "hdf5+mpi", "Enable variant"),
        ("~", "hdf5~mpi", "Disable variant"),
        ("key=value", "hdf5 mpi=true", "Require a variant value"),
        ("key=value", "hdf5 api=default", "Require a multi-valued variant value"),
        ("key=value", "hdf5 target=skylake", "Require a build target"),
        ("^", "hdf5@1.10.2 ^zlib%gcc ^cmake target=aarch64", "Constrain dependencies"),
    ];
    for (sigil, example, meaning) in rows {
        let parsed = parse_spec(example).expect("table I specs parse");
        let round_trip = parse_spec(&parsed.to_string()).expect("round trip");
        assert_eq!(parsed, round_trip);
        println!("  {sigil:<10} {example:<45} {meaning}  [parse+round-trip ok]");
    }
}

/// Table II: the optimization criteria and a concrete objective vector.
fn table2(repo: &Repository, site: &SiteConfig) {
    println!("\n## Table II — optimization criteria (priority order)");
    for c in CRITERIA {
        println!(
            "  {:>2}. {:<42} [reuse bucket prio {:>3}, build bucket prio {:>3}]",
            c.rank,
            c.description,
            c.reuse_priority(),
            c.build_priority()
        );
    }
    let result = Concretizer::new(repo)
        .with_site(site.clone())
        .concretize_str("hdf5")
        .expect("hdf5 concretizes");
    println!("  objective vector for `hdf5` (priority, value), non-zero entries:");
    for (priority, value) in result.cost.iter().filter(|(_, v)| *v != 0) {
        let (bucket, desc) = spack_concretizer::describe_priority(*priority);
        println!("    @{priority:<4} {value:>4}  [{bucket}] {desc}");
    }
}

/// Fig. 3: grounding and solving the four-fact example program; exactly two answer sets.
fn fig3() {
    println!("\n## Fig. 3 — grounding and solving");
    let mut ctl = asp::Control::new(SolverConfig::default());
    ctl.add_program(
        r#"
        depends_on(a, b).
        depends_on(a, c).
        depends_on(b, d).
        depends_on(c, d).
        node(Dep) :- node(Pkg), depends_on(Pkg, Dep).
        1 { node(a); node(b) }.
        "#,
    )
    .unwrap();
    ctl.ground().unwrap();
    let models = ctl.solve_models(16).unwrap();
    let mut sets: Vec<Vec<String>> = models
        .iter()
        .map(|m| {
            let mut v: Vec<String> = m.with_pred("node").map(|args| args[0].as_str()).collect();
            v.sort();
            v
        })
        .collect();
    sets.sort();
    sets.dedup();
    println!(
        "  ground program: {} atoms, {} rules",
        ctl.stats().ground.atoms,
        ctl.stats().ground.rules
    );
    for (i, set) in sets.iter().enumerate() {
        println!("  Answer {}: node({})", i + 1, set.join("), node("));
    }
    assert_eq!(sets.len(), 2, "the paper's example has exactly two stable models");
}

/// Fig. 4 / Fig. 6: hash-based reuse vs. reuse as an optimization target.
fn fig6(repo: &Repository, site: &SiteConfig) {
    println!("\n## Fig. 6 — concretization with and without reuse (hdf5)");
    // A buildcache of the stack as previously installed: same toolchain, slightly older
    // versions, hdf5 itself absent — configurations close to, but not identical to, what
    // a fresh solve would choose (so exact-hash reuse misses).
    let cache = spack_store::synthesize_buildcache(
        repo,
        &BuildcacheConfig {
            architectures: vec![(
                spack_spec::Platform::Linux,
                site.default_os().name().to_string(),
                "icelake".to_string(),
            )],
            compilers: vec![site.default_compiler().clone()],
            replicas: 2,
            seed: 11,
        },
    )
    .filter(|r| {
        r.name != "hdf5"
            && repo
                .get(&r.name)
                .and_then(|p| p.preferred_version())
                .map(|v| *v != r.version)
                .unwrap_or(true)
    });
    println!("  buildcache: {} installed packages", cache.len());

    // (a) hash-based reuse: concretize without the cache, then query exact hashes.
    let plain = Concretizer::new(repo)
        .with_site(site.clone())
        .concretize_str("hdf5")
        .expect("hdf5 concretizes");
    let hits =
        (0..plain.spec.len()).filter(|&i| cache.query_exact(&plain.spec, i).is_some()).count();
    println!(
        "  fig6a (hash-based reuse): {:>2} packages, {:>2} hash hits, {:>2} new installs",
        plain.spec.len(),
        hits,
        plain.spec.len() - hits
    );

    // (b) solving for reuse.
    let reused = Concretizer::new(repo)
        .with_site(site.clone())
        .with_database(&cache)
        .concretize_str("hdf5")
        .expect("hdf5 concretizes with reuse");
    println!(
        "  fig6b (reuse optimization): {:>2} packages, {:>2} reused, {:>2} to build ({})",
        reused.spec.len(),
        reused.reuse_count(),
        reused.build_count(),
        reused.built.join(", ")
    );
    assert!(reused.reuse_count() > hits, "reuse optimization must beat exact-hash matching");
}

/// The per-package sweep behind Figures 7a–7c and 7h.
fn sweep_all_packages(repo: &Repository, site: &SiteConfig, scale: Scale) -> Vec<SolveRecord> {
    let mut names: Vec<String> = repo.names().map(|s| s.to_string()).collect();
    // Deterministic spread across the size spectrum: sort by possible-dependency count
    // and take every k-th package up to the sweep limit.
    names.sort_by_key(|n| repo.possible_dependency_count(n));
    let limit = scale.sweep_limit().min(names.len());
    let step = (names.len() / limit.max(1)).max(1);
    let selected: Vec<String> = names.iter().step_by(step).take(limit).cloned().collect();
    println!("\n# sweeping {} packages (of {})", selected.len(), names.len());
    selected
        .par_iter()
        .map(|name| measure_one(repo, site, None, SolverConfig::default(), name))
        .collect()
}

fn scatter(id: &str, title: &str, records: &[SolveRecord], metric: impl Fn(&SolveRecord) -> f64) {
    println!("\n## {id} — {title}");
    println!("  package, possible_dependencies, seconds");
    let mut rows: Vec<&SolveRecord> = records.iter().filter(|r| r.ok).collect();
    rows.sort_by_key(|r| r.possible_deps);
    for r in &rows {
        println!("  {}, {}, {:.4}", r.package, r.possible_deps, metric(r));
    }
    // The paper's observation: times grow with the number of possible dependencies and
    // the population splits into a small-dependency and a large-dependency cluster.
    if rows.len() >= 4 {
        let mid = rows.len() / 2;
        let small: f64 = rows[..mid].iter().map(|r| metric(r)).sum::<f64>() / mid as f64;
        let large: f64 =
            rows[mid..].iter().map(|r| metric(r)).sum::<f64>() / (rows.len() - mid) as f64;
        println!("  # mean({id}) small-half {small:.4}s vs large-half {large:.4}s");
    }
}

/// Fig. 7d: CDF of total solve times under the three solver presets.
fn fig7d(repo: &Repository, site: &SiteConfig, scale: Scale) {
    println!("\n## fig7d — CDF of total time per solver preset (tweety/trendy/handy)");
    let mut names: Vec<String> = repo.names().map(|s| s.to_string()).collect();
    names.sort_by_key(|n| repo.possible_dependency_count(n));
    let limit = (scale.sweep_limit() / 2).max(6).min(names.len());
    let step = (names.len() / limit.max(1)).max(1);
    let selected: Vec<String> = names.iter().step_by(step).take(limit).cloned().collect();
    for preset in Preset::all() {
        let records: Vec<SolveRecord> = selected
            .par_iter()
            .map(|name| measure_one(repo, site, None, SolverConfig::preset(preset), name))
            .collect();
        let totals: Vec<_> = records.iter().filter(|r| r.ok).map(|r| r.total).collect();
        let s = summarize(&totals);
        println!(
            "  {:<7} solved {:>3}/{:<3} median {:.3}s p90 {:.3}s max {:.3}s",
            preset.name(),
            totals.len(),
            selected.len(),
            s.median,
            s.p90,
            s.max
        );
        for (secs, count) in cdf(&totals) {
            println!("    cdf, {}, {:.4}, {}", preset.name(), secs, count);
        }
    }
}

/// Figures 7e–7g: CDFs of setup / solve / total time for increasing buildcache sizes.
fn fig7efg(repo: &Repository, site: &SiteConfig, scale: Scale) {
    println!("\n## fig7e/fig7f/fig7g — reuse with increasing buildcache sizes");
    let full = workload_buildcache(repo, scale);
    let scopes = BuildcacheConfig::paper_scopes();
    let caches: Vec<(String, Database)> =
        scopes.iter().map(|(name, scope)| (name.to_string(), scope.apply(&full))).collect();

    // The E4S-like roots: application-layer packages plus the curated apps.
    let mut roots: Vec<String> =
        repo.names().filter(|n| n.starts_with("app-")).map(|s| s.to_string()).collect();
    for extra in ["hdf5", "petsc", "mpileaks", "berkeleygw", "hpctoolkit"] {
        if repo.get(extra).is_some() {
            roots.push(extra.to_string());
        }
    }
    roots.sort();
    roots.truncate(scale.sweep_limit() / 2 + 5);

    for (name, cache) in &caches {
        let records: Vec<SolveRecord> = roots
            .par_iter()
            .map(|root| measure_one(repo, site, Some(cache), SolverConfig::default(), root))
            .collect();
        let ok: Vec<&SolveRecord> = records.iter().filter(|r| r.ok).collect();
        let setups: Vec<_> = ok.iter().map(|r| r.setup).collect();
        let solves: Vec<_> = ok.iter().map(|r| r.solve).collect();
        let totals: Vec<_> = ok.iter().map(|r| r.total).collect();
        let reused_total: usize = ok.iter().map(|r| r.reused).sum();
        println!(
            "  cache {:<14} ({:>5} pkgs): solved {:>2}/{:<2} reused {:>3} | setup med {:.3}s | solve med {:.3}s | total med {:.3}s",
            name,
            cache.len(),
            ok.len(),
            roots.len(),
            reused_total,
            summarize(&setups).median,
            summarize(&solves).median,
            summarize(&totals).median,
        );
        for (figure, series) in [("fig7e", &setups), ("fig7f", &solves), ("fig7g", &totals)] {
            for (secs, count) in cdf(series) {
                println!("    cdf, {figure}, {name}, {secs:.4}, {count}");
            }
        }
    }
}

/// Fig. 7h: CDF of old-concretizer times vs. ASP total times.
fn fig7h(repo: &Repository, site: &SiteConfig, sweep: &[SolveRecord]) {
    println!("\n## fig7h — old concretizer vs ASP concretizer (CDF of total time)");
    let greedy = GreedyConcretizer::new(repo, site.clone());
    let mut greedy_times = Vec::new();
    let mut greedy_failures = 0usize;
    for record in sweep {
        match greedy.concretize(&parse_spec(&record.package).unwrap()) {
            Ok(result) => greedy_times.push(result.duration),
            Err(_) => greedy_failures += 1,
        }
    }
    let asp_times: Vec<_> = sweep.iter().filter(|r| r.ok).map(|r| r.total).collect();
    let og = summarize(&greedy_times);
    let asp_summary = summarize(&asp_times);
    println!(
        "  old concretizer: {} solved, {} failed (incomplete), median {:.4}s max {:.4}s",
        greedy_times.len(),
        greedy_failures,
        og.median,
        og.max
    );
    println!(
        "  ASP concretizer: {} solved, median {:.4}s max {:.4}s",
        asp_times.len(),
        asp_summary.median,
        asp_summary.max
    );
    for (secs, count) in cdf(&greedy_times) {
        println!("    cdf, old, {secs:.5}, {count}");
    }
    for (secs, count) in cdf(&asp_times) {
        println!("    cdf, clingo, {secs:.5}, {count}");
    }
}

//! The benchmark report format and the perf-regression gate.
//!
//! Lives in the library (rather than the `bench` binary) so the gate's verdict logic
//! is unit-testable: the CI job's behaviour — per-group wall-clock comparison,
//! machine-independent counter deltas, warn-and-skip for groups absent from the
//! committed baseline, and the session-throughput ground-time gate — is all decided
//! here from plain data.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// One measured benchmark: identity, wall-clock, stage breakdown, engine counters.
#[derive(Debug, Clone)]
pub struct Record {
    /// Benchmark group (gating compares group sums).
    pub group: &'static str,
    /// Benchmark name within the group.
    pub bench: String,
    /// Samples taken.
    pub samples: usize,
    /// Mean wall clock over the samples.
    pub mean: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// `(stage name, seconds)` pairs, from the last sample.
    pub stages: Vec<(&'static str, f64)>,
    /// `(counter name, value)` pairs, from the last sample.
    pub counters: Vec<(&'static str, u64)>,
}

/// One baseline record: the mean wall clock plus the engine counters.
#[derive(Debug)]
pub struct BaselineEntry {
    /// Mean wall clock, in seconds.
    pub mean_s: f64,
    /// Engine counters by name.
    pub counters: BTreeMap<String, u64>,
}

/// A parsed baseline report: `(group, bench)` → entry.
pub type Baseline = BTreeMap<(String, String), BaselineEntry>;

/// The engine counters the gate tracks next to wall clock: grounder instantiation
/// work (possible atoms, ground rules) and solver search work (conflicts,
/// propagations). Unlike wall clock these are machine-independent — the committed
/// baseline stays meaningful even when the runner fleet's absolute speed drifts — so a
/// regression here is a real algorithmic change, not scheduler noise.
pub const GATED_COUNTERS: [&str; 4] = ["atoms", "rules", "conflicts", "propagations"];

/// The regression gate: compare this run's per-group mean against a baseline report,
/// failing when any group regressed beyond `threshold` — and, next to the wall-clock
/// check, compare the [`GATED_COUNTERS`] deltas against `counter_threshold` so
/// regressions show even when the runner fleet's absolute speed differs from the
/// machine that recorded the baseline. Only benches present in both reports count —
/// a group present in the current run but absent from the baseline is *warned about
/// and skipped* (never failed), so adding a new group does not require a flag-day
/// baseline refresh; counters absent from the baseline (older reports) are skipped
/// the same way. Returns `Ok(())` when the gate passes; `Err` carries the verdict.
pub fn compare_against_baseline(
    baseline: &Baseline,
    records: &[Record],
    threshold: f64,
    counter_threshold: f64,
) -> Result<(), String> {
    let mut groups: Vec<&str> = Vec::new();
    for r in records {
        if !groups.contains(&r.group) {
            groups.push(r.group);
        }
    }
    let mut failed = false;
    for group in groups {
        let mut current_sum = 0.0;
        let mut baseline_sum = 0.0;
        let mut compared = 0;
        // Per gated counter: summed (current, baseline) over benches carrying it.
        let mut counter_sums: Vec<(u64, u64)> = vec![(0, 0); GATED_COUNTERS.len()];
        for r in records.iter().filter(|r| r.group == group) {
            let Some(base) = baseline.get(&(group.to_string(), r.bench.clone())) else {
                continue;
            };
            current_sum += r.mean.as_secs_f64();
            baseline_sum += base.mean_s;
            compared += 1;
            for (ci, name) in GATED_COUNTERS.iter().enumerate() {
                let (Some(&base_v), Some(&(_, cur_v))) =
                    (base.counters.get(*name), r.counters.iter().find(|(n, _)| n == name))
                else {
                    continue;
                };
                counter_sums[ci].0 += cur_v;
                counter_sums[ci].1 += base_v;
            }
        }
        if compared == 0 || baseline_sum <= 0.0 {
            // Warn-and-skip: a group the committed baseline has never seen must not
            // fail the gate (it will enter the baseline at the next refresh).
            eprintln!("  {group:<28} WARNING: no baseline for this group — skipped");
            continue;
        }
        let ratio = current_sum / baseline_sum;
        let verdict = if ratio > threshold { "REGRESSED" } else { "ok" };
        eprintln!(
            "  {group:<28} {compared} benches  baseline {baseline_sum:.4}s  current {current_sum:.4}s  ratio {ratio:.2}x  {verdict}"
        );
        if ratio > threshold {
            failed = true;
        }
        let mut gated = 0;
        for (ci, name) in GATED_COUNTERS.iter().enumerate() {
            let (cur, base) = counter_sums[ci];
            if base == 0 && !baseline_has_counter(baseline, group, records, name) {
                continue; // counter absent from the baseline report
            }
            gated += 1;
            // Ratio gate with a small absolute slack: tiny bases (a zero- or
            // double-digit conflict count) make pure ratios meaningless, while a
            // zero-to-millions jump must still fail — so a counter regresses when it
            // exceeds BOTH the ratio threshold and base + 256.
            let limit = (base as f64 * counter_threshold).max(base as f64 + 256.0);
            if cur as f64 > limit {
                let cratio = cur as f64 / (base.max(1)) as f64;
                eprintln!(
                    "  {group:<28}   counter {name}: baseline {base}  current {cur}  ratio {cratio:.2}x  REGRESSED"
                );
                failed = true;
            }
        }
        let current_has_gated = records.iter().any(|r| {
            r.group == group && r.counters.iter().any(|(n, v)| GATED_COUNTERS.contains(n) && *v > 0)
        });
        if gated == 0 && current_has_gated {
            // Loud, because silence here would quietly disable the machine-
            // independent half of the gate (e.g. a baseline whose counters object
            // failed to parse after a format change). Groups that never expose the
            // gated counters (like unsat_diagnostics) stay quiet.
            eprintln!(
                "  {group:<28}   WARNING: baseline carries no gated counters — counter gate \
                 inactive for this group"
            );
        }
    }
    if failed {
        Err(format!(
            "at least one group regressed beyond the wall-clock ({threshold:.2}x) or \
             counter ({counter_threshold:.2}x) threshold"
        ))
    } else {
        Ok(())
    }
}

/// The session-throughput gate: within the *current* run, the summed per-request
/// grounding time of the session-mode mix must stay below the one-shot mix's by
/// `ratio` (e.g. 0.75 = at least 25% cheaper). Both benches measure the same spec
/// list on the same machine in the same process, so this gate is self-contained —
/// it needs no baseline and is immune to fleet-speed drift. Groups without both
/// benches (e.g. an older report) skip the gate with a warning.
pub fn session_ground_gate(records: &[Record], ratio: f64) -> Result<(), String> {
    let ground_us = |bench: &str| -> Option<u64> {
        records
            .iter()
            .find(|r| r.group == "session_throughput" && r.bench == bench)
            .and_then(|r| r.counters.iter().find(|(n, _)| *n == "ground_us").map(|&(_, v)| v))
    };
    let (Some(oneshot), Some(session)) = (ground_us("oneshot_mix"), ground_us("session_mix"))
    else {
        eprintln!("  session_throughput           WARNING: mix benches missing — gate skipped");
        return Ok(());
    };
    let actual = session as f64 / (oneshot as f64).max(1.0);
    eprintln!(
        "  session_throughput           ground time: one-shot {oneshot}us  session {session}us  \
         ratio {actual:.2}x (gate {ratio:.2}x)"
    );
    if actual > ratio {
        Err(format!(
            "session-mode per-request grounding ({session}us) is not below one-shot \
             ({oneshot}us) by the gated ratio {ratio:.2}"
        ))
    } else {
        Ok(())
    }
}

/// The base-update gate: within the *current* run, one incremental base patch (the
/// `base_update/incremental_patch` mean divided by its `patches` counter — the bench
/// applies a publish + yank round trip per sample) must stay below the
/// `base_update/full_refreeze` mean by `ratio` (default 0.5 = at least twice as fast
/// as freezing the post-delta universe from scratch). Both benches run on the same
/// workload in the same process, so like [`session_ground_gate`] this needs no
/// baseline and is immune to fleet-speed drift. Reports without both benches skip
/// the gate with a warning.
pub fn base_patch_gate(records: &[Record], ratio: f64) -> Result<(), String> {
    let find = |bench: &str| records.iter().find(|r| r.group == "base_update" && r.bench == bench);
    let (Some(patch), Some(refreeze)) = (find("incremental_patch"), find("full_refreeze")) else {
        eprintln!("  base_update                  WARNING: patch benches missing — gate skipped");
        return Ok(());
    };
    let patches =
        patch.counters.iter().find(|(n, _)| *n == "patches").map(|&(_, v)| v).unwrap_or(1).max(1);
    let per_patch = patch.mean.as_secs_f64() / patches as f64;
    let full = refreeze.mean.as_secs_f64();
    let actual = per_patch / full.max(1e-9);
    eprintln!(
        "  base_update                  per patch {:.1}ms  full re-freeze {:.1}ms  \
         ratio {actual:.2}x (gate {ratio:.2}x)",
        per_patch * 1e3,
        full * 1e3
    );
    if actual > ratio {
        Err(format!(
            "an incremental base patch ({:.1}ms) is not below a full re-freeze ({:.1}ms) \
             by the gated ratio {ratio:.2}",
            per_patch * 1e3,
            full * 1e3
        ))
    } else {
        Ok(())
    }
}

/// Does the baseline carry `name` (even at value zero) for any bench of `group` that
/// this run also measured? Distinguishes "recorded as zero" (gate with the absolute
/// slack) from "absent from the report" (skip).
fn baseline_has_counter(baseline: &Baseline, group: &str, records: &[Record], name: &str) -> bool {
    records.iter().filter(|r| r.group == group).any(|r| {
        baseline
            .get(&(group.to_string(), r.bench.clone()))
            .is_some_and(|b| b.counters.contains_key(name))
    })
}

/// Parse a report produced by [`render_json`] into a [`Baseline`]. The format is
/// line-oriented (one result object per line), so a small field scanner is enough —
/// the workspace deliberately has no JSON dependency.
pub fn parse_report(text: &str) -> Baseline {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let (Some(group), Some(bench), Some(mean_s)) = (
            json_str_field(line, "group"),
            json_str_field(line, "bench"),
            json_num_field(line, "mean_s"),
        ) else {
            continue;
        };
        map.insert((group, bench), BaselineEntry { mean_s, counters: json_counters(line) });
    }
    map
}

/// Render a set of records as the line-oriented JSON report the gate parses back.
pub fn render_json(label: &str, scale: &str, records: &[Record]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    writeln!(s, "  \"harness\": \"{}\",", env!("CARGO_PKG_VERSION")).unwrap();
    writeln!(s, "  \"label\": \"{label}\",").unwrap();
    writeln!(s, "  \"scale\": \"{scale}\",").unwrap();
    s.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        s.push_str("    {");
        write!(
            s,
            "\"group\": \"{}\", \"bench\": \"{}\", \"samples\": {}, \"mean_s\": {:.6}, \"min_s\": {:.6}",
            r.group,
            r.bench,
            r.samples,
            r.mean.as_secs_f64(),
            r.min.as_secs_f64()
        )
        .unwrap();
        s.push_str(", \"stages\": {");
        for (j, (name, secs)) in r.stages.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            write!(s, "\"{name}\": {secs:.6}").unwrap();
        }
        s.push_str("}, \"counters\": {");
        for (j, (name, value)) in r.counters.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            write!(s, "\"{name}\": {value}").unwrap();
        }
        s.push_str("}}");
        s.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Extract the `"counters": {"name": value, ...}` object of a single-line result.
fn json_counters(line: &str) -> BTreeMap<String, u64> {
    let mut map = BTreeMap::new();
    let Some(start) = line.find("\"counters\": {") else {
        return map;
    };
    let body = &line[start + "\"counters\": {".len()..];
    let Some(end) = body.find('}') else {
        return map;
    };
    for pair in body[..end].split(',') {
        let mut halves = pair.splitn(2, ':');
        let (Some(key), Some(value)) = (halves.next(), halves.next()) else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if let Ok(v) = value.trim().parse::<u64>() {
            map.insert(key.to_string(), v);
        }
    }
    map
}

/// Extract `"key": "value"` from a single-line JSON object rendering.
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_string())
}

/// Extract `"key": number` from a single-line JSON object rendering.
fn json_num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        group: &'static str,
        bench: &str,
        mean_s: f64,
        counters: &[(&'static str, u64)],
    ) -> Record {
        Record {
            group,
            bench: bench.to_string(),
            samples: 3,
            mean: Duration::from_secs_f64(mean_s),
            min: Duration::from_secs_f64(mean_s),
            stages: Vec::new(),
            counters: counters.to_vec(),
        }
    }

    fn roundtrip(records: &[Record]) -> Baseline {
        parse_report(&render_json("test", "small", records))
    }

    #[test]
    fn report_roundtrips_through_json() {
        let records =
            [record("g", "b", 0.5, &[("atoms", 100), ("rules", 200), ("propagations", 42)])];
        let base = roundtrip(&records);
        let entry = base.get(&("g".to_string(), "b".to_string())).expect("parsed");
        assert!((entry.mean_s - 0.5).abs() < 1e-6);
        assert_eq!(entry.counters.get("atoms"), Some(&100));
        assert_eq!(entry.counters.get("propagations"), Some(&42));
    }

    #[test]
    fn new_groups_warn_and_skip_instead_of_failing() {
        // The committed baseline knows nothing about session_throughput: the gate
        // must pass anyway (no flag-day baseline refresh required to add a group).
        let baseline = roundtrip(&[record("old_group", "b", 0.1, &[("atoms", 1000)])]);
        let current = [
            record("old_group", "b", 0.1, &[("atoms", 1000)]),
            record("session_throughput", "oneshot_mix", 9.9, &[("atoms", 999_999)]),
        ];
        assert!(compare_against_baseline(&baseline, &current, 1.25, 1.6).is_ok());
    }

    #[test]
    fn wall_clock_regression_fails() {
        let baseline = roundtrip(&[record("g", "b", 0.1, &[])]);
        let current = [record("g", "b", 0.2, &[])];
        assert!(compare_against_baseline(&baseline, &current, 1.25, 1.6).is_err());
        // Within threshold passes.
        let current = [record("g", "b", 0.11, &[])];
        assert!(compare_against_baseline(&baseline, &current, 1.25, 1.6).is_ok());
    }

    #[test]
    fn counter_regression_fails_even_with_fast_wall_clock() {
        let baseline = roundtrip(&[record("g", "b", 0.1, &[("propagations", 10_000)])]);
        // Faster wall clock (a faster machine), but 3x the propagations: algorithmic
        // regression — must fail.
        let current = [record("g", "b", 0.05, &[("propagations", 30_000)])];
        assert!(compare_against_baseline(&baseline, &current, 1.25, 1.6).is_err());
    }

    #[test]
    fn session_ground_gate_verdicts() {
        let ok = [
            record("session_throughput", "oneshot_mix", 1.0, &[("ground_us", 100_000)]),
            record("session_throughput", "session_mix", 1.0, &[("ground_us", 50_000)]),
        ];
        assert!(session_ground_gate(&ok, 0.75).is_ok());
        let bad = [
            record("session_throughput", "oneshot_mix", 1.0, &[("ground_us", 100_000)]),
            record("session_throughput", "session_mix", 1.0, &[("ground_us", 90_000)]),
        ];
        assert!(session_ground_gate(&bad, 0.75).is_err());
        // Missing benches: skip, never fail.
        assert!(session_ground_gate(&[], 0.75).is_ok());
    }

    #[test]
    fn base_patch_gate_verdicts() {
        // 0.08s over 2 patches = 40ms per patch vs a 100ms re-freeze: 0.4x passes.
        let ok = [
            record("base_update", "full_refreeze", 0.1, &[]),
            record("base_update", "incremental_patch", 0.08, &[("patches", 2)]),
        ];
        assert!(base_patch_gate(&ok, 0.5).is_ok());
        // 60ms per patch vs 100ms: 0.6x fails the 0.5x gate.
        let bad = [
            record("base_update", "full_refreeze", 0.1, &[]),
            record("base_update", "incremental_patch", 0.12, &[("patches", 2)]),
        ];
        assert!(base_patch_gate(&bad, 0.5).is_err());
        // Without the patches counter the mean counts as one patch.
        let one = [
            record("base_update", "full_refreeze", 0.1, &[]),
            record("base_update", "incremental_patch", 0.04, &[]),
        ];
        assert!(base_patch_gate(&one, 0.5).is_ok());
        // Missing benches: skip, never fail.
        assert!(base_patch_gate(&[], 0.5).is_ok());
    }
}

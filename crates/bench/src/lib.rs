//! Shared infrastructure for the benchmark harness.
//!
//! The binaries in `src/bin` and the Criterion benches in `benches/` reproduce every
//! table and figure of the paper's evaluation (Section VII). This library provides the
//! pieces they share: workload construction (synthetic repositories and buildcaches at
//! several scales), single-solve measurement records, and the cumulative-distribution
//! helper used for Figures 7d–7h.

#![warn(missing_docs)]

pub mod gate;

use std::time::Duration;

use spack_concretizer::{Concretizer, SiteConfig};
use spack_repo::{builtin_repo, synth_repo, Repository, SynthConfig};
use spack_spec::{Compiler, Platform};
use spack_store::{synthesize_buildcache, BuildcacheConfig, Database};

/// How large a workload to generate. The paper's full scale (6,000 packages, a 63k-entry
/// buildcache) is impractical for a laptop-scale reproduction of the *solver itself*;
/// the scales below preserve the relationships the figures are about (scaling with the
/// number of possible dependencies, reuse behaviour, preset comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A few dozen packages; used by unit tests and CI smoke runs.
    Smoke,
    /// Around a hundred packages; the default for `cargo run --bin figures`.
    Small,
    /// ~160 packages plus a deep dependency chain and extra virtuals — the tier the
    /// perf-regression harness (`cargo run -p bench --bin bench`) reports on.
    Medium,
    /// Wide dependency fan-out: fewer packages but up to 10 direct deps each.
    Wide,
    /// A 48-package-deep linear chain on top of a small base (fixpoint depth stress).
    Deep,
    /// Eight extra virtuals with two providers each (provider-selection stress).
    ManyVirtuals,
    /// Several hundred packages (E4S-sized); closest to the paper, slowest.
    Paper,
}

impl Scale {
    /// Parse from a command-line string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "wide" => Some(Scale::Wide),
            "deep" => Some(Scale::Deep),
            "manyvirtuals" | "many-virtuals" => Some(Scale::ManyVirtuals),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// The synthetic-repository size for this scale.
    pub fn packages(&self) -> usize {
        self.synth_config().packages
    }

    /// The synthetic-repository shape for this scale: besides raw package count, the
    /// larger tiers exercise the structures the grounder and solver hot paths are
    /// sensitive to — wide fan-out (join width), deep chains (fixpoint rounds), and
    /// many virtuals (choice-rule density).
    pub fn synth_config(&self) -> SynthConfig {
        match self {
            Scale::Smoke => SynthConfig { packages: 40, ..Default::default() },
            Scale::Small => SynthConfig { packages: 90, ..Default::default() },
            Scale::Medium => SynthConfig {
                packages: 160,
                chain_depth: 24,
                extra_virtuals: 4,
                ..Default::default()
            },
            Scale::Wide => {
                SynthConfig { packages: 140, max_deps: 10, mpi_fraction: 0.6, ..Default::default() }
            }
            Scale::Deep => SynthConfig { packages: 60, chain_depth: 48, ..Default::default() },
            Scale::ManyVirtuals => {
                SynthConfig { packages: 110, extra_virtuals: 8, ..Default::default() }
            }
            Scale::Paper => SynthConfig { packages: 300, ..Default::default() },
        }
    }

    /// Number of packages to concretize in "all packages" sweeps.
    pub fn sweep_limit(&self) -> usize {
        match self {
            Scale::Smoke => 10,
            Scale::Small => 40,
            Scale::Medium | Scale::Wide | Scale::Deep | Scale::ManyVirtuals => 60,
            Scale::Paper => 150,
        }
    }
}

/// The repository used by a workload: the curated builtin stack merged with a synthetic
/// E4S-like layer, so both realistic recipes and scale are represented.
pub fn workload_repo(scale: Scale) -> Repository {
    let mut repo = builtin_repo();
    let synth = synth_repo(&scale.synth_config());
    repo.add_all(synth.packages().cloned());
    repo
}

/// A pure-ASP transitive-closure workload (`path/2` over a `depends_on` chain of
/// `n` edges plus a choice over the roots). Grounding it takes `n` semi-naive rounds
/// and produces O(n²) `path` atoms, which makes it the canonical stress test for the
/// grounder's delta handling — exactly the shape of the paper's Fig. 3 program, scaled.
pub fn chain_closure_program(n: usize) -> String {
    use std::fmt::Write;
    let mut p = String::new();
    for i in 0..n {
        writeln!(p, "depends_on(p{i}, p{next}).", next = i + 1).unwrap();
    }
    p.push_str(
        "path(A, B) :- depends_on(A, B).\n\
         path(A, C) :- path(A, B), depends_on(B, C).\n\
         node(Dep) :- node(Pkg), depends_on(Pkg, Dep).\n",
    );
    writeln!(p, "1 {{ node(p0); node(p{mid}) }}.", mid = n / 2).unwrap();
    writeln!(p, ":- path(X, X).").unwrap();
    p
}

/// A pure-ASP join-ordering workload: a three-way join where the literal order as
/// written (`big1 ⋈ big2 ⋈ tiny`) is pessimal and a selectivity-aware planner (tiny
/// first, then indexed lookups) wins by orders of magnitude.
pub fn wide_join_program(width: usize) -> String {
    use std::fmt::Write;
    let mut p = String::new();
    for i in 0..width {
        writeln!(p, "big1(a{i}, b{m}).", m = i % 7).unwrap();
        writeln!(p, "big2(b{m}, c{i}).", m = i % 7).unwrap();
    }
    for i in 0..3.min(width) {
        writeln!(p, "tiny(a{i}).").unwrap();
    }
    p.push_str("joined(X, Z) :- big1(X, Y), big2(Y, Z), tiny(X).\n");
    p.push_str("{ keep(X) : tiny(X) }.\n");
    p
}

/// The buildcache used by the reuse experiments, at four sizes mirroring the paper's
/// scopes (full / one arch / one OS / both restrictions).
pub fn workload_buildcache(repo: &Repository, scale: Scale) -> Database {
    let replicas = match scale {
        Scale::Smoke | Scale::Small => 1,
        Scale::Medium | Scale::Wide | Scale::Deep | Scale::ManyVirtuals | Scale::Paper => 2,
    };
    synthesize_buildcache(
        repo,
        &BuildcacheConfig {
            architectures: vec![
                (Platform::Linux, "rhel7".to_string(), "ppc64le".to_string()),
                (Platform::Linux, "rhel7".to_string(), "skylake".to_string()),
                (Platform::Linux, "centos8".to_string(), "ppc64le".to_string()),
                (Platform::Linux, "centos8".to_string(), "icelake".to_string()),
            ],
            compilers: vec![Compiler::new("gcc", "11.2.0"), Compiler::new("gcc", "8.3.1")],
            replicas,
            seed: 0xCAFE,
        },
    )
}

/// The buildcache of the `session_throughput` group: the *service* regime — a
/// production-scale cache (several replicas per package across every architecture),
/// where per-request setup and grounding dominate a one-shot solve (the paper's
/// Fig. 7e observation) and a multi-shot session's amortization pays the most. The
/// small tiers keep the replica count low so the CI gate stays fast.
pub fn service_buildcache(repo: &Repository, scale: Scale) -> Database {
    let replicas = match scale {
        Scale::Smoke | Scale::Small => 2,
        Scale::Medium | Scale::Wide | Scale::Deep | Scale::ManyVirtuals | Scale::Paper => 4,
    };
    synthesize_buildcache(
        repo,
        &BuildcacheConfig {
            architectures: vec![
                (Platform::Linux, "rhel7".to_string(), "ppc64le".to_string()),
                (Platform::Linux, "rhel7".to_string(), "skylake".to_string()),
                (Platform::Linux, "centos8".to_string(), "ppc64le".to_string()),
                (Platform::Linux, "centos8".to_string(), "icelake".to_string()),
            ],
            compilers: vec![Compiler::new("gcc", "11.2.0"), Compiler::new("gcc", "8.3.1")],
            replicas,
            seed: 0xCAFE,
        },
    )
}

/// One measured concretization, the record behind every point of Figures 7a–7h.
#[derive(Debug, Clone)]
pub struct SolveRecord {
    /// The package that was concretized.
    pub package: String,
    /// Number of *possible* dependencies (the x-axis of Figures 7a–7c).
    pub possible_deps: usize,
    /// Nodes in the solved DAG.
    pub solved_nodes: usize,
    /// Fact-generation time.
    pub setup: Duration,
    /// Grounding time.
    pub ground: Duration,
    /// Solving time.
    pub solve: Duration,
    /// Total time (setup + load + ground + solve).
    pub total: Duration,
    /// Packages reused (0 when reuse is disabled).
    pub reused: usize,
    /// Packages to build.
    pub built: usize,
    /// Whether the solve succeeded.
    pub ok: bool,
}

/// Concretize one package and record the measurements of Fig. 7.
pub fn measure_one(
    repo: &Repository,
    site: &SiteConfig,
    database: Option<&Database>,
    solver: asp::SolverConfig,
    package: &str,
) -> SolveRecord {
    let possible_deps = repo.possible_dependency_count(package);
    let mut concretizer = Concretizer::new(repo).with_site(site.clone()).with_solver_config(solver);
    if let Some(db) = database {
        concretizer = concretizer.with_database(db);
    }
    match concretizer.concretize_str(package) {
        Ok(result) => SolveRecord {
            package: package.to_string(),
            possible_deps,
            solved_nodes: result.spec.len(),
            setup: result.timings.setup,
            ground: result.timings.ground,
            solve: result.timings.solve,
            total: result.timings.total(),
            reused: result.reuse_count(),
            built: result.build_count(),
            ok: true,
        },
        Err(_) => SolveRecord {
            package: package.to_string(),
            possible_deps,
            solved_nodes: 0,
            setup: Duration::ZERO,
            ground: Duration::ZERO,
            solve: Duration::ZERO,
            total: Duration::ZERO,
            reused: 0,
            built: 0,
            ok: false,
        },
    }
}

/// A cumulative distribution over durations: returns `(seconds, count_at_or_below)`
/// pairs, one per sample, sorted — the format of Figures 7d–7h.
pub fn cdf(samples: &[Duration]) -> Vec<(f64, usize)> {
    let mut secs: Vec<f64> = samples.iter().map(|d| d.as_secs_f64()).collect();
    secs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    secs.iter().enumerate().map(|(i, &s)| (s, i + 1)).collect()
}

/// Summary statistics used in the textual figure reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Minimum value in seconds.
    pub min: f64,
    /// Median value in seconds.
    pub median: f64,
    /// 90th percentile in seconds.
    pub p90: f64,
    /// Maximum value in seconds.
    pub max: f64,
}

/// Summarize a set of durations.
pub fn summarize(samples: &[Duration]) -> Summary {
    if samples.is_empty() {
        return Summary { min: 0.0, median: 0.0, p90: 0.0, max: 0.0 };
    }
    let mut secs: Vec<f64> = samples.iter().map(|d| d.as_secs_f64()).collect();
    secs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pick = |q: f64| secs[((secs.len() - 1) as f64 * q).round() as usize];
    Summary { min: secs[0], median: pick(0.5), p90: pick(0.9), max: secs[secs.len() - 1] }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_parse_and_grow() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("nonsense"), None);
        assert!(Scale::Smoke.packages() < Scale::Small.packages());
        assert!(Scale::Small.packages() < Scale::Paper.packages());
    }

    #[test]
    fn workload_repo_merges_builtin_and_synthetic() {
        let repo = workload_repo(Scale::Smoke);
        assert!(repo.get("hdf5").is_some(), "builtin packages present");
        assert!(repo.names().any(|n| n.starts_with("app-")), "synthetic packages present");
        assert!(repo.providers("mpi").len() >= 4, "providers from both sources");
    }

    #[test]
    fn cdf_is_monotone() {
        let samples =
            vec![Duration::from_millis(5), Duration::from_millis(1), Duration::from_millis(3)];
        let curve = cdf(&samples);
        assert_eq!(curve.len(), 3);
        assert!(curve.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
        assert_eq!(curve.last().unwrap().1, 3);
    }

    #[test]
    fn summary_percentiles_are_ordered() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let s = summarize(&samples);
        assert!(s.min <= s.median && s.median <= s.p90 && s.p90 <= s.max);
        assert!((s.max - 0.1).abs() < 1e-9);
        assert_eq!(summarize(&[]).max, 0.0);
    }

    #[test]
    fn measure_one_records_failures_gracefully() {
        let repo = builtin_repo();
        let record =
            measure_one(&repo, &SiteConfig::minimal(), None, asp::SolverConfig::default(), "zlib");
        assert!(record.ok);
        assert_eq!(record.package, "zlib");
        assert_eq!(record.possible_deps, 0);
        assert!(record.total > Duration::ZERO);
    }
}

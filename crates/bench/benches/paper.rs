//! Criterion benchmarks, one group per table/figure of the paper's evaluation.
//!
//! These benches measure the cost of the pipeline stages the paper instruments
//! (setup / ground / solve, Section VII) on fixed representative workloads, so changes to
//! the engine or the encoding are caught as regressions. The full figure *data* (scatter
//! plots, CDFs over many packages and buildcache sizes) is produced by the `figures`
//! binary; see EXPERIMENTS.md.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use asp::{Preset, SolverConfig};
use bench::{chain_closure_program, wide_join_program, workload_buildcache, workload_repo, Scale};
use spack_concretizer::{setup_problem, Concretizer, GreedyConcretizer, SiteConfig, CONCRETIZE_LP};
use spack_repo::builtin_repo;
use spack_spec::parse_spec;
use spack_store::BuildcacheConfig;

/// Table I: parsing the spec sigil syntax.
fn table1_spec_parsing(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_spec_parsing");
    for text in [
        "hdf5",
        "hdf5@1.10.2+mpi%gcc@10.3.1 target=skylake",
        "hdf5@1.10.2 ^zlib%gcc ^cmake target=aarch64",
        "example@1.0.0+bzip%gcc@11.2.0 arch=linux-centos8-skylake",
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(text), text, |b, text| {
            b.iter(|| parse_spec(std::hint::black_box(text)).unwrap())
        });
    }
    group.finish();
}

/// Table II: the full optimizing solve of a root with every criterion active.
fn table2_optimization(c: &mut Criterion) {
    let repo = builtin_repo();
    let site = SiteConfig::quartz();
    let mut group = c.benchmark_group("table2_optimization");
    group.sample_size(10).measurement_time(Duration::from_secs(10));
    for spec in ["example", "mpileaks"] {
        group.bench_with_input(BenchmarkId::from_parameter(spec), spec, |b, spec| {
            let concretizer = Concretizer::new(&repo).with_site(site.clone());
            b.iter(|| concretizer.concretize_str(std::hint::black_box(spec)).unwrap())
        });
    }
    group.finish();
}

/// Fig. 3: grounding and enumerating the stable models of the illustrative program.
fn fig3_ground_and_enumerate(c: &mut Criterion) {
    let program = r#"
        depends_on(a, b).
        depends_on(a, c).
        depends_on(b, d).
        depends_on(c, d).
        node(Dep) :- node(Pkg), depends_on(Pkg, Dep).
        1 { node(a); node(b) }.
    "#;
    let mut group = c.benchmark_group("fig3_ground_and_enumerate");
    group.sample_size(10).measurement_time(Duration::from_secs(10));
    let chain = chain_closure_program(256);
    let wide = wide_join_program(1200);
    for (name, text, limit) in [
        ("paper_example", program, 8usize),
        // The medium grounder tiers: transitive closure (delta handling) and a
        // pessimally-ordered three-way join (join planning). See `bench`'s docs.
        ("chain_closure_256", chain.as_str(), 4),
        ("wide_join_1200", wide.as_str(), 2),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut ctl = asp::Control::new(SolverConfig::default());
                ctl.add_program(std::hint::black_box(text)).unwrap();
                ctl.ground().unwrap();
                ctl.solve_models(limit).unwrap().len()
            })
        });
    }
    group.finish();
}

/// Fig. 5 / Fig. 6: reuse optimization against a populated buildcache.
fn fig6_reuse(c: &mut Criterion) {
    let repo = builtin_repo();
    let site = SiteConfig::quartz();
    let cache = spack_store::synthesize_buildcache(
        &repo,
        &BuildcacheConfig {
            architectures: vec![(
                spack_spec::Platform::Linux,
                "centos8".to_string(),
                "icelake".to_string(),
            )],
            compilers: vec![spack_spec::Compiler::new("gcc", "11.2.0")],
            replicas: 2,
            seed: 11,
        },
    );
    let mut group = c.benchmark_group("fig6_reuse");
    group.sample_size(10).measurement_time(Duration::from_secs(12));
    group.bench_function("hdf5_no_reuse", |b| {
        let concretizer = Concretizer::new(&repo).with_site(site.clone());
        b.iter(|| concretizer.concretize_str("hdf5").unwrap())
    });
    group.bench_function("hdf5_with_reuse", |b| {
        let concretizer = Concretizer::new(&repo).with_site(site.clone()).with_database(&cache);
        b.iter(|| concretizer.concretize_str("hdf5").unwrap())
    });
    // The medium workload tier: the synthetic stack (deep chain + extra virtuals) with
    // a populated buildcache — the default tier of the `bench` binary's quick mode.
    let medium = workload_repo(Scale::Medium);
    let medium_cache = workload_buildcache(&medium, Scale::Medium);
    for root in ["hdf5", "chain-root", "vapp-00"] {
        group.bench_function(format!("{root}_medium_cache"), |b| {
            let concretizer =
                Concretizer::new(&medium).with_site(site.clone()).with_database(&medium_cache);
            b.iter(|| concretizer.concretize_str(root).unwrap())
        });
    }
    group.finish();
}

/// Fig. 7a: the grounding phase in isolation (setup + load + ground, no solving).
fn fig7a_grounding(c: &mut Criterion) {
    let repo = builtin_repo();
    let site = SiteConfig::quartz();
    let mut group = c.benchmark_group("fig7a_grounding");
    group.sample_size(20);
    for package in ["zlib", "cmake", "hdf5"] {
        group.bench_with_input(BenchmarkId::from_parameter(package), package, |b, package| {
            let spec = parse_spec(package).unwrap();
            b.iter(|| {
                let (mut ctl, _info) = setup_problem(
                    &repo,
                    &site,
                    None,
                    std::slice::from_ref(&spec),
                    SolverConfig::default(),
                )
                .unwrap();
                ctl.add_program(CONCRETIZE_LP).unwrap();
                ctl.ground().unwrap();
                ctl.stats().ground.rules
            })
        });
    }
    group.finish();
}

/// Fig. 7b/7c: the full pipeline for packages of increasing possible-dependency count.
fn fig7bc_full_solve(c: &mut Criterion) {
    let repo = builtin_repo();
    let site = SiteConfig::quartz();
    let mut group = c.benchmark_group("fig7bc_full_solve");
    group.sample_size(10).measurement_time(Duration::from_secs(12));
    for package in ["zlib", "openssl", "hdf5"] {
        let deps = repo.possible_dependency_count(package);
        group.bench_with_input(BenchmarkId::new(package, deps), package, |b, package| {
            let concretizer = Concretizer::new(&repo).with_site(site.clone());
            b.iter(|| concretizer.concretize_str(std::hint::black_box(package)).unwrap())
        });
    }
    group.finish();
}

/// Fig. 7d: the same solve under the three solver presets.
fn fig7d_presets(c: &mut Criterion) {
    let repo = builtin_repo();
    let site = SiteConfig::quartz();
    let mut group = c.benchmark_group("fig7d_presets");
    group.sample_size(10).measurement_time(Duration::from_secs(10));
    for preset in Preset::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(preset.name()),
            &preset,
            |b, &preset| {
                let concretizer = Concretizer::new(&repo)
                    .with_site(site.clone())
                    .with_solver_config(SolverConfig::preset(preset));
                b.iter(|| concretizer.concretize_str("callpath").unwrap())
            },
        );
    }
    group.finish();
}

/// Fig. 7e: the setup phase as the buildcache grows (fact generation only).
fn fig7e_setup_scaling(c: &mut Criterion) {
    let repo = workload_repo(Scale::Smoke);
    let site = SiteConfig::quartz();
    let full = workload_buildcache(&repo, Scale::Smoke);
    let mut group = c.benchmark_group("fig7e_setup_scaling");
    group.sample_size(20);
    for (name, scope) in BuildcacheConfig::paper_scopes() {
        let cache = scope.apply(&full);
        group.bench_with_input(
            BenchmarkId::new("hdf5_setup", format!("{name}:{}", cache.len())),
            &cache,
            |b, cache| {
                let spec = parse_spec("hdf5").unwrap();
                b.iter(|| {
                    let (ctl, info) = setup_problem(
                        &repo,
                        &site,
                        Some(cache),
                        std::slice::from_ref(&spec),
                        SolverConfig::default(),
                    )
                    .unwrap();
                    (ctl.fact_count(), info.installed)
                })
            },
        );
    }
    group.finish();
}

/// Fig. 7f/7g: solve and total time with the largest buildcache scope.
fn fig7fg_reuse_solve(c: &mut Criterion) {
    let repo = workload_repo(Scale::Smoke);
    let site = SiteConfig::quartz();
    let cache = workload_buildcache(&repo, Scale::Smoke);
    let mut group = c.benchmark_group("fig7fg_reuse_solve");
    group.sample_size(10).measurement_time(Duration::from_secs(12));
    group.bench_function("hdf5_full_cache", |b| {
        let concretizer = Concretizer::new(&repo).with_site(site.clone()).with_database(&cache);
        b.iter(|| concretizer.concretize_str("hdf5").unwrap())
    });
    group.finish();
}

/// Fig. 7h: the old concretizer vs. the ASP concretizer on the same spec.
fn fig7h_old_vs_new(c: &mut Criterion) {
    let repo = builtin_repo();
    let site = SiteConfig::quartz();
    let mut group = c.benchmark_group("fig7h_old_vs_new");
    group.sample_size(10).measurement_time(Duration::from_secs(10));
    group.bench_function("old_concretizer_hdf5", |b| {
        let greedy = GreedyConcretizer::new(&repo, site.clone());
        let spec = parse_spec("hdf5").unwrap();
        b.iter(|| greedy.concretize(std::hint::black_box(&spec)).unwrap())
    });
    group.bench_function("asp_concretizer_hdf5", |b| {
        let concretizer = Concretizer::new(&repo).with_site(site.clone());
        b.iter(|| concretizer.concretize_str("hdf5").unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    table1_spec_parsing,
    table2_optimization,
    fig3_ground_and_enumerate,
    fig6_reuse,
    fig7a_grounding,
    fig7bc_full_solve,
    fig7d_presets,
    fig7e_setup_scaling,
    fig7fg_reuse_solve,
    fig7h_old_vs_new,
);
criterion_main!(benches);

//! Abstract syntax tree for the (first-order) ASP input language.
//!
//! The dialect covers what the paper's concretization program needs:
//!
//! * facts and normal rules with variables (`node(D) :- node(P), depends_on(P, D).`),
//! * integrity constraints (`:- path(A, B), path(B, A).`),
//! * choice rules with cardinality bounds (`1 { version(P, V) : possible_version(P, V) } 1
//!   :- node(P).`),
//! * default negation (`not`) and comparison literals (`A != B`, `W < 10`),
//! * conditional literals in rule bodies (`attr(N, A1) : condition_requirement(ID, N, A1)`),
//! * `#minimize { W@P,T : body }.` statements with priorities,
//! * `#const name = value.` definitions and simple integer arithmetic in terms, and
//! * `#external atom.` declarations of ground *guard atoms* whose truth is fixed per
//!   solve (through an assumption) instead of being derived by rules.

use std::fmt;

/// A term: a constant, a variable, or an arithmetic expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// Symbolic constant (`hdf5`) or quoted string (`"1.2.11"`).
    Sym(String),
    /// Integer constant.
    Int(i64),
    /// Variable (capitalized identifier, or `_`).
    Var(String),
    /// Binary arithmetic over integer terms.
    BinOp(ArithOp, Box<Term>, Box<Term>),
}

impl Term {
    /// True for the anonymous variable `_`.
    pub fn is_wildcard(&self) -> bool {
        matches!(self, Term::Var(v) if v == "_")
    }

    /// True when the term contains no variable (including the wildcard).
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Sym(_) | Term::Int(_) => true,
            Term::Var(_) => false,
            Term::BinOp(_, a, b) => a.is_ground() && b.is_ground(),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Sym(s) => {
                let bare = !s.is_empty()
                    && s.chars().next().unwrap().is_ascii_lowercase()
                    && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
                if bare {
                    write!(f, "{s}")
                } else {
                    write!(f, "\"{s}\"")
                }
            }
            Term::Int(i) => write!(f, "{i}"),
            Term::Var(v) => write!(f, "{v}"),
            Term::BinOp(op, a, b) => write!(f, "({a}{op}{b})"),
        }
    }
}

/// Arithmetic operators allowed in terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArithOp::Add => write!(f, "+"),
            ArithOp::Sub => write!(f, "-"),
            ArithOp::Mul => write!(f, "*"),
        }
    }
}

/// Comparison operators in comparison literals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A (non-ground) atom: predicate applied to terms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Predicate name.
    pub pred: String,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Construct an atom.
    pub fn new(pred: &str, args: Vec<Term>) -> Self {
        Atom { pred: pred.to_string(), args }
    }

    /// True when every argument is ground (no variables anywhere).
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(Term::is_ground)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.pred)?;
        if !self.args.is_empty() {
            write!(f, "(")?;
            for (i, a) in self.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// A body literal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Literal {
    /// A predicate literal, possibly negated with `not`.
    Pred {
        /// True when prefixed with `not`.
        negated: bool,
        /// The atom.
        atom: Atom,
    },
    /// A comparison between two terms.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left-hand side.
        lhs: Term,
        /// Right-hand side.
        rhs: Term,
    },
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Pred { negated, atom } => {
                if *negated {
                    write!(f, "not ")?;
                }
                write!(f, "{atom}")
            }
            Literal::Cmp { op, lhs, rhs } => write!(f, "{lhs} {op} {rhs}"),
        }
    }
}

/// A body element: a plain literal or a conditional literal (`lit : cond1, cond2`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BodyElem {
    /// A plain literal.
    Lit(Literal),
    /// A conditional literal: `literal : conditions` — expands during grounding to the
    /// conjunction of `literal` instances over all groundings of the (local) condition
    /// variables for which the conditions are facts.
    Cond {
        /// The conditioned literal.
        literal: Literal,
        /// The conditions (restricted to input-fact predicates in this dialect).
        conditions: Vec<Literal>,
    },
}

impl fmt::Display for BodyElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BodyElem::Lit(l) => write!(f, "{l}"),
            BodyElem::Cond { literal, conditions } => {
                write!(f, "{literal}")?;
                for c in conditions {
                    write!(f, " : {c}")?;
                }
                Ok(())
            }
        }
    }
}

/// One element of a choice head: `atom : conditions`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ChoiceElement {
    /// The choosable atom.
    pub atom: Atom,
    /// Conditions restricting which instances are choosable.
    pub conditions: Vec<Literal>,
}

/// The head of a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Head {
    /// No head: an integrity constraint.
    None,
    /// A single atom.
    Atom(Atom),
    /// A choice with optional cardinality bounds: `l { e1; e2; ... } u`.
    Choice {
        /// Lower cardinality bound, if given.
        lower: Option<Term>,
        /// Upper cardinality bound, if given.
        upper: Option<Term>,
        /// Choice elements.
        elements: Vec<ChoiceElement>,
    },
}

/// A rule: `head :- body.` A fact is a rule with an empty body; an integrity constraint
/// has head [`Head::None`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The rule head.
    pub head: Head,
    /// The rule body (conjunction).
    pub body: Vec<BodyElem>,
}

/// One element of a `#minimize` statement: `weight@priority,terms... : conditions`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinimizeElement {
    /// The weight term (must evaluate to an integer once ground).
    pub weight: Term,
    /// The priority term; higher priorities are optimized first.
    pub priority: Term,
    /// Distinguishing tuple terms.
    pub terms: Vec<Term>,
    /// Conditions under which the tuple contributes.
    pub conditions: Vec<Literal>,
}

/// A parsed program: rules, minimize statements, `#const` definitions, and `#external`
/// declarations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// All rules (facts, normal rules, choices, constraints).
    pub rules: Vec<Rule>,
    /// All minimize elements (from all `#minimize` statements).
    pub minimize: Vec<MinimizeElement>,
    /// `#const` definitions applied during grounding.
    pub consts: Vec<(String, Term)>,
    /// `#external` declarations: ground atoms whose truth is *not* determined by the
    /// program. The grounder interns them as possible atoms, the translation exempts
    /// them from support-based elimination, and the stability check treats a true
    /// external as founded — so a caller can fix each one per solve via an assumption
    /// without regrounding (the clingo `#external` / `assign_external` pattern).
    pub externals: Vec<Atom>,
}

impl Program {
    /// Merge another program into this one.
    pub fn extend(&mut self, other: Program) {
        self.rules.extend(other.rules);
        self.minimize.extend(other.minimize);
        self.consts.extend(other.consts);
        self.externals.extend(other.externals);
    }

    /// Total number of statements.
    pub fn len(&self) -> usize {
        self.rules.len() + self.minimize.len() + self.externals.len()
    }

    /// True when the program has no statements.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.minimize.is_empty() && self.externals.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_atoms_and_literals() {
        let atom = Atom::new("depends_on", vec![Term::Sym("hdf5".into()), Term::Var("D".into())]);
        assert_eq!(atom.to_string(), "depends_on(hdf5,D)");
        let lit = Literal::Pred { negated: true, atom };
        assert_eq!(lit.to_string(), "not depends_on(hdf5,D)");
        let cmp =
            Literal::Cmp { op: CmpOp::Ne, lhs: Term::Var("A".into()), rhs: Term::Var("B".into()) };
        assert_eq!(cmp.to_string(), "A != B");
    }

    #[test]
    fn display_quoted_symbols() {
        assert_eq!(Term::Sym("1.2.11".into()).to_string(), "\"1.2.11\"");
        assert_eq!(Term::Sym("zlib".into()).to_string(), "zlib");
    }
}

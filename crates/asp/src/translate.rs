//! Translation of a ground program into clauses and linear constraints.
//!
//! The translation is Clark's completion plus cardinality constraints for choice-rule
//! bounds:
//!
//! * every ground rule body gets an auxiliary variable equivalent to the body conjunction,
//! * rule bodies imply their heads,
//! * every (non-fact) atom implies the disjunction of its supporting bodies — where the
//!   bodies of choice rules containing the atom count as support without forcing it,
//! * integrity constraints become clauses, and
//! * choice bounds become [`LinearSpec`] cardinality constraints guarded by the body.
//!
//! Completion alone yields *supported* models; stability (foundedness w.r.t. positive
//! recursion) is restored by the unfounded-set check in [`crate::stable`], which adds loop
//! nogoods lazily — the same division of labour as in clasp.

use crate::ground::GroundProgram;
use crate::hasher::FxHashMap;
use crate::sat::{LinearSpec, Lit, Var};
use crate::symbols::AtomId;

/// The clausal form of a ground program.
#[derive(Debug, Clone, Default)]
pub struct Translation {
    /// Total number of SAT variables (program atoms first, then body auxiliaries).
    pub num_vars: usize,
    /// Number of program atoms (atom `i` is SAT variable `i`).
    pub num_atoms: usize,
    /// All clauses.
    pub clauses: Vec<Vec<Lit>>,
    /// All cardinality constraints (from choice bounds).
    pub linears: Vec<LinearSpec>,
}

impl Translation {
    /// The SAT literal asserting that program atom `a` is true.
    pub fn atom_lit(a: AtomId) -> Lit {
        Lit::pos(a as Var)
    }

    /// The closure digest: a hash of the entire clausal form (variable counts, every
    /// clause, every linear constraint). Two requests with equal digests solve the
    /// identical formula — atom and auxiliary variable ids included — so
    /// provenance-safe clauses learned by one hold verbatim in the other. Keys the
    /// cross-request [`crate::sat::SharedClauseStore`].
    pub fn digest(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = crate::hasher::FxHasher::default();
        h.write_usize(self.num_vars);
        h.write_usize(self.num_atoms);
        h.write_usize(self.clauses.len());
        for clause in &self.clauses {
            h.write_usize(clause.len());
            for l in clause {
                h.write_u32(l.index() as u32);
            }
        }
        h.write_usize(self.linears.len());
        for lin in &self.linears {
            match lin.condition {
                None => h.write_u32(u32::MAX),
                Some(c) => h.write_u32(c.index() as u32),
            }
            h.write_usize(lin.lits.len());
            for l in &lin.lits {
                h.write_u32(l.index() as u32);
            }
            for &w in &lin.weights {
                h.write_u64(w);
            }
            h.write_u64(lin.lower);
            h.write_u64(lin.upper);
        }
        h.finish()
    }
}

/// Translate a ground program.
pub fn translate(ground: &GroundProgram) -> Translation {
    let num_atoms = ground.atoms.len();
    let mut t =
        Translation { num_vars: num_atoms, num_atoms, clauses: Vec::new(), linears: Vec::new() };

    // Facts.
    for (id, _) in ground.atoms.iter() {
        if ground.atoms.is_certain(id) {
            t.clauses.push(vec![Lit::pos(id as Var)]);
        }
    }

    // Body auxiliary variables, shared between identical bodies. Bodies made of a
    // *single* literal — by far the most common shape in the concretizer's ground
    // programs — need no auxiliary at all: the body is equivalent to that literal, so
    // the literal itself stands in, saving one variable and three clauses per body.
    let mut body_aux: FxHashMap<(Vec<AtomId>, Vec<AtomId>), Lit> = FxHashMap::default();
    // supports[atom] = Some(vec of support body literals); None means "unconditionally
    // supported" (a fact, an empty-body rule, or an empty-body choice).
    let mut supports: Vec<Option<Vec<Lit>>> = vec![Some(Vec::new()); num_atoms];

    let mut get_body_lit = |t: &mut Translation, pos: &[AtomId], neg: &[AtomId]| -> Option<Lit> {
        if pos.is_empty() && neg.is_empty() {
            return None;
        }
        if pos.len() == 1 && neg.is_empty() {
            return Some(Lit::pos(pos[0] as Var));
        }
        if pos.is_empty() && neg.len() == 1 {
            return Some(Lit::neg(neg[0] as Var));
        }
        let key = (pos.to_vec(), neg.to_vec());
        if let Some(&v) = body_aux.get(&key) {
            return Some(v);
        }
        let v = t.num_vars as Var;
        t.num_vars += 1;
        body_aux.insert(key, Lit::pos(v));
        // v -> each body literal
        let mut reverse = vec![Lit::pos(v)];
        for &p in pos {
            t.clauses.push(vec![Lit::neg(v), Lit::pos(p as Var)]);
            reverse.push(Lit::neg(p as Var));
        }
        for &n in neg {
            t.clauses.push(vec![Lit::neg(v), Lit::neg(n as Var)]);
            reverse.push(Lit::pos(n as Var));
        }
        // body literals -> v
        t.clauses.push(reverse);
        Some(Lit::pos(v))
    };

    // Normal rules and integrity constraints.
    for rule in &ground.rules {
        match rule.head {
            None => {
                // Constraint: not all body literals may hold.
                let mut clause = Vec::with_capacity(rule.pos.len() + rule.neg.len());
                for &p in &rule.pos {
                    clause.push(Lit::neg(p as Var));
                }
                for &n in &rule.neg {
                    clause.push(Lit::pos(n as Var));
                }
                t.clauses.push(clause);
            }
            Some(head) => {
                match get_body_lit(&mut t, &rule.pos, &rule.neg) {
                    None => {
                        // Empty body: the head is forced and unconditionally supported.
                        t.clauses.push(vec![Lit::pos(head as Var)]);
                        supports[head as usize] = None;
                    }
                    Some(b) => {
                        t.clauses.push(vec![b.negate(), Lit::pos(head as Var)]);
                        if let Some(list) = supports[head as usize].as_mut() {
                            list.push(b);
                        }
                    }
                }
            }
        }
    }

    // Choice rules.
    for choice in &ground.choices {
        let body_lit = get_body_lit(&mut t, &choice.pos, &choice.neg);
        // Heads are supported (but not forced) whenever the body holds.
        for &h in &choice.heads {
            match body_lit {
                None => supports[h as usize] = None,
                Some(b) => {
                    if let Some(list) = supports[h as usize].as_mut() {
                        list.push(b);
                    }
                }
            }
        }
        // Cardinality bounds.
        if choice.lower.is_some() || choice.upper.is_some() {
            let lits: Vec<Lit> = choice.heads.iter().map(|&h| Lit::pos(h as Var)).collect();
            let lower = choice.lower.unwrap_or(0).max(0) as u64;
            let upper = choice.upper.map(|u| u.max(0) as u64).unwrap_or(u64::MAX);
            t.linears.push(LinearSpec::cardinality(body_lit, lits, lower, upper));
        }
    }

    // Support clauses.
    for (id, _) in ground.atoms.iter() {
        if ground.atoms.is_certain(id) {
            continue;
        }
        // `#external` guard atoms are exempt from support-based elimination: no rule
        // derives them, but they are free rather than forced false — the caller fixes
        // each one per solve through an assumption.
        if ground.atoms.is_external(id) {
            continue;
        }
        match &supports[id as usize] {
            None => {} // unconditionally supported
            Some(list) if list.is_empty() => {
                // No rule can ever derive this atom: it must be false.
                t.clauses.push(vec![Lit::neg(id as Var)]);
            }
            Some(list) => {
                let mut clause = Vec::with_capacity(list.len() + 1);
                clause.push(Lit::neg(id as Var));
                clause.extend_from_slice(list);
                t.clauses.push(clause);
            }
        }
    }

    // Canonicalize every clause (sorted, deduplicated, tautologies dropped) once here
    // instead of per solver build: `Solver::add_clause` performs exactly this
    // normalization before storing a clause, so pre-canonicalized clauses produce
    // byte-identical solver state while qualifying for the linear-time
    // `Solver::load_trusted_clauses` path on every rebuild.
    t.clauses.retain_mut(|clause| {
        clause.sort_unstable();
        clause.dedup();
        !clause.windows(2).any(|w| w[0] == w[1].negate())
    });

    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::Grounder;
    use crate::parser::parse_program;
    use crate::sat::{SatConfig, SearchResult, Solver};
    use crate::symbols::SymbolTable;

    fn solve_text(text: &str) -> (GroundProgram, SymbolTable, Option<Vec<bool>>) {
        let program = parse_program(text).unwrap();
        let mut symbols = SymbolTable::new();
        let ground = Grounder::new(&mut symbols).ground(&program, &[]).unwrap();
        let t = translate(&ground);
        let mut solver = Solver::new(t.num_vars, SatConfig::default());
        let mut ok = true;
        for c in &t.clauses {
            if !solver.add_clause(c) {
                ok = false;
                break;
            }
        }
        if ok {
            for l in &t.linears {
                solver.add_linear(l.clone());
            }
        }
        let model =
            if ok && solver.search() == SearchResult::Sat { Some(solver.model()) } else { None };
        (ground, symbols, model)
    }

    fn atom_true(
        ground: &GroundProgram,
        symbols: &SymbolTable,
        model: &[bool],
        text: &str,
    ) -> bool {
        ground
            .atoms
            .iter()
            .find(|(_, a)| a.display(symbols).to_string() == text)
            .map(|(id, _)| model[id as usize])
            .unwrap_or(false)
    }

    #[test]
    fn facts_and_derived_atoms_are_true() {
        let (ground, symbols, model) = solve_text(
            r#"
            node(a).
            depends_on(a, b).
            node(D) :- node(P), depends_on(P, D).
            "#,
        );
        let model = model.expect("satisfiable");
        assert!(atom_true(&ground, &symbols, &model, "node(a)"));
        assert!(atom_true(&ground, &symbols, &model, "node(b)"));
    }

    #[test]
    fn constraint_excludes_models() {
        let (_, _, model) = solve_text(
            r#"
            p(a).
            q(a) :- p(a).
            :- q(a).
            "#,
        );
        assert!(model.is_none(), "the constraint makes the program unsatisfiable");
    }

    #[test]
    fn choice_bounds_are_enforced() {
        let (ground, symbols, model) = solve_text(
            r#"
            node(p).
            possible_version(p, v1).
            possible_version(p, v2).
            possible_version(p, v3).
            1 { version(P, V) : possible_version(P, V) } 1 :- node(P).
            "#,
        );
        let model = model.expect("satisfiable");
        let count = ["v1", "v2", "v3"]
            .iter()
            .filter(|v| atom_true(&ground, &symbols, &model, &format!("version(p,{v})")))
            .count();
        assert_eq!(count, 1, "exactly one version must be selected");
    }

    #[test]
    fn unsupported_atoms_are_false() {
        let (ground, symbols, model) = solve_text(
            r#"
            p(a).
            q(X) :- p(X), r(X).
            s(b) :- q(b).
            "#,
        );
        let model = model.expect("satisfiable");
        // r(a) never appears in any head: q(a) cannot be supported.
        assert!(!atom_true(&ground, &symbols, &model, "q(a)"));
    }

    #[test]
    fn negation_default_behaviour() {
        let (ground, symbols, model) = solve_text(
            r#"
            item(a). item(b).
            special(a).
            normal(X) :- item(X), not special(X).
            "#,
        );
        let model = model.expect("satisfiable");
        assert!(!atom_true(&ground, &symbols, &model, "normal(a)"));
        assert!(atom_true(&ground, &symbols, &model, "normal(b)"));
    }
}

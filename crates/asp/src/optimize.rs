//! Lexicographic multi-objective optimization over stable models.
//!
//! The paper relies on clasp's optimization to select the single best answer set under
//! Spack's 15+ prioritized criteria (Table II, Fig. 5). This module implements the
//! model-guided branch-and-bound strategy (clasp's `bb`): find a stable model, then
//! repeatedly demand a strictly better objective value at the highest not-yet-optimal
//! priority level (by adding a weighted-sum upper bound), level by level in decreasing
//! priority, until the optimum is proved for every level.

use std::collections::BTreeMap;

use crate::ground::GroundProgram;
use crate::sat::{ClauseCache, LinearSpec, Lit, SatConfig, SatStats, SearchResult, Solver, Var};
use crate::stable::StabilityChecker;
use crate::translate::Translation;

/// The outcome of an optimizing solve.
#[derive(Debug, Clone)]
pub struct OptimalModel {
    /// The stable model: truth values indexed by SAT variable (program atoms first).
    pub model: Vec<bool>,
    /// The objective vector: `(priority, value)` pairs sorted by decreasing priority.
    pub cost: Vec<(i64, i64)>,
    /// Number of candidate models examined on the way to the optimum, including
    /// unstable supported models rejected by the stability check.
    pub models_examined: u64,
    /// Number of solver invocations.
    pub solver_runs: u64,
    /// Total conflicts across all runs.
    pub conflicts: u64,
    /// Loop nogoods added by the stable-model check.
    pub loop_nogoods: u64,
    /// Aggregated low-level solver statistics across all runs.
    pub sat: SatStats,
}

/// Strategy used to drive the optimization (mirrors clasp's `--opt-strategy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptStrategy {
    /// Model-guided branch and bound, level by level (clasp `bb,lin`).
    #[default]
    BranchAndBound,
    /// Branch and bound with an aggressive first descent: after each improving model the
    /// bound is set to the model's value minus one for *every* remaining level at once
    /// (closer in spirit to core-guided descent; still complete).
    Descent,
}

/// Outcome of an assumption-aware optimizing solve ([`solve_optimal_assuming`]).
#[derive(Debug, Clone)]
pub enum OptOutcome {
    /// A (lexicographically) optimal stable model was found.
    Optimal(OptimalModel),
    /// No stable model exists under the given assumptions.
    Unsat {
        /// The subset of the assumption literals refuted by the program (the *unsat
        /// core* from final-conflict analysis). Empty when the program has no stable
        /// model even without assumptions.
        core: Vec<Lit>,
        /// Aggregated solver statistics of the failed search.
        sat: SatStats,
    },
}

/// Error produced by the optimizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimizeError {
    /// Description.
    pub message: String,
}

impl std::fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "optimization error: {}", self.message)
    }
}

impl std::error::Error for OptimizeError {}

struct Level {
    priority: i64,
    /// Literal/weight pairs contributing to this level.
    lits: Vec<(Lit, u64)>,
    /// Constant contribution from unconditional minimize entries.
    base: i64,
}

/// Solve for the lexicographically optimal stable model.
///
/// Returns `Ok(None)` when the program has no stable model at all.
///
/// # Warm starts
///
/// Within one priority level, branch-and-bound only ever *tightens* the objective
/// bound, so a single solver instance is kept across all improving models of the
/// level: every learned clause, loop nogood, saved phase, and activity score carries
/// over, and each iteration merely adds one more linear bound. Only when a level is
/// proved optimal (its last bound is UNSAT, poisoning the solver) is a fresh solver
/// built for the next level — seeded with the frozen bounds of the finished levels,
/// the session clause cache (which carries the retired solvers' provenance-safe
/// learned clauses), the loop nogoods discovered so far, and the incumbent model's
/// phases (so the search restarts in the neighbourhood of the best known
/// assignment).
pub fn solve_optimal(
    ground: &GroundProgram,
    translation: &Translation,
    config: &SatConfig,
    strategy: OptStrategy,
) -> Result<Option<OptimalModel>, OptimizeError> {
    let mut retired = None;
    let mut cache = ClauseCache::default();
    match solve_optimal_assuming(
        ground,
        translation,
        config,
        strategy,
        &[],
        &[],
        i64::MIN,
        &mut retired,
        &mut cache,
    )? {
        OptOutcome::Optimal(model) => Ok(Some(model)),
        OptOutcome::Unsat { .. } => Ok(None),
    }
}

/// [`solve_optimal`] under *assumption literals*: only stable models where every
/// assumption holds are considered, and on UNSAT the returned [`OptOutcome::Unsat`]
/// carries the core of assumptions responsible (tracked through conflict analysis by
/// [`Solver::search_with_assumptions`]).
///
/// `fixed` literals are asserted as root-level unit clauses in every solver this
/// solve builds — the realization of clingo's `assign_external`: an `#external`
/// guard's per-solve truth propagates once at the root instead of being re-decided
/// (and its consequences re-propagated) on every solver run of the optimization.
/// Fixed literals never appear in unsat cores; solvers do not outlive the solve, so
/// the units leak into nothing.
///
/// `priority_floor` bounds the optimization effort: minimize levels with a priority
/// *below* the floor are dropped entirely — neither optimized nor present in the
/// returned objective vector. The diagnostics path uses this to minimize only the
/// paper's `error(Priority, Msg, Args)` levels on the relaxed second-phase solve.
/// Pass `i64::MIN` to optimize every level.
///
/// On an UNSAT outcome the solver of the failed (bound-free) initial run is handed
/// back through `retired` — assumptions are plain decisions, so it is fully reusable,
/// and its learned clauses make it a warm probe for follow-up work such as
/// deletion-based core minimization (see [`StableProbe::from_solver`]).
///
/// `cache` is the session clause cache shared by every solve on this grounding: its
/// clauses are replayed into each solver built here, and every loop nogood found (plus
/// the provenance-safe learned clauses of each retiring solver) flows back into it.
#[allow(clippy::too_many_arguments)]
pub fn solve_optimal_assuming(
    ground: &GroundProgram,
    translation: &Translation,
    config: &SatConfig,
    strategy: OptStrategy,
    assumptions: &[Lit],
    fixed: &[Lit],
    priority_floor: i64,
    retired: &mut Option<Solver>,
    cache: &mut ClauseCache,
) -> Result<OptOutcome, OptimizeError> {
    if ground.trivially_unsat {
        return Ok(OptOutcome::Unsat { core: Vec::new(), sat: SatStats::default() });
    }
    let levels: Vec<Level> =
        collect_levels(ground)?.into_iter().filter(|l| l.priority >= priority_floor).collect();
    let mut stats = RunStats::default();
    // Loop nogoods discovered by the stability check are shared across solver runs.
    let mut extra_clauses: Vec<Vec<Lit>> = Vec::new();
    // One occurrence index serves every stability check of this solve.
    let mut checker = StabilityChecker::new(ground);

    // Initial model with no objective bounds. The solver stays live across levels: it
    // is only discarded when a level's final (UNSAT) bound poisons it, and only
    // rebuilt lazily when a later level actually needs another run — warm-started
    // from the session clause cache, the loop nogoods found so far, and the
    // incumbent's phases. Every objective literal starts phase-biased towards *false*
    // (clasp's optimization sign heuristic), so even the first model lands near the
    // cheap end of the search space and the per-level descents start close to the
    // optimum.
    let mut live = Some(build_solver(translation, config, fixed, &[], &extra_clauses, cache));
    if let Some(solver) = live.as_mut() {
        for level in &levels {
            for &(l, _) in &level.lits {
                solver.set_phase(l.var(), !l.is_pos());
            }
        }
    }
    let mut best = {
        let solver = live.as_mut().expect("just built");
        match run_stable(
            solver,
            ground,
            &mut checker,
            &mut extra_clauses,
            assumptions,
            &mut stats,
            cache,
        ) {
            Some(m) => m,
            None => {
                // The *unbounded* program is unsatisfiable under the assumptions: the
                // failed-assumption set is a genuine unsat core (later UNSATs merely
                // prove an objective bound optimal and carry no core).
                let core = solver.failed_assumptions().to_vec();
                stats.sat.absorb(&solver.stats);
                cache.harvest(solver);
                *retired = live.take();
                return Ok(OptOutcome::Unsat { core, sat: stats.sat });
            }
        }
    };
    let mut best_costs = level_costs(&levels, &best);

    // Optimize level by level, highest priority first. `live_bounds[li]` is the index
    // of level `li`'s objective bound inside the live solver (if added), so repeated
    // descents tighten one constraint in place instead of stacking superseded copies.
    let debug = std::env::var("ASP_DEBUG").is_ok();
    let mut fixed_bounds: Vec<LinearSpec> = Vec::new();
    let mut live_bounds: Vec<Option<usize>> = vec![None; levels.len()];
    for (li, level) in levels.iter().enumerate() {
        // First attempt per level is an *optimistic zero-probe*: most levels of a
        // lexicographic cascade optimize to zero, and proving "a zero-cost model
        // exists" in one run beats walking the bound down one unit per model. Only
        // when the probe fails (UNSAT — which poisons the solver exactly like a
        // final optimality proof would) does the level fall back to classic
        // one-step descents from the incumbent.
        let mut optimistic_failed = false;
        // The level's optimum is known to be strictly greater than this (a failed
        // probe is a lower-bound proof): reaching `proven_above + 1` is optimal
        // without paying a final UNSAT run.
        let mut proven_above: i64 = -1;
        loop {
            let current = best_costs[li];
            if debug {
                eprintln!(
                    "[asp] level prio {} ({} lits): current cost {}",
                    level.priority,
                    level.lits.len(),
                    current
                );
            }
            if current == proven_above + 1 {
                break;
            }
            let solver = match live.as_mut() {
                Some(s) => s,
                None => {
                    // The previous run retired the solver (UNSAT bound). Rebuild with
                    // every frozen bound, the clause cache (which now carries the
                    // retired solver's provenance-safe learned clauses), and the
                    // loop nogoods, warm-started from the incumbent's phases.
                    let mut s = build_solver(
                        translation,
                        config,
                        fixed,
                        &fixed_bounds,
                        &extra_clauses,
                        cache,
                    );
                    for (v, &val) in best.iter().enumerate() {
                        s.set_phase(v as Var, val);
                    }
                    // The frozen non-zero bounds occupy the linear slots after the
                    // translation's, in level order; zero bounds became root-level
                    // unit clauses inside build_solver and need no slot.
                    live_bounds = vec![None; levels.len()];
                    let mut slot = translation.linears.len();
                    for (lj, b) in fixed_bounds.iter().enumerate() {
                        if b.upper == 0 {
                            live_bounds[lj] = Some(ZERO_BOUND);
                        } else {
                            live_bounds[lj] = Some(slot);
                            slot += 1;
                        }
                    }
                    live.insert(s)
                }
            };
            // Probe only when the incumbent is far from zero: at `current <= 2` a
            // classic descent reaches a zero-cost model just as fast when one exists,
            // and a failed probe would waste a full UNSAT proof (plus a solver
            // rebuild) on levels whose optimum is small but nonzero.
            let optimistic = !optimistic_failed
                && current > 2
                && strategy == OptStrategy::BranchAndBound
                && live_bounds[li].is_none();
            let bound = if optimistic { 0 } else { current - 1 };
            match strategy {
                OptStrategy::BranchAndBound => {
                    set_level_bound(solver, &mut live_bounds, li, level, bound);
                }
                OptStrategy::Descent => {
                    // Demand improvement on this level and at least no regression on the
                    // remaining ones simultaneously.
                    set_level_bound(solver, &mut live_bounds, li, level, bound);
                    for (lj, l) in levels.iter().enumerate().skip(li + 1) {
                        set_level_bound(solver, &mut live_bounds, lj, l, best_costs[lj]);
                    }
                }
            }
            match run_stable(
                solver,
                ground,
                &mut checker,
                &mut extra_clauses,
                assumptions,
                &mut stats,
                cache,
            ) {
                Some(m) => {
                    best_costs = level_costs(&levels, &m);
                    best = m;
                }
                None => {
                    // The bound that failed poisons the solver either way, so retire
                    // it (a later run rebuilds on demand — its provenance-safe
                    // learned clauses live on through the cache). A failed one-step
                    // descent proves the level optimal; a failed zero-probe only
                    // proves the optimum is nonzero — fall back to classic descents.
                    stats.sat.absorb(&solver.stats);
                    cache.harvest(solver);
                    live = None;
                    if optimistic {
                        optimistic_failed = true;
                        proven_above = 0;
                        continue;
                    }
                    break;
                }
            }
        }
        // Freeze this level at its optimum for the remaining levels — and mirror the
        // frozen bound into the still-live solver (a pure tightening the incumbent
        // satisfies), keeping it interchangeable with a freshly built one.
        fixed_bounds.push(level_bound(level, best_costs[li]));
        if let Some(solver) = live.as_mut() {
            set_level_bound(solver, &mut live_bounds, li, level, best_costs[li]);
        }
    }
    if let Some(solver) = live.as_ref() {
        stats.sat.absorb(&solver.stats);
        cache.harvest(solver);
    }

    let cost =
        levels.iter().zip(best_costs.iter()).map(|(l, &c)| (l.priority, c + l.base)).collect();
    Ok(OptOutcome::Optimal(OptimalModel {
        model: best,
        cost,
        models_examined: stats.models,
        solver_runs: stats.runs,
        conflicts: stats.sat.conflicts,
        loop_nogoods: stats.loop_nogoods,
        sat: stats.sat,
    }))
}

/// A reusable stable-model satisfiability probe: one solver instance answers many
/// "is there a stable model under these assumptions?" queries. Assumptions are plain
/// decisions (undone by backtracking), so learned clauses and loop nogoods persist
/// across queries — this is what makes deletion-based core minimization affordable:
/// a core of size `k` costs `k` *incremental* probes, not `k` solver rebuilds.
pub struct StableProbe {
    solver: Solver,
    checker: StabilityChecker,
    trivially_unsat: bool,
    nogoods: u64,
}

impl StableProbe {
    /// Build the probe solver once from a grounded translation. `fixed` literals are
    /// asserted as root-level units — per-probe-session truths of `#external` guard
    /// atoms that parameterize the program but are never candidates for blame. The
    /// session `cache`'s clauses warm-start the probe.
    pub fn new(
        ground: &GroundProgram,
        translation: &Translation,
        config: &SatConfig,
        fixed: &[Lit],
        cache: &ClauseCache,
    ) -> Self {
        Self::from_solver(ground, build_solver(translation, config, fixed, &[], &[], cache))
    }

    /// Adopt an existing solver as the probe — typically the retired solver of a
    /// failed [`solve_optimal_assuming`] initial run, whose clause database (with the
    /// same fixed `#external` units and every clause learned refuting the failed
    /// assumptions) is exactly the probe's starting point. Skips a full solver
    /// rebuild, and the learned clauses usually pay again during the probes.
    pub fn from_solver(ground: &GroundProgram, solver: Solver) -> Self {
        StableProbe {
            solver,
            checker: StabilityChecker::new(ground),
            trivially_unsat: ground.trivially_unsat,
            nogoods: 0,
        }
    }

    /// Search for one stable model under `assumptions`. Returns `None` when a stable
    /// model exists, and `Some(core)` — the failed assumption subset — when none does.
    /// New loop nogoods flow into the session `cache`.
    pub fn check(
        &mut self,
        ground: &GroundProgram,
        assumptions: &[Lit],
        cache: &mut ClauseCache,
    ) -> Option<Vec<Lit>> {
        if self.trivially_unsat {
            return Some(Vec::new());
        }
        loop {
            match self.solver.search_with_assumptions(assumptions) {
                SearchResult::Unsat => {
                    return Some(self.solver.failed_assumptions().to_vec());
                }
                SearchResult::Sat => {
                    let model = self.solver.model();
                    // Loop nogoods (with their external-support witnesses) hold in
                    // every stable model, so they stay valid for later queries too.
                    let nogood = self.checker.unfounded_nogood(ground, &model)?;
                    self.nogoods += 1;
                    cache.add(&nogood);
                    if !self.solver.add_clause_safe(&nogood) {
                        return Some(Vec::new());
                    }
                }
            }
        }
    }

    /// Aggregate low-level statistics of every query so far.
    pub fn stats(&self) -> &SatStats {
        &self.solver.stats
    }

    /// Collect the probe solver's provenance-safe learned clauses into the cache.
    pub fn harvest_into(&self, cache: &mut ClauseCache) {
        cache.harvest(&self.solver);
    }

    /// Loop nogoods added across all queries.
    pub fn loop_nogoods(&self) -> u64 {
        self.nogoods
    }
}

/// Enumerate stable models (without optimization), up to `limit`.
pub fn enumerate_models(
    ground: &GroundProgram,
    translation: &Translation,
    config: &SatConfig,
    limit: usize,
) -> Vec<Vec<bool>> {
    enumerate_models_with_stats(ground, translation, config, limit).0
}

/// [`enumerate_models`], additionally returning the solver's aggregate statistics and
/// the number of candidate models examined (including unstable ones rejected by the
/// stability check — the same meaning the counter has on the optimization path).
pub fn enumerate_models_with_stats(
    ground: &GroundProgram,
    translation: &Translation,
    config: &SatConfig,
    limit: usize,
) -> (Vec<Vec<bool>>, SatStats, u64) {
    let mut models = Vec::new();
    let mut examined = 0u64;
    if ground.trivially_unsat {
        return (models, SatStats::default(), examined);
    }
    let empty_cache = ClauseCache::default();
    let mut solver = build_solver(translation, config, &[], &[], &[], &empty_cache);
    let mut checker = StabilityChecker::new(ground);
    loop {
        if models.len() >= limit {
            break;
        }
        match solver.search() {
            SearchResult::Unsat => break,
            SearchResult::Sat => {
                examined += 1;
                let model = solver.model();
                if let Some(nogood) = checker.unfounded_nogood(ground, &model) {
                    if !solver.add_clause_safe(&nogood) {
                        break;
                    }
                } else {
                    models.push(model.clone());
                    // Block this model (projected on the program atoms).
                    let blocking: Vec<Lit> = (0..translation.num_atoms)
                        .map(|a| if model[a] { Lit::neg(a as Var) } else { Lit::pos(a as Var) })
                        .collect();
                    if !solver.add_blocking_clause(&blocking) {
                        break;
                    }
                }
            }
        }
    }
    let stats = solver.stats.clone();
    (models, stats, examined)
}

#[derive(Default)]
struct RunStats {
    runs: u64,
    models: u64,
    loop_nogoods: u64,
    sat: SatStats,
}

fn collect_levels(ground: &GroundProgram) -> Result<Vec<Level>, OptimizeError> {
    let mut by_priority: BTreeMap<i64, Level> = BTreeMap::new();
    for m in &ground.minimize {
        if m.weight < 0 {
            return Err(OptimizeError {
                message: "negative minimize weights are not supported".into(),
            });
        }
        let level = by_priority.entry(m.priority).or_insert_with(|| Level {
            priority: m.priority,
            lits: Vec::new(),
            base: 0,
        });
        match m.condition {
            None => level.base += m.weight,
            Some(atom) => level.lits.push((Lit::pos(atom as Var), m.weight as u64)),
        }
    }
    // Highest priority first.
    Ok(by_priority.into_values().rev().collect())
}

fn level_costs(levels: &[Level], model: &[bool]) -> Vec<i64> {
    levels
        .iter()
        .map(|level| {
            level
                .lits
                .iter()
                .filter(|(lit, _)| model[lit.var() as usize] == lit.is_pos())
                .map(|&(_, w)| w as i64)
                .sum()
        })
        .collect()
}

fn level_bound(level: &Level, bound: i64) -> LinearSpec {
    let (lits, weights): (Vec<Lit>, Vec<u64>) = level.lits.iter().copied().unzip();
    LinearSpec { condition: None, lits, weights, lower: 0, upper: bound.max(0) as u64 }
}

/// Sentinel "slot" marking a level bound imposed at zero: a zero upper bound over
/// positive weights just forces every weighted literal false, so it is asserted as
/// root-level unit clauses instead of a watched linear constraint — cheaper to
/// propagate, nothing to tighten later, and no heuristic focus needed. This is the
/// common shape for levels that are trivially optimal at zero (e.g. the guarded error
/// levels of a hard-mode concretizer solve).
const ZERO_BOUND: usize = usize::MAX;

/// Assert a zero bound as unit clauses: every literal with a positive weight must be
/// false. (A zero-weight literal contributes nothing to the sum and must stay free.)
fn pin_zero(solver: &mut Solver, lits: impl Iterator<Item = (Lit, u64)>) {
    for (l, w) in lits {
        if w > 0 && !solver.add_clause(&[l.negate()]) {
            break;
        }
    }
}

/// Impose (or tighten) a level's objective bound on a live solver. The first time a
/// level is bounded, a linear constraint is added and its literals are bumped and
/// phase-biased towards *false* (clasp's optimization sign heuristic) — otherwise
/// phase saving would keep steering the search back to the just-outlawed incumbent.
/// Subsequent descents of the same level tighten that constraint's upper bound in
/// place, so the solver never accumulates superseded bounds. A level first bounded at
/// zero is pinned through unit clauses instead (see [`ZERO_BOUND`]).
fn set_level_bound(
    solver: &mut Solver,
    live_bounds: &mut [Option<usize>],
    li: usize,
    level: &Level,
    bound: i64,
) {
    let upper = bound.max(0) as u64;
    if live_bounds[li] == Some(ZERO_BOUND) {
        return; // already pinned at zero — no tighter bound exists
    }
    if live_bounds[li].is_none() && upper == 0 {
        pin_zero(solver, level.lits.iter().copied());
        live_bounds[li] = Some(ZERO_BOUND);
        return;
    }
    // Re-focus the heuristic on the objective at every descent, not only the first:
    // the activity bump and the false-bias refresh are what steer the next search
    // towards cheaper models once phase saving has locked onto the incumbent.
    for &(l, _) in &level.lits {
        solver.bump_variable(l.var(), 0.5);
        solver.set_phase(l.var(), !l.is_pos());
    }
    if let Some(idx) = live_bounds[li] {
        solver.tighten_linear_upper(idx, upper);
        return;
    }
    live_bounds[li] = Some(solver.num_linears());
    solver.add_linear(level_bound(level, bound));
}

fn build_solver(
    translation: &Translation,
    config: &SatConfig,
    fixed: &[Lit],
    bounds: &[LinearSpec],
    extra_clauses: &[Vec<Lit>],
    cache: &ClauseCache,
) -> Solver {
    let mut solver = Solver::new(translation.num_vars, config.clone());
    // Program content is provenance-safe; per-solve artifacts (external units,
    // objective bounds) are not — the distinction is what lets learned clauses be
    // exported back into the session cache.
    for clause in &translation.clauses {
        if !solver.add_clause_safe(clause) {
            break;
        }
    }
    // Per-solve truths of `#external` guard atoms, as root-level units.
    for &l in fixed {
        if !solver.add_clause(&[l]) {
            break;
        }
    }
    for lin in &translation.linears {
        solver.add_linear_safe(lin.clone());
    }
    // Session cache: loop nogoods and safe learned clauses from earlier solves on
    // this grounding.
    for clause in cache.clauses() {
        if !solver.add_clause_safe(clause) {
            break;
        }
    }
    for clause in extra_clauses {
        if !solver.add_clause_safe(clause) {
            break;
        }
    }
    for b in bounds {
        if b.upper == 0 {
            // A frozen zero bound forces every weighted literal false: root-level
            // unit clauses propagate this far more cheaply than a watched linear
            // constraint, and the heuristic has nothing to decide about them.
            pin_zero(&mut solver, b.lits.iter().copied().zip(b.weights.iter().copied()));
            continue;
        }
        solver.add_linear(b.clone());
        // Focus the heuristic on objective literals early.
        for &l in &b.lits {
            solver.bump_variable(l.var(), 0.5);
        }
    }
    solver
}

/// Drive a live solver to the next *stable* model (adding loop nogoods for unstable
/// supported models along the way), or `None` when none exists under the solver's
/// current bounds. The solver keeps all state between calls; aggregate statistics are
/// absorbed by the caller when the solver is retired.
#[allow(clippy::too_many_arguments)]
fn run_stable(
    solver: &mut Solver,
    ground: &GroundProgram,
    checker: &mut StabilityChecker,
    extra_clauses: &mut Vec<Vec<Lit>>,
    assumptions: &[Lit],
    stats: &mut RunStats,
    cache: &mut ClauseCache,
) -> Option<Vec<bool>> {
    stats.runs += 1;
    let debug = std::env::var("ASP_DEBUG").is_ok();
    loop {
        match solver.search_with_assumptions(assumptions) {
            SearchResult::Unsat => return None,
            SearchResult::Sat => {
                stats.models += 1;
                let model = solver.model();
                // Loop nogood: at least one unfounded atom must be false, or one of
                // the set's external supports must come true. It is a consequence of
                // the program (not of the bounds), so it persists and is replayed
                // into every future solver.
                let Some(nogood) = checker.unfounded_nogood(ground, &model) else {
                    return Some(model);
                };
                stats.loop_nogoods += 1;
                if debug && stats.loop_nogoods.is_multiple_of(50) {
                    eprintln!(
                        "[asp] {} loop nogoods so far (clause size {})",
                        stats.loop_nogoods,
                        nogood.len()
                    );
                }
                extra_clauses.push(nogood.clone());
                cache.add(&nogood);
                if !solver.add_clause_safe(&nogood) {
                    return None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::Grounder;
    use crate::parser::parse_program;
    use crate::symbols::SymbolTable;
    use crate::translate::translate;

    fn setup(text: &str) -> (GroundProgram, Translation, SymbolTable) {
        let program = parse_program(text).unwrap();
        let mut symbols = SymbolTable::new();
        let ground = Grounder::new(&mut symbols).ground(&program, &[]).unwrap();
        let translation = translate(&ground);
        (ground, translation, symbols)
    }

    fn true_atoms(ground: &GroundProgram, symbols: &SymbolTable, model: &[bool]) -> Vec<String> {
        ground
            .atoms
            .iter()
            .filter(|(id, _)| model[*id as usize])
            .map(|(_, a)| a.display(symbols).to_string())
            .collect()
    }

    #[test]
    fn fig3_has_exactly_two_stable_models() {
        let (ground, translation, symbols) = setup(
            r#"
            depends_on(a, b).
            depends_on(a, c).
            depends_on(b, d).
            depends_on(c, d).
            node(Dep) :- node(Pkg), depends_on(Pkg, Dep).
            1 { node(a); node(b) }.
            "#,
        );
        let models = enumerate_models(&ground, &translation, &SatConfig::default(), 16);
        // Answer 1: node(b), node(d). Answer 2: node(a), node(b), node(c), node(d) —
        // and also the model where only node(a) is chosen, which derives b, c, d and is
        // identical to answer 2 as a set of atoms. Distinct atom sets: exactly 2.
        let mut sets: Vec<Vec<String>> = models
            .iter()
            .map(|m| {
                let mut v: Vec<String> = true_atoms(&ground, &symbols, m)
                    .into_iter()
                    .filter(|a| a.starts_with("node("))
                    .collect();
                v.sort();
                v
            })
            .collect();
        sets.sort();
        sets.dedup();
        assert_eq!(sets.len(), 2, "{sets:?}");
        assert!(sets.contains(&vec!["node(b)".to_string(), "node(d)".to_string()]));
        assert!(sets.contains(&vec![
            "node(a)".to_string(),
            "node(b)".to_string(),
            "node(c)".to_string(),
            "node(d)".to_string()
        ]));
    }

    #[test]
    fn optimization_prefers_lower_weights() {
        let (ground, translation, symbols) = setup(
            r#"
            node(p).
            possible_version(p, v_new, 0).
            possible_version(p, v_old, 1).
            1 { version(P, V) : possible_version(P, V, W) } 1 :- node(P).
            version_weight(P, V, W) :- version(P, V), possible_version(P, V, W).
            #minimize{ W@3,P,V : version_weight(P, V, W) }.
            "#,
        );
        let result = solve_optimal(
            &ground,
            &translation,
            &SatConfig::default(),
            OptStrategy::BranchAndBound,
        )
        .unwrap()
        .expect("satisfiable");
        let atoms = true_atoms(&ground, &symbols, &result.model);
        assert!(atoms.contains(&"version(p,v_new)".to_string()), "{atoms:?}");
        assert_eq!(result.cost, vec![(3, 0)]);
    }

    #[test]
    fn lexicographic_priorities_are_respected() {
        // Two choices: a cheap option on the low-priority criterion conflicts with the
        // cheap option on the high-priority criterion. The high-priority one must win.
        let (ground, translation, symbols) = setup(
            r#"
            1 { pick(x); pick(y) } 1.
            high_cost(x, 0). high_cost(y, 5).
            low_cost(x, 7).  low_cost(y, 0).
            high(P, W) :- pick(P), high_cost(P, W).
            low(P, W) :- pick(P), low_cost(P, W).
            #minimize{ W@10,P : high(P, W) }.
            #minimize{ W@1,P : low(P, W) }.
            "#,
        );
        let result = solve_optimal(
            &ground,
            &translation,
            &SatConfig::default(),
            OptStrategy::BranchAndBound,
        )
        .unwrap()
        .expect("satisfiable");
        let atoms = true_atoms(&ground, &symbols, &result.model);
        assert!(atoms.contains(&"pick(x)".to_string()));
        assert_eq!(result.cost, vec![(10, 0), (1, 7)]);
    }

    #[test]
    fn descent_strategy_matches_bb_result() {
        let text = r#"
            1 { pick(x); pick(y); pick(z) } 1.
            cost(x, 3). cost(y, 1). cost(z, 2).
            paid(P, W) :- pick(P), cost(P, W).
            #minimize{ W@1,P : paid(P, W) }.
        "#;
        let (ground, translation, symbols) = setup(text);
        for strategy in [OptStrategy::BranchAndBound, OptStrategy::Descent] {
            let result = solve_optimal(&ground, &translation, &SatConfig::default(), strategy)
                .unwrap()
                .expect("satisfiable");
            let atoms = true_atoms(&ground, &symbols, &result.model);
            assert!(atoms.contains(&"pick(y)".to_string()), "{strategy:?}: {atoms:?}");
            assert_eq!(result.cost, vec![(1, 1)]);
        }
    }

    #[test]
    fn unstable_supported_models_are_rejected() {
        // p and q support each other; the only stable model is empty, so r (which needs
        // p) must be false, and minimizing not_r cannot pretend otherwise.
        let (ground, translation, symbols) = setup(
            r#"
            base(1).
            p :- q.
            q :- p.
            r :- p.
            "#,
        );
        let models = enumerate_models(&ground, &translation, &SatConfig::default(), 8);
        assert_eq!(models.len(), 1);
        let atoms = true_atoms(&ground, &symbols, &models[0]);
        assert_eq!(atoms, vec!["base(1)".to_string()]);
    }

    #[test]
    fn unsat_program_returns_none() {
        let (ground, translation, _symbols) = setup(
            r#"
            p(a).
            :- p(a).
            "#,
        );
        let result = solve_optimal(
            &ground,
            &translation,
            &SatConfig::default(),
            OptStrategy::BranchAndBound,
        )
        .unwrap();
        assert!(result.is_none());
    }

    #[test]
    fn constant_minimize_contributions_are_reported() {
        let (ground, translation, _symbols) = setup(
            r#"
            always(a).
            #minimize{ 4@2,a : always(a) }.
            "#,
        );
        let result = solve_optimal(
            &ground,
            &translation,
            &SatConfig::default(),
            OptStrategy::BranchAndBound,
        )
        .unwrap()
        .expect("satisfiable");
        assert_eq!(result.cost, vec![(2, 4)]);
    }
}

//! Lexicographic multi-objective optimization over stable models.
//!
//! The paper relies on clasp's optimization to select the single best answer set under
//! Spack's 15+ prioritized criteria (Table II, Fig. 5). This module implements the
//! model-guided branch-and-bound strategy (clasp's `bb`): find a stable model, then
//! repeatedly demand a strictly better objective value at the highest not-yet-optimal
//! priority level (by adding a weighted-sum upper bound), level by level in decreasing
//! priority, until the optimum is proved for every level.
//!
//! # Portfolio parallelism and determinism
//!
//! With [`SatConfig::portfolio`] > 1, every search of the descent is *raced* by K
//! differently-seeded solver configurations (an internal `Pool`) kept in lockstep: each worker
//! holds the identical clause/constraint stream, the first worker to reach a usable
//! verdict claims the race and cancels the rest through a shared atomic stop flag.
//! Which worker wins is timing-dependent, so the *trajectory* (incumbent models, the
//! order loop nogoods are found, learned clauses) is not reproducible — but the
//! returned result is, by construction:
//!
//! * the **cost vector** is the lexicographic optimum, unique regardless of which
//!   worker proved each bound;
//! * the **model** is re-derived by a final *canonical extraction* solve — a fresh,
//!   serial, cold-started solver over (translation, fixed externals, every level
//!   pinned at its optimal bound), a deterministic function of the problem alone.
//!   With all levels simultaneously bounded at the optimum `c*`, any stable model
//!   found has cost exactly `c*` (level 1 cannot go below the global minimum; given
//!   equality there, level 2 cannot; and so on), so the extraction always succeeds
//!   and always returns the same model — in serial mode too, which is what makes
//!   portfolio and serial results byte-identical;
//! * an **unsat core** is either taken from a canonical serial-cold search, or
//!   re-proved on one (see [`solve_optimal_assuming`]).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::ground::GroundProgram;
use crate::sat::{
    ClauseCache, LinearSpec, Lit, SatConfig, SatStats, SearchResult, SolveBudgetState, Solver, Var,
};
use crate::stable::StabilityChecker;
use crate::translate::Translation;

/// The outcome of an optimizing solve.
#[derive(Debug, Clone)]
pub struct OptimalModel {
    /// The stable model: truth values indexed by SAT variable (program atoms first).
    pub model: Vec<bool>,
    /// The objective vector: `(priority, value)` pairs sorted by decreasing priority.
    pub cost: Vec<(i64, i64)>,
    /// Number of candidate models examined on the way to the optimum, including
    /// unstable supported models rejected by the stability check.
    pub models_examined: u64,
    /// Number of solver invocations.
    pub solver_runs: u64,
    /// Total conflicts across all runs.
    pub conflicts: u64,
    /// Loop nogoods added by the stable-model check.
    pub loop_nogoods: u64,
    /// Aggregated low-level solver statistics across all runs — under a portfolio,
    /// summed over *every* worker (winners and cancelled losers alike), so the
    /// counters reflect total work done rather than the winning solver's share.
    pub sat: SatStats,
    /// Seed of the solver configuration that claimed the most recent portfolio race
    /// (the caller's base seed when solving serially).
    pub winner_seed: u64,
}

/// Strategy used to drive the optimization (mirrors clasp's `--opt-strategy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptStrategy {
    /// Model-guided branch and bound, level by level (clasp `bb,lin`).
    #[default]
    BranchAndBound,
    /// Branch and bound with an aggressive first descent: after each improving model the
    /// bound is set to the model's value minus one for *every* remaining level at once
    /// (closer in spirit to core-guided descent; still complete).
    Descent,
}

/// Outcome of an assumption-aware optimizing solve ([`solve_optimal_assuming`]).
#[derive(Debug, Clone)]
pub enum OptOutcome {
    /// A (lexicographically) optimal stable model was found.
    Optimal(OptimalModel),
    /// No stable model exists under the given assumptions.
    Unsat {
        /// The subset of the assumption literals refuted by the program (the *unsat
        /// core* from final-conflict analysis). Empty when the program has no stable
        /// model even without assumptions.
        core: Vec<Lit>,
        /// Aggregated solver statistics of the failed search.
        sat: SatStats,
    },
    /// The solve budget (wall deadline or conflict limit) expired before optimality
    /// was proven.
    Budget {
        /// The best stable model branch-and-bound had proven when the budget
        /// expired, with the costs it achieved — *not* guaranteed optimal, and
        /// (unlike [`OptOutcome::Optimal`]) trajectory-dependent, since the
        /// canonical re-extraction is skipped under an expired budget. `None` when
        /// the budget expired before any stable model was found.
        partial: Option<Box<OptimalModel>>,
        /// Aggregated solver statistics of the interrupted solve.
        sat: SatStats,
    },
}

/// Error produced by the optimizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimizeError {
    /// Description.
    pub message: String,
}

impl std::fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "optimization error: {}", self.message)
    }
}

impl std::error::Error for OptimizeError {}

struct Level {
    priority: i64,
    /// Literal/weight pairs contributing to this level.
    lits: Vec<(Lit, u64)>,
    /// Constant contribution from unconditional minimize entries.
    base: i64,
}

/// Solve for the lexicographically optimal stable model.
///
/// Returns `Ok(None)` when the program has no stable model at all.
///
/// # Warm starts
///
/// Within one priority level, branch-and-bound only ever *tightens* the objective
/// bound, so a single solver instance is kept across all improving models of the
/// level: every learned clause, loop nogood, saved phase, and activity score carries
/// over, and each iteration merely adds one more linear bound. Only when a level is
/// proved optimal (its last bound is UNSAT, poisoning the solver) is a fresh solver
/// built for the next level — seeded with the frozen bounds of the finished levels,
/// the session clause cache (which carries the retired solvers' provenance-safe
/// learned clauses), the loop nogoods discovered so far, and the incumbent model's
/// phases (so the search restarts in the neighbourhood of the best known
/// assignment).
pub fn solve_optimal(
    ground: &GroundProgram,
    translation: &Translation,
    config: &SatConfig,
    strategy: OptStrategy,
) -> Result<Option<OptimalModel>, OptimizeError> {
    let mut retired = None;
    let mut cache = ClauseCache::default();
    match solve_optimal_assuming(
        ground,
        translation,
        config,
        strategy,
        &[],
        &[],
        i64::MIN,
        &mut retired,
        &mut cache,
        None,
    )? {
        OptOutcome::Optimal(model) => Ok(Some(model)),
        OptOutcome::Unsat { .. } => Ok(None),
        OptOutcome::Budget { .. } => unreachable!("solve_optimal installs no budget"),
    }
}

/// [`solve_optimal`] under *assumption literals*: only stable models where every
/// assumption holds are considered, and on UNSAT the returned [`OptOutcome::Unsat`]
/// carries the core of assumptions responsible (tracked through conflict analysis by
/// [`Solver::search_with_assumptions`]).
///
/// `fixed` literals are asserted as root-level unit clauses in every solver this
/// solve builds — the realization of clingo's `assign_external`: an `#external`
/// guard's per-solve truth propagates once at the root instead of being re-decided
/// (and its consequences re-propagated) on every solver run of the optimization.
/// Fixed literals never appear in unsat cores; solvers do not outlive the solve, so
/// the units leak into nothing.
///
/// `priority_floor` bounds the optimization effort: minimize levels with a priority
/// *below* the floor are dropped entirely — neither optimized nor present in the
/// returned objective vector. The diagnostics path uses this to minimize only the
/// paper's `error(Priority, Msg, Args)` levels on the relaxed second-phase solve.
/// Pass `i64::MIN` to optimize every level.
///
/// On an UNSAT outcome the solver of the failed (bound-free) initial run is handed
/// back through `retired` — assumptions are plain decisions, so it is fully reusable,
/// and its learned clauses make it a warm probe for follow-up work such as
/// deletion-based core minimization (see [`StableProbe::from_solver`]).
///
/// `cache` is the session clause cache shared by every solve on this grounding: its
/// clauses are replayed into each solver built here, and every loop nogood found (plus
/// the provenance-safe learned clauses of each retiring solver) flows back into it.
///
/// `budget` is an optional shared solve budget (see [`SolveBudgetState`]): it is
/// installed into *every* solver this solve builds — the descent workers and the
/// canonical extraction/core re-proof alike — so an armed budget interrupts the solve
/// within one solver check interval no matter which phase it is in. An interrupted
/// solve returns [`OptOutcome::Budget`], carrying the incumbent model when
/// branch-and-bound had already proven one (graceful degradation).
#[allow(clippy::too_many_arguments)]
pub fn solve_optimal_assuming(
    ground: &GroundProgram,
    translation: &Translation,
    config: &SatConfig,
    strategy: OptStrategy,
    assumptions: &[Lit],
    fixed: &[Lit],
    priority_floor: i64,
    retired: &mut Option<Solver>,
    cache: &mut ClauseCache,
    budget: Option<&Arc<SolveBudgetState>>,
) -> Result<OptOutcome, OptimizeError> {
    if ground.trivially_unsat {
        return Ok(OptOutcome::Unsat { core: Vec::new(), sat: SatStats::default() });
    }
    let levels: Vec<Level> =
        collect_levels(ground)?.into_iter().filter(|l| l.priority >= priority_floor).collect();
    let mut stats = RunStats::default();
    // A warm-started cache (cross-request transfers) or a portfolio race makes the
    // search *trajectory* irreproducible; remember whether either is in play, because
    // an unsat core is only canonical when neither is (see the UNSAT arm below).
    let deterministic_trajectory = cache.is_empty() && config.portfolio.max(1) == 1;
    let mut winner_seed;
    // Loop nogoods discovered by the stability check are shared across solver runs.
    let mut extra_clauses: Vec<Vec<Lit>> = Vec::new();
    // One occurrence index serves every stability check of this solve.
    let mut checker = StabilityChecker::new(ground);

    // Initial model with no objective bounds. The pool stays live across levels: it
    // is only discarded when a level's final (UNSAT) bound poisons it, and only
    // rebuilt lazily when a later level actually needs another run — warm-started
    // from the session clause cache, the loop nogoods found so far, and the
    // incumbent's phases. Every objective literal starts phase-biased towards *false*
    // (clasp's optimization sign heuristic), so even the first model lands near the
    // cheap end of the search space and the per-level descents start close to the
    // optimum.
    let mut live = Some(build_pool(translation, config, fixed, &[], &extra_clauses, cache, budget));
    if let Some(pool) = live.as_mut() {
        for level in &levels {
            for &(l, _) in &level.lits {
                pool.set_phase(l.var(), !l.is_pos());
            }
        }
    }
    let mut best = {
        let pool = live.as_mut().expect("just built");
        match run_stable(
            pool,
            ground,
            &mut checker,
            &mut extra_clauses,
            assumptions,
            &mut stats,
            cache,
            true,
        ) {
            StableOutcome::Model(m) => {
                winner_seed = pool.winner_seed;
                m
            }
            StableOutcome::Interrupted => {
                // The budget expired before even one stable model was found: there
                // is nothing to degrade to.
                pool.absorb_stats(&mut stats.sat);
                pool.harvest(cache);
                return Ok(OptOutcome::Budget { partial: None, sat: stats.sat });
            }
            StableOutcome::Unsat => {
                // The *unbounded* program is unsatisfiable under the assumptions: the
                // failed-assumption set is a genuine unsat core (later UNSATs merely
                // prove an objective bound optimal and carry no core).
                pool.absorb_stats(&mut stats.sat);
                pool.harvest(cache);
                let core = if deterministic_trajectory {
                    // Serial search on a cold cache: the canonical worker just ran the
                    // exact deterministic refutation, so its core is the canonical one.
                    pool.canonical().failed_assumptions().to_vec()
                } else {
                    // The refuting trajectory was steered by transferred clauses
                    // and/or race timing, and final-conflict cores are trajectory-
                    // dependent. Re-prove on a fresh serial cold-started solver — the
                    // same search a cold serial solve would have run — so diagnostics
                    // never depend on what happened to be cached or who won a race.
                    // An expired budget interrupts the re-proof; the live pool's core
                    // (sound, merely trajectory-dependent) is the graceful fallback.
                    canonical_core(
                        ground,
                        translation,
                        config,
                        &levels,
                        fixed,
                        assumptions,
                        &mut stats,
                        cache,
                        budget,
                    )
                    .unwrap_or_else(|| pool.canonical().failed_assumptions().to_vec())
                };
                *retired = live.take().map(Pool::into_canonical);
                return Ok(OptOutcome::Unsat { core, sat: stats.sat });
            }
        }
    };
    let mut best_costs = level_costs(&levels, &best);

    // Optimize level by level, highest priority first. `live_bounds[li]` is the index
    // of level `li`'s objective bound inside the live solver (if added), so repeated
    // descents tighten one constraint in place instead of stacking superseded copies.
    let debug = std::env::var("ASP_DEBUG").is_ok();
    let mut fixed_bounds: Vec<LinearSpec> = Vec::new();
    let mut live_bounds: Vec<Option<usize>> = vec![None; levels.len()];
    for (li, level) in levels.iter().enumerate() {
        // First attempt per level is an *optimistic zero-probe*: most levels of a
        // lexicographic cascade optimize to zero, and proving "a zero-cost model
        // exists" in one run beats walking the bound down one unit per model. Only
        // when the probe fails (UNSAT — which poisons the solver exactly like a
        // final optimality proof would) does the level fall back to classic
        // one-step descents from the incumbent.
        let mut optimistic_failed = false;
        // The level's optimum is known to be strictly greater than this (a failed
        // probe is a lower-bound proof): reaching `proven_above + 1` is optimal
        // without paying a final UNSAT run.
        let mut proven_above: i64 = -1;
        loop {
            let current = best_costs[li];
            if debug {
                eprintln!(
                    "[asp] level prio {} ({} lits): current cost {}",
                    level.priority,
                    level.lits.len(),
                    current
                );
            }
            if current == proven_above + 1 {
                break;
            }
            let pool = match live.as_mut() {
                Some(p) => p,
                None => {
                    // The previous run retired the pool (UNSAT bound). Rebuild with
                    // every frozen bound, the clause cache (which now carries the
                    // retired workers' provenance-safe learned clauses), and the
                    // loop nogoods, warm-started from the incumbent's phases.
                    let mut p = build_pool(
                        translation,
                        config,
                        fixed,
                        &fixed_bounds,
                        &extra_clauses,
                        cache,
                        budget,
                    );
                    for (v, &val) in best.iter().enumerate() {
                        p.set_phase(v as Var, val);
                    }
                    // The frozen non-zero bounds occupy the linear slots after the
                    // translation's, in level order; zero bounds became root-level
                    // unit clauses inside build_solver and need no slot.
                    live_bounds = vec![None; levels.len()];
                    let mut slot = translation.linears.len();
                    for (lj, b) in fixed_bounds.iter().enumerate() {
                        if b.upper == 0 {
                            live_bounds[lj] = Some(ZERO_BOUND);
                        } else {
                            live_bounds[lj] = Some(slot);
                            slot += 1;
                        }
                    }
                    live.insert(p)
                }
            };
            // Probe only when the incumbent is far from zero: at `current <= 2` a
            // classic descent reaches a zero-cost model just as fast when one exists,
            // and a failed probe would waste a full UNSAT proof (plus a solver
            // rebuild) on levels whose optimum is small but nonzero.
            let optimistic = !optimistic_failed
                && current > 2
                && strategy == OptStrategy::BranchAndBound
                && live_bounds[li].is_none();
            let bound = if optimistic { 0 } else { current - 1 };
            match strategy {
                OptStrategy::BranchAndBound => {
                    set_level_bound(pool, &mut live_bounds, li, level, bound);
                }
                OptStrategy::Descent => {
                    // Demand improvement on this level and at least no regression on the
                    // remaining ones simultaneously.
                    set_level_bound(pool, &mut live_bounds, li, level, bound);
                    for (lj, l) in levels.iter().enumerate().skip(li + 1) {
                        set_level_bound(pool, &mut live_bounds, lj, l, best_costs[lj]);
                    }
                }
            }
            match run_stable(
                pool,
                ground,
                &mut checker,
                &mut extra_clauses,
                assumptions,
                &mut stats,
                cache,
                false,
            ) {
                StableOutcome::Model(m) => {
                    winner_seed = pool.winner_seed;
                    best_costs = level_costs(&levels, &m);
                    best = m;
                }
                StableOutcome::Interrupted => {
                    // Budget expired mid-descent: degrade gracefully to the incumbent
                    // — a genuine stable model satisfying every bound proven so far,
                    // just not necessarily optimal. No canonical re-extraction (it
                    // would be interrupted too); under an expired budget the model is
                    // trajectory-dependent by design.
                    winner_seed = pool.winner_seed;
                    pool.absorb_stats(&mut stats.sat);
                    pool.harvest(cache);
                    let cost = levels
                        .iter()
                        .zip(best_costs.iter())
                        .map(|(l, &c)| (l.priority, c + l.base))
                        .collect();
                    let partial = OptimalModel {
                        model: best,
                        cost,
                        models_examined: stats.models,
                        solver_runs: stats.runs,
                        conflicts: stats.sat.conflicts,
                        loop_nogoods: stats.loop_nogoods,
                        sat: stats.sat.clone(),
                        winner_seed,
                    };
                    return Ok(OptOutcome::Budget {
                        partial: Some(Box::new(partial)),
                        sat: stats.sat,
                    });
                }
                StableOutcome::Unsat => {
                    // The bound that failed poisons the pool either way, so retire
                    // it (a later run rebuilds on demand — its provenance-safe
                    // learned clauses live on through the cache). A failed one-step
                    // descent proves the level optimal; a failed zero-probe only
                    // proves the optimum is nonzero — fall back to classic descents.
                    winner_seed = pool.winner_seed;
                    pool.absorb_stats(&mut stats.sat);
                    pool.harvest(cache);
                    live = None;
                    if optimistic {
                        optimistic_failed = true;
                        proven_above = 0;
                        continue;
                    }
                    break;
                }
            }
        }
        // Freeze this level at its optimum for the remaining levels — and mirror the
        // frozen bound into the still-live pool (a pure tightening the incumbent
        // satisfies), keeping it interchangeable with a freshly built one.
        fixed_bounds.push(level_bound(level, best_costs[li]));
        if let Some(pool) = live.as_mut() {
            set_level_bound(pool, &mut live_bounds, li, level, best_costs[li]);
        }
    }
    if let Some(pool) = live.as_ref() {
        pool.absorb_stats(&mut stats.sat);
        pool.harvest(cache);
    }
    drop(live);

    // Canonical model extraction: the incumbent `best` depends on the search
    // trajectory (which worker won each race, which clauses were transferred in), but
    // the optimal cost vector `best_costs` does not — it is the unique lexicographic
    // optimum. Re-derive the returned model on a fresh, serial, cold-started solver
    // with every level pinned at its optimal bound: its inputs are a deterministic
    // function of the problem alone, so serial, portfolio, and warm-started solves
    // all return the same model byte for byte. With all levels simultaneously bounded
    // at the optimum, any stable model of the pinned program has exactly the optimal
    // cost (no level can beat its own proven optimum given equality above it), so the
    // extraction cannot fail; the incumbent stays as a debug-checked safety net.
    match extract_canonical(
        ground,
        translation,
        config,
        &levels,
        fixed,
        &fixed_bounds,
        assumptions,
        &mut stats,
        cache,
        budget,
    ) {
        StableOutcome::Model(model) => best = model,
        StableOutcome::Interrupted => {
            // The budget expired between the optimality proof and the canonical
            // re-extraction: the costs are optimal but the returned model would be
            // trajectory-dependent, so surface the incumbent as a budget partial
            // rather than breaking the "Optimal implies deterministic" contract.
            let cost = levels
                .iter()
                .zip(best_costs.iter())
                .map(|(l, &c)| (l.priority, c + l.base))
                .collect();
            let partial = OptimalModel {
                model: best,
                cost,
                models_examined: stats.models,
                solver_runs: stats.runs,
                conflicts: stats.sat.conflicts,
                loop_nogoods: stats.loop_nogoods,
                sat: stats.sat.clone(),
                winner_seed,
            };
            return Ok(OptOutcome::Budget { partial: Some(Box::new(partial)), sat: stats.sat });
        }
        StableOutcome::Unsat => {
            debug_assert!(false, "extraction under pinned optimal bounds must be satisfiable");
        }
    }

    let cost =
        levels.iter().zip(best_costs.iter()).map(|(l, &c)| (l.priority, c + l.base)).collect();
    Ok(OptOutcome::Optimal(OptimalModel {
        model: best,
        cost,
        models_examined: stats.models,
        solver_runs: stats.runs,
        conflicts: stats.sat.conflicts,
        loop_nogoods: stats.loop_nogoods,
        sat: stats.sat,
        winner_seed,
    }))
}

/// Build a fresh serial cold-started pool over the translation (plus `bounds`), with
/// the objective literals phase-biased false — the deterministic solver setup shared
/// by the canonical model extraction and the canonical core re-proof. Nothing
/// trajectory-dependent (session cache contents, accumulated loop nogoods, incumbent
/// phases) flows in, which is precisely what makes the result mode-independent.
fn deterministic_pool(
    translation: &Translation,
    config: &SatConfig,
    levels: &[Level],
    fixed: &[Lit],
    bounds: &[LinearSpec],
    budget: Option<&Arc<SolveBudgetState>>,
) -> Pool {
    let mut serial = config.clone();
    serial.portfolio = 1;
    let empty = ClauseCache::default();
    let mut pool = build_pool(translation, &serial, fixed, bounds, &[], &empty, budget);
    for level in levels {
        for &(l, _) in &level.lits {
            pool.set_phase(l.var(), !l.is_pos());
        }
    }
    pool
}

/// The canonical model extraction run (see [`solve_optimal_assuming`]): one serial
/// deterministic stable-model search with every level pinned at its optimum. Loop
/// nogoods it discovers still flow into the session cache, and its low-level solver
/// work is absorbed into the aggregate statistics — but its model/nogood counters
/// stay local, because they describe the deterministic re-derivation of the answer,
/// not the optimization descent (a warm-started descent that re-derived nothing must
/// still report zero loop nogoods).
#[allow(clippy::too_many_arguments)]
fn extract_canonical(
    ground: &GroundProgram,
    translation: &Translation,
    config: &SatConfig,
    levels: &[Level],
    fixed: &[Lit],
    bounds: &[LinearSpec],
    assumptions: &[Lit],
    stats: &mut RunStats,
    cache: &mut ClauseCache,
    budget: Option<&Arc<SolveBudgetState>>,
) -> StableOutcome {
    let mut pool = deterministic_pool(translation, config, levels, fixed, bounds, budget);
    let mut checker = StabilityChecker::new(ground);
    let mut extras: Vec<Vec<Lit>> = Vec::new();
    let mut local = RunStats::default();
    let outcome = run_stable(
        &mut pool,
        ground,
        &mut checker,
        &mut extras,
        assumptions,
        &mut local,
        cache,
        false,
    );
    stats.runs += local.runs;
    pool.absorb_stats(&mut stats.sat);
    pool.harvest(cache);
    outcome
}

/// Re-prove an UNSAT outcome on a fresh serial cold-started solver and return *its*
/// failed-assumption core — the same core a cold serial solve computes, making
/// diagnostics independent of cross-request clause transfers and race timing.
/// Returns `None` when the solve budget expired before the re-proof finished; the
/// caller falls back to a sound (but trajectory-dependent) core.
#[allow(clippy::too_many_arguments)]
fn canonical_core(
    ground: &GroundProgram,
    translation: &Translation,
    config: &SatConfig,
    levels: &[Level],
    fixed: &[Lit],
    assumptions: &[Lit],
    stats: &mut RunStats,
    cache: &mut ClauseCache,
    budget: Option<&Arc<SolveBudgetState>>,
) -> Option<Vec<Lit>> {
    let mut pool = deterministic_pool(translation, config, levels, fixed, &[], budget);
    let mut checker = StabilityChecker::new(ground);
    let mut extras: Vec<Vec<Lit>> = Vec::new();
    let mut local = RunStats::default();
    let outcome = run_stable(
        &mut pool,
        ground,
        &mut checker,
        &mut extras,
        assumptions,
        &mut local,
        cache,
        true,
    );
    stats.runs += local.runs;
    pool.absorb_stats(&mut stats.sat);
    pool.harvest(cache);
    match outcome {
        StableOutcome::Unsat => Some(pool.canonical().failed_assumptions().to_vec()),
        StableOutcome::Interrupted => None,
        StableOutcome::Model(_) => {
            debug_assert!(false, "the re-proof of an UNSAT search must be UNSAT");
            Some(Vec::new())
        }
    }
}

/// Verdict of one [`StableProbe::check`] query.
#[derive(Debug, Clone)]
pub enum ProbeVerdict {
    /// A stable model exists under the assumptions.
    Stable,
    /// No stable model exists: carries the failed assumption subset (empty when the
    /// program is unsatisfiable without any assumption).
    Unsat(Vec<Lit>),
    /// The solve budget expired before the query reached a verdict. The probe stays
    /// reusable (once the budget is cleared), but the caller should stop probing.
    Interrupted,
}

/// A reusable stable-model satisfiability probe: one solver instance answers many
/// "is there a stable model under these assumptions?" queries. Assumptions are plain
/// decisions (undone by backtracking), so learned clauses and loop nogoods persist
/// across queries — this is what makes deletion-based core minimization affordable:
/// a core of size `k` costs `k` *incremental* probes, not `k` solver rebuilds.
pub struct StableProbe {
    solver: Solver,
    checker: StabilityChecker,
    trivially_unsat: bool,
    nogoods: u64,
}

impl StableProbe {
    /// Build the probe solver once from a grounded translation. `fixed` literals are
    /// asserted as root-level units — per-probe-session truths of `#external` guard
    /// atoms that parameterize the program but are never candidates for blame. The
    /// session `cache`'s clauses warm-start the probe.
    pub fn new(
        ground: &GroundProgram,
        translation: &Translation,
        config: &SatConfig,
        fixed: &[Lit],
        cache: &ClauseCache,
    ) -> Self {
        Self::from_solver(ground, build_solver(translation, config, fixed, &[], &[], cache))
    }

    /// Adopt an existing solver as the probe — typically the retired solver of a
    /// failed [`solve_optimal_assuming`] initial run, whose clause database (with the
    /// same fixed `#external` units and every clause learned refuting the failed
    /// assumptions) is exactly the probe's starting point. Skips a full solver
    /// rebuild, and the learned clauses usually pay again during the probes.
    pub fn from_solver(ground: &GroundProgram, solver: Solver) -> Self {
        StableProbe {
            solver,
            checker: StabilityChecker::new(ground),
            trivially_unsat: ground.trivially_unsat,
            nogoods: 0,
        }
    }

    /// Install (or clear) a shared solve budget on the probe solver, bounding the
    /// total work of the remaining queries (deletion-based core minimization aborts
    /// gracefully on [`ProbeVerdict::Interrupted`], keeping its current core).
    pub fn set_budget(&mut self, budget: Option<Arc<SolveBudgetState>>) {
        self.solver.set_budget(budget);
    }

    /// Search for one stable model under `assumptions`. New loop nogoods flow into
    /// the session `cache`.
    pub fn check(
        &mut self,
        ground: &GroundProgram,
        assumptions: &[Lit],
        cache: &mut ClauseCache,
    ) -> ProbeVerdict {
        if self.trivially_unsat {
            return ProbeVerdict::Unsat(Vec::new());
        }
        loop {
            match self.solver.search_with_assumptions(assumptions) {
                SearchResult::Interrupted => {
                    return ProbeVerdict::Interrupted;
                }
                SearchResult::Unsat => {
                    return ProbeVerdict::Unsat(self.solver.failed_assumptions().to_vec());
                }
                SearchResult::Sat => {
                    let model = self.solver.model();
                    // Loop nogoods (with their external-support witnesses) hold in
                    // every stable model, so they stay valid for later queries too.
                    let Some(nogood) = self.checker.unfounded_nogood(ground, &model) else {
                        return ProbeVerdict::Stable;
                    };
                    self.nogoods += 1;
                    cache.add(&nogood);
                    if !self.solver.add_clause_safe(&nogood) {
                        return ProbeVerdict::Unsat(Vec::new());
                    }
                }
            }
        }
    }

    /// Aggregate low-level statistics of every query so far.
    pub fn stats(&self) -> &SatStats {
        &self.solver.stats
    }

    /// Collect the probe solver's provenance-safe learned clauses into the cache.
    pub fn harvest_into(&self, cache: &mut ClauseCache) {
        cache.harvest(&self.solver);
    }

    /// Loop nogoods added across all queries.
    pub fn loop_nogoods(&self) -> u64 {
        self.nogoods
    }
}

/// Enumerate stable models (without optimization), up to `limit`.
pub fn enumerate_models(
    ground: &GroundProgram,
    translation: &Translation,
    config: &SatConfig,
    limit: usize,
) -> Vec<Vec<bool>> {
    enumerate_models_with_stats(ground, translation, config, limit).0
}

/// [`enumerate_models`], additionally returning the solver's aggregate statistics and
/// the number of candidate models examined (including unstable ones rejected by the
/// stability check — the same meaning the counter has on the optimization path).
pub fn enumerate_models_with_stats(
    ground: &GroundProgram,
    translation: &Translation,
    config: &SatConfig,
    limit: usize,
) -> (Vec<Vec<bool>>, SatStats, u64) {
    let mut models = Vec::new();
    let mut examined = 0u64;
    if ground.trivially_unsat {
        return (models, SatStats::default(), examined);
    }
    let empty_cache = ClauseCache::default();
    let mut solver = build_solver(translation, config, &[], &[], &[], &empty_cache);
    let mut checker = StabilityChecker::new(ground);
    loop {
        if models.len() >= limit {
            break;
        }
        match solver.search() {
            SearchResult::Interrupted => {
                unreachable!("enumeration solvers never carry a stop flag")
            }
            SearchResult::Unsat => break,
            SearchResult::Sat => {
                examined += 1;
                let model = solver.model();
                if let Some(nogood) = checker.unfounded_nogood(ground, &model) {
                    if !solver.add_clause_safe(&nogood) {
                        break;
                    }
                } else {
                    models.push(model.clone());
                    // Block this model (projected on the program atoms).
                    let blocking: Vec<Lit> = (0..translation.num_atoms)
                        .map(|a| if model[a] { Lit::neg(a as Var) } else { Lit::pos(a as Var) })
                        .collect();
                    if !solver.add_blocking_clause(&blocking) {
                        break;
                    }
                }
            }
        }
    }
    let stats = solver.stats.clone();
    (models, stats, examined)
}

#[derive(Default)]
struct RunStats {
    runs: u64,
    models: u64,
    loop_nogoods: u64,
    sat: SatStats,
}

fn collect_levels(ground: &GroundProgram) -> Result<Vec<Level>, OptimizeError> {
    let mut by_priority: BTreeMap<i64, Level> = BTreeMap::new();
    for m in &ground.minimize {
        if m.weight < 0 {
            return Err(OptimizeError {
                message: "negative minimize weights are not supported".into(),
            });
        }
        let level = by_priority.entry(m.priority).or_insert_with(|| Level {
            priority: m.priority,
            lits: Vec::new(),
            base: 0,
        });
        match m.condition {
            None => level.base += m.weight,
            Some(atom) => level.lits.push((Lit::pos(atom as Var), m.weight as u64)),
        }
    }
    // Highest priority first.
    Ok(by_priority.into_values().rev().collect())
}

fn level_costs(levels: &[Level], model: &[bool]) -> Vec<i64> {
    levels
        .iter()
        .map(|level| {
            level
                .lits
                .iter()
                .filter(|(lit, _)| model[lit.var() as usize] == lit.is_pos())
                .map(|&(_, w)| w as i64)
                .sum()
        })
        .collect()
}

fn level_bound(level: &Level, bound: i64) -> LinearSpec {
    let (lits, weights): (Vec<Lit>, Vec<u64>) = level.lits.iter().copied().unzip();
    LinearSpec { condition: None, lits, weights, lower: 0, upper: bound.max(0) as u64 }
}

/// Sentinel "slot" marking a level bound imposed at zero: a zero upper bound over
/// positive weights just forces every weighted literal false, so it is asserted as
/// root-level unit clauses instead of a watched linear constraint — cheaper to
/// propagate, nothing to tighten later, and no heuristic focus needed. This is the
/// common shape for levels that are trivially optimal at zero (e.g. the guarded error
/// levels of a hard-mode concretizer solve).
const ZERO_BOUND: usize = usize::MAX;

/// Assert a zero bound as unit clauses: every literal with a positive weight must be
/// false. (A zero-weight literal contributes nothing to the sum and must stay free.)
fn pin_zero(solver: &mut Solver, lits: impl Iterator<Item = (Lit, u64)>) {
    for (l, w) in lits {
        if w > 0 && !solver.add_clause(&[l.negate()]) {
            break;
        }
    }
}

/// Impose (or tighten) a level's objective bound on a live pool (broadcast to every
/// worker in lockstep). The first time a level is bounded, a linear constraint is
/// added and its literals are bumped and phase-biased towards *false* (clasp's
/// optimization sign heuristic) — otherwise phase saving would keep steering the
/// search back to the just-outlawed incumbent. Subsequent descents of the same level
/// tighten that constraint's upper bound in place, so the solvers never accumulate
/// superseded bounds. A level first bounded at zero is pinned through unit clauses
/// instead (see [`ZERO_BOUND`]).
fn set_level_bound(
    pool: &mut Pool,
    live_bounds: &mut [Option<usize>],
    li: usize,
    level: &Level,
    bound: i64,
) {
    let upper = bound.max(0) as u64;
    if live_bounds[li] == Some(ZERO_BOUND) {
        return; // already pinned at zero — no tighter bound exists
    }
    if live_bounds[li].is_none() && upper == 0 {
        for worker in &mut pool.workers {
            pin_zero(worker, level.lits.iter().copied());
        }
        live_bounds[li] = Some(ZERO_BOUND);
        return;
    }
    // Re-focus the heuristic on the objective at every descent, not only the first:
    // the activity bump and the false-bias refresh are what steer the next search
    // towards cheaper models once phase saving has locked onto the incumbent.
    for worker in &mut pool.workers {
        for &(l, _) in &level.lits {
            worker.bump_variable(l.var(), 0.5);
            worker.set_phase(l.var(), !l.is_pos());
        }
    }
    if let Some(idx) = live_bounds[li] {
        for worker in &mut pool.workers {
            worker.tighten_linear_upper(idx, upper);
        }
        return;
    }
    // Every worker ingested the identical constraint stream, so the new bound's slot
    // is the same in each of them.
    live_bounds[li] = Some(pool.canonical().num_linears());
    for worker in &mut pool.workers {
        worker.add_linear(level_bound(level, bound));
    }
}

fn build_solver(
    translation: &Translation,
    config: &SatConfig,
    fixed: &[Lit],
    bounds: &[LinearSpec],
    extra_clauses: &[Vec<Lit>],
    cache: &ClauseCache,
) -> Solver {
    let mut solver = Solver::new(translation.num_vars, config.clone());
    // Program content is provenance-safe; per-solve artifacts (external units,
    // objective bounds) are not — the distinction is what lets learned clauses be
    // exported back into the session cache. The translation (canonicalized once in
    // `translate`) and the session cache (canonicalized on insert) both honour the
    // trusted contract, so every rebuild ingests them on the validation-free bulk
    // path instead of re-sorting and re-checking each clause.
    solver.load_trusted_clauses(translation.clauses.iter().map(Vec::as_slice), true);
    // Per-solve truths of `#external` guard atoms, as root-level units.
    for &l in fixed {
        if !solver.add_clause(&[l]) {
            break;
        }
    }
    for lin in &translation.linears {
        solver.add_linear_safe(lin.clone());
    }
    // Session cache: loop nogoods and safe learned clauses from earlier solves on
    // this grounding (possibly transferred in from sibling requests with the same
    // closure digest).
    solver.load_trusted_clauses(cache.clauses().iter().map(Vec::as_slice), true);
    for clause in extra_clauses {
        if !solver.add_clause_safe(clause) {
            break;
        }
    }
    for b in bounds {
        if b.upper == 0 {
            // A frozen zero bound forces every weighted literal false: root-level
            // unit clauses propagate this far more cheaply than a watched linear
            // constraint, and the heuristic has nothing to decide about them.
            pin_zero(&mut solver, b.lits.iter().copied().zip(b.weights.iter().copied()));
            continue;
        }
        solver.add_linear(b.clone());
        // Focus the heuristic on objective literals early.
        for &l in &b.lits {
            solver.bump_variable(l.var(), 0.5);
        }
    }
    solver
}

/// Derive worker `i`'s solver configuration from the caller's base. Worker 0 runs the
/// *exact* base configuration — it is the canonical worker, byte-for-byte the serial
/// solver — while the rest diversify along classic portfolio axes (clasp's
/// `--parallel-mode` playbook): RNG seed, decision phase polarity, restart cadence,
/// random-polarity rate, and activity-decay speed.
fn worker_config(base: &SatConfig, i: usize) -> SatConfig {
    let mut cfg = base.clone();
    if i == 0 {
        return cfg;
    }
    cfg.seed ^= (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    if i % 2 == 1 {
        cfg.default_phase = !cfg.default_phase;
    }
    cfg.restart_base <<= i % 3;
    cfg.random_polarity = (cfg.random_polarity + 0.01 * i as f64).min(0.2);
    cfg.var_decay = (cfg.var_decay * 0.99f64.powi((i % 4) as i32)).max(0.8);
    cfg
}

/// The claiming worker's view of one race.
enum RaceVerdict {
    /// A (supported) model was found; stability is the caller's business.
    Sat(Vec<bool>),
    /// No model under the current bounds and assumptions.
    Unsat,
    /// Every worker was interrupted by an expired solve budget before any verdict
    /// (the race stop flag alone can never interrupt all workers — the claimant
    /// finishes first).
    Interrupted,
}

/// A portfolio of K differently-seeded solver workers kept in lockstep over one
/// clause/constraint stream.
///
/// Worker 0 is the *canonical* worker: it runs the caller's exact configuration, so a
/// pool of one degenerates to precisely the serial solver. All problem mutation
/// (clauses, linear constraints, bounds, phase hints) is broadcast to every worker,
/// keeping the *formula* identical across the pool while each worker's *search state*
/// (learned clauses, activities, saved phases) diverges freely — any worker's verdict
/// is therefore a verdict about the shared formula.
struct Pool {
    workers: Vec<Solver>,
    /// Per-worker RNG seed, for `winner_seed` reporting.
    seeds: Vec<u64>,
    /// Shared stop flag: raised by a race claimant to cancel the other workers.
    /// Installed into the workers only when the pool actually races (K > 1).
    stop: Arc<AtomicBool>,
    /// Seed of the worker configuration that claimed the most recent race.
    winner_seed: u64,
}

impl Pool {
    /// The canonical worker (exact base configuration).
    fn canonical(&self) -> &Solver {
        &self.workers[0]
    }

    /// Sum every worker's low-level counters into `total` — cancelled losers
    /// included, so the statistics reflect total work done, not the winner's share.
    fn absorb_stats(&self, total: &mut SatStats) {
        for w in &self.workers {
            total.absorb(&w.stats);
        }
    }

    /// Collect every worker's provenance-safe learned clauses into the cache.
    fn harvest(&self, cache: &mut ClauseCache) {
        for w in &self.workers {
            cache.harvest(w);
        }
    }

    /// Dissolve the pool into its canonical worker (retired solvers feed
    /// [`StableProbe::from_solver`]), uninstalling the stop flag and the solve
    /// budget so an adopter can never observe a stale interrupt.
    fn into_canonical(mut self) -> Solver {
        let mut w = self.workers.swap_remove(0);
        w.set_stop(None);
        w.set_budget(None);
        w
    }

    /// Broadcast a phase hint to every worker.
    fn set_phase(&mut self, v: Var, phase: bool) {
        for w in &mut self.workers {
            w.set_phase(v, phase);
        }
    }

    /// Broadcast a provenance-safe clause. Returns `false` when any worker refutes it
    /// at the root — a root conflict in one worker is a fact about the shared formula.
    fn add_clause_safe(&mut self, lits: &[Lit]) -> bool {
        let mut ok = true;
        for w in &mut self.workers {
            ok &= w.add_clause_safe(lits);
        }
        ok
    }

    /// Race every worker on one search under `assumptions`; the first worker to reach
    /// a claimable verdict wins and cancels the rest through the shared stop flag.
    ///
    /// A SAT verdict is claimable by any worker. An UNSAT verdict is claimable by any
    /// worker unless `need_core` is set — then only worker 0 may claim it, because the
    /// caller consumes the final-conflict unsat core and only the canonical worker's
    /// core is deterministic. Interrupted workers never claim. Termination: worker 0
    /// can only be interrupted after someone else claimed, so some worker always
    /// claims and the race never dangles.
    fn race(&mut self, assumptions: &[Lit], need_core: bool) -> RaceVerdict {
        if self.workers.len() == 1 {
            self.winner_seed = self.seeds[0];
            return match self.workers[0].search_with_assumptions(assumptions) {
                SearchResult::Sat => RaceVerdict::Sat(self.workers[0].model()),
                SearchResult::Unsat => RaceVerdict::Unsat,
                // A pool of one has no stop flag installed, so an interrupt can only
                // come from an expired solve budget.
                SearchResult::Interrupted => RaceVerdict::Interrupted,
            };
        }
        self.stop.store(false, Ordering::SeqCst);
        let claimed = AtomicUsize::new(usize::MAX);
        let claimed = &claimed;
        let stop = &self.stop;
        let mut verdicts: Vec<Option<SearchResult>> =
            (0..self.workers.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (i, (worker, slot)) in self.workers.iter_mut().zip(verdicts.iter_mut()).enumerate()
            {
                scope.spawn(move || {
                    let result = worker.search_with_assumptions(assumptions);
                    let may_claim = match result {
                        SearchResult::Sat => true,
                        SearchResult::Unsat => !need_core || i == 0,
                        SearchResult::Interrupted => false,
                    };
                    if may_claim
                        && claimed
                            .compare_exchange(usize::MAX, i, Ordering::SeqCst, Ordering::SeqCst)
                            .is_ok()
                    {
                        stop.store(true, Ordering::SeqCst);
                    }
                    *slot = Some(result);
                });
            }
        });
        let winner = claimed.load(Ordering::SeqCst);
        if winner == usize::MAX {
            // No worker claimed: with the race flag alone that is impossible (the
            // claimant always finishes first), so the solve budget expired and
            // interrupted at least the canonical worker (an unclaimable `need_core`
            // UNSAT from another worker may coexist; the budget verdict wins).
            debug_assert_eq!(
                verdicts[0],
                Some(SearchResult::Interrupted),
                "an unclaimed race means the canonical worker was interrupted"
            );
            return RaceVerdict::Interrupted;
        }
        self.winner_seed = self.seeds[winner];
        match verdicts[winner] {
            Some(SearchResult::Sat) => RaceVerdict::Sat(self.workers[winner].model()),
            _ => RaceVerdict::Unsat,
        }
    }
}

/// Build a pool of `config.portfolio.max(1)` workers, each over the identical clause
/// stream (see [`build_solver`]) under its [`worker_config`] variation, with the
/// shared stop flag installed whenever there is more than one worker to race, and the
/// shared solve budget (when one is set) installed into *every* worker — the budget
/// must survive the per-race stop-flag resets, which is why it is a separate flag.
fn build_pool(
    translation: &Translation,
    config: &SatConfig,
    fixed: &[Lit],
    bounds: &[LinearSpec],
    extra_clauses: &[Vec<Lit>],
    cache: &ClauseCache,
    budget: Option<&Arc<SolveBudgetState>>,
) -> Pool {
    let k = config.portfolio.max(1);
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::with_capacity(k);
    let mut seeds = Vec::with_capacity(k);
    for i in 0..k {
        let cfg = worker_config(config, i);
        seeds.push(cfg.seed);
        let mut w = build_solver(translation, &cfg, fixed, bounds, extra_clauses, cache);
        if k > 1 {
            w.set_stop(Some(Arc::clone(&stop)));
        }
        if let Some(b) = budget {
            w.set_budget(Some(Arc::clone(b)));
        }
        workers.push(w);
    }
    Pool { workers, seeds, stop, winner_seed: config.seed }
}

/// Outcome of driving a pool to the next stable model ([`run_stable`]).
enum StableOutcome {
    /// The next stable model under the pool's current bounds.
    Model(Vec<bool>),
    /// No stable model exists under the current bounds and assumptions.
    Unsat,
    /// The solve budget expired before a verdict.
    Interrupted,
}

/// Drive a live pool to the next *stable* model (adding loop nogoods for unstable
/// supported models along the way, broadcast to every worker), or
/// [`StableOutcome::Unsat`] when none exists under the pool's current bounds. The
/// workers keep all state between calls; aggregate statistics are absorbed by the
/// caller when the pool is retired. `need_core` marks the searches whose UNSAT
/// outcome feeds final-conflict core extraction (see [`Pool::race`]).
#[allow(clippy::too_many_arguments)]
fn run_stable(
    pool: &mut Pool,
    ground: &GroundProgram,
    checker: &mut StabilityChecker,
    extra_clauses: &mut Vec<Vec<Lit>>,
    assumptions: &[Lit],
    stats: &mut RunStats,
    cache: &mut ClauseCache,
    need_core: bool,
) -> StableOutcome {
    stats.runs += 1;
    let debug = std::env::var("ASP_DEBUG").is_ok();
    loop {
        match pool.race(assumptions, need_core) {
            RaceVerdict::Unsat => return StableOutcome::Unsat,
            RaceVerdict::Interrupted => return StableOutcome::Interrupted,
            RaceVerdict::Sat(model) => {
                stats.models += 1;
                // Loop nogood: at least one unfounded atom must be false, or one of
                // the set's external supports must come true. It is a consequence of
                // the program (not of the bounds), so it persists and is replayed
                // into every future solver.
                let Some(nogood) = checker.unfounded_nogood(ground, &model) else {
                    return StableOutcome::Model(model);
                };
                stats.loop_nogoods += 1;
                if debug && stats.loop_nogoods.is_multiple_of(50) {
                    eprintln!(
                        "[asp] {} loop nogoods so far (clause size {})",
                        stats.loop_nogoods,
                        nogood.len()
                    );
                }
                extra_clauses.push(nogood.clone());
                cache.add(&nogood);
                if !pool.add_clause_safe(&nogood) {
                    return StableOutcome::Unsat;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::Grounder;
    use crate::parser::parse_program;
    use crate::symbols::SymbolTable;
    use crate::translate::translate;

    fn setup(text: &str) -> (GroundProgram, Translation, SymbolTable) {
        let program = parse_program(text).unwrap();
        let mut symbols = SymbolTable::new();
        let ground = Grounder::new(&mut symbols).ground(&program, &[]).unwrap();
        let translation = translate(&ground);
        (ground, translation, symbols)
    }

    fn true_atoms(ground: &GroundProgram, symbols: &SymbolTable, model: &[bool]) -> Vec<String> {
        ground
            .atoms
            .iter()
            .filter(|(id, _)| model[*id as usize])
            .map(|(_, a)| a.display(symbols).to_string())
            .collect()
    }

    #[test]
    fn fig3_has_exactly_two_stable_models() {
        let (ground, translation, symbols) = setup(
            r#"
            depends_on(a, b).
            depends_on(a, c).
            depends_on(b, d).
            depends_on(c, d).
            node(Dep) :- node(Pkg), depends_on(Pkg, Dep).
            1 { node(a); node(b) }.
            "#,
        );
        let models = enumerate_models(&ground, &translation, &SatConfig::default(), 16);
        // Answer 1: node(b), node(d). Answer 2: node(a), node(b), node(c), node(d) —
        // and also the model where only node(a) is chosen, which derives b, c, d and is
        // identical to answer 2 as a set of atoms. Distinct atom sets: exactly 2.
        let mut sets: Vec<Vec<String>> = models
            .iter()
            .map(|m| {
                let mut v: Vec<String> = true_atoms(&ground, &symbols, m)
                    .into_iter()
                    .filter(|a| a.starts_with("node("))
                    .collect();
                v.sort();
                v
            })
            .collect();
        sets.sort();
        sets.dedup();
        assert_eq!(sets.len(), 2, "{sets:?}");
        assert!(sets.contains(&vec!["node(b)".to_string(), "node(d)".to_string()]));
        assert!(sets.contains(&vec![
            "node(a)".to_string(),
            "node(b)".to_string(),
            "node(c)".to_string(),
            "node(d)".to_string()
        ]));
    }

    #[test]
    fn optimization_prefers_lower_weights() {
        let (ground, translation, symbols) = setup(
            r#"
            node(p).
            possible_version(p, v_new, 0).
            possible_version(p, v_old, 1).
            1 { version(P, V) : possible_version(P, V, W) } 1 :- node(P).
            version_weight(P, V, W) :- version(P, V), possible_version(P, V, W).
            #minimize{ W@3,P,V : version_weight(P, V, W) }.
            "#,
        );
        let result = solve_optimal(
            &ground,
            &translation,
            &SatConfig::default(),
            OptStrategy::BranchAndBound,
        )
        .unwrap()
        .expect("satisfiable");
        let atoms = true_atoms(&ground, &symbols, &result.model);
        assert!(atoms.contains(&"version(p,v_new)".to_string()), "{atoms:?}");
        assert_eq!(result.cost, vec![(3, 0)]);
    }

    #[test]
    fn lexicographic_priorities_are_respected() {
        // Two choices: a cheap option on the low-priority criterion conflicts with the
        // cheap option on the high-priority criterion. The high-priority one must win.
        let (ground, translation, symbols) = setup(
            r#"
            1 { pick(x); pick(y) } 1.
            high_cost(x, 0). high_cost(y, 5).
            low_cost(x, 7).  low_cost(y, 0).
            high(P, W) :- pick(P), high_cost(P, W).
            low(P, W) :- pick(P), low_cost(P, W).
            #minimize{ W@10,P : high(P, W) }.
            #minimize{ W@1,P : low(P, W) }.
            "#,
        );
        let result = solve_optimal(
            &ground,
            &translation,
            &SatConfig::default(),
            OptStrategy::BranchAndBound,
        )
        .unwrap()
        .expect("satisfiable");
        let atoms = true_atoms(&ground, &symbols, &result.model);
        assert!(atoms.contains(&"pick(x)".to_string()));
        assert_eq!(result.cost, vec![(10, 0), (1, 7)]);
    }

    #[test]
    fn descent_strategy_matches_bb_result() {
        let text = r#"
            1 { pick(x); pick(y); pick(z) } 1.
            cost(x, 3). cost(y, 1). cost(z, 2).
            paid(P, W) :- pick(P), cost(P, W).
            #minimize{ W@1,P : paid(P, W) }.
        "#;
        let (ground, translation, symbols) = setup(text);
        for strategy in [OptStrategy::BranchAndBound, OptStrategy::Descent] {
            let result = solve_optimal(&ground, &translation, &SatConfig::default(), strategy)
                .unwrap()
                .expect("satisfiable");
            let atoms = true_atoms(&ground, &symbols, &result.model);
            assert!(atoms.contains(&"pick(y)".to_string()), "{strategy:?}: {atoms:?}");
            assert_eq!(result.cost, vec![(1, 1)]);
        }
    }

    #[test]
    fn unstable_supported_models_are_rejected() {
        // p and q support each other; the only stable model is empty, so r (which needs
        // p) must be false, and minimizing not_r cannot pretend otherwise.
        let (ground, translation, symbols) = setup(
            r#"
            base(1).
            p :- q.
            q :- p.
            r :- p.
            "#,
        );
        let models = enumerate_models(&ground, &translation, &SatConfig::default(), 8);
        assert_eq!(models.len(), 1);
        let atoms = true_atoms(&ground, &symbols, &models[0]);
        assert_eq!(atoms, vec!["base(1)".to_string()]);
    }

    #[test]
    fn unsat_program_returns_none() {
        let (ground, translation, _symbols) = setup(
            r#"
            p(a).
            :- p(a).
            "#,
        );
        let result = solve_optimal(
            &ground,
            &translation,
            &SatConfig::default(),
            OptStrategy::BranchAndBound,
        )
        .unwrap();
        assert!(result.is_none());
    }

    #[test]
    fn constant_minimize_contributions_are_reported() {
        let (ground, translation, _symbols) = setup(
            r#"
            always(a).
            #minimize{ 4@2,a : always(a) }.
            "#,
        );
        let result = solve_optimal(
            &ground,
            &translation,
            &SatConfig::default(),
            OptStrategy::BranchAndBound,
        )
        .unwrap()
        .expect("satisfiable");
        assert_eq!(result.cost, vec![(2, 4)]);
    }
}

//! Recursive-descent parser for the ASP input language.

use std::fmt;

use crate::ast::{
    ArithOp, Atom, BodyElem, ChoiceElement, CmpOp, Head, Literal, MinimizeElement, Program, Rule,
    Term,
};
use crate::lexer::{tokenize, LexError, Spanned, Token};

/// A parse error, with the source line where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
    /// 1-based source line (0 when at end of input).
    pub line: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { message: e.message, line: e.line }
    }
}

/// Parse an ASP program from text.
pub fn parse_program(input: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut program = Program::default();
    while !parser.eof() {
        parser.parse_statement(&mut program)?;
    }
    Ok(program)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn eof(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|s| &s.token)
    }

    fn line(&self) -> usize {
        self.tokens.get(self.pos).or_else(|| self.tokens.last()).map(|s| s.line).unwrap_or(0)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError { message: message.into(), line: self.line() }
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, tok: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == tok => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.error(format!("expected '{tok}', found '{t}'"))),
            None => Err(self.error(format!("expected '{tok}', found end of input"))),
        }
    }

    fn eat(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_statement(&mut self, program: &mut Program) -> Result<(), ParseError> {
        match self.peek() {
            Some(Token::Const) => {
                self.pos += 1;
                let name = match self.advance() {
                    Some(Token::Ident(s)) => s,
                    _ => return Err(self.error("expected identifier after #const")),
                };
                self.expect(&Token::Eq)?;
                let value = self.parse_term()?;
                self.expect(&Token::Dot)?;
                program.consts.push((name, value));
            }
            Some(Token::External) => {
                // `#external atom.` — the atom must be ground (variables would need a
                // domain to range over, which this dialect's externals do not have).
                self.pos += 1;
                let atom = self.parse_atom()?;
                if !atom.is_ground() {
                    return Err(self.error("#external atoms must be ground"));
                }
                self.expect(&Token::Dot)?;
                program.externals.push(atom);
            }
            Some(Token::Minimize) | Some(Token::Maximize) => {
                let maximize = self.peek() == Some(&Token::Maximize);
                if maximize {
                    return Err(
                        self.error("#maximize is not supported; negate weights and use #minimize")
                    );
                }
                self.pos += 1;
                self.expect(&Token::LBrace)?;
                loop {
                    let elem = self.parse_minimize_element()?;
                    program.minimize.push(elem);
                    if !self.eat(&Token::Semi) {
                        break;
                    }
                }
                self.expect(&Token::RBrace)?;
                self.expect(&Token::Dot)?;
            }
            Some(_) => {
                let rule = self.parse_rule()?;
                program.rules.push(rule);
            }
            None => {}
        }
        Ok(())
    }

    fn parse_minimize_element(&mut self) -> Result<MinimizeElement, ParseError> {
        // weight [@ priority] [, term]* [: conditions]
        let weight = self.parse_term()?;
        let priority = if self.eat(&Token::At) { self.parse_term()? } else { Term::Int(0) };
        let mut terms = Vec::new();
        while self.eat(&Token::Comma) {
            terms.push(self.parse_term()?);
        }
        let mut conditions = Vec::new();
        if self.eat(&Token::Colon) {
            loop {
                conditions.push(self.parse_literal()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        Ok(MinimizeElement { weight, priority, terms, conditions })
    }

    fn parse_rule(&mut self) -> Result<Rule, ParseError> {
        // Integrity constraint?
        if self.eat(&Token::If) {
            let body = self.parse_body()?;
            self.expect(&Token::Dot)?;
            return Ok(Rule { head: Head::None, body });
        }
        let head = self.parse_head()?;
        let body = if self.eat(&Token::If) { self.parse_body()? } else { Vec::new() };
        self.expect(&Token::Dot)?;
        Ok(Rule { head, body })
    }

    fn parse_head(&mut self) -> Result<Head, ParseError> {
        // Choice head: optional lower bound term followed by '{', or '{' directly.
        let starts_choice = matches!(self.peek(), Some(Token::LBrace))
            || (matches!(self.peek(), Some(Token::Int(_)) | Some(Token::Variable(_)))
                && matches!(self.peek2(), Some(Token::LBrace)));
        if starts_choice {
            let lower = if !matches!(self.peek(), Some(Token::LBrace)) {
                Some(self.parse_term()?)
            } else {
                None
            };
            self.expect(&Token::LBrace)?;
            let mut elements = Vec::new();
            if self.peek() != Some(&Token::RBrace) {
                loop {
                    let atom = self.parse_atom()?;
                    let mut conditions = Vec::new();
                    if self.eat(&Token::Colon) {
                        loop {
                            conditions.push(self.parse_literal()?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                    }
                    elements.push(ChoiceElement { atom, conditions });
                    if !self.eat(&Token::Semi) {
                        break;
                    }
                }
            }
            self.expect(&Token::RBrace)?;
            let upper = if matches!(self.peek(), Some(Token::Int(_)) | Some(Token::Variable(_))) {
                Some(self.parse_term()?)
            } else {
                None
            };
            return Ok(Head::Choice { lower, upper, elements });
        }
        Ok(Head::Atom(self.parse_atom()?))
    }

    fn parse_body(&mut self) -> Result<Vec<BodyElem>, ParseError> {
        let mut body = Vec::new();
        loop {
            let literal = self.parse_literal()?;
            // Conditional literal?
            if self.eat(&Token::Colon) {
                let mut conditions = Vec::new();
                loop {
                    conditions.push(self.parse_literal()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                body.push(BodyElem::Cond { literal, conditions });
                // After a conditional literal only ';' (or end of body) may follow.
                if self.eat(&Token::Semi) {
                    continue;
                }
                break;
            }
            body.push(BodyElem::Lit(literal));
            if self.eat(&Token::Comma) || self.eat(&Token::Semi) {
                continue;
            }
            break;
        }
        Ok(body)
    }

    fn parse_literal(&mut self) -> Result<Literal, ParseError> {
        if self.eat(&Token::Not) {
            let atom = self.parse_atom()?;
            return Ok(Literal::Pred { negated: true, atom });
        }
        // Could be an atom or a comparison: parse a term first when it cannot be an atom,
        // otherwise parse an atom and check for a comparison operator (which would make the
        // "atom" a plain term on the left-hand side).
        let is_atom_start = matches!(self.peek(), Some(Token::Ident(_)));
        if is_atom_start && matches!(self.peek2(), Some(Token::LParen)) {
            let atom = self.parse_atom()?;
            return Ok(Literal::Pred { negated: false, atom });
        }
        // Otherwise parse a term and see whether a comparison follows.
        let lhs = self.parse_term()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(CmpOp::Eq),
            Some(Token::Ne) => Some(CmpOp::Ne),
            Some(Token::Lt) => Some(CmpOp::Lt),
            Some(Token::Le) => Some(CmpOp::Le),
            Some(Token::Gt) => Some(CmpOp::Gt),
            Some(Token::Ge) => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.parse_term()?;
            return Ok(Literal::Cmp { op, lhs, rhs });
        }
        // A bare term used as a literal must be a 0-ary predicate.
        match lhs {
            Term::Sym(name) => Ok(Literal::Pred { negated: false, atom: Atom::new(&name, vec![]) }),
            other => Err(self.error(format!("expected a literal, found bare term '{other}'"))),
        }
    }

    fn parse_atom(&mut self) -> Result<Atom, ParseError> {
        let name = match self.advance() {
            Some(Token::Ident(s)) => s,
            Some(t) => return Err(self.error(format!("expected predicate name, found '{t}'"))),
            None => return Err(self.error("expected predicate name, found end of input")),
        };
        let mut args = Vec::new();
        if self.eat(&Token::LParen) {
            if self.peek() != Some(&Token::RParen) {
                loop {
                    args.push(self.parse_term()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
        }
        Ok(Atom { pred: name, args })
    }

    fn parse_term(&mut self) -> Result<Term, ParseError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => ArithOp::Add,
                Some(Token::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_mul()?;
            lhs = Term::BinOp(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<Term, ParseError> {
        let mut lhs = self.parse_factor()?;
        while self.peek() == Some(&Token::Star) {
            self.pos += 1;
            let rhs = self.parse_factor()?;
            lhs = Term::BinOp(ArithOp::Mul, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_factor(&mut self) -> Result<Term, ParseError> {
        match self.advance() {
            Some(Token::Int(i)) => Ok(Term::Int(i)),
            Some(Token::Minus) => match self.advance() {
                Some(Token::Int(i)) => Ok(Term::Int(-i)),
                _ => Err(self.error("expected integer after unary '-'")),
            },
            Some(Token::Str(s)) => Ok(Term::Sym(s)),
            Some(Token::Ident(s)) => Ok(Term::Sym(s)),
            Some(Token::Variable(v)) => Ok(Term::Var(v)),
            Some(Token::LParen) => {
                let t = self.parse_term()?;
                self.expect(&Token::RParen)?;
                Ok(t)
            }
            Some(t) => Err(self.error(format!("expected a term, found '{t}'"))),
            None => Err(self.error("expected a term, found end of input")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_facts_and_rules() {
        let p = parse_program(
            r#"
            node("hdf5").
            depends_on("hdf5", "mpi").
            node(Dependency) :- node(Package), depends_on(Package, Dependency).
            :- depends_on(Package, Package).
            "#,
        )
        .unwrap();
        assert_eq!(p.rules.len(), 4);
        assert!(matches!(p.rules[0].head, Head::Atom(_)));
        assert!(p.rules[0].body.is_empty());
        assert!(matches!(p.rules[3].head, Head::None));
    }

    #[test]
    fn parse_choice_rule_with_bounds() {
        let p =
            parse_program("1 { version(P, V) : possible_version(P, V) } 1 :- node(P).").unwrap();
        match &p.rules[0].head {
            Head::Choice { lower, upper, elements } => {
                assert_eq!(lower, &Some(Term::Int(1)));
                assert_eq!(upper, &Some(Term::Int(1)));
                assert_eq!(elements.len(), 1);
                assert_eq!(elements[0].conditions.len(), 1);
            }
            other => panic!("expected choice head, got {other:?}"),
        }
        assert_eq!(p.rules[0].body.len(), 1);
    }

    #[test]
    fn parse_choice_without_bounds() {
        let p = parse_program("{ hash(P, Hash) : installed_hash(P, Hash) } 1 :- node(P).").unwrap();
        match &p.rules[0].head {
            Head::Choice { lower, upper, .. } => {
                assert_eq!(lower, &None);
                assert_eq!(upper, &Some(Term::Int(1)));
            }
            other => panic!("expected choice head, got {other:?}"),
        }
        // Fact-level choice, as in Fig. 3.
        let p = parse_program("1 { node(a); node(b) }.").unwrap();
        match &p.rules[0].head {
            Head::Choice { lower, upper, elements } => {
                assert_eq!(lower, &Some(Term::Int(1)));
                assert_eq!(upper, &None);
                assert_eq!(elements.len(), 2);
            }
            other => panic!("expected choice head, got {other:?}"),
        }
    }

    #[test]
    fn parse_minimize_statement() {
        let p = parse_program("#minimize{ W@3,P,V : version_weight(P, V, W)}.").unwrap();
        assert_eq!(p.minimize.len(), 1);
        let m = &p.minimize[0];
        assert_eq!(m.weight, Term::Var("W".into()));
        assert_eq!(m.priority, Term::Int(3));
        assert_eq!(m.terms.len(), 2);
        assert_eq!(m.conditions.len(), 1);
    }

    #[test]
    fn parse_minimize_with_arithmetic_priority() {
        let p = parse_program(
            "#minimize{ W@2+Priority,P : version_weight(P, W), build_priority(P, Priority) }.",
        )
        .unwrap();
        let m = &p.minimize[0];
        assert!(matches!(m.priority, Term::BinOp(ArithOp::Add, _, _)));
        assert_eq!(m.conditions.len(), 2);
    }

    #[test]
    fn parse_conditional_literals_in_body() {
        let p = parse_program(
            r#"
            condition_holds(ID) :-
                condition(ID);
                attr(N, A1) : condition_requirement(ID, N, A1);
                attr(N, A1, A2) : condition_requirement(ID, N, A1, A2).
            "#,
        )
        .unwrap();
        let body = &p.rules[0].body;
        assert_eq!(body.len(), 3);
        assert!(matches!(body[0], BodyElem::Lit(_)));
        assert!(matches!(body[1], BodyElem::Cond { .. }));
        assert!(matches!(body[2], BodyElem::Cond { .. }));
    }

    #[test]
    fn parse_negation_and_comparisons() {
        let p = parse_program(
            r#"
            build(P) :- not hash(P, _), node(P).
            :- node_target(P, T), not compiler_supports_target(C, V, T), node_compiler(P, C).
            ok(X) :- num(X), X != 3, X <= 10.
            "#,
        )
        .unwrap();
        assert_eq!(p.rules.len(), 3);
        match &p.rules[0].body[0] {
            BodyElem::Lit(Literal::Pred { negated, .. }) => assert!(*negated),
            other => panic!("unexpected {other:?}"),
        }
        match &p.rules[2].body[1] {
            BodyElem::Lit(Literal::Cmp { op: CmpOp::Ne, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_const_definition() {
        let p = parse_program("#const max_builds = 200. x(max_builds).").unwrap();
        assert_eq!(p.consts.len(), 1);
        assert_eq!(p.consts[0].0, "max_builds");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_program("node(a) :- .").is_err());
        assert!(parse_program("node(a)").is_err());
        assert!(parse_program("#maximize{ 1@1 : a }.").is_err());
        assert!(parse_program(":- X + 1.").is_err());
    }

    #[test]
    fn paper_snippet_target_selection() {
        // Snippets from Section V of the paper, unmodified except whitespace.
        let text = r#"
            1 { node_target(Package, Target) : target(Target) } 1 :- node(Package).
            node_target(P, T) :- node(P), node_target_set(P, T).
            :- node_target(P, T),
               not compiler_supports_target(C, V, T),
               node_compiler(P, C),
               node_compiler_version(P, C, V).
            node_target_weight(P, W) :-
               node(P), node_target(P, T), target_weight(T, W).
            #minimize { W@5,P : node_target_weight(P, W) }.
        "#;
        let p = parse_program(text).unwrap();
        assert_eq!(p.rules.len(), 4);
        assert_eq!(p.minimize.len(), 1);
    }
}

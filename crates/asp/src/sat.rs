//! A CDCL SAT solver with native cardinality / weighted-sum constraints.
//!
//! This is the `clasp` analogue of the reproduction: the search algorithm follows the
//! DPLL lineage with the modern extensions the paper names (Section IV-E) — watched
//! literals, conflict-driven clause learning with 1-UIP learning, activity-based (VSIDS)
//! decision heuristics, phase saving, Luby restarts, and activity-driven deletion of
//! learned clauses. In addition to clauses, the solver propagates *linear constraints*
//! (weighted sums of literals with lower/upper bounds, optionally guarded by a condition
//! literal), which implement choice-rule cardinality bounds and the objective bounds
//! used during optimization.
//!
//! # Propagation invariants (the hot path)
//!
//! Nothing on the propagate/assign/unassign path clones clause bodies or occurrence
//! lists:
//!
//! * Conflicts are reported as `Conflict` — a clause *index* (resolved lazily during
//!   analysis) or the literal list a linear constraint materialises anyway.
//! * Every linear constraint maintains two counters, `sum_true` (weight of counted
//!   literals currently true) and `sum_false` (weight currently false). They are
//!   updated **incrementally**: each variable's occurrence list (`LinOcc`) stores the
//!   constraint index *and the slot* of the counted literal, so `enqueue`/`unassign`
//!   adjust exactly the affected counters in O(occurrences) — no per-assignment rescan
//!   of the constraint's literal list. Guard (condition) occurrences use a sentinel
//!   slot and never touch the counters.
//! * The invariant maintained is: after `propagate` returns without conflict, for every
//!   linear with an active guard, `sum_true ≤ upper` and `total − sum_false ≥ lower`,
//!   and no unassigned counted literal could violate either bound by itself.
//! * Conflict analysis reuses persistent buffers (`analyze_buf`, `seen`) instead of
//!   allocating per resolution step.

//!
//! # Clause provenance ("root-safe" learning)
//!
//! Every clause and linear constraint carries a *safe* bit: safe means "a consequence
//! of the program being solved" (translation clauses, loop nogoods), unsafe means
//! "true only for this particular solve" (per-solve `#external` units, objective
//! bounds, model-blocking clauses). Conflict analysis propagates the bit — a learned
//! clause is safe exactly when every antecedent resolved into it (including the
//! level-0 assignments it absorbed) is safe — so [`Solver::safe_learned_clauses`]
//! yields clauses that hold in *every* solve of the same translation. A
//! [`ClauseCache`] collects them (plus loop nogoods) across the solves of one
//! grounding and replays them into each newly built solver: later solves warm-start
//! from everything the earlier ones learned about the program itself.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::hasher::FxHashSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A propositional variable (0-based).
pub type Var = u32;

/// A literal: a variable with a sign. Internally `2*var + sign`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit((v << 1) | 1)
    }

    /// The variable of this literal.
    pub fn var(self) -> Var {
        self.0 >> 1
    }

    /// Is this the positive literal?
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense index usable for watch lists.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pos() {
            write!(f, "x{}", self.var())
        } else {
            write!(f, "~x{}", self.var())
        }
    }
}

/// Truth value of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Value {
    Unassigned,
    True,
    False,
}

/// Why a literal was assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reason {
    /// A decision (no reason).
    Decision,
    /// Unit propagation from a clause.
    Clause(usize),
    /// Propagation from a linear constraint; the explicit reason clause is stored.
    Stored(usize),
}

/// Result of a search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchResult {
    /// A satisfying assignment was found.
    Sat,
    /// The formula (with all added clauses/constraints) is unsatisfiable.
    Unsat,
    /// The search was stopped by the external stop flag (see [`Solver::set_stop`])
    /// or an expired [`SolveBudgetState`] before reaching a verdict: another portfolio
    /// worker won the race, or the solve ran out of budget. The solver remains
    /// reusable — the partial assignment is undone by the next operation.
    Interrupted,
}

/// Shared budget accounting for one logical solve (all portfolio workers of all
/// descent steps of one `Control::solve*` call point at the same instance).
///
/// This is deliberately *separate* from the race stop flag installed by
/// [`Solver::set_stop`]: the portfolio resets that flag at the start of every race
/// (and a pool of one never installs it), while a budget must stay armed across
/// races. The search loop checks both at the same point, so an expired budget is
/// observed within one propagation/conflict round — the "one solver check interval"
/// of the deadline contract.
///
/// The wall-deadline half lives outside this type: a monitor thread owned by the
/// caller calls [`SolveBudgetState::arm`] when the deadline passes. The conflict
/// half is counted here, by every worker, into one shared counter — the limit
/// bounds the *total* conflict work of the solve, not per-worker effort.
#[derive(Debug, Default)]
pub struct SolveBudgetState {
    expired: AtomicBool,
    conflicts: AtomicU64,
    /// Total conflict ceiling; `u64::MAX` means no conflict limit.
    conflict_limit: u64,
}

impl SolveBudgetState {
    /// A budget with an optional total-conflict ceiling (`None` = unlimited).
    pub fn new(conflict_limit: Option<u64>) -> Self {
        SolveBudgetState {
            expired: AtomicBool::new(false),
            conflicts: AtomicU64::new(0),
            conflict_limit: conflict_limit.unwrap_or(u64::MAX),
        }
    }

    /// Mark the budget as spent; every solver sharing it returns
    /// [`SearchResult::Interrupted`] at its next check.
    pub fn arm(&self) {
        self.expired.store(true, Ordering::SeqCst);
    }

    /// Has the budget expired (deadline passed or conflict limit crossed)?
    pub fn expired(&self) -> bool {
        self.expired.load(Ordering::Relaxed)
    }

    /// Record one conflict; arms the budget once the shared total crosses the limit.
    fn note_conflict(&self) {
        let seen = self.conflicts.fetch_add(1, Ordering::Relaxed) + 1;
        if seen >= self.conflict_limit {
            self.arm();
        }
    }

    /// Total conflicts recorded against this budget so far.
    pub fn conflicts(&self) -> u64 {
        self.conflicts.load(Ordering::Relaxed)
    }
}

/// A conflict found during propagation. Clause conflicts are passed by *index* so the
/// hot path never clones a clause body; linear-constraint conflicts carry the literal
/// list their explanation materialises anyway.
#[derive(Debug)]
enum Conflict {
    /// The clause at this index is falsified.
    Clause(usize),
    /// An explicit list of (currently false) literals, with the provenance-safety of
    /// the linear constraint that produced it.
    Lits(Vec<Lit>, bool),
}

/// One occurrence of a variable inside a linear constraint: the constraint index plus
/// the slot of the counted literal (or [`GUARD_SLOT`] for the guard/condition literal,
/// which participates in propagation wake-up but not in the counters).
#[derive(Debug, Clone, Copy)]
struct LinOcc {
    idx: u32,
    slot: u32,
}

/// Sentinel slot marking a guard (condition) occurrence.
const GUARD_SLOT: u32 = u32::MAX;

/// A watch-list entry: the watching clause plus a *blocker* literal (some other
/// literal of the clause, usually the second watch). If the blocker is already true
/// the clause is satisfied and the visit costs one probe — the clause body is never
/// touched (MiniSat's blocker optimization).
#[derive(Debug, Clone, Copy)]
struct Watch {
    ci: u32,
    blocker: Lit,
}

/// A linear constraint over literals: `lower <= sum(weight_i * lit_i) <= upper`,
/// active only when `condition` (if any) is true.
#[derive(Debug, Clone)]
pub struct LinearSpec {
    /// Guard literal; the constraint is enforced only when it is true.
    pub condition: Option<Lit>,
    /// The counted literals.
    pub lits: Vec<Lit>,
    /// Per-literal weights (same length as `lits`).
    pub weights: Vec<u64>,
    /// Lower bound on the weighted count of true literals (0 = no bound).
    pub lower: u64,
    /// Upper bound on the weighted count of true literals (`u64::MAX` = no bound).
    pub upper: u64,
}

impl LinearSpec {
    /// A cardinality constraint: `lower <= #true <= upper`.
    pub fn cardinality(condition: Option<Lit>, lits: Vec<Lit>, lower: u64, upper: u64) -> Self {
        let weights = vec![1; lits.len()];
        LinearSpec { condition, lits, weights, lower, upper }
    }
}

#[derive(Debug, Clone)]
struct Linear {
    condition: Option<Lit>,
    lits: Vec<Lit>,
    weights: Vec<u64>,
    lower: u64,
    upper: u64,
    total: u64,
    sum_true: u64,
    sum_false: u64,
    /// Is this constraint a consequence of the program (a translation cardinality
    /// bound) rather than a per-solve artifact (an objective bound)?
    safe: bool,
    /// Largest single weight. No literal can overflow the upper bound unless
    /// `sum_true + wmax > upper`, and none can be forced true unless
    /// `total - sum_false - wmax < lower` (the heaviest literal triggers first on
    /// both bounds), so slack constraints skip the literal scan.
    wmax: u64,
}

/// Heuristic configuration of the solver (the analogue of clingo's configuration
/// presets; see [`crate::control::SolverConfig`]).
#[derive(Debug, Clone)]
pub struct SatConfig {
    /// Variable activity decay factor (0 < decay < 1); smaller decays faster.
    pub var_decay: f64,
    /// Base interval (in conflicts) of the Luby restart sequence.
    pub restart_base: u64,
    /// Default polarity for unseen variables.
    pub default_phase: bool,
    /// Probability of choosing a random polarity at a decision.
    pub random_polarity: f64,
    /// Seed for the solver's private RNG.
    pub seed: u64,
    /// Soft cap on live learned clauses: when exceeded (checked at restarts), the
    /// lower-activity half of the deletable learned clauses is removed. Grows
    /// geometrically after every reduction.
    pub learned_limit: usize,
    /// Learned-clause activity decay factor (0 < decay < 1); the clause analogue of
    /// `var_decay`.
    pub clause_decay: f64,
    /// Number of differently-seeded solver configurations raced per optimizer search
    /// (see `optimize`). `0` or `1` means serial solving; results are byte-identical
    /// either way — the portfolio only changes how fast the canonical answer is found.
    pub portfolio: usize,
}

impl Default for SatConfig {
    fn default() -> Self {
        SatConfig {
            var_decay: 0.95,
            restart_base: 128,
            default_phase: false,
            random_polarity: 0.02,
            seed: 0x5eed,
            learned_limit: 4000,
            clause_decay: 0.999,
            portfolio: 1,
        }
    }
}

/// Statistics kept by the solver.
#[derive(Debug, Clone, Default)]
pub struct SatStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions taken.
    pub decisions: u64,
    /// Number of literal propagations.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learned clauses.
    pub learned: u64,
    /// Number of learned clauses deleted again by the reduction policy.
    pub deleted: u64,
}

impl SatStats {
    /// Accumulate another solver run's statistics into this one.
    pub fn absorb(&mut self, other: &SatStats) {
        self.conflicts += other.conflicts;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
        self.learned += other.learned;
        self.deleted += other.deleted;
    }
}

/// The CDCL solver.
pub struct Solver {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
    /// Parallel to `clauses`: learned (deletable) flag.
    clause_learned: Vec<bool>,
    /// Parallel to `clauses`: provenance-safe flag (see the module docs). For learned
    /// clauses this is the AND over every antecedent resolved into the clause.
    clause_safe: Vec<bool>,
    /// Parallel to `stored_reasons`: safety of the linear constraint that stored it.
    stored_safe: Vec<bool>,
    /// Per variable: is its *level-0* assignment a consequence of safe clauses only?
    /// Meaningful only while the variable is assigned at level 0.
    var0_safe: Vec<bool>,
    /// Learned unit clauses that are provenance-safe (units are enqueued rather than
    /// stored in `clauses`, so they are collected separately for export).
    safe_units: Vec<Lit>,
    /// Parallel to `clauses`: conflict-analysis activity (only meaningful for learned).
    clause_activity: Vec<f64>,
    clause_inc: f64,
    /// Live learned-clause cap; grows geometrically after each reduction.
    max_learned: usize,
    /// Watch lists: for each literal index, the watching clauses (with blockers).
    watches: Vec<Vec<Watch>>,
    linears: Vec<Linear>,
    /// For each variable, its occurrences in linear constraints (constraint + slot).
    linear_occ: Vec<Vec<LinOcc>>,
    assignment: Vec<Value>,
    level: Vec<u32>,
    reason: Vec<Reason>,
    stored_reasons: Vec<Vec<Lit>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    /// Parallel to `trail_lim`: `stored_reasons.len()` when each level was opened, so
    /// backtracking can reclaim the reasons of unassigned literals.
    stored_lim: Vec<usize>,
    prop_head: usize,
    activity: Vec<f64>,
    var_inc: f64,
    phase: Vec<bool>,
    heap: VarHeap,
    config: SatConfig,
    rng: StdRng,
    /// Statistics.
    pub stats: SatStats,
    /// Set when the problem is already unsatisfiable at level 0.
    root_conflict: bool,
    /// Persistent scratch for conflict analysis (the literals being resolved).
    analyze_buf: Vec<Lit>,
    /// Persistent "seen" marker per variable for conflict analysis.
    seen: Vec<bool>,
    /// The unsat core of the last [`Solver::search_with_assumptions`] call that returned
    /// [`SearchResult::Unsat`]: the subset of the assumption literals whose conjunction
    /// is refuted. Empty when the problem is unsatisfiable without any assumptions.
    conflict_core: Vec<Lit>,
    /// Cooperative cancellation flag shared by a portfolio race: when set, the search
    /// loop exits with [`SearchResult::Interrupted`] at its next iteration.
    stop: Option<Arc<AtomicBool>>,
    /// Budget shared by one logical solve (deadline + total conflict limit). Checked
    /// alongside `stop`, but never reset by the portfolio — see [`SolveBudgetState`].
    budget: Option<Arc<SolveBudgetState>>,
}

impl Solver {
    /// Create a solver for `num_vars` variables.
    pub fn new(num_vars: usize, config: SatConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        let mut heap = VarHeap::new(num_vars);
        for v in 0..num_vars as Var {
            heap.insert(v, 0.0);
        }
        let max_learned = config.learned_limit.max(16);
        Solver {
            num_vars,
            clauses: Vec::new(),
            clause_learned: Vec::new(),
            clause_safe: Vec::new(),
            stored_safe: Vec::new(),
            var0_safe: vec![false; num_vars],
            safe_units: Vec::new(),
            clause_activity: Vec::new(),
            clause_inc: 1.0,
            max_learned,
            watches: vec![Vec::new(); num_vars * 2],
            linears: Vec::new(),
            linear_occ: vec![Vec::new(); num_vars],
            assignment: vec![Value::Unassigned; num_vars],
            level: vec![0; num_vars],
            reason: vec![Reason::Decision; num_vars],
            stored_reasons: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            stored_lim: Vec::new(),
            prop_head: 0,
            activity: vec![0.0; num_vars],
            var_inc: 1.0,
            phase: vec![config.default_phase; num_vars],
            heap,
            config,
            rng,
            stats: SatStats::default(),
            root_conflict: false,
            analyze_buf: Vec::new(),
            seen: vec![false; num_vars],
            conflict_core: Vec::new(),
            stop: None,
            budget: None,
        }
    }

    /// Install (or clear) the shared cancellation flag checked by the search loop.
    /// Portfolio workers share one flag: the race winner sets it, the losers return
    /// [`SearchResult::Interrupted`] and stay reusable for the next lockstep operation.
    pub fn set_stop(&mut self, stop: Option<Arc<AtomicBool>>) {
        self.stop = stop;
    }

    /// Install (or clear) the shared solve budget. Unlike the race stop flag the
    /// budget survives every `set_stop` reset; once expired, every search on this
    /// solver returns [`SearchResult::Interrupted`] until the budget is cleared.
    pub fn set_budget(&mut self, budget: Option<Arc<SolveBudgetState>>) {
        self.budget = budget;
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The current decision level.
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn value_lit(&self, lit: Lit) -> Value {
        match self.assignment[lit.var() as usize] {
            Value::Unassigned => Value::Unassigned,
            Value::True => {
                if lit.is_pos() {
                    Value::True
                } else {
                    Value::False
                }
            }
            Value::False => {
                if lit.is_pos() {
                    Value::False
                } else {
                    Value::True
                }
            }
        }
    }

    /// Is the literal currently true?
    pub fn lit_is_true(&self, lit: Lit) -> bool {
        self.value_lit(lit) == Value::True
    }

    /// Add a clause. Returns `false` when the clause makes the problem unsatisfiable at
    /// the root level. Must be called at decision level 0 (the solver backtracks
    /// automatically when necessary). Takes a slice: the solver copies only the
    /// literals that survive level-0 simplification. The clause is tagged *unsafe*
    /// (per-solve artifact); use [`Solver::add_clause_safe`] for program consequences.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.add_clause_tagged(lits, false)
    }

    /// [`Solver::add_clause`] for a clause that is a consequence of the program being
    /// solved (a translation clause or a loop nogood): clauses learned from safe
    /// antecedents only are exported by [`Solver::safe_learned_clauses`].
    pub fn add_clause_safe(&mut self, lits: &[Lit]) -> bool {
        self.add_clause_tagged(lits, true)
    }

    fn add_clause_tagged(&mut self, lits: &[Lit], safe: bool) -> bool {
        if self.root_conflict {
            return false;
        }
        self.cancel_until(0);
        // Remove literals already false at level 0; satisfied clauses are dropped.
        // Dropping a false literal makes the clause depend on that assignment, so the
        // simplified clause is safe only if every dropped assignment is, too.
        let mut filtered = Vec::with_capacity(lits.len());
        let mut safe = safe;
        for &l in lits {
            match self.value_lit(l) {
                Value::True => return true,
                Value::False => safe = safe && self.var0_safe[l.var() as usize],
                Value::Unassigned => filtered.push(l),
            }
        }
        filtered.sort_unstable();
        filtered.dedup();
        // Tautology? (positive/negative literals of a variable sort adjacently)
        if filtered.windows(2).any(|w| w[0] == w[1].negate()) {
            return true;
        }
        match filtered.len() {
            0 => {
                self.root_conflict = true;
                false
            }
            1 => {
                self.enqueue(filtered[0], Reason::Decision);
                self.var0_safe[filtered[0].var() as usize] = safe;
                if self.propagate().is_some() {
                    self.root_conflict = true;
                    false
                } else {
                    true
                }
            }
            _ => {
                let ci = self.clauses.len() as u32;
                self.watches[filtered[0].negate().index()].push(Watch { ci, blocker: filtered[1] });
                self.watches[filtered[1].negate().index()].push(Watch { ci, blocker: filtered[0] });
                self.clauses.push(filtered);
                self.clause_learned.push(false);
                self.clause_safe.push(safe);
                self.clause_activity.push(0.0);
                true
            }
        }
    }

    /// Bulk-load clauses that are already in *trusted canonical form*: strictly sorted
    /// literals (which implies no duplicates and — since the two literals of a variable
    /// sort adjacently — no complementary pair) over in-range variables. Skips the
    /// per-clause sort/dedup/tautology scan and backtrack that [`Solver::add_clause`]
    /// pays, so per-level solver rebuilds in the optimizer ingest their own clause
    /// streams (translation clauses canonicalized once at translate time, and
    /// [`ClauseCache`] contents, canonical by construction) in one linear pass.
    /// Level-0 simplification and provenance bookkeeping are byte-identical to
    /// [`Solver::add_clause_safe`]; the canonical-form contract is checked by a debug
    /// assertion, so a corrupted clause (e.g. a bit flip in a shared store) fails
    /// loudly in debug builds.
    ///
    /// Returns `false` when some clause makes the problem unsatisfiable at the root.
    pub fn load_trusted_clauses<'a, I>(&mut self, clauses: I, safe: bool) -> bool
    where
        I: IntoIterator<Item = &'a [Lit]>,
    {
        if self.root_conflict {
            return false;
        }
        self.cancel_until(0);
        let mut filtered: Vec<Lit> = Vec::new();
        for lits in clauses {
            debug_assert!(
                self.is_trusted_canonical(lits),
                "load_trusted_clauses: clause violates the canonical-form contract: {lits:?}"
            );
            filtered.clear();
            let mut clause_safe = safe;
            let mut satisfied = false;
            for &l in lits {
                match self.value_lit(l) {
                    Value::True => {
                        satisfied = true;
                        break;
                    }
                    Value::False => {
                        clause_safe = clause_safe && self.var0_safe[l.var() as usize];
                    }
                    Value::Unassigned => filtered.push(l),
                }
            }
            if satisfied {
                continue;
            }
            match filtered.len() {
                0 => {
                    self.root_conflict = true;
                    return false;
                }
                1 => {
                    self.enqueue(filtered[0], Reason::Decision);
                    self.var0_safe[filtered[0].var() as usize] = clause_safe;
                    if self.propagate().is_some() {
                        self.root_conflict = true;
                        return false;
                    }
                }
                _ => {
                    let ci = self.clauses.len() as u32;
                    self.watches[filtered[0].negate().index()]
                        .push(Watch { ci, blocker: filtered[1] });
                    self.watches[filtered[1].negate().index()]
                        .push(Watch { ci, blocker: filtered[0] });
                    self.clauses.push(std::mem::take(&mut filtered));
                    self.clause_learned.push(false);
                    self.clause_safe.push(clause_safe);
                    self.clause_activity.push(0.0);
                }
            }
        }
        true
    }

    /// The [`Solver::load_trusted_clauses`] contract check (debug builds only).
    fn is_trusted_canonical(&self, lits: &[Lit]) -> bool {
        lits.iter().all(|l| (l.var() as usize) < self.num_vars)
            && lits.windows(2).all(|w| w[0] < w[1] && w[0] != w[1].negate())
    }

    /// Add a linear constraint (tagged unsafe: a per-solve artifact such as an
    /// objective bound; use [`Solver::add_linear_safe`] for program constraints).
    pub fn add_linear(&mut self, spec: LinearSpec) {
        self.add_linear_tagged(spec, false)
    }

    /// [`Solver::add_linear`] for a constraint that is part of the program itself
    /// (a choice-rule cardinality bound from the translation).
    pub fn add_linear_safe(&mut self, spec: LinearSpec) {
        self.add_linear_tagged(spec, true)
    }

    fn add_linear_tagged(&mut self, spec: LinearSpec, safe: bool) {
        assert_eq!(spec.lits.len(), spec.weights.len());
        self.cancel_until(0);
        let total: u64 = spec.weights.iter().sum();
        let idx = self.linears.len() as u32;
        for (slot, &l) in spec.lits.iter().enumerate() {
            self.linear_occ[l.var() as usize].push(LinOcc { idx, slot: slot as u32 });
        }
        if let Some(c) = spec.condition {
            self.linear_occ[c.var() as usize].push(LinOcc { idx, slot: GUARD_SLOT });
        }
        let wmax = spec.weights.iter().copied().max().unwrap_or(0);
        let mut lin = Linear {
            condition: spec.condition,
            lits: spec.lits,
            weights: spec.weights,
            lower: spec.lower,
            upper: spec.upper,
            total,
            sum_true: 0,
            sum_false: 0,
            wmax,
            safe,
        };
        // Account for assignments already made at level 0.
        for (i, &l) in lin.lits.iter().enumerate() {
            match self.value_lit(l) {
                Value::True => lin.sum_true += lin.weights[i],
                Value::False => lin.sum_false += lin.weights[i],
                Value::Unassigned => {}
            }
        }
        self.linears.push(lin);
        // The constraint may already be violated (or unit) under the level-0 assignment;
        // check it right away — later propagation only triggers on new assignments.
        if self.propagate_linear(idx as usize).is_some() || self.propagate().is_some() {
            self.root_conflict = true;
        }
    }

    /// Number of linear constraints added so far (the next `add_linear` gets this
    /// index); lets callers address a constraint for in-place tightening.
    pub fn num_linears(&self) -> usize {
        self.linears.len()
    }

    /// Tighten an existing linear constraint's upper bound in place. The new bound
    /// must not be looser than the current one — used by the optimizer to descend an
    /// objective without stacking superseded constraints (and their occurrence-list
    /// entries) in the live solver.
    pub fn tighten_linear_upper(&mut self, idx: usize, upper: u64) {
        if self.root_conflict {
            return;
        }
        self.cancel_until(0);
        debug_assert!(upper <= self.linears[idx].upper);
        self.linears[idx].upper = upper;
        if self.propagate_linear(idx).is_some() || self.propagate().is_some() {
            self.root_conflict = true;
        }
    }

    /// Bump a variable's activity so the heuristic prefers it early (used to focus the
    /// search on atoms that matter, e.g. objective atoms).
    pub fn bump_variable(&mut self, v: Var, amount: f64) {
        self.activity[v as usize] += amount;
        self.heap.update(v, self.activity[v as usize]);
    }

    /// Seed the saved phase of a variable. Used to warm-start a solver from an
    /// incumbent model so the search re-enters the neighbourhood of a known-good
    /// assignment first (the optimizer seeds each lexicographic level this way).
    pub fn set_phase(&mut self, v: Var, phase: bool) {
        self.phase[v as usize] = phase;
    }

    /// Run the CDCL search until a model is found or the problem is proved unsatisfiable.
    pub fn search(&mut self) -> SearchResult {
        self.search_with_assumptions(&[])
    }

    /// Run the CDCL search under a set of *assumption literals* (MiniSat-style
    /// incremental interface): every assumption is decided, in order, at its own
    /// decision level before any free decision is taken, so the search explores only
    /// assignments where all assumptions hold. On [`SearchResult::Unsat`] the subset of
    /// assumptions responsible is available from [`Solver::failed_assumptions`] — the
    /// *unsat core* extracted by final-conflict analysis over the assumption prefix.
    ///
    /// The solver is reusable afterwards: assumptions are plain decisions, undone by
    /// backtracking, never added as clauses.
    pub fn search_with_assumptions(&mut self, assumptions: &[Lit]) -> SearchResult {
        self.conflict_core.clear();
        if self.root_conflict {
            return SearchResult::Unsat;
        }
        self.cancel_until(0);
        let mut conflicts_until_restart = self.luby_interval();
        loop {
            if let Some(stop) = &self.stop {
                if stop.load(Ordering::Relaxed) {
                    return SearchResult::Interrupted;
                }
            }
            if let Some(budget) = &self.budget {
                if budget.expired() {
                    return SearchResult::Interrupted;
                }
            }
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                if let Some(budget) = &self.budget {
                    budget.note_conflict();
                }
                if self.decision_level() == 0 {
                    self.root_conflict = true;
                    return SearchResult::Unsat;
                }
                let (learned, backtrack_level, safe) = self.analyze(confl);
                self.cancel_until(backtrack_level);
                self.record_learned(learned, safe);
                self.decay_activities();
                conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                continue;
            }
            if conflicts_until_restart == 0 {
                self.stats.restarts += 1;
                self.cancel_until(0);
                self.reduce_learned();
                conflicts_until_restart = self.luby_interval();
            }
            // Re-establish the assumption prefix: assumption `i` owns decision level
            // `i + 1` (an empty level when it is already implied), so a backtrack below
            // the prefix is repaired here before any free decision is taken.
            let mut propagate_assumption = false;
            while (self.decision_level() as usize) < assumptions.len() {
                let p = assumptions[self.decision_level() as usize];
                match self.value_lit(p) {
                    Value::True => {
                        self.trail_lim.push(self.trail.len());
                        self.stored_lim.push(self.stored_reasons.len());
                    }
                    Value::False => {
                        self.conflict_core = self.analyze_final(p);
                        return SearchResult::Unsat;
                    }
                    Value::Unassigned => {
                        self.trail_lim.push(self.trail.len());
                        self.stored_lim.push(self.stored_reasons.len());
                        self.enqueue(p, Reason::Decision);
                        propagate_assumption = true;
                        break;
                    }
                }
            }
            if propagate_assumption {
                continue;
            }
            // All constraints propagated without conflict: check for completeness.
            match self.pick_branch_variable() {
                None => return SearchResult::Sat,
                Some(var) => {
                    self.stats.decisions += 1;
                    let phase = if self.rng.gen_bool(self.config.random_polarity) {
                        self.rng.gen_bool(0.5)
                    } else {
                        self.phase[var as usize]
                    };
                    let lit = if phase { Lit::pos(var) } else { Lit::neg(var) };
                    self.trail_lim.push(self.trail.len());
                    self.stored_lim.push(self.stored_reasons.len());
                    self.enqueue(lit, Reason::Decision);
                }
            }
        }
    }

    /// The unsat core of the last failed [`Solver::search_with_assumptions`] call: the
    /// subset of its assumption literals whose conjunction is refuted by the formula.
    /// Empty when the formula is unsatisfiable on its own (no assumption needed).
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.conflict_core
    }

    /// Final-conflict analysis (MiniSat's `analyzeFinal`): `failed` is an assumption
    /// found false while re-establishing the prefix. Walk the trail backwards from the
    /// implied `¬failed`, expanding propagation reasons; every *decision* reached below
    /// the assumption prefix is itself an assumption, and together with `failed` they
    /// form an unsat core.
    fn analyze_final(&mut self, failed: Lit) -> Vec<Lit> {
        let mut core = vec![failed];
        if self.decision_level() == 0 {
            // ¬failed is forced at the root: the assumption alone is refuted.
            return core;
        }
        let start = self.trail_lim[0];
        self.seen[failed.var() as usize] = true;
        for i in (start..self.trail.len()).rev() {
            let x = self.trail[i];
            let v = x.var() as usize;
            if !self.seen[v] {
                continue;
            }
            self.seen[v] = false;
            match self.reason[v] {
                // Only assumptions are decisions below the assumption prefix.
                Reason::Decision => core.push(x),
                Reason::Clause(ci) => {
                    for k in 0..self.clauses[ci].len() {
                        let l = self.clauses[ci][k];
                        if l.var() as usize != v && self.level[l.var() as usize] > 0 {
                            self.seen[l.var() as usize] = true;
                        }
                    }
                }
                Reason::Stored(ri) => {
                    for k in 0..self.stored_reasons[ri].len() {
                        let l = self.stored_reasons[ri][k];
                        if l.var() as usize != v && self.level[l.var() as usize] > 0 {
                            self.seen[l.var() as usize] = true;
                        }
                    }
                }
            }
        }
        self.seen[failed.var() as usize] = false;
        core
    }

    /// The current (total) model; only meaningful after [`Solver::search`] returned
    /// [`SearchResult::Sat`].
    pub fn model(&self) -> Vec<bool> {
        self.assignment.iter().map(|v| matches!(v, Value::True)).collect()
    }

    /// Block the current model (or any other clause) and prepare for continued search.
    /// Returns `false` when the added clause makes the problem unsatisfiable.
    pub fn add_blocking_clause(&mut self, clause: &[Lit]) -> bool {
        self.add_clause(clause)
    }

    /// Every learned clause (including learned root units) whose derivation used only
    /// provenance-safe antecedents: such clauses are consequences of the program's
    /// translation alone — never of per-solve externals, objective bounds, or blocking
    /// clauses — and may be replayed into any solver over the same translation.
    pub fn safe_learned_clauses(&self) -> impl Iterator<Item = &[Lit]> + '_ {
        let units = self.safe_units.iter().map(std::slice::from_ref);
        let clauses = (0..self.clauses.len())
            .filter(|&ci| self.clause_learned[ci] && self.clause_safe[ci])
            .map(|ci| self.clauses[ci].as_slice());
        units.chain(clauses)
    }

    // ---- internal: propagation -------------------------------------------------------

    fn enqueue(&mut self, lit: Lit, reason: Reason) {
        debug_assert_eq!(self.value_lit(lit), Value::Unassigned);
        let var = lit.var() as usize;
        self.assignment[var] = if lit.is_pos() { Value::True } else { Value::False };
        self.level[var] = self.decision_level();
        self.reason[var] = reason;
        self.phase[var] = lit.is_pos();
        if self.trail_lim.is_empty() {
            // Level-0 assignment: record whether it follows from safe clauses alone
            // (its reason plus the level-0 assignments falsifying the rest of it).
            let safe = match reason {
                Reason::Decision => false, // add_clause_tagged overrides for its units
                Reason::Clause(ci) => {
                    self.clause_safe[ci]
                        && self.clauses[ci]
                            .iter()
                            .all(|&l| l.var() as usize == var || self.var0_safe[l.var() as usize])
                }
                Reason::Stored(ri) => {
                    self.stored_safe[ri]
                        && self.stored_reasons[ri]
                            .iter()
                            .all(|&l| l.var() as usize == var || self.var0_safe[l.var() as usize])
                }
            };
            self.var0_safe[var] = safe;
        }
        self.trail.push(lit);
        self.stats.propagations += 1;
        // Update linear-constraint counters incrementally: each occurrence names the
        // exact slot of this variable's literal, so no literal list is scanned.
        for k in 0..self.linear_occ[var].len() {
            let occ = self.linear_occ[var][k];
            if occ.slot == GUARD_SLOT {
                continue;
            }
            let lin = &mut self.linears[occ.idx as usize];
            let l = lin.lits[occ.slot as usize];
            let w = lin.weights[occ.slot as usize];
            if l.is_pos() == lit.is_pos() {
                lin.sum_true += w;
            } else {
                lin.sum_false += w;
            }
        }
    }

    fn unassign(&mut self, lit: Lit) {
        let var = lit.var() as usize;
        for k in 0..self.linear_occ[var].len() {
            let occ = self.linear_occ[var][k];
            if occ.slot == GUARD_SLOT {
                continue;
            }
            let lin = &mut self.linears[occ.idx as usize];
            let l = lin.lits[occ.slot as usize];
            let w = lin.weights[occ.slot as usize];
            if l.is_pos() == lit.is_pos() {
                lin.sum_true -= w;
            } else {
                lin.sum_false -= w;
            }
        }
        self.assignment[var] = Value::Unassigned;
        if !self.heap.contains(var as Var) {
            self.heap.insert(var as Var, self.activity[var]);
        }
    }

    fn cancel_until(&mut self, level: u32) {
        let mut stored_mark = None;
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().unwrap();
            stored_mark = self.stored_lim.pop();
            while self.trail.len() > lim {
                let lit = self.trail.pop().unwrap();
                self.unassign(lit);
            }
        }
        // Reasons are pushed in enqueue order, so every still-assigned literal's
        // stored reason predates the earliest cancelled level — the tail is garbage.
        if let Some(mark) = stored_mark {
            self.stored_reasons.truncate(mark);
            self.stored_safe.truncate(mark);
        }
        self.prop_head = self.prop_head.min(self.trail.len());
    }

    /// Propagate all pending assignments. Returns the conflict if one is found. The
    /// occurrence lists are iterated in place (indexed, since `propagate_linear` may
    /// enqueue further literals) — never cloned.
    fn propagate(&mut self) -> Option<Conflict> {
        while self.prop_head < self.trail.len() {
            let lit = self.trail[self.prop_head];
            self.prop_head += 1;
            // Clause propagation: clauses watching ¬lit.
            if let Some(ci) = self.propagate_clauses(lit) {
                return Some(Conflict::Clause(ci));
            }
            // Linear constraints containing this variable.
            let var = lit.var() as usize;
            for k in 0..self.linear_occ[var].len() {
                let occ = self.linear_occ[var][k];
                if let Some((confl, safe)) = self.propagate_linear(occ.idx as usize) {
                    return Some(Conflict::Lits(confl, safe));
                }
            }
        }
        None
    }

    fn propagate_clauses(&mut self, lit: Lit) -> Option<usize> {
        let watch_idx = lit.index();
        let mut i = 0;
        while i < self.watches[watch_idx].len() {
            // Blocker probe: a satisfied clause costs one value lookup.
            let blocker = self.watches[watch_idx][i].blocker;
            if self.value_lit(blocker) == Value::True {
                i += 1;
                continue;
            }
            let ci = self.watches[watch_idx][i].ci as usize;
            // The falsified literal is lit.negate(); make sure it is at position 1.
            let false_lit = lit.negate();
            {
                let clause = &mut self.clauses[ci];
                if clause[0] == false_lit {
                    clause.swap(0, 1);
                }
            }
            // If the first watch is true, the clause is satisfied: remember it as the
            // blocker for the next visit.
            let first = self.clauses[ci][0];
            if self.value_lit(first) == Value::True {
                self.watches[watch_idx][i].blocker = first;
                i += 1;
                continue;
            }
            // Look for a new literal to watch.
            let mut found = false;
            for k in 2..self.clauses[ci].len() {
                if self.value_lit(self.clauses[ci][k]) != Value::False {
                    self.clauses[ci].swap(1, k);
                    let new_watch = self.clauses[ci][1].negate().index();
                    self.watches[new_watch].push(Watch { ci: ci as u32, blocker: first });
                    self.watches[watch_idx].swap_remove(i);
                    found = true;
                    break;
                }
            }
            if found {
                continue;
            }
            // Clause is unit or conflicting.
            match self.value_lit(first) {
                Value::False => {
                    return Some(ci);
                }
                Value::Unassigned => {
                    self.enqueue(first, Reason::Clause(ci));
                    i += 1;
                }
                Value::True => {
                    i += 1;
                }
            }
        }
        None
    }

    fn propagate_linear(&mut self, idx: usize) -> Option<(Vec<Lit>, bool)> {
        let (upper_violated, lower_violated) = {
            let lin = &self.linears[idx];
            (lin.sum_true > lin.upper, lin.total - lin.sum_false < lin.lower)
        };
        let condition = self.linears[idx].condition;
        let lin_safe = self.linears[idx].safe;
        let cond_value = condition.map(|c| self.value_lit(c));

        // If the guard is false the constraint is inert.
        if cond_value == Some(Value::False) {
            return None;
        }

        if upper_violated || lower_violated {
            match cond_value {
                Some(Value::Unassigned) => {
                    // Force the guard false.
                    let c = condition.unwrap();
                    let mut clause = self.linear_violation_lits(idx, upper_violated);
                    clause.push(c.negate());
                    let rid = self.stored_reasons.len();
                    self.stored_reasons.push(clause);
                    self.stored_safe.push(lin_safe);
                    self.enqueue(c.negate(), Reason::Stored(rid));
                    return None;
                }
                _ => {
                    // Guard true (or absent): conflict.
                    let mut clause = self.linear_violation_lits(idx, upper_violated);
                    if let Some(c) = condition {
                        clause.push(c.negate());
                    }
                    return Some((clause, lin_safe));
                }
            }
        }

        // Only propagate individual literals when the guard is definitely active.
        if cond_value == Some(Value::Unassigned) {
            return None;
        }

        // Slack check: when even the heaviest literal can neither overflow the upper
        // bound (if set true) nor undershoot the lower bound (if set false), no
        // literal can be forced — skip the O(lits) scan entirely. This keeps the
        // per-assignment cost of slack constraints at O(1).
        {
            let lin = &self.linears[idx];
            let upper_tight = lin.sum_true.saturating_add(lin.wmax) > lin.upper;
            let lower_tight = (lin.total - lin.sum_false).saturating_sub(lin.wmax) < lin.lower;
            if !upper_tight && !lower_tight {
                return None;
            }
        }

        // Upper-bound propagation: literal would overflow the bound -> must be false.
        let lin_len = self.linears[idx].lits.len();
        for i in 0..lin_len {
            let (lit, weight, sum_true, upper, total, sum_false, lower) = {
                let lin = &self.linears[idx];
                (
                    lin.lits[i],
                    lin.weights[i],
                    lin.sum_true,
                    lin.upper,
                    lin.total,
                    lin.sum_false,
                    lin.lower,
                )
            };
            if self.value_lit(lit) != Value::Unassigned || weight == 0 {
                continue;
            }
            if sum_true + weight > upper {
                let mut reason = self.linear_true_lits(idx);
                if let Some(c) = condition {
                    reason.push(c.negate());
                }
                reason.push(lit.negate());
                let rid = self.stored_reasons.len();
                self.stored_reasons.push(reason);
                self.stored_safe.push(lin_safe);
                self.enqueue(lit.negate(), Reason::Stored(rid));
                if let Some(confl) = self.propagate_linear(idx) {
                    return Some(confl);
                }
            } else if total - sum_false - weight < lower {
                let mut reason = self.linear_false_lits(idx);
                if let Some(c) = condition {
                    reason.push(c.negate());
                }
                reason.push(lit);
                let rid = self.stored_reasons.len();
                self.stored_reasons.push(reason);
                self.stored_safe.push(lin_safe);
                self.enqueue(lit, Reason::Stored(rid));
                if let Some(confl) = self.propagate_linear(idx) {
                    return Some(confl);
                }
            }
        }
        None
    }

    /// Literals explaining a bound violation: negations of true counted literals for an
    /// upper-bound violation, or the false counted literals for a lower-bound violation.
    fn linear_violation_lits(&self, idx: usize, upper: bool) -> Vec<Lit> {
        let lin = &self.linears[idx];
        if upper {
            lin.lits
                .iter()
                .filter(|&&l| self.value_lit(l) == Value::True)
                .map(|&l| l.negate())
                .collect()
        } else {
            lin.lits.iter().filter(|&&l| self.value_lit(l) == Value::False).copied().collect()
        }
    }

    fn linear_true_lits(&self, idx: usize) -> Vec<Lit> {
        self.linears[idx]
            .lits
            .iter()
            .filter(|&&l| self.value_lit(l) == Value::True)
            .map(|&l| l.negate())
            .collect()
    }

    fn linear_false_lits(&self, idx: usize) -> Vec<Lit> {
        self.linears[idx]
            .lits
            .iter()
            .filter(|&&l| self.value_lit(l) == Value::False)
            .copied()
            .collect()
    }

    // ---- internal: conflict analysis ---------------------------------------------------

    /// First-UIP conflict analysis. Returns the learned clause (with the asserting
    /// literal first), the backtrack level, and whether every antecedent resolved into
    /// the clause was provenance-safe (making the learned clause a program
    /// consequence, exportable across solves).
    ///
    /// Clause-typed conflicts and reasons are resolved by *reference*; the working set
    /// of literals lives in the persistent `analyze_buf`, and the per-variable `seen`
    /// markers are cleared incrementally on exit — no allocation per conflict beyond
    /// the learned clause itself.
    fn analyze(&mut self, conflict: Conflict) -> (Vec<Lit>, u32, bool) {
        let current_level = self.decision_level();
        let mut learned: Vec<Lit> = Vec::new();
        let mut counter = 0usize;
        let mut trail_index = self.trail.len();
        let mut expand: Vec<Lit> = std::mem::take(&mut self.analyze_buf);
        expand.clear();
        let mut safe;
        match conflict {
            Conflict::Clause(ci) => {
                self.bump_clause(ci);
                expand.extend_from_slice(&self.clauses[ci]);
                safe = self.clause_safe[ci];
            }
            Conflict::Lits(lits, lin_safe) => {
                expand.extend_from_slice(&lits);
                safe = lin_safe;
            }
        }
        let asserting;

        loop {
            #[allow(clippy::needless_range_loop)] // `self.bump` below needs `&mut self`
            for i in 0..expand.len() {
                let lit = expand[i];
                let v = lit.var() as usize;
                if self.level[v] == 0 {
                    // Absorbed level-0 assignment: the learned clause depends on it.
                    safe = safe && self.var0_safe[v];
                    continue;
                }
                if self.seen[v] {
                    continue;
                }
                self.seen[v] = true;
                self.bump(lit.var());
                if self.level[v] == current_level {
                    counter += 1;
                } else {
                    learned.push(lit);
                }
            }
            // Find the next literal on the trail (at the current level) that is seen.
            let lit = loop {
                trail_index -= 1;
                let lit = self.trail[trail_index];
                if self.seen[lit.var() as usize] {
                    break lit;
                }
            };
            counter -= 1;
            if counter == 0 {
                asserting = lit.negate();
                break;
            }
            // Expand the reason of `lit`, skipping its own variable.
            expand.clear();
            let var = lit.var();
            match self.reason[var as usize] {
                Reason::Decision => {}
                Reason::Clause(ci) => {
                    self.bump_clause(ci);
                    safe = safe && self.clause_safe[ci];
                    for k in 0..self.clauses[ci].len() {
                        let l = self.clauses[ci][k];
                        if l.var() != var {
                            expand.push(l);
                        }
                    }
                }
                Reason::Stored(ri) => {
                    safe = safe && self.stored_safe[ri];
                    for k in 0..self.stored_reasons[ri].len() {
                        let l = self.stored_reasons[ri][k];
                        if l.var() != var {
                            expand.push(l);
                        }
                    }
                }
            }
        }

        // Clear the seen markers we set (asserting var + learned lits + resolved-away
        // vars are all on the trail suffix we walked, plus the learned literals).
        for k in trail_index..self.trail.len() {
            self.seen[self.trail[k].var() as usize] = false;
        }
        for l in &learned {
            self.seen[l.var() as usize] = false;
        }
        self.analyze_buf = expand;

        let mut clause = vec![asserting];
        clause.extend(learned);

        // Backtrack level: second-highest level in the clause.
        let backtrack_level =
            clause[1..].iter().map(|l| self.level[l.var() as usize]).max().unwrap_or(0);
        (clause, backtrack_level, safe)
    }

    fn record_learned(&mut self, clause: Vec<Lit>, safe: bool) {
        self.stats.learned += 1;
        debug_assert!(!clause.is_empty());
        if clause.len() == 1 {
            // Asserting unit clause: enqueue at the (already backtracked-to) level.
            if self.value_lit(clause[0]) == Value::Unassigned {
                self.enqueue(clause[0], Reason::Decision);
                if self.trail_lim.is_empty() {
                    self.var0_safe[clause[0].var() as usize] = safe;
                }
            }
            if safe {
                self.safe_units.push(clause[0]);
            }
            return;
        }
        // Put a literal of the backtrack level second so the watches are correct.
        let idx = self.clauses.len();
        let mut clause = clause;
        let mut max_level_pos = 1;
        for (i, l) in clause.iter().enumerate().skip(1) {
            if self.level[l.var() as usize] > self.level[clause[max_level_pos].var() as usize] {
                max_level_pos = i;
            }
        }
        clause.swap(1, max_level_pos);
        self.watches[clause[0].negate().index()].push(Watch { ci: idx as u32, blocker: clause[1] });
        self.watches[clause[1].negate().index()].push(Watch { ci: idx as u32, blocker: clause[0] });
        let asserting = clause[0];
        self.clauses.push(clause);
        self.clause_learned.push(true);
        self.clause_safe.push(safe);
        self.clause_activity.push(self.clause_inc);
        if self.value_lit(asserting) == Value::Unassigned {
            self.enqueue(asserting, Reason::Clause(idx));
        }
    }

    /// Delete low-activity learned clauses once their number exceeds the cap. Runs at
    /// restarts (decision level 0): clauses locked as reasons of level-0 assignments
    /// and binary clauses are kept; of the rest, everything below the median activity
    /// goes. Watches are rebuilt and clause-typed reasons remapped.
    fn reduce_learned(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        let live = self.clause_learned.iter().filter(|&&l| l).count();
        if live <= self.max_learned {
            return;
        }
        let mut locked = vec![false; self.clauses.len()];
        for &lit in &self.trail {
            if let Reason::Clause(ci) = self.reason[lit.var() as usize] {
                locked[ci] = true;
            }
        }
        // Median activity of learned clauses as the deletion threshold.
        let mut acts: Vec<f64> = (0..self.clauses.len())
            .filter(|&ci| self.clause_learned[ci])
            .map(|ci| self.clause_activity[ci])
            .collect();
        acts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let threshold = acts[acts.len() / 2];

        let mut remap: Vec<usize> = vec![usize::MAX; self.clauses.len()];
        let mut kept: Vec<Vec<Lit>> = Vec::with_capacity(self.clauses.len());
        let mut kept_learned = Vec::with_capacity(self.clauses.len());
        let mut kept_safe = Vec::with_capacity(self.clauses.len());
        let mut kept_activity = Vec::with_capacity(self.clauses.len());
        let mut removed = 0u64;
        for ci in 0..self.clauses.len() {
            let deletable = self.clause_learned[ci]
                && !locked[ci]
                && self.clauses[ci].len() > 2
                && self.clause_activity[ci] <= threshold;
            if deletable {
                removed += 1;
                continue;
            }
            remap[ci] = kept.len();
            kept.push(std::mem::take(&mut self.clauses[ci]));
            kept_learned.push(self.clause_learned[ci]);
            kept_safe.push(self.clause_safe[ci]);
            kept_activity.push(self.clause_activity[ci]);
        }
        self.clauses = kept;
        self.clause_learned = kept_learned;
        self.clause_safe = kept_safe;
        self.clause_activity = kept_activity;
        self.stats.deleted += removed;
        // Grow the cap geometrically so reduction stays amortised.
        self.max_learned += self.max_learned / 2;

        // Remap clause-typed reasons: only assigned variables hold live reasons.
        for v in 0..self.num_vars {
            if let Reason::Clause(ci) = self.reason[v] {
                if self.assignment[v] == Value::Unassigned {
                    self.reason[v] = Reason::Decision;
                } else {
                    self.reason[v] = Reason::Clause(remap[ci]);
                }
            }
        }
        // Rebuild the watch lists (positions 0/1 of every clause were watched before,
        // and clause contents did not change, so the watch invariant is preserved).
        for w in &mut self.watches {
            w.clear();
        }
        for ci in 0..self.clauses.len() {
            let c = &self.clauses[ci];
            let (w0, w1) = (c[0], c[1]);
            self.watches[w0.negate().index()].push(Watch { ci: ci as u32, blocker: w1 });
            self.watches[w1.negate().index()].push(Watch { ci: ci as u32, blocker: w0 });
        }
    }

    fn bump(&mut self, var: Var) {
        self.activity[var as usize] += self.var_inc;
        if self.activity[var as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.update(var, self.activity[var as usize]);
    }

    fn bump_clause(&mut self, ci: usize) {
        if !self.clause_learned[ci] {
            return;
        }
        self.clause_activity[ci] += self.clause_inc;
        if self.clause_activity[ci] > 1e20 {
            for a in &mut self.clause_activity {
                *a *= 1e-20;
            }
            self.clause_inc *= 1e-20;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.config.var_decay;
        self.clause_inc /= self.config.clause_decay;
    }

    fn pick_branch_variable(&mut self) -> Option<Var> {
        while let Some(v) = self.heap.pop() {
            if self.assignment[v as usize] == Value::Unassigned {
                return Some(v);
            }
        }
        // Fall back to a linear scan (heap may have dropped re-inserted vars).
        (0..self.num_vars as Var).find(|&v| self.assignment[v as usize] == Value::Unassigned)
    }

    fn luby_interval(&self) -> u64 {
        // Luby sequence (1-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
        fn luby(mut x: u64) -> u64 {
            loop {
                let mut k = 1u32;
                while (1u64 << k) - 1 < x {
                    k += 1;
                }
                if (1u64 << k) - 1 == x {
                    return 1u64 << (k - 1);
                }
                x -= (1u64 << (k - 1)) - 1;
            }
        }
        luby(self.stats.restarts + 1) * self.config.restart_base
    }
}

/// A session-scoped cache of clauses that are *consequences of one ground program* —
/// loop nogoods from the stability check and provenance-safe learned clauses — shared
/// by every solve on that grounding. Each newly built solver replays the cache, so the
/// relaxed diagnostics re-solve, core-minimization probes, and later optimization
/// levels warm-start from everything earlier solves proved about the program instead
/// of re-deriving it. Invalidated (by the owner) whenever the grounding changes.
#[derive(Debug, Default)]
pub struct ClauseCache {
    clauses: Vec<Vec<Lit>>,
    seen: FxHashSet<u64>,
}

impl ClauseCache {
    /// Cap on cached clauses: beyond this the marginal clause is unlikely to pay for
    /// its replay cost, and the cache must not grow without bound over a long session.
    pub const MAX_CLAUSES: usize = 8192;

    /// Add one program-consequence clause (deduplicated; ignored once full or empty).
    pub fn add(&mut self, clause: &[Lit]) {
        if clause.is_empty() || self.clauses.len() >= Self::MAX_CLAUSES {
            return;
        }
        let mut sorted = clause.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        // Drop tautologies so every cached clause satisfies the trusted canonical form
        // required by `Solver::load_trusted_clauses` (replay skips re-validation).
        if sorted.windows(2).any(|w| w[0] == w[1].negate()) {
            return;
        }
        use std::hash::{Hash, Hasher};
        let mut hasher = crate::hasher::FxHasher::default();
        sorted.hash(&mut hasher);
        if self.seen.insert(hasher.finish()) {
            self.clauses.push(sorted);
        }
    }

    /// Collect a retiring solver's provenance-safe learned clauses.
    pub fn harvest(&mut self, solver: &Solver) {
        // Pre-check fullness so a large retired solver costs one branch, not a scan.
        if self.clauses.len() >= Self::MAX_CLAUSES {
            return;
        }
        for c in solver.safe_learned_clauses() {
            self.add(c);
        }
    }

    /// The cached clauses, for replay into a new solver (all provenance-safe).
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Number of cached clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }
}

/// A thread-safe store of program-consequence clauses shared *across requests*,
/// keyed by the closure digest of each request's translation (see
/// `Translation::digest`). Two requests with the same digest solve the identical
/// formula — same variables, clauses, and linear constraints by construction — so the
/// provenance-safe clauses one request learned hold verbatim in the other, and a
/// session can warm-start repeated or re-issued requests from everything earlier ones
/// proved. Entries are whole [`ClauseCache`]s (deduplicated, capped at
/// [`ClauseCache::MAX_CLAUSES`] per key); access is a single `RwLock` around the map
/// plus relaxed counters, so concurrent session requests (the batch path) share it
/// freely.
#[derive(Debug, Default)]
pub struct SharedClauseStore {
    shelves: RwLock<HashMap<u64, ClauseCache>>,
    hits: AtomicU64,
    misses: AtomicU64,
    transferred: AtomicU64,
}

impl SharedClauseStore {
    /// An empty store.
    pub fn new() -> Self {
        SharedClauseStore::default()
    }

    /// Copy the clauses stored under `key` into `cache` (the per-request warm-start
    /// cache), returning how many were transferred. Counts a hit when the key has a
    /// non-empty entry, a miss otherwise.
    pub fn fetch_into(&self, key: u64, cache: &mut ClauseCache) -> usize {
        let shelves = self.shelves.read().unwrap();
        let transferred = match shelves.get(&key) {
            Some(shelf) if !shelf.is_empty() => {
                let before = cache.len();
                if cache.is_empty() {
                    // Usual case: a freshly reset request cache. Shelved clauses are
                    // canonical by construction, so copy them raw rather than paying
                    // `add`'s re-canonicalization per clause (it would also mask a
                    // corrupted shelf entry that the trusted-load assertion in debug
                    // builds is meant to catch).
                    cache.clauses = shelf.clauses.clone();
                    cache.seen = shelf.seen.clone();
                } else {
                    for clause in shelf.clauses() {
                        cache.add(clause);
                    }
                }
                cache.len() - before
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return 0;
            }
        };
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.transferred.fetch_add(transferred as u64, Ordering::Relaxed);
        transferred
    }

    /// Merge a finished request's cache into the store under `key` (deduplicated
    /// against what is already shelved, capped per key).
    pub fn publish(&self, key: u64, cache: &ClauseCache) {
        if cache.is_empty() {
            return;
        }
        let mut shelves = self.shelves.write().unwrap();
        let shelf = shelves.entry(key).or_default();
        for clause in cache.clauses() {
            shelf.add(clause);
        }
    }

    /// Number of fetches that found a non-empty entry for their key.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of fetches that found nothing for their key.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total clauses copied out of the store into request caches.
    pub fn transferred(&self) -> u64 {
        self.transferred.load(Ordering::Relaxed)
    }

    /// Test-only corruption hook: shelve a raw clause under `key`, bypassing
    /// [`ClauseCache::add`]'s canonicalization. Exists so mutation tests can prove
    /// that a corrupted transferred clause is caught by the debug-mode
    /// canonical-form assertion in [`Solver::load_trusted_clauses`]; never call it
    /// from production code.
    #[doc(hidden)]
    pub fn inject_raw_for_tests(&self, key: u64, clause: Vec<Lit>) {
        let mut shelves = self.shelves.write().unwrap();
        shelves.entry(key).or_default().clauses.push(clause);
    }
}

/// A max-heap of variables ordered by activity, with lazy updates.
struct VarHeap {
    heap: Vec<Var>,
    position: Vec<Option<usize>>,
    key: Vec<f64>,
}

impl VarHeap {
    fn new(n: usize) -> Self {
        VarHeap { heap: Vec::with_capacity(n), position: vec![None; n], key: vec![0.0; n] }
    }

    fn contains(&self, v: Var) -> bool {
        self.position[v as usize].is_some()
    }

    fn insert(&mut self, v: Var, key: f64) {
        if self.contains(v) {
            self.update(v, key);
            return;
        }
        self.key[v as usize] = key;
        let pos = self.heap.len();
        self.heap.push(v);
        self.position[v as usize] = Some(pos);
        self.sift_up(pos);
    }

    fn update(&mut self, v: Var, key: f64) {
        self.key[v as usize] = key;
        if let Some(pos) = self.position[v as usize] {
            self.sift_up(pos);
        }
    }

    fn pop(&mut self) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.position[top as usize] = None;
        let last = self.heap.pop().unwrap();
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last as usize] = Some(0);
            self.sift_down(0);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.key[self.heap[pos] as usize] > self.key[self.heap[parent] as usize] {
                self.swap(pos, parent);
                pos = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut pos: usize) {
        loop {
            let left = 2 * pos + 1;
            let right = 2 * pos + 2;
            let mut largest = pos;
            if left < self.heap.len()
                && self.key[self.heap[left] as usize] > self.key[self.heap[largest] as usize]
            {
                largest = left;
            }
            if right < self.heap.len()
                && self.key[self.heap[right] as usize] > self.key[self.heap[largest] as usize]
            {
                largest = right;
            }
            if largest == pos {
                break;
            }
            self.swap(pos, largest);
            pos = largest;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.position[self.heap[a] as usize] = Some(a);
        self.position[self.heap[b] as usize] = Some(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: i32) -> Lit {
        if v > 0 {
            Lit::pos((v - 1) as Var)
        } else {
            Lit::neg((-v - 1) as Var)
        }
    }

    #[test]
    fn simple_sat_and_unsat() {
        let mut s = Solver::new(2, SatConfig::default());
        assert!(s.add_clause(&[lit(1), lit(2)]));
        assert!(s.add_clause(&[lit(-1), lit(2)]));
        assert_eq!(s.search(), SearchResult::Sat);
        let m = s.model();
        assert!(m[1], "x2 must be true");

        let mut s = Solver::new(1, SatConfig::default());
        assert!(s.add_clause(&[lit(1)]));
        assert!(!s.add_clause(&[lit(-1)]));
        assert_eq!(s.search(), SearchResult::Unsat);
    }

    #[test]
    fn pigeonhole_unsat() {
        // 4 pigeons, 3 holes: classic small UNSAT instance exercising conflict analysis.
        let pigeons = 4;
        let holes = 3;
        let var = |p: usize, h: usize| (p * holes + h) as Var;
        let mut s = Solver::new(pigeons * holes, SatConfig::default());
        for p in 0..pigeons {
            let clause: Vec<Lit> = (0..holes).map(|h| Lit::pos(var(p, h))).collect();
            assert!(s.add_clause(&clause));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    assert!(s.add_clause(&[Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]));
                }
            }
        }
        assert_eq!(s.search(), SearchResult::Unsat);
        assert!(s.stats.conflicts > 0);
    }

    #[test]
    fn learned_clause_deletion_preserves_answers() {
        // A tight learned-clause cap plus a small restart interval forces the
        // reduction policy to run mid-search; the UNSAT proof must survive it.
        let config = SatConfig { restart_base: 4, learned_limit: 1, ..SatConfig::default() };
        let pigeons = 6;
        let holes = 5;
        let var = |p: usize, h: usize| (p * holes + h) as Var;
        let mut s = Solver::new(pigeons * holes, config.clone());
        for p in 0..pigeons {
            let clause: Vec<Lit> = (0..holes).map(|h| Lit::pos(var(p, h))).collect();
            assert!(s.add_clause(&clause));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    assert!(s.add_clause(&[Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]));
                }
            }
        }
        assert_eq!(s.search(), SearchResult::Unsat);
        assert!(s.stats.deleted > 0, "the reduction policy must have fired");

        // And a satisfiable instance under the same aggressive policy.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let n = 40;
        let mut s = Solver::new(n, config);
        let mut cls = Vec::new();
        for _ in 0..120 {
            let c: Vec<Lit> = (0..3)
                .map(|_| {
                    let v = rng.gen_range(0..n) as Var;
                    if rng.gen_bool(0.5) {
                        Lit::pos(v)
                    } else {
                        Lit::neg(v)
                    }
                })
                .collect();
            cls.push(c.clone());
            s.add_clause(&c);
        }
        if s.search() == SearchResult::Sat {
            let m = s.model();
            for c in &cls {
                assert!(c.iter().any(|l| m[l.var() as usize] == l.is_pos()));
            }
        }
    }

    #[test]
    fn random_3sat_instances_solved() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for instance in 0..20 {
            let n = 30;
            let clauses = 90 + instance; // below the phase transition: usually SAT
            let mut s = Solver::new(n, SatConfig::default());
            let mut cls = Vec::new();
            for _ in 0..clauses {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = rng.gen_range(0..n) as Var;
                    let l = if rng.gen_bool(0.5) { Lit::pos(v) } else { Lit::neg(v) };
                    c.push(l);
                }
                cls.push(c.clone());
                s.add_clause(&c);
            }
            if s.search() == SearchResult::Sat {
                let m = s.model();
                for c in &cls {
                    assert!(
                        c.iter().any(|l| m[l.var() as usize] == l.is_pos()),
                        "model does not satisfy a clause"
                    );
                }
            }
        }
    }

    #[test]
    fn cardinality_exactly_one() {
        let mut s = Solver::new(4, SatConfig::default());
        s.add_linear(LinearSpec::cardinality(None, vec![lit(1), lit(2), lit(3), lit(4)], 1, 1));
        assert_eq!(s.search(), SearchResult::Sat);
        let m = s.model();
        assert_eq!(m.iter().filter(|&&b| b).count(), 1);

        // Forcing two of them true must be unsatisfiable.
        let mut s = Solver::new(4, SatConfig::default());
        s.add_linear(LinearSpec::cardinality(None, vec![lit(1), lit(2), lit(3), lit(4)], 1, 1));
        assert!(s.add_clause(&[lit(1)]));
        let ok = s.add_clause(&[lit(2)]);
        assert!(!ok || s.search() == SearchResult::Unsat);
    }

    #[test]
    fn cardinality_lower_bound_propagates() {
        // x1..x4, at least 3 true, x1 and x2 false -> unsat.
        let mut s = Solver::new(4, SatConfig::default());
        s.add_linear(LinearSpec::cardinality(
            None,
            vec![lit(1), lit(2), lit(3), lit(4)],
            3,
            u64::MAX,
        ));
        assert!(s.add_clause(&[lit(-1)]));
        let ok = s.add_clause(&[lit(-2)]);
        assert!(!ok || s.search() == SearchResult::Unsat);
    }

    #[test]
    fn conditional_cardinality_inert_when_guard_false() {
        // guard -> exactly one of x2,x3; guard is false, so both may be true.
        let mut s = Solver::new(3, SatConfig::default());
        s.add_linear(LinearSpec::cardinality(Some(lit(1)), vec![lit(2), lit(3)], 1, 1));
        assert!(s.add_clause(&[lit(-1)]));
        assert!(s.add_clause(&[lit(2)]));
        assert!(s.add_clause(&[lit(3)]));
        assert_eq!(s.search(), SearchResult::Sat);
    }

    #[test]
    fn conditional_cardinality_forces_guard_false() {
        // guard -> at most one of x2,x3; x2 and x3 forced true -> guard must be false.
        let mut s = Solver::new(3, SatConfig::default());
        s.add_linear(LinearSpec::cardinality(Some(lit(1)), vec![lit(2), lit(3)], 0, 1));
        assert!(s.add_clause(&[lit(2)]));
        assert!(s.add_clause(&[lit(3)]));
        assert_eq!(s.search(), SearchResult::Sat);
        assert!(!s.model()[0], "guard must be false");
    }

    #[test]
    fn weighted_lower_bound_forces_heavy_literal() {
        // total=10, lower=5: losing the weight-9 literal would undershoot, so it must
        // be forced true by propagation alone (the slack check must use wmax on the
        // lower side too, not the lightest weight).
        let mut s = Solver::new(2, SatConfig::default());
        s.add_linear(LinearSpec {
            condition: None,
            lits: vec![lit(1), lit(2)],
            weights: vec![9, 1],
            lower: 5,
            upper: u64::MAX,
        });
        assert!(s.lit_is_true(lit(1)), "weight-9 literal must be propagated, not searched");
        assert_eq!(s.search(), SearchResult::Sat);
    }

    #[test]
    fn weighted_upper_bound() {
        // weights 5,3,2 over x1,x2,x3 with sum <= 5: at most x1 alone, or x2+x3.
        let mut s = Solver::new(3, SatConfig::default());
        s.add_linear(LinearSpec {
            condition: None,
            lits: vec![lit(1), lit(2), lit(3)],
            weights: vec![5, 3, 2],
            lower: 0,
            upper: 5,
        });
        assert!(s.add_clause(&[lit(1)]));
        assert_eq!(s.search(), SearchResult::Sat);
        let m = s.model();
        assert!(m[0] && !m[1] && !m[2]);
    }

    #[test]
    fn blocking_clauses_enumerate_models() {
        // x1 xor-ish: (x1 | x2), enumerate all models of 2 vars.
        let mut s = Solver::new(2, SatConfig::default());
        assert!(s.add_clause(&[lit(1), lit(2)]));
        let mut count = 0;
        loop {
            match s.search() {
                SearchResult::Unsat => break,
                SearchResult::Interrupted => unreachable!("no stop flag installed"),
                SearchResult::Sat => {
                    count += 1;
                    assert!(count <= 3, "only 3 models exist");
                    let m = s.model();
                    let blocking: Vec<Lit> = (0..2)
                        .map(|v| if m[v] { Lit::neg(v as Var) } else { Lit::pos(v as Var) })
                        .collect();
                    if !s.add_blocking_clause(&blocking) {
                        break;
                    }
                }
            }
        }
        assert_eq!(count, 3);
    }

    #[test]
    fn assumptions_restrict_the_search() {
        // (x1 | x2) with assumption ~x1 forces x2; the solver stays reusable.
        let mut s = Solver::new(2, SatConfig::default());
        assert!(s.add_clause(&[lit(1), lit(2)]));
        assert_eq!(s.search_with_assumptions(&[lit(-1)]), SearchResult::Sat);
        let m = s.model();
        assert!(!m[0] && m[1]);
        // Same solver, opposite assumption.
        assert_eq!(s.search_with_assumptions(&[lit(1), lit(-2)]), SearchResult::Sat);
        let m = s.model();
        assert!(m[0] && !m[1]);
    }

    #[test]
    fn failed_assumptions_form_a_core() {
        // x1 -> x2, x2 -> x3: assuming x1 and ~x3 is unsat; x2-related assumptions are
        // irrelevant and must not appear in the core.
        let mut s = Solver::new(4, SatConfig::default());
        assert!(s.add_clause(&[lit(-1), lit(2)]));
        assert!(s.add_clause(&[lit(-2), lit(3)]));
        assert_eq!(s.search_with_assumptions(&[lit(4), lit(1), lit(-3)]), SearchResult::Unsat);
        let core: Vec<Lit> = s.failed_assumptions().to_vec();
        assert!(core.contains(&lit(1)), "{core:?}");
        assert!(core.contains(&lit(-3)), "{core:?}");
        assert!(!core.contains(&lit(4)), "irrelevant assumption in core: {core:?}");
        // Without the contradictory assumptions the formula is satisfiable again.
        assert_eq!(s.search_with_assumptions(&[lit(4)]), SearchResult::Sat);
    }

    #[test]
    fn contradictory_assumption_pair_is_its_own_core() {
        let mut s = Solver::new(3, SatConfig::default());
        assert!(s.add_clause(&[lit(1), lit(2), lit(3)]));
        assert_eq!(s.search_with_assumptions(&[lit(2), lit(-2)]), SearchResult::Unsat);
        let core = s.failed_assumptions();
        assert!(core.contains(&lit(2)) && core.contains(&lit(-2)), "{core:?}");
    }

    #[test]
    fn root_unsat_yields_an_empty_core() {
        let mut s = Solver::new(2, SatConfig::default());
        assert!(s.add_clause(&[lit(1)]));
        assert!(!s.add_clause(&[lit(-1)]));
        assert_eq!(s.search_with_assumptions(&[lit(2)]), SearchResult::Unsat);
        assert!(s.failed_assumptions().is_empty());
    }

    #[test]
    fn assumptions_with_linear_constraints() {
        // exactly-one over x1..x3; assuming x1 and x2 must fail with both in the core.
        let mut s = Solver::new(3, SatConfig::default());
        s.add_linear(LinearSpec::cardinality(None, vec![lit(1), lit(2), lit(3)], 1, 1));
        assert_eq!(s.search_with_assumptions(&[lit(1), lit(2)]), SearchResult::Unsat);
        let core = s.failed_assumptions();
        assert!(core.contains(&lit(1)) && core.contains(&lit(2)), "{core:?}");
        assert_eq!(s.search_with_assumptions(&[lit(2)]), SearchResult::Sat);
        assert!(s.model()[1]);
    }

    #[test]
    fn learned_clauses_from_safe_antecedents_are_exported() {
        // x1 -> x2 -> x3 -> ~x1, all program clauses: refuting the assumption x1
        // learns the program consequence ~x1, which must be exported.
        let mut s = Solver::new(3, SatConfig::default());
        assert!(s.add_clause_safe(&[lit(-1), lit(2)]));
        assert!(s.add_clause_safe(&[lit(-2), lit(3)]));
        assert!(s.add_clause_safe(&[lit(-3), lit(-1)]));
        assert_eq!(s.search_with_assumptions(&[lit(1)]), SearchResult::Unsat);
        let exported: Vec<Vec<Lit>> = s.safe_learned_clauses().map(|c| c.to_vec()).collect();
        assert!(
            exported.iter().any(|c| c.as_slice() == [lit(-1)]),
            "the program consequence ~x1 must be exported: {exported:?}"
        );
    }

    #[test]
    fn learned_clauses_tainted_by_unsafe_units_are_not_exported() {
        // x2 is a per-solve root unit (e.g. an #external guard). The conflict that
        // refutes the assumption x1 resolves through it, so the learned clause is
        // only valid for solves where x2 holds — it must NOT be exported.
        let mut s = Solver::new(3, SatConfig::default());
        assert!(s.add_clause(&[lit(2)])); // unsafe per-solve unit
        assert!(s.add_clause_safe(&[lit(-1), lit(3)]));
        assert!(s.add_clause_safe(&[lit(-3), lit(-2), lit(-1)]));
        assert_eq!(s.search_with_assumptions(&[lit(1)]), SearchResult::Unsat);
        assert_eq!(
            s.safe_learned_clauses().count(),
            0,
            "clauses depending on the unsafe unit must not be exported"
        );
    }

    #[test]
    fn clause_cache_deduplicates() {
        let mut cache = ClauseCache::default();
        cache.add(&[lit(1), lit(2)]);
        cache.add(&[lit(2), lit(1)]); // same clause, different order
        cache.add(&[lit(1)]);
        cache.add(&[]); // ignored
        assert_eq!(cache.len(), 2);
        assert!(!cache.is_empty());
    }

    #[test]
    fn trusted_load_matches_add_clause_safe() {
        // The same canonical clause stream, loaded both ways, must produce solvers
        // with identical stored clauses, identical level-0 assignments, and identical
        // provenance bits.
        let clauses: Vec<Vec<Lit>> = vec![
            vec![lit(1), lit(2)],
            vec![lit(-1), lit(3)],
            vec![lit(-2), lit(-3), lit(4)],
            vec![lit(5)],
            vec![lit(-5), lit(2)],
        ];
        let canonical: Vec<Vec<Lit>> = clauses
            .iter()
            .map(|c| {
                let mut c = c.clone();
                c.sort_unstable();
                c
            })
            .collect();
        let mut a = Solver::new(5, SatConfig::default());
        for c in &canonical {
            assert!(a.add_clause_safe(c));
        }
        let mut b = Solver::new(5, SatConfig::default());
        assert!(b.load_trusted_clauses(canonical.iter().map(|c| c.as_slice()), true));
        assert_eq!(a.clauses, b.clauses);
        assert_eq!(a.clause_safe, b.clause_safe);
        assert_eq!(a.var0_safe, b.var0_safe);
        assert_eq!(a.assignment.len(), b.assignment.len());
        for v in 0..5 {
            assert_eq!(a.assignment[v], b.assignment[v], "level-0 assignment of x{v}");
        }
        assert_eq!(a.search(), SearchResult::Sat);
        assert_eq!(b.search(), SearchResult::Sat);
        assert_eq!(a.model(), b.model());
    }

    #[test]
    fn trusted_load_detects_root_conflict() {
        let mut s = Solver::new(2, SatConfig::default());
        assert!(s.load_trusted_clauses([&[lit(1)][..]], true));
        assert!(!s.load_trusted_clauses([&[lit(-1)][..]], true));
        assert_eq!(s.search(), SearchResult::Unsat);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "canonical-form contract")]
    fn trusted_load_catches_corrupted_clause_in_debug() {
        // An unsorted (corrupted) clause must trip the debug validation assert —
        // the backstop for bit flips in clauses transferred via a shared store.
        let mut s = Solver::new(3, SatConfig::default());
        s.load_trusted_clauses([&[lit(3), lit(1)][..]], true);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "canonical-form contract")]
    fn trusted_load_catches_out_of_range_variable_in_debug() {
        let mut s = Solver::new(2, SatConfig::default());
        s.load_trusted_clauses([&[lit(1), lit(7)][..]], true);
    }

    #[test]
    fn stop_flag_interrupts_the_search() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        // A pre-set stop flag must interrupt before any verdict; clearing it makes
        // the same solver usable again.
        let mut s = Solver::new(2, SatConfig::default());
        assert!(s.add_clause(&[lit(1), lit(2)]));
        let stop = Arc::new(AtomicBool::new(true));
        s.set_stop(Some(stop.clone()));
        assert_eq!(s.search(), SearchResult::Interrupted);
        stop.store(false, Ordering::SeqCst);
        assert_eq!(s.search(), SearchResult::Sat);
        s.set_stop(None);
        assert_eq!(s.search(), SearchResult::Sat);
    }

    #[test]
    fn expired_budget_interrupts_the_search() {
        use std::sync::Arc;
        // An armed budget interrupts before any verdict; clearing it restores the
        // solver, and the race stop flag never touches the budget.
        let mut s = Solver::new(2, SatConfig::default());
        assert!(s.add_clause(&[lit(1), lit(2)]));
        let budget = Arc::new(SolveBudgetState::new(None));
        budget.arm();
        s.set_budget(Some(budget));
        assert_eq!(s.search(), SearchResult::Interrupted);
        s.set_budget(None);
        assert_eq!(s.search(), SearchResult::Sat);
    }

    #[test]
    fn conflict_limit_arms_the_budget() {
        use std::sync::Arc;
        // An unsatisfiable pigeonhole-style core needs conflicts to refute; a
        // one-conflict ceiling interrupts the proof instead.
        let mut s = Solver::new(4, SatConfig::default());
        assert!(s.add_clause(&[lit(1), lit(2)]));
        assert!(s.add_clause(&[lit(1), lit(-2)]));
        assert!(s.add_clause(&[lit(-1), lit(3)]));
        assert!(s.add_clause(&[lit(-1), lit(-3)]));
        let budget = Arc::new(SolveBudgetState::new(Some(1)));
        s.set_budget(Some(budget.clone()));
        assert_eq!(s.search(), SearchResult::Interrupted);
        assert!(budget.expired());
        assert!(budget.conflicts() >= 1);
    }

    #[test]
    fn clause_cache_drops_tautologies() {
        let mut cache = ClauseCache::default();
        cache.add(&[lit(1), lit(-1)]); // tautology: not canonical, must not be shelved
        cache.add(&[lit(1), lit(2)]);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shared_store_transfers_and_counts() {
        let store = SharedClauseStore::new();
        let mut cache = ClauseCache::default();
        cache.add(&[lit(1), lit(2)]);
        cache.add(&[lit(-2), lit(3)]);
        store.publish(7, &cache);
        store.publish(7, &cache); // idempotent: deduplicated against the shelf

        let mut warm = ClauseCache::default();
        assert_eq!(store.fetch_into(7, &mut warm), 2);
        assert_eq!(warm.len(), 2);
        // Fetching into a warm cache deduplicates instead of double-counting.
        assert_eq!(store.fetch_into(7, &mut warm), 0);
        // An unknown key is a miss.
        let mut other = ClauseCache::default();
        assert_eq!(store.fetch_into(99, &mut other), 0);
        assert!(other.is_empty());

        assert_eq!(store.hits(), 2);
        assert_eq!(store.misses(), 1);
        assert_eq!(store.transferred(), 2);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "canonical-form contract")]
    fn corrupted_store_clause_is_caught_on_trusted_load() {
        // Mutation-style soundness check: corrupt a shelved clause behind the store's
        // back; the fetch hands it through raw and the trusted-load assert fires.
        let store = SharedClauseStore::new();
        store.inject_raw_for_tests(1, vec![lit(2), lit(2), lit(1)]);
        let mut warm = ClauseCache::default();
        store.fetch_into(1, &mut warm);
        let mut s = Solver::new(3, SatConfig::default());
        s.load_trusted_clauses(warm.clauses().iter().map(|c| c.as_slice()), true);
    }

    #[test]
    fn phase_saving_respects_config() {
        let mut s = Solver::new(
            5,
            SatConfig { default_phase: true, random_polarity: 0.0, ..SatConfig::default() },
        );
        assert_eq!(s.search(), SearchResult::Sat);
        assert!(s.model().iter().all(|&b| b), "default phase true => all-true model");
        let mut s = Solver::new(
            5,
            SatConfig { default_phase: false, random_polarity: 0.0, ..SatConfig::default() },
        );
        assert_eq!(s.search(), SearchResult::Sat);
        assert!(s.model().iter().all(|&b| !b));
    }
}

//! Interned symbols, ground values, and the ground atom table.
//!
//! A typical concretization problem has 10k–100k facts (Section V of the paper), so atoms
//! and their arguments are interned: strings become small integer [`SymbolId`]s and ground
//! atoms become dense [`AtomId`]s, which the grounder, the SAT translation, and the model
//! extraction all share.

use std::collections::HashMap;
use std::fmt;

/// Identifier of an interned string symbol.
pub type SymbolId = u32;

/// Identifier of a ground atom (dense, starting at 0).
pub type AtomId = u32;

/// A table interning strings to [`SymbolId`]s.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    names: Vec<String>,
    map: HashMap<String, SymbolId>,
}

impl SymbolTable {
    /// Create an empty symbol table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a string, returning its id.
    pub fn intern(&mut self, s: &str) -> SymbolId {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = self.names.len() as SymbolId;
        self.names.push(s.to_string());
        self.map.insert(s.to_string(), id);
        id
    }

    /// Look up an already-interned string.
    pub fn lookup(&self, s: &str) -> Option<SymbolId> {
        self.map.get(s).copied()
    }

    /// The string for a symbol id.
    pub fn name(&self, id: SymbolId) -> &str {
        &self.names[id as usize]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no symbol has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A ground value: either an integer or an interned symbol (string/constant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Val {
    /// An integer constant.
    Int(i64),
    /// An interned symbolic constant or string.
    Sym(SymbolId),
}

impl Val {
    /// Render the value using a symbol table.
    pub fn display<'a>(&'a self, symbols: &'a SymbolTable) -> ValDisplay<'a> {
        ValDisplay { val: self, symbols }
    }
}

/// Helper for displaying a [`Val`] with access to the symbol table.
pub struct ValDisplay<'a> {
    val: &'a Val,
    symbols: &'a SymbolTable,
}

impl fmt::Display for ValDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.val {
            Val::Int(i) => write!(f, "{i}"),
            Val::Sym(s) => {
                let name = self.symbols.name(*s);
                let bare = !name.is_empty()
                    && name.chars().next().unwrap().is_ascii_lowercase()
                    && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
                if bare {
                    write!(f, "{name}")
                } else {
                    write!(f, "\"{name}\"")
                }
            }
        }
    }
}

/// A ground atom: predicate symbol plus ground arguments.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroundAtom {
    /// Predicate name symbol.
    pub pred: SymbolId,
    /// Ground arguments.
    pub args: Vec<Val>,
}

impl GroundAtom {
    /// Construct a ground atom.
    pub fn new(pred: SymbolId, args: Vec<Val>) -> Self {
        GroundAtom { pred, args }
    }

    /// Render the atom using a symbol table.
    pub fn display<'a>(&'a self, symbols: &'a SymbolTable) -> GroundAtomDisplay<'a> {
        GroundAtomDisplay { atom: self, symbols }
    }
}

/// Helper for displaying a [`GroundAtom`] with access to the symbol table.
pub struct GroundAtomDisplay<'a> {
    atom: &'a GroundAtom,
    symbols: &'a SymbolTable,
}

impl fmt::Display for GroundAtomDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbols.name(self.atom.pred))?;
        if !self.atom.args.is_empty() {
            write!(f, "(")?;
            for (i, a) in self.atom.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}", a.display(self.symbols))?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// The table of all *possible* ground atoms discovered during grounding.
///
/// Atoms are additionally indexed by predicate and by `(predicate, argument position,
/// value)` so the grounder's joins can select the smallest candidate list.
#[derive(Debug, Default, Clone)]
pub struct AtomTable {
    atoms: Vec<GroundAtom>,
    ids: HashMap<GroundAtom, AtomId>,
    by_pred: HashMap<SymbolId, Vec<AtomId>>,
    by_pred_arg: HashMap<(SymbolId, u8, Val), Vec<AtomId>>,
    /// Atoms known to be true in every model (input facts).
    certain: Vec<bool>,
}

impl AtomTable {
    /// Create an empty atom table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Intern an atom, returning `(id, is_new)`.
    pub fn intern(&mut self, atom: GroundAtom) -> (AtomId, bool) {
        if let Some(&id) = self.ids.get(&atom) {
            return (id, false);
        }
        let id = self.atoms.len() as AtomId;
        self.by_pred.entry(atom.pred).or_default().push(id);
        for (pos, &val) in atom.args.iter().enumerate().take(u8::MAX as usize) {
            self.by_pred_arg.entry((atom.pred, pos as u8, val)).or_default().push(id);
        }
        self.ids.insert(atom.clone(), id);
        self.atoms.push(atom);
        self.certain.push(false);
        (id, true)
    }

    /// Look up an atom id without interning.
    pub fn get(&self, atom: &GroundAtom) -> Option<AtomId> {
        self.ids.get(atom).copied()
    }

    /// The atom for an id.
    pub fn atom(&self, id: AtomId) -> &GroundAtom {
        &self.atoms[id as usize]
    }

    /// All atoms with a given predicate.
    pub fn with_pred(&self, pred: SymbolId) -> &[AtomId] {
        self.by_pred.get(&pred).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// All atoms with a given predicate and a given value at argument position `pos`.
    pub fn with_pred_arg(&self, pred: SymbolId, pos: u8, val: Val) -> &[AtomId] {
        self.by_pred_arg
            .get(&(pred, pos, val))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Mark an atom as certainly true (an input fact).
    pub fn set_certain(&mut self, id: AtomId) {
        self.certain[id as usize] = true;
    }

    /// Is the atom certainly true?
    pub fn is_certain(&self, id: AtomId) -> bool {
        self.certain[id as usize]
    }

    /// Iterate over all `(id, atom)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AtomId, &GroundAtom)> {
        self.atoms.iter().enumerate().map(|(i, a)| (i as AtomId, a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_interning_is_stable() {
        let mut t = SymbolTable::new();
        let a = t.intern("hdf5");
        let b = t.intern("zlib");
        let a2 = t.intern("hdf5");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.name(a), "hdf5");
        assert_eq!(t.lookup("zlib"), Some(b));
        assert_eq!(t.lookup("missing"), None);
    }

    #[test]
    fn atom_table_interning_and_indexes() {
        let mut syms = SymbolTable::new();
        let node = syms.intern("node");
        let dep = syms.intern("depends_on");
        let hdf5 = Val::Sym(syms.intern("hdf5"));
        let zlib = Val::Sym(syms.intern("zlib"));

        let mut atoms = AtomTable::new();
        let (a, new_a) = atoms.intern(GroundAtom::new(node, vec![hdf5]));
        let (b, new_b) = atoms.intern(GroundAtom::new(node, vec![zlib]));
        let (a2, new_a2) = atoms.intern(GroundAtom::new(node, vec![hdf5]));
        let (c, _) = atoms.intern(GroundAtom::new(dep, vec![hdf5, zlib]));

        assert!(new_a && new_b && !new_a2);
        assert_eq!(a, a2);
        assert_eq!(atoms.with_pred(node).len(), 2);
        assert_eq!(atoms.with_pred(dep), &[c]);
        assert_eq!(atoms.with_pred_arg(node, 0, hdf5), &[a]);
        assert_eq!(atoms.with_pred_arg(dep, 1, zlib), &[c]);
        assert!(atoms.with_pred_arg(dep, 1, hdf5).is_empty());
        assert_eq!(b, 1);
    }

    #[test]
    fn display_quotes_non_identifiers() {
        let mut syms = SymbolTable::new();
        let p = syms.intern("version_declared");
        let zlib = syms.intern("zlib");
        let ver = syms.intern("1.2.11");
        let atom = GroundAtom::new(p, vec![Val::Sym(zlib), Val::Sym(ver), Val::Int(0)]);
        assert_eq!(
            atom.display(&syms).to_string(),
            "version_declared(zlib,\"1.2.11\",0)"
        );
    }
}

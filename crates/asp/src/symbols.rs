//! Interned symbols, ground values, and the ground atom table.
//!
//! A typical concretization problem has 10k–100k facts (Section V of the paper), so atoms
//! and their arguments are interned: strings become small integer [`SymbolId`]s and ground
//! atoms become dense [`AtomId`]s, which the grounder, the SAT translation, and the model
//! extraction all share.

use std::fmt;
use std::sync::Arc;

use crate::hasher::FxHashMap;

/// Identifier of an interned string symbol.
pub type SymbolId = u32;

/// Identifier of a ground atom (dense, starting at 0).
pub type AtomId = u32;

/// A table interning strings to [`SymbolId`]s.
///
/// Entries are `Arc<str>`, so cloning a table (a multi-shot session forks the frozen
/// base's symbols for every request) bumps reference counts instead of re-allocating
/// thousands of strings.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    names: Vec<Arc<str>>,
    map: FxHashMap<Arc<str>, SymbolId>,
}

impl SymbolTable {
    /// Create an empty symbol table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a string, returning its id.
    pub fn intern(&mut self, s: &str) -> SymbolId {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = self.names.len() as SymbolId;
        let shared: Arc<str> = Arc::from(s);
        self.names.push(shared.clone());
        self.map.insert(shared, id);
        id
    }

    /// Look up an already-interned string.
    pub fn lookup(&self, s: &str) -> Option<SymbolId> {
        self.map.get(s).copied()
    }

    /// The string for a symbol id.
    pub fn name(&self, id: SymbolId) -> &str {
        &self.names[id as usize]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no symbol has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A ground value: either an integer or an interned symbol (string/constant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Val {
    /// An integer constant.
    Int(i64),
    /// An interned symbolic constant or string.
    Sym(SymbolId),
}

impl Val {
    /// Render the value using a symbol table.
    pub fn display<'a>(&'a self, symbols: &'a SymbolTable) -> ValDisplay<'a> {
        ValDisplay { val: self, symbols }
    }
}

/// Helper for displaying a [`Val`] with access to the symbol table.
pub struct ValDisplay<'a> {
    val: &'a Val,
    symbols: &'a SymbolTable,
}

impl fmt::Display for ValDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.val {
            Val::Int(i) => write!(f, "{i}"),
            Val::Sym(s) => {
                let name = self.symbols.name(*s);
                let bare = !name.is_empty()
                    && name.chars().next().unwrap().is_ascii_lowercase()
                    && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
                if bare {
                    write!(f, "{name}")
                } else {
                    write!(f, "\"{name}\"")
                }
            }
        }
    }
}

/// A ground atom: predicate symbol plus ground arguments.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct GroundAtom {
    /// Predicate name symbol.
    pub pred: SymbolId,
    /// Ground arguments.
    pub args: Vec<Val>,
}

impl GroundAtom {
    /// Construct a ground atom.
    pub fn new(pred: SymbolId, args: Vec<Val>) -> Self {
        GroundAtom { pred, args }
    }

    /// Render the atom using a symbol table.
    pub fn display<'a>(&'a self, symbols: &'a SymbolTable) -> GroundAtomDisplay<'a> {
        GroundAtomDisplay { atom: self, symbols }
    }
}

/// Helper for displaying a [`GroundAtom`] with access to the symbol table.
pub struct GroundAtomDisplay<'a> {
    atom: &'a GroundAtom,
    symbols: &'a SymbolTable,
}

impl fmt::Display for GroundAtomDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbols.name(self.atom.pred))?;
        if !self.atom.args.is_empty() {
            write!(f, "(")?;
            for (i, a) in self.atom.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}", a.display(self.symbols))?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// A compact list of atom ids: up to three stored inline, spilling to the heap only
/// when a value is shared by more atoms. The index maps hold one of these per distinct
/// key — hundreds of thousands for realistic problems — so keeping short lists inline
/// removes a heap allocation (and a free at teardown) for the overwhelming majority.
#[derive(Debug, Clone)]
enum IdList {
    /// Up to three ids stored in place.
    Inline { len: u8, ids: [AtomId; 3] },
    /// Spilled to the heap.
    Heap(Vec<AtomId>),
}

impl Default for IdList {
    fn default() -> Self {
        IdList::Inline { len: 0, ids: [0; 3] }
    }
}

impl IdList {
    fn push(&mut self, id: AtomId) {
        match self {
            IdList::Inline { len, ids } => {
                if (*len as usize) < ids.len() {
                    ids[*len as usize] = id;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(8);
                    v.extend_from_slice(&ids[..]);
                    v.push(id);
                    *self = IdList::Heap(v);
                }
            }
            IdList::Heap(v) => v.push(id),
        }
    }

    fn as_slice(&self) -> &[AtomId] {
        match self {
            IdList::Inline { len, ids } => &ids[..*len as usize],
            IdList::Heap(v) => v,
        }
    }
}

/// The table of all *possible* ground atoms discovered during grounding.
///
/// Atoms are indexed three ways so the grounder's join planner can always pick the
/// smallest candidate list for the bound arguments at hand:
///
/// * by predicate (`with_pred`),
/// * by `(predicate, argument position, value)` (`with_pred_arg`), and
/// * by `(predicate, position₁, value₁, position₂, value₂)` for every pair of argument
///   positions among the first [`AtomTable::MAX_PAIR_INDEXED_ARGS`] (`with_pred_args2`) —
///   the multi-argument index that makes joins with two or more bound arguments O(hit
///   count) instead of O(single-argument candidate list).
///
/// All index lists are append-only: interning never reorders or removes entries, so a
/// caller iterating a list by position may intern *new* atoms mid-iteration and simply
/// re-fetch the slice (newly added ids land at the end, beyond the snapshot length).
#[derive(Debug, Default, Clone)]
pub struct AtomTable {
    atoms: Vec<GroundAtom>,
    ids: FxHashMap<GroundAtom, AtomId>,
    by_pred: FxHashMap<SymbolId, Vec<AtomId>>,
    by_pred_arg: FxHashMap<(SymbolId, u8, Val), IdList>,
    by_pred_arg2: FxHashMap<(SymbolId, u8, Val, u8, Val), IdList>,
    /// Atoms known to be true in every model (input facts).
    certain: Vec<bool>,
    /// `#external` guard atoms: never derived by a rule, but still allowed to be true
    /// (their truth is fixed per solve by an assumption). Stored sparse — external
    /// declarations are rare (a handful of guards per program).
    external: Vec<AtomId>,
    /// When false, the two-argument pair index is neither populated nor consulted.
    /// Per-request delta tables disable it: they re-intern a restricted copy of a
    /// frozen base whose joins were already done, and the remaining per-request joins
    /// are small enough for the single-argument indexes — skipping the pair inserts
    /// is a large share of the re-interning cost.
    no_pair_index: bool,
}

impl AtomTable {
    /// Create an empty atom table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a table without the two-argument pair index (see the field docs).
    pub fn new_without_pair_index() -> Self {
        AtomTable { no_pair_index: true, ..Self::default() }
    }

    /// Is the pair index maintained? The join planner must not consult it otherwise.
    pub fn pair_indexing(&self) -> bool {
        !self.no_pair_index
    }

    /// Reserve capacity for `additional` atoms (bulk re-interning of a restricted
    /// base view).
    pub fn reserve(&mut self, additional: usize) {
        self.atoms.reserve(additional);
        self.certain.reserve(additional);
        self.ids.reserve(additional);
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The number of leading argument positions covered by the two-argument (pair)
    /// index; single-argument indexes cover every position. Bounding the pair index
    /// keeps its memory quadratic only in a small constant (C(4,2) = 6 entries per
    /// atom at most).
    pub const MAX_PAIR_INDEXED_ARGS: usize = 4;

    /// Intern an atom by reference: no allocation at all when the atom is already
    /// present (the overwhelmingly common case on the grounder's derive path); the
    /// atom is cloned only when it is genuinely new.
    pub fn intern_ref(&mut self, atom: &GroundAtom) -> (AtomId, bool) {
        if let Some(&id) = self.ids.get(atom) {
            return (id, false);
        }
        self.intern(atom.clone())
    }

    /// Intern an atom, returning `(id, is_new)`.
    pub fn intern(&mut self, atom: GroundAtom) -> (AtomId, bool) {
        if let Some(&id) = self.ids.get(&atom) {
            return (id, false);
        }
        let id = self.atoms.len() as AtomId;
        self.by_pred.entry(atom.pred).or_default().push(id);
        for (pos, &val) in atom.args.iter().enumerate().take(u8::MAX as usize) {
            self.by_pred_arg.entry((atom.pred, pos as u8, val)).or_default().push(id);
        }
        if !self.no_pair_index {
            let paired = atom.args.iter().enumerate().take(Self::MAX_PAIR_INDEXED_ARGS);
            for (pos, &val) in paired.clone() {
                for (pos2, &val2) in paired.clone().skip(pos + 1) {
                    self.by_pred_arg2
                        .entry((atom.pred, pos as u8, val, pos2 as u8, val2))
                        .or_default()
                        .push(id);
                }
            }
        }
        self.ids.insert(atom.clone(), id);
        self.atoms.push(atom);
        self.certain.push(false);
        (id, true)
    }

    /// Look up an atom id without interning.
    pub fn get(&self, atom: &GroundAtom) -> Option<AtomId> {
        self.ids.get(atom).copied()
    }

    /// The atom for an id.
    pub fn atom(&self, id: AtomId) -> &GroundAtom {
        &self.atoms[id as usize]
    }

    /// All atoms with a given predicate.
    pub fn with_pred(&self, pred: SymbolId) -> &[AtomId] {
        self.by_pred.get(&pred).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// All atoms with a given predicate and a given value at argument position `pos`.
    pub fn with_pred_arg(&self, pred: SymbolId, pos: u8, val: Val) -> &[AtomId] {
        self.by_pred_arg.get(&(pred, pos, val)).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// All atoms with a given predicate and given values at two argument positions
    /// (`pos1 < pos2`, both below [`AtomTable::MAX_PAIR_INDEXED_ARGS`]).
    pub fn with_pred_args2(
        &self,
        pred: SymbolId,
        pos1: u8,
        val1: Val,
        pos2: u8,
        val2: Val,
    ) -> &[AtomId] {
        self.by_pred_arg2.get(&(pred, pos1, val1, pos2, val2)).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Mark an atom as certainly true (an input fact).
    pub fn set_certain(&mut self, id: AtomId) {
        self.certain[id as usize] = true;
    }

    /// Is the atom certainly true?
    pub fn is_certain(&self, id: AtomId) -> bool {
        self.certain[id as usize]
    }

    /// Mark an atom as an `#external` guard: exempt from support-based elimination and
    /// the unfounded-set check, its truth fixed per solve by an assumption.
    pub fn set_external(&mut self, id: AtomId) {
        if !self.external.contains(&id) {
            self.external.push(id);
        }
    }

    /// Is the atom an `#external` guard?
    pub fn is_external(&self, id: AtomId) -> bool {
        self.external.contains(&id)
    }

    /// All `#external` guard atoms.
    pub fn externals(&self) -> &[AtomId] {
        &self.external
    }

    /// Iterate over all `(id, atom)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AtomId, &GroundAtom)> {
        self.atoms.iter().enumerate().map(|(i, a)| (i as AtomId, a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_interning_is_stable() {
        let mut t = SymbolTable::new();
        let a = t.intern("hdf5");
        let b = t.intern("zlib");
        let a2 = t.intern("hdf5");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.name(a), "hdf5");
        assert_eq!(t.lookup("zlib"), Some(b));
        assert_eq!(t.lookup("missing"), None);
    }

    #[test]
    fn atom_table_interning_and_indexes() {
        let mut syms = SymbolTable::new();
        let node = syms.intern("node");
        let dep = syms.intern("depends_on");
        let hdf5 = Val::Sym(syms.intern("hdf5"));
        let zlib = Val::Sym(syms.intern("zlib"));

        let mut atoms = AtomTable::new();
        let (a, new_a) = atoms.intern(GroundAtom::new(node, vec![hdf5]));
        let (b, new_b) = atoms.intern(GroundAtom::new(node, vec![zlib]));
        let (a2, new_a2) = atoms.intern(GroundAtom::new(node, vec![hdf5]));
        let (c, _) = atoms.intern(GroundAtom::new(dep, vec![hdf5, zlib]));

        assert!(new_a && new_b && !new_a2);
        assert_eq!(a, a2);
        assert_eq!(atoms.with_pred(node).len(), 2);
        assert_eq!(atoms.with_pred(dep), &[c]);
        assert_eq!(atoms.with_pred_arg(node, 0, hdf5), &[a]);
        assert_eq!(atoms.with_pred_arg(dep, 1, zlib), &[c]);
        assert!(atoms.with_pred_arg(dep, 1, hdf5).is_empty());
        assert_eq!(atoms.with_pred_args2(dep, 0, hdf5, 1, zlib), &[c]);
        assert!(atoms.with_pred_args2(dep, 0, zlib, 1, hdf5).is_empty());
        assert_eq!(b, 1);
    }

    #[test]
    fn display_quotes_non_identifiers() {
        let mut syms = SymbolTable::new();
        let p = syms.intern("version_declared");
        let zlib = syms.intern("zlib");
        let ver = syms.intern("1.2.11");
        let atom = GroundAtom::new(p, vec![Val::Sym(zlib), Val::Sym(ver), Val::Int(0)]);
        assert_eq!(atom.display(&syms).to_string(), "version_declared(zlib,\"1.2.11\",0)");
    }
}

//! Tokenizer for the ASP input language.

use std::fmt;

/// A token of the ASP language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Lower-case identifier (predicate or symbolic constant).
    Ident(String),
    /// Variable: upper-case identifier or `_`.
    Variable(String),
    /// Quoted string constant.
    Str(String),
    /// Integer constant.
    Int(i64),
    /// `#minimize`
    Minimize,
    /// `#maximize`
    Maximize,
    /// `#const`
    Const,
    /// `#external`
    External,
    /// `not`
    Not,
    /// `:-`
    If,
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `@`
    At,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Variable(s) => write!(f, "{s}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::Int(i) => write!(f, "{i}"),
            Token::Minimize => write!(f, "#minimize"),
            Token::Maximize => write!(f, "#maximize"),
            Token::Const => write!(f, "#const"),
            Token::External => write!(f, "#external"),
            Token::Not => write!(f, "not"),
            Token::If => write!(f, ":-"),
            Token::Dot => write!(f, "."),
            Token::Comma => write!(f, ","),
            Token::Semi => write!(f, ";"),
            Token::Colon => write!(f, ":"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::At => write!(f, "@"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
        }
    }
}

/// A token plus its line number (1-based), for error messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: usize,
}

/// An error encountered while tokenizing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Description.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize an ASP program. `%` starts a line comment.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '%' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    if bytes[j] == b'\n' {
                        line += 1;
                    }
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LexError { message: "unterminated string".into(), line });
                }
                tokens.push(Spanned {
                    token: Token::Str(String::from_utf8_lossy(&bytes[start..j]).into_owned()),
                    line,
                });
                i = j + 1;
            }
            '#' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && (bytes[j] as char).is_ascii_alphabetic() {
                    j += 1;
                }
                let word = &input[start..j];
                let tok = match word {
                    "minimize" => Token::Minimize,
                    "maximize" => Token::Maximize,
                    "const" => Token::Const,
                    "external" => Token::External,
                    other => {
                        return Err(LexError {
                            message: format!("unknown directive #{other}"),
                            line,
                        })
                    }
                };
                tokens.push(Spanned { token: tok, line });
                i = j;
            }
            ':' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'-' {
                    tokens.push(Spanned { token: Token::If, line });
                    i += 2;
                } else {
                    tokens.push(Spanned { token: Token::Colon, line });
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Spanned { token: Token::Ne, line });
                    i += 2;
                } else {
                    return Err(LexError { message: "expected '=' after '!'".into(), line });
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Spanned { token: Token::Le, line });
                    i += 2;
                } else {
                    tokens.push(Spanned { token: Token::Lt, line });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Spanned { token: Token::Ge, line });
                    i += 2;
                } else {
                    tokens.push(Spanned { token: Token::Gt, line });
                    i += 1;
                }
            }
            '.' => {
                tokens.push(Spanned { token: Token::Dot, line });
                i += 1;
            }
            ',' => {
                tokens.push(Spanned { token: Token::Comma, line });
                i += 1;
            }
            ';' => {
                tokens.push(Spanned { token: Token::Semi, line });
                i += 1;
            }
            '(' => {
                tokens.push(Spanned { token: Token::LParen, line });
                i += 1;
            }
            ')' => {
                tokens.push(Spanned { token: Token::RParen, line });
                i += 1;
            }
            '{' => {
                tokens.push(Spanned { token: Token::LBrace, line });
                i += 1;
            }
            '}' => {
                tokens.push(Spanned { token: Token::RBrace, line });
                i += 1;
            }
            '=' => {
                tokens.push(Spanned { token: Token::Eq, line });
                i += 1;
            }
            '@' => {
                tokens.push(Spanned { token: Token::At, line });
                i += 1;
            }
            '+' => {
                tokens.push(Spanned { token: Token::Plus, line });
                i += 1;
            }
            '-' => {
                tokens.push(Spanned { token: Token::Minus, line });
                i += 1;
            }
            '*' => {
                tokens.push(Spanned { token: Token::Star, line });
                i += 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = input[start..i].parse().map_err(|_| LexError {
                    message: format!("invalid integer '{}'", &input[start..i]),
                    line,
                })?;
                tokens.push(Spanned { token: Token::Int(n), line });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                let tok = if word == "not" {
                    Token::Not
                } else if word.starts_with(|ch: char| ch.is_ascii_uppercase())
                    || word.starts_with('_')
                {
                    Token::Variable(word.to_string())
                } else {
                    Token::Ident(word.to_string())
                };
                tokens.push(Spanned { token: tok, line });
            }
            other => {
                return Err(LexError { message: format!("unexpected character '{other}'"), line })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_simple_rule() {
        let toks = tokenize("node(D) :- node(P), depends_on(P, D). % comment").unwrap();
        let kinds: Vec<&Token> = toks.iter().map(|t| &t.token).collect();
        assert_eq!(kinds[0], &Token::Ident("node".into()));
        assert_eq!(kinds[1], &Token::LParen);
        assert_eq!(kinds[2], &Token::Variable("D".into()));
        assert!(kinds.contains(&&Token::If));
        assert_eq!(kinds.last().unwrap(), &&Token::Dot);
    }

    #[test]
    fn tokenize_strings_and_numbers() {
        let toks = tokenize(r#"version_declared("zlib", "1.2.11", 0)."#).unwrap();
        assert!(toks.iter().any(|t| t.token == Token::Str("zlib".into())));
        assert!(toks.iter().any(|t| t.token == Token::Str("1.2.11".into())));
        assert!(toks.iter().any(|t| t.token == Token::Int(0)));
    }

    #[test]
    fn tokenize_minimize_and_bounds() {
        let toks = tokenize("#minimize{ W@3,P,V : version_weight(P, V, W)}.").unwrap();
        assert_eq!(toks[0].token, Token::Minimize);
        assert!(toks.iter().any(|t| t.token == Token::At));
        let toks = tokenize("1 { version(P, V) : possible_version(P, V) } 1 :- node(P).").unwrap();
        assert_eq!(toks[0].token, Token::Int(1));
        assert!(toks.iter().any(|t| t.token == Token::LBrace));
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize(":- a(X), X != 3, X <= 5, X >= 1, X < 9, X > 0, X = 2.").unwrap();
        for t in [Token::Ne, Token::Le, Token::Ge, Token::Lt, Token::Gt, Token::Eq] {
            assert!(toks.iter().any(|s| s.token == t), "missing {t:?}");
        }
    }

    #[test]
    fn errors_have_lines() {
        let err = tokenize("a.\nb ? c.").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("#unknown thing").is_err());
    }

    #[test]
    fn underscore_is_variable() {
        let toks = tokenize("build(P) :- not hash(P, _), node(P).").unwrap();
        assert!(toks.iter().any(|t| t.token == Token::Variable("_".into())));
        assert!(toks.iter().any(|t| t.token == Token::Not));
    }
}

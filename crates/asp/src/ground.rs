//! The grounder: instantiates a first-order program into a propositional (ground) one.
//!
//! This is the `gringo` analogue of the reproduction. Grounding proceeds in two phases:
//!
//! 1. **Possible-atom fixpoint.** Starting from the input facts, rules are instantiated
//!    over positive body literals only (an over-approximation that ignores negation),
//!    semi-naively, until no new head atoms appear. This discovers every atom that could
//!    possibly be true in a stable model.
//! 2. **Rule instantiation.** With the possible-atom set fixed, every rule is instantiated
//!    once more and simplified exactly as the paper describes for gringo (Fig. 3): body
//!    literals on input facts are dropped, negative literals on impossible atoms are
//!    dropped, instances contradicted by facts are discarded.
//!
//! The dialect restrictions (documented in the crate root) are: conditions of conditional
//! literals and of choice elements must be input facts, and every rule must be *safe*
//! (every variable appears in a positive, non-conditional body literal, or in the
//! conditions of its own conditional element).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crate::ast::{ArithOp, Atom, BodyElem, ChoiceElement, CmpOp, Head, Literal, Program, Term};
use crate::symbols::{AtomId, GroundAtom, SymbolId, SymbolTable, Val};

/// An error produced during grounding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundError {
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for GroundError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "grounding error: {}", self.message)
    }
}

impl std::error::Error for GroundError {}

/// A ground normal rule or integrity constraint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroundRule {
    /// Head atom; `None` for integrity constraints.
    pub head: Option<AtomId>,
    /// Positive body atoms.
    pub pos: Vec<AtomId>,
    /// Negative body atoms (`not a`).
    pub neg: Vec<AtomId>,
}

/// A ground choice rule with optional cardinality bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundChoice {
    /// The choosable head atoms.
    pub heads: Vec<AtomId>,
    /// Lower cardinality bound.
    pub lower: Option<i64>,
    /// Upper cardinality bound.
    pub upper: Option<i64>,
    /// Positive body atoms.
    pub pos: Vec<AtomId>,
    /// Negative body atoms.
    pub neg: Vec<AtomId>,
}

/// One ground minimize entry: `weight@priority` is paid whenever `condition` is true
/// (`condition == None` means the weight is always paid).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundMinimize {
    /// Priority level (higher = more significant).
    pub priority: i64,
    /// Weight contributed at that level.
    pub weight: i64,
    /// The atom whose truth triggers the weight, if any.
    pub condition: Option<AtomId>,
}

/// Statistics describing the grounding step.
#[derive(Debug, Clone, Default)]
pub struct GroundStats {
    /// Number of possible atoms discovered.
    pub atoms: usize,
    /// Number of ground normal rules / constraints.
    pub rules: usize,
    /// Number of ground choice rules.
    pub choices: usize,
    /// Number of ground minimize entries.
    pub minimize: usize,
    /// Number of fixpoint rounds in phase 1.
    pub rounds: usize,
    /// Wall-clock time spent grounding.
    pub duration: Duration,
}

/// The ground (propositional) program.
#[derive(Debug, Clone, Default)]
pub struct GroundProgram {
    /// Table of all possible atoms.
    pub atoms: crate::symbols::AtomTable,
    /// Ground rules and integrity constraints.
    pub rules: Vec<GroundRule>,
    /// Ground choice rules.
    pub choices: Vec<GroundChoice>,
    /// Ground minimize entries.
    pub minimize: Vec<GroundMinimize>,
    /// True when grounding already proved the program unsatisfiable (a constraint with an
    /// empty body was derived).
    pub trivially_unsat: bool,
    /// Grounding statistics.
    pub stats: GroundStats,
}

impl GroundProgram {
    /// Atoms that are certainly true (input facts).
    pub fn fact_atoms(&self) -> Vec<AtomId> {
        self.atoms
            .iter()
            .filter(|(id, _)| self.atoms.is_certain(*id))
            .map(|(id, _)| id)
            .collect()
    }
}

/// Compiled term: variables resolved to slot indices.
#[derive(Debug, Clone)]
enum CTerm {
    Val(Val),
    Var(usize),
    Wildcard,
    BinOp(ArithOp, Box<CTerm>, Box<CTerm>),
}

/// Compiled atom.
#[derive(Debug, Clone)]
struct CAtom {
    pred: SymbolId,
    args: Vec<CTerm>,
}

#[derive(Debug, Clone)]
struct CCmp {
    op: CmpOp,
    lhs: CTerm,
    rhs: CTerm,
}

#[derive(Debug, Clone)]
struct CCond {
    negated: bool,
    atom: CAtom,
    conditions: Vec<CAtom>,
}

#[derive(Debug, Clone)]
struct CChoiceElem {
    atom: CAtom,
    conditions: Vec<CAtom>,
}

#[derive(Debug, Clone)]
enum CHead {
    None,
    Atom(CAtom),
    Choice { lower: Option<CTerm>, upper: Option<CTerm>, elements: Vec<CChoiceElem> },
}

/// A rule compiled for grounding.
#[derive(Debug, Clone)]
struct CRule {
    head: CHead,
    /// Positive predicate body literals, in join order.
    pos: Vec<CAtom>,
    /// Negative predicate body literals.
    neg: Vec<CAtom>,
    /// Comparison literals.
    cmps: Vec<CCmp>,
    /// Conditional literals.
    conds: Vec<CCond>,
    /// Number of variable slots.
    nvars: usize,
}

#[derive(Debug, Clone)]
struct CMinimize {
    weight: CTerm,
    priority: CTerm,
    terms: Vec<CTerm>,
    pos: Vec<CAtom>,
    neg: Vec<CAtom>,
    cmps: Vec<CCmp>,
    nvars: usize,
}

/// Minimize tuples collected during grounding: `(priority, weight, terms)` keys mapped
/// to the condition bodies (positive, negative atom lists) under which they are paid.
type MinimizeTuples = HashMap<(i64, i64, Vec<Val>), Vec<(Vec<AtomId>, Vec<AtomId>)>>;

/// Callback invoked for every complete substitution of a rule's positive body.
type OnJoinMatch<'cb, 's> = dyn FnMut(&mut Grounder<'s>, &mut GroundProgram, &[Option<Val>]) -> Result<(), GroundError>
    + 'cb;

/// Callback invoked for every complete assignment of a condition list's variables.
type OnConditionMatch<'cb> =
    dyn FnMut(&mut GroundProgram, &[Option<Val>]) -> Result<(), GroundError> + 'cb;

/// The grounder.
pub struct Grounder<'a> {
    symbols: &'a mut SymbolTable,
}

impl<'a> Grounder<'a> {
    /// Create a grounder that interns into the given symbol table.
    pub fn new(symbols: &'a mut SymbolTable) -> Self {
        Grounder { symbols }
    }

    /// Ground `program` together with externally supplied input `facts`.
    pub fn ground(
        mut self,
        program: &Program,
        facts: &[GroundAtom],
    ) -> Result<GroundProgram, GroundError> {
        let start = Instant::now();
        let consts: HashMap<String, Term> = program.consts.iter().cloned().collect();

        let mut ground = GroundProgram::default();

        // Intern all external facts as certain atoms.
        for fact in facts {
            let (id, _) = ground.atoms.intern(fact.clone());
            ground.atoms.set_certain(id);
        }

        // Compile rules.
        let mut crules = Vec::with_capacity(program.rules.len());
        for rule in &program.rules {
            // Ground facts in the program text (`node("hdf5").`) are handled directly.
            if rule.body.is_empty() {
                if let Head::Atom(atom) = &rule.head {
                    if atom_is_ground(atom) {
                        let ga = self.intern_ground_atom(atom, &consts)?;
                        let (id, _) = ground.atoms.intern(ga);
                        ground.atoms.set_certain(id);
                        continue;
                    }
                }
            }
            crules.push(self.compile_rule(rule, &consts)?);
        }
        let cminimize: Vec<CMinimize> = program
            .minimize
            .iter()
            .map(|m| self.compile_minimize(m, &consts))
            .collect::<Result<_, _>>()?;

        // ---- Phase 1: possible-atom fixpoint -----------------------------------------
        let mut rounds = 0;
        // The set of atom ids added in the previous round.
        let mut delta: Vec<AtomId> = ground.atoms.iter().map(|(id, _)| id).collect();
        let mut first_round = true;
        while !delta.is_empty() || first_round {
            rounds += 1;
            if rounds > 100_000 {
                return Err(GroundError { message: "grounding did not reach a fixpoint".into() });
            }
            let mut new_atoms: Vec<AtomId> = Vec::new();
            let delta_set: Vec<bool> = {
                let mut v = vec![false; ground.atoms.len()];
                for &d in &delta {
                    v[d as usize] = true;
                }
                v
            };
            for rule in &crules {
                self.phase1_rule(rule, &mut ground, &delta_set, first_round, &mut new_atoms)?;
            }
            delta = new_atoms;
            first_round = false;
        }

        // ---- Phase 2: rule instantiation ----------------------------------------------
        let mut seen_rules: std::collections::HashSet<GroundRule> = std::collections::HashSet::new();
        for rule in &crules {
            self.phase2_rule(rule, &mut ground, &mut seen_rules)?;
        }
        // Minimize statements.
        let mut tuples: MinimizeTuples = HashMap::new();
        for m in &cminimize {
            self.ground_minimize(m, &ground, &mut tuples)?;
        }
        self.emit_minimize(tuples, &mut ground);

        ground.stats = GroundStats {
            atoms: ground.atoms.len(),
            rules: ground.rules.len(),
            choices: ground.choices.len(),
            minimize: ground.minimize.len(),
            rounds,
            duration: start.elapsed(),
        };
        Ok(ground)
    }

    // ---- compilation -----------------------------------------------------------------

    fn compile_term(
        &mut self,
        term: &Term,
        vars: &mut Vec<String>,
        consts: &HashMap<String, Term>,
    ) -> Result<CTerm, GroundError> {
        Ok(match term {
            Term::Sym(s) => {
                if let Some(def) = consts.get(s) {
                    // #const substitution (definitions must be ground).
                    self.compile_term(def, vars, consts)?
                } else {
                    CTerm::Val(Val::Sym(self.symbols.intern(s)))
                }
            }
            Term::Int(i) => CTerm::Val(Val::Int(*i)),
            Term::Var(v) if v == "_" => CTerm::Wildcard,
            Term::Var(v) => {
                let idx = match vars.iter().position(|x| x == v) {
                    Some(i) => i,
                    None => {
                        vars.push(v.clone());
                        vars.len() - 1
                    }
                };
                CTerm::Var(idx)
            }
            Term::BinOp(op, a, b) => CTerm::BinOp(
                *op,
                Box::new(self.compile_term(a, vars, consts)?),
                Box::new(self.compile_term(b, vars, consts)?),
            ),
        })
    }

    fn compile_atom(
        &mut self,
        atom: &Atom,
        vars: &mut Vec<String>,
        consts: &HashMap<String, Term>,
    ) -> Result<CAtom, GroundError> {
        let pred = self.symbols.intern(&atom.pred);
        let args = atom
            .args
            .iter()
            .map(|t| self.compile_term(t, vars, consts))
            .collect::<Result<_, _>>()?;
        Ok(CAtom { pred, args })
    }

    fn compile_rule(
        &mut self,
        rule: &crate::ast::Rule,
        consts: &HashMap<String, Term>,
    ) -> Result<CRule, GroundError> {
        let mut vars = Vec::new();
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        let mut cmps = Vec::new();
        let mut conds = Vec::new();
        for elem in &rule.body {
            match elem {
                BodyElem::Lit(Literal::Pred { negated: false, atom }) => {
                    pos.push(self.compile_atom(atom, &mut vars, consts)?);
                }
                BodyElem::Lit(Literal::Pred { negated: true, atom }) => {
                    neg.push(self.compile_atom(atom, &mut vars, consts)?);
                }
                BodyElem::Lit(Literal::Cmp { op, lhs, rhs }) => {
                    cmps.push(CCmp {
                        op: *op,
                        lhs: self.compile_term(lhs, &mut vars, consts)?,
                        rhs: self.compile_term(rhs, &mut vars, consts)?,
                    });
                }
                BodyElem::Cond { literal, conditions } => {
                    let (negated, atom) = match literal {
                        Literal::Pred { negated, atom } => (*negated, atom),
                        Literal::Cmp { .. } => {
                            return Err(GroundError {
                                message: "comparison literals cannot be conditional".into(),
                            })
                        }
                    };
                    let catom = self.compile_atom(atom, &mut vars, consts)?;
                    let cconds = conditions
                        .iter()
                        .map(|c| match c {
                            Literal::Pred { negated: false, atom } => {
                                self.compile_atom(atom, &mut vars, consts)
                            }
                            _ => Err(GroundError {
                                message: "conditions of conditional literals must be positive atoms"
                                    .into(),
                            }),
                        })
                        .collect::<Result<_, _>>()?;
                    conds.push(CCond { negated, atom: catom, conditions: cconds });
                }
            }
        }
        let head = match &rule.head {
            Head::None => CHead::None,
            Head::Atom(atom) => CHead::Atom(self.compile_atom(atom, &mut vars, consts)?),
            Head::Choice { lower, upper, elements } => {
                let lower = lower
                    .as_ref()
                    .map(|t| self.compile_term(t, &mut vars, consts))
                    .transpose()?;
                let upper = upper
                    .as_ref()
                    .map(|t| self.compile_term(t, &mut vars, consts))
                    .transpose()?;
                let elements = elements
                    .iter()
                    .map(|e| self.compile_choice_elem(e, &mut vars, consts))
                    .collect::<Result<_, _>>()?;
                CHead::Choice { lower, upper, elements }
            }
        };
        Ok(CRule { head, pos, neg, cmps, conds, nvars: vars.len() })
    }

    fn compile_choice_elem(
        &mut self,
        elem: &ChoiceElement,
        vars: &mut Vec<String>,
        consts: &HashMap<String, Term>,
    ) -> Result<CChoiceElem, GroundError> {
        let atom = self.compile_atom(&elem.atom, vars, consts)?;
        let conditions = elem
            .conditions
            .iter()
            .map(|c| match c {
                Literal::Pred { negated: false, atom } => self.compile_atom(atom, vars, consts),
                _ => Err(GroundError {
                    message: "choice element conditions must be positive atoms".into(),
                }),
            })
            .collect::<Result<_, _>>()?;
        Ok(CChoiceElem { atom, conditions })
    }

    fn compile_minimize(
        &mut self,
        m: &crate::ast::MinimizeElement,
        consts: &HashMap<String, Term>,
    ) -> Result<CMinimize, GroundError> {
        let mut vars = Vec::new();
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        let mut cmps = Vec::new();
        for c in &m.conditions {
            match c {
                Literal::Pred { negated: false, atom } => {
                    pos.push(self.compile_atom(atom, &mut vars, consts)?)
                }
                Literal::Pred { negated: true, atom } => {
                    neg.push(self.compile_atom(atom, &mut vars, consts)?)
                }
                Literal::Cmp { op, lhs, rhs } => cmps.push(CCmp {
                    op: *op,
                    lhs: self.compile_term(lhs, &mut vars, consts)?,
                    rhs: self.compile_term(rhs, &mut vars, consts)?,
                }),
            }
        }
        let weight = self.compile_term(&m.weight, &mut vars, consts)?;
        let priority = self.compile_term(&m.priority, &mut vars, consts)?;
        let terms = m
            .terms
            .iter()
            .map(|t| self.compile_term(t, &mut vars, consts))
            .collect::<Result<_, _>>()?;
        Ok(CMinimize { weight, priority, terms, pos, neg, cmps, nvars: vars.len() })
    }

    fn intern_ground_atom(
        &mut self,
        atom: &Atom,
        consts: &HashMap<String, Term>,
    ) -> Result<GroundAtom, GroundError> {
        let mut vars = Vec::new();
        let catom = self.compile_atom(atom, &mut vars, consts)?;
        if !vars.is_empty() {
            return Err(GroundError { message: format!("fact {atom} is not ground") });
        }
        let subst: Vec<Option<Val>> = Vec::new();
        instantiate_atom(&catom, &subst)
            .ok_or_else(|| GroundError { message: format!("cannot evaluate fact {atom}") })
    }

    // ---- phase 1 ----------------------------------------------------------------------

    fn phase1_rule(
        &mut self,
        rule: &CRule,
        ground: &mut GroundProgram,
        delta: &[bool],
        first_round: bool,
        new_atoms: &mut Vec<AtomId>,
    ) -> Result<(), GroundError> {
        // Nothing to derive for constraints in phase 1.
        if matches!(rule.head, CHead::None) {
            return Ok(());
        }
        let positions: Vec<usize> = (0..rule.pos.len()).collect();
        let delta_positions: Vec<Option<usize>> = if rule.pos.is_empty() {
            if first_round {
                vec![None]
            } else {
                vec![]
            }
        } else if first_round {
            // On the first round every atom is "new", a single unrestricted join suffices.
            vec![Some(usize::MAX)]
        } else {
            positions.iter().map(|&p| Some(p)).collect()
        };

        for dpos in delta_positions {
            let mut subst = vec![None; rule.nvars];
            self.join_positive(
                rule,
                0,
                dpos.unwrap_or(usize::MAX),
                delta,
                ground,
                &mut subst,
                &mut |this, ground, subst| {
                    // Comparisons that are fully bound can prune even in phase 1.
                    for cmp in &rule.cmps {
                        if let Some(false) = eval_cmp(cmp, subst) {
                            return Ok(());
                        }
                    }
                    this.derive_head(rule, ground, subst, new_atoms)
                },
            )?;
        }
        Ok(())
    }

    fn derive_head(
        &mut self,
        rule: &CRule,
        ground: &mut GroundProgram,
        subst: &[Option<Val>],
        new_atoms: &mut Vec<AtomId>,
    ) -> Result<(), GroundError> {
        match &rule.head {
            CHead::None => {}
            CHead::Atom(atom) => {
                let ga = instantiate_atom(atom, subst).ok_or_else(|| GroundError {
                    message: "unsafe rule: head variables not bound by positive body".into(),
                })?;
                let (id, new) = ground.atoms.intern(ga);
                if new {
                    new_atoms.push(id);
                }
            }
            CHead::Choice { elements, .. } => {
                for elem in elements {
                    let mut local = subst.to_vec();
                    self.expand_conditions(
                        &elem.conditions,
                        0,
                        ground,
                        &mut local,
                        false,
                        &mut |ground, local| {
                            if let Some(ga) = instantiate_atom(&elem.atom, local) {
                                let (id, new) = ground.atoms.intern(ga);
                                if new {
                                    new_atoms.push(id);
                                }
                            }
                            Ok(())
                        },
                    )?;
                }
            }
        }
        Ok(())
    }

    // ---- phase 2 ----------------------------------------------------------------------

    fn phase2_rule(
        &mut self,
        rule: &CRule,
        ground: &mut GroundProgram,
        seen: &mut std::collections::HashSet<GroundRule>,
    ) -> Result<(), GroundError> {
        let mut subst = vec![None; rule.nvars];
        // Collect instances first to avoid borrowing issues while mutating `ground`.
        let mut instances: Vec<Vec<Option<Val>>> = Vec::new();
        self.join_positive(rule, 0, usize::MAX, &[], ground, &mut subst, &mut |_this, _g, s| {
            instances.push(s.to_vec());
            Ok(())
        })?;

        'instance: for inst in instances {
            // Comparisons.
            for cmp in &rule.cmps {
                match eval_cmp(cmp, &inst) {
                    Some(true) => {}
                    Some(false) => continue 'instance,
                    None => {
                        return Err(GroundError {
                            message: "comparison with unbound variables (unsafe rule)".into(),
                        })
                    }
                }
            }
            // Positive body: drop certain atoms, keep the rest.
            let mut pos = Vec::new();
            for a in &rule.pos {
                let ga = instantiate_atom(a, &inst).ok_or_else(|| GroundError {
                    message: "internal: positive literal not fully bound after join".into(),
                })?;
                let id = ground.atoms.get(&ga).expect("joined atom must be possible");
                if !ground.atoms.is_certain(id) {
                    pos.push(id);
                }
            }
            // Negative body.
            let mut neg = Vec::new();
            for a in &rule.neg {
                if !self.add_negative_literal(a, &inst, ground, &mut neg)? {
                    continue 'instance;
                }
            }
            // Conditional literals expand to conjunctions over certain condition facts.
            for cond in &rule.conds {
                let mut local = inst.clone();
                let mut ok = true;
                let mut extra_pos = Vec::new();
                let mut extra_neg = Vec::new();
                self.expand_conditions(&cond.conditions, 0, ground, &mut local, true, &mut |ground,
                     local| {
                    if !ok {
                        return Ok(());
                    }
                    match instantiate_atom(&cond.atom, local) {
                        Some(ga) => {
                            match ground.atoms.get(&ga) {
                                Some(id) => {
                                    if cond.negated {
                                        if ground.atoms.is_certain(id) {
                                            ok = false;
                                        } else {
                                            extra_neg.push(id);
                                        }
                                    } else if !ground.atoms.is_certain(id) {
                                        extra_pos.push(id);
                                    }
                                }
                                None => {
                                    // Atom can never be true.
                                    if !cond.negated {
                                        ok = false;
                                    }
                                }
                            }
                        }
                        None => ok = false,
                    }
                    Ok(())
                })?;
                if !ok {
                    continue 'instance;
                }
                pos.extend(extra_pos);
                neg.extend(extra_neg);
            }

            pos.sort_unstable();
            pos.dedup();
            neg.sort_unstable();
            neg.dedup();

            match &rule.head {
                CHead::None => {
                    if pos.is_empty() && neg.is_empty() {
                        ground.trivially_unsat = true;
                    }
                    let gr = GroundRule { head: None, pos, neg };
                    if seen.insert(gr.clone()) {
                        ground.rules.push(gr);
                    }
                }
                CHead::Atom(atom) => {
                    let ga = instantiate_atom(atom, &inst).ok_or_else(|| GroundError {
                        message: "unsafe rule: head variables not bound".into(),
                    })?;
                    let (id, _) = ground.atoms.intern(ga);
                    if ground.atoms.is_certain(id) {
                        continue 'instance;
                    }
                    let gr = GroundRule { head: Some(id), pos, neg };
                    if seen.insert(gr.clone()) {
                        ground.rules.push(gr);
                    }
                }
                CHead::Choice { lower, upper, elements } => {
                    let lower = match lower {
                        Some(t) => Some(eval_int(t, &inst).ok_or_else(|| GroundError {
                            message: "choice lower bound must be an integer".into(),
                        })?),
                        None => None,
                    };
                    let upper = match upper {
                        Some(t) => Some(eval_int(t, &inst).ok_or_else(|| GroundError {
                            message: "choice upper bound must be an integer".into(),
                        })?),
                        None => None,
                    };
                    let mut heads = Vec::new();
                    for elem in elements {
                        let mut local = inst.clone();
                        self.expand_conditions(
                            &elem.conditions,
                            0,
                            ground,
                            &mut local,
                            true,
                            &mut |ground, local| {
                                if let Some(ga) = instantiate_atom(&elem.atom, local) {
                                    let (id, _) = ground.atoms.intern(ga);
                                    heads.push(id);
                                }
                                Ok(())
                            },
                        )?;
                    }
                    heads.sort_unstable();
                    heads.dedup();
                    ground.choices.push(GroundChoice { heads, lower, upper, pos, neg });
                }
            }
        }
        Ok(())
    }

    /// Returns false when the rule instance must be discarded (negative literal on a fact).
    fn add_negative_literal(
        &mut self,
        atom: &CAtom,
        inst: &[Option<Val>],
        ground: &GroundProgram,
        neg: &mut Vec<AtomId>,
    ) -> Result<bool, GroundError> {
        // Wildcards in negative literals mean "no instance exists": `not hash(P, _)`.
        if atom.args.iter().any(|a| matches!(a, CTerm::Wildcard)) {
            // Enumerate all possible atoms of the predicate matching the bound arguments.
            let candidates = ground.atoms.with_pred(atom.pred).to_vec();
            for cand in candidates {
                let ga = ground.atoms.atom(cand);
                if atom_matches_bound(atom, inst, ga) {
                    if ground.atoms.is_certain(cand) {
                        return Ok(false);
                    }
                    neg.push(cand);
                }
            }
            return Ok(true);
        }
        let ga = match instantiate_atom(atom, inst) {
            Some(ga) => ga,
            None => {
                return Err(GroundError {
                    message: "unsafe rule: negative literal with unbound variables".into(),
                })
            }
        };
        match ground.atoms.get(&ga) {
            None => Ok(true), // atom impossible: `not a` trivially true
            Some(id) if ground.atoms.is_certain(id) => Ok(false),
            Some(id) => {
                neg.push(id);
                Ok(true)
            }
        }
    }

    // ---- joins -------------------------------------------------------------------------

    /// Join the positive body literals of a rule, calling `on_match` for every complete
    /// substitution. When `delta_pos != usize::MAX`, the literal at that index may only
    /// match atoms flagged in `delta` (semi-naive evaluation).
    #[allow(clippy::too_many_arguments)]
    fn join_positive(
        &mut self,
        rule: &CRule,
        index: usize,
        delta_pos: usize,
        delta: &[bool],
        ground: &mut GroundProgram,
        subst: &mut Vec<Option<Val>>,
        on_match: &mut OnJoinMatch<'_, 'a>,
    ) -> Result<(), GroundError> {
        if index == rule.pos.len() {
            return on_match(self, ground, subst);
        }
        let atom = &rule.pos[index];
        let candidates = select_candidates(atom, subst, ground);
        for cand in candidates {
            if delta_pos == index && (cand as usize) >= delta.len() {
                continue;
            }
            if delta_pos == index && !delta[cand as usize] {
                continue;
            }
            let ga = ground.atoms.atom(cand).clone();
            let mut bindings = Vec::new();
            if match_atom(atom, subst, &ga, &mut bindings) {
                for &(slot, val) in &bindings {
                    subst[slot] = Some(val);
                }
                self.join_positive(rule, index + 1, delta_pos, delta, ground, subst, on_match)?;
                for &(slot, _) in &bindings {
                    subst[slot] = None;
                }
            }
        }
        Ok(())
    }

    /// Expand a list of condition atoms (which must match input facts when
    /// `certain_only`, or any possible atom during phase 1) over all groundings,
    /// calling `on_match` for each complete assignment of the condition variables.
    fn expand_conditions(
        &mut self,
        conditions: &[CAtom],
        index: usize,
        ground: &mut GroundProgram,
        subst: &mut Vec<Option<Val>>,
        certain_only: bool,
        on_match: &mut OnConditionMatch<'_>,
    ) -> Result<(), GroundError> {
        if index == conditions.len() {
            return on_match(ground, subst);
        }
        let atom = &conditions[index];
        let candidates = select_candidates(atom, subst, ground);
        for cand in candidates {
            if certain_only && !ground.atoms.is_certain(cand) {
                continue;
            }
            let ga = ground.atoms.atom(cand).clone();
            let mut bindings = Vec::new();
            if match_atom(atom, subst, &ga, &mut bindings) {
                for &(slot, val) in &bindings {
                    subst[slot] = Some(val);
                }
                self.expand_conditions(conditions, index + 1, ground, subst, certain_only, on_match)?;
                for &(slot, _) in &bindings {
                    subst[slot] = None;
                }
            }
        }
        Ok(())
    }

    // ---- minimize -----------------------------------------------------------------------

    fn ground_minimize(
        &mut self,
        m: &CMinimize,
        ground: &GroundProgram,
        tuples: &mut MinimizeTuples,
    ) -> Result<(), GroundError> {
        // Join positive conditions over possible atoms.
        let mut stack: Vec<(usize, Vec<Option<Val>>)> = vec![(0, vec![None; m.nvars])];
        while let Some((index, subst)) = stack.pop() {
            if index < m.pos.len() {
                let atom = &m.pos[index];
                let candidates = select_candidates(atom, &subst, ground);
                for cand in candidates {
                    let ga = ground.atoms.atom(cand).clone();
                    let mut bindings = Vec::new();
                    if match_atom(atom, &subst, &ga, &mut bindings) {
                        let mut next = subst.clone();
                        for &(slot, val) in &bindings {
                            next[slot] = Some(val);
                        }
                        stack.push((index + 1, next));
                    }
                }
                continue;
            }
            // Complete substitution: evaluate comparisons, weight, priority, terms.
            let mut ok = true;
            for cmp in &m.cmps {
                if eval_cmp(cmp, &subst) != Some(true) {
                    ok = false;
                    break;
                }
            }
            if !ok {
                continue;
            }
            let weight = eval_int(&m.weight, &subst).ok_or_else(|| GroundError {
                message: "minimize weight must evaluate to an integer".into(),
            })?;
            let priority = eval_int(&m.priority, &subst).ok_or_else(|| GroundError {
                message: "minimize priority must evaluate to an integer".into(),
            })?;
            let terms: Vec<Val> = m
                .terms
                .iter()
                .map(|t| eval_term(t, &subst))
                .collect::<Option<_>>()
                .ok_or_else(|| GroundError {
                    message: "minimize tuple terms must be bound".into(),
                })?;
            // Collect condition atoms (dropping certain ones).
            let mut pos = Vec::new();
            let mut skip = false;
            for a in &m.pos {
                let ga = instantiate_atom(a, &subst).expect("bound by join");
                let id = ground.atoms.get(&ga).expect("possible");
                if !ground.atoms.is_certain(id) {
                    pos.push(id);
                }
            }
            let mut neg = Vec::new();
            for a in &m.neg {
                let ga = instantiate_atom(a, &subst).ok_or_else(|| GroundError {
                    message: "negative minimize condition with unbound variables".into(),
                })?;
                match ground.atoms.get(&ga) {
                    None => {}
                    Some(id) if ground.atoms.is_certain(id) => {
                        skip = true;
                    }
                    Some(id) => neg.push(id),
                }
            }
            if skip {
                continue;
            }
            tuples.entry((priority, weight, terms)).or_default().push((pos, neg));
        }
        Ok(())
    }

    fn emit_minimize(&mut self, tuples: MinimizeTuples, ground: &mut GroundProgram) {
        let aux_pred = self.symbols.intern("__opt_tuple");
        let mut counter: i64 = 0;
        let mut sorted: Vec<_> = tuples.into_iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        for ((priority, weight, _terms), bodies) in sorted {
            // A tuple with any empty condition always contributes.
            if bodies.iter().any(|(p, n)| p.is_empty() && n.is_empty()) {
                ground.minimize.push(GroundMinimize { priority, weight, condition: None });
                continue;
            }
            // A tuple with a single, single-atom positive condition uses that atom directly.
            if bodies.len() == 1 && bodies[0].0.len() == 1 && bodies[0].1.is_empty() {
                ground.minimize.push(GroundMinimize {
                    priority,
                    weight,
                    condition: Some(bodies[0].0[0]),
                });
                continue;
            }
            // General case: an auxiliary atom defined by one rule per condition instance.
            counter += 1;
            let (aux, _) = ground
                .atoms
                .intern(GroundAtom::new(aux_pred, vec![Val::Int(counter)]));
            for (pos, neg) in bodies {
                ground.rules.push(GroundRule { head: Some(aux), pos, neg });
            }
            ground.minimize.push(GroundMinimize { priority, weight, condition: Some(aux) });
        }
    }
}

// ---- term / atom evaluation helpers ---------------------------------------------------

fn atom_is_ground(atom: &Atom) -> bool {
    fn term_ground(t: &Term) -> bool {
        match t {
            Term::Sym(_) | Term::Int(_) => true,
            Term::Var(_) => false,
            Term::BinOp(_, a, b) => term_ground(a) && term_ground(b),
        }
    }
    atom.args.iter().all(term_ground)
}

fn eval_term(term: &CTerm, subst: &[Option<Val>]) -> Option<Val> {
    match term {
        CTerm::Val(v) => Some(*v),
        CTerm::Var(i) => subst[*i],
        CTerm::Wildcard => None,
        CTerm::BinOp(op, a, b) => {
            let a = eval_term(a, subst)?;
            let b = eval_term(b, subst)?;
            match (a, b) {
                (Val::Int(x), Val::Int(y)) => Some(Val::Int(match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                })),
                _ => None,
            }
        }
    }
}

fn eval_int(term: &CTerm, subst: &[Option<Val>]) -> Option<i64> {
    match eval_term(term, subst) {
        Some(Val::Int(i)) => Some(i),
        _ => None,
    }
}

fn eval_cmp(cmp: &CCmp, subst: &[Option<Val>]) -> Option<bool> {
    let lhs = eval_term(&cmp.lhs, subst)?;
    let rhs = eval_term(&cmp.rhs, subst)?;
    Some(match cmp.op {
        CmpOp::Eq => lhs == rhs,
        CmpOp::Ne => lhs != rhs,
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => match (lhs, rhs) {
            (Val::Int(a), Val::Int(b)) => match cmp.op {
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
                _ => unreachable!(),
            },
            // Ordered comparisons are only defined for integers in this dialect.
            _ => false,
        },
    })
}

fn instantiate_atom(atom: &CAtom, subst: &[Option<Val>]) -> Option<GroundAtom> {
    let mut args = Vec::with_capacity(atom.args.len());
    for t in &atom.args {
        args.push(eval_term(t, subst)?);
    }
    Some(GroundAtom::new(atom.pred, args))
}

/// Does a possible ground atom match a compiled atom given the current (partial)
/// substitution, considering only already-bound variables and constants? Wildcards and
/// unbound variables match anything.
fn atom_matches_bound(atom: &CAtom, subst: &[Option<Val>], ga: &GroundAtom) -> bool {
    if atom.pred != ga.pred || atom.args.len() != ga.args.len() {
        return false;
    }
    for (t, &v) in atom.args.iter().zip(ga.args.iter()) {
        match t {
            CTerm::Wildcard => {}
            CTerm::Var(i) => {
                if let Some(bound) = subst[*i] {
                    if bound != v {
                        return false;
                    }
                }
            }
            other => match eval_term(other, subst) {
                Some(val) if val == v => {}
                Some(_) => return false,
                None => {}
            },
        }
    }
    true
}

/// Match a compiled atom against a ground atom, extending the substitution. New bindings
/// are appended to `bindings` (and must be undone by the caller on backtrack).
fn match_atom(
    atom: &CAtom,
    subst: &[Option<Val>],
    ga: &GroundAtom,
    bindings: &mut Vec<(usize, Val)>,
) -> bool {
    if atom.pred != ga.pred || atom.args.len() != ga.args.len() {
        return false;
    }
    // Local view of new bindings so repeated variables inside one atom unify.
    for (t, &v) in atom.args.iter().zip(ga.args.iter()) {
        match t {
            CTerm::Wildcard => {}
            CTerm::Var(i) => {
                let existing = subst[*i].or_else(|| {
                    bindings.iter().find(|(slot, _)| slot == i).map(|&(_, val)| val)
                });
                match existing {
                    Some(bound) => {
                        if bound != v {
                            return false;
                        }
                    }
                    None => bindings.push((*i, v)),
                }
            }
            other => match eval_term(other, subst) {
                Some(val) => {
                    if val != v {
                        return false;
                    }
                }
                None => return false,
            },
        }
    }
    true
}

/// Select candidate atom ids for a compiled atom under the current substitution, using
/// the `(predicate, position, value)` index when some argument is already bound.
fn select_candidates(atom: &CAtom, subst: &[Option<Val>], ground: &GroundProgram) -> Vec<AtomId> {
    let mut best: Option<&[AtomId]> = None;
    for (pos, t) in atom.args.iter().enumerate().take(u8::MAX as usize) {
        let val = match t {
            CTerm::Val(v) => Some(*v),
            CTerm::Var(i) => subst[*i],
            _ => eval_term(t, subst),
        };
        if let Some(v) = val {
            let cands = ground.atoms.with_pred_arg(atom.pred, pos as u8, v);
            if best.map(|b| cands.len() < b.len()).unwrap_or(true) {
                best = Some(cands);
            }
        }
    }
    match best {
        Some(c) => c.to_vec(),
        None => ground.atoms.with_pred(atom.pred).to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn ground_text(text: &str) -> (GroundProgram, SymbolTable) {
        let program = parse_program(text).unwrap();
        let mut symbols = SymbolTable::new();
        let ground = Grounder::new(&mut symbols).ground(&program, &[]).unwrap();
        (ground, symbols)
    }

    fn atom_names(ground: &GroundProgram, symbols: &SymbolTable) -> Vec<String> {
        ground.atoms.iter().map(|(_, a)| a.display(symbols).to_string()).collect()
    }

    #[test]
    fn fig3_grounding_derives_transitive_nodes() {
        // The example of Fig. 3 in the paper.
        let (ground, symbols) = ground_text(
            r#"
            depends_on(a, b).
            depends_on(a, c).
            depends_on(b, d).
            depends_on(c, d).
            node(Dep) :- node(Pkg), depends_on(Pkg, Dep).
            1 { node(a); node(b) }.
            "#,
        );
        let names = atom_names(&ground, &symbols);
        for expected in ["node(a)", "node(b)", "node(c)", "node(d)"] {
            assert!(names.contains(&expected.to_string()), "missing {expected}: {names:?}");
        }
        // The ground rules are simplified: depends_on facts do not appear in rule bodies.
        for r in &ground.rules {
            assert!(r.pos.len() <= 1, "facts should have been simplified away: {r:?}");
        }
        assert_eq!(ground.choices.len(), 1);
        assert_eq!(ground.choices[0].lower, Some(1));
    }

    #[test]
    fn transitive_closure_and_constraints() {
        let (ground, symbols) = ground_text(
            r#"
            depends_on(a, b).
            depends_on(b, c).
            path(A, B) :- depends_on(A, B).
            path(A, C) :- path(A, B), depends_on(B, C).
            :- path(A, B), path(B, A).
            "#,
        );
        let names = atom_names(&ground, &symbols);
        assert!(names.contains(&"path(a,c)".to_string()));
        // Constraints were grounded (though none can fire since no cycle is possible).
        assert!(ground
            .rules
            .iter()
            .filter(|r| r.head.is_none())
            .count() > 0 || !ground.trivially_unsat);
    }

    #[test]
    fn negative_literal_on_fact_discards_instance() {
        let (ground, symbols) = ground_text(
            r#"
            p(1). p(2).
            q(2).
            r(X) :- p(X), not q(X).
            "#,
        );
        let names = atom_names(&ground, &symbols);
        assert!(names.contains(&"r(1)".to_string()));
        // r(2) is still a *possible* atom (phase 1 over-approximates), but no rule
        // instance can derive it: the instance was discarded because q(2) is a fact.
        let r2 = ground
            .atoms
            .iter()
            .find(|(_, a)| a.display(&symbols).to_string() == "r(2)")
            .map(|(id, _)| id);
        if let Some(r2) = r2 {
            assert!(
                !ground.rules.iter().any(|r| r.head == Some(r2)),
                "no rule may derive r(2)"
            );
        }
    }

    #[test]
    fn choice_rule_bounds_and_conditions() {
        let (ground, symbols) = ground_text(
            r#"
            node(zlib).
            possible_version(zlib, "1.2.11").
            possible_version(zlib, "1.2.8").
            1 { version(P, V) : possible_version(P, V) } 1 :- node(P).
            "#,
        );
        assert_eq!(ground.choices.len(), 1);
        let c = &ground.choices[0];
        assert_eq!(c.heads.len(), 2);
        assert_eq!((c.lower, c.upper), (Some(1), Some(1)));
        let names = atom_names(&ground, &symbols);
        assert!(names.contains(&"version(zlib,\"1.2.11\")".to_string()));
    }

    #[test]
    fn conditional_literal_expands_over_facts() {
        let (ground, _symbols) = ground_text(
            r#"
            condition(1).
            condition_requirement(1, n, a).
            condition_requirement(1, n, b).
            attr(n, a).
            attr(n, b).
            condition_holds(ID) :- condition(ID); attr(N, A) : condition_requirement(ID, N, A).
            "#,
        );
        // attr facts are certain, so the body simplifies completely and condition_holds(1)
        // is derivable by a rule with an empty body.
        let rule = ground.rules.iter().find(|r| r.head.is_some()).unwrap();
        assert!(rule.pos.is_empty() && rule.neg.is_empty());
    }

    #[test]
    fn conditional_literal_with_derived_attrs_stays_in_body() {
        let (ground, symbols) = ground_text(
            r#"
            condition(1).
            condition_requirement(1, n, a).
            fact(a).
            attr(N, A) :- chosen(N, A).
            { chosen(n, a) }.
            condition_holds(ID) :- condition(ID); attr(N, A) : condition_requirement(ID, N, A).
            "#,
        );
        // attr(n,a) is possible but not certain, so it must remain in the body.
        let holds_id = ground
            .atoms
            .iter()
            .find(|(_, a)| a.display(&symbols).to_string() == "condition_holds(1)")
            .map(|(id, _)| id)
            .unwrap();
        let rule = ground.rules.iter().find(|r| r.head == Some(holds_id)).unwrap();
        assert_eq!(rule.pos.len(), 1);
    }

    #[test]
    fn minimize_statements_are_grounded() {
        let (ground, _symbols) = ground_text(
            r#"
            node(a). node(b).
            possible_version(a, v1, 0).
            possible_version(a, v2, 1).
            possible_version(b, v1, 0).
            1 { version(P, V) : possible_version(P, V, W) } 1 :- node(P).
            version_weight(P, V, W) :- version(P, V), possible_version(P, V, W).
            #minimize{ W@3,P,V : version_weight(P, V, W) }.
            "#,
        );
        assert_eq!(ground.minimize.len(), 3);
        assert!(ground.minimize.iter().all(|m| m.priority == 3));
        assert!(ground.minimize.iter().all(|m| m.condition.is_some()));
    }

    #[test]
    fn wildcard_negation_covers_all_instances() {
        let (ground, symbols) = ground_text(
            r#"
            node(a). node(b).
            installed_hash(a, h1).
            installed_hash(a, h2).
            { hash(P, H) : installed_hash(P, H) } 1 :- node(P).
            build(P) :- not hash(P, _), node(P).
            "#,
        );
        // build(a) must have both hash(a,h1) and hash(a,h2) in its negative body.
        let build_a = ground
            .atoms
            .iter()
            .find(|(_, a)| a.display(&symbols).to_string() == "build(a)")
            .map(|(id, _)| id)
            .unwrap();
        let rule = ground.rules.iter().find(|r| r.head == Some(build_a)).unwrap();
        assert_eq!(rule.neg.len(), 2);
        // build(b) has no installed hashes at all: derived unconditionally.
        let build_b = ground
            .atoms
            .iter()
            .find(|(_, a)| a.display(&symbols).to_string() == "build(b)")
            .map(|(id, _)| id)
            .unwrap();
        let rule_b = ground.rules.iter().find(|r| r.head == Some(build_b)).unwrap();
        assert!(rule_b.neg.is_empty() && rule_b.pos.is_empty());
    }

    #[test]
    fn const_substitution() {
        let (ground, _symbols) = ground_text(
            r#"
            #const prio = 7.
            item(a).
            cost(X, prio) :- item(X).
            #minimize{ W@1,X : cost(X, W) }.
            "#,
        );
        assert_eq!(ground.minimize.len(), 1);
        // Weight is the substituted constant.
        assert_eq!(ground.minimize[0].weight, 7);
    }

    #[test]
    fn external_facts_participate() {
        let program = parse_program("node(D) :- node(P), depends_on(P, D).").unwrap();
        let mut symbols = SymbolTable::new();
        let node = symbols.intern("node");
        let dep = symbols.intern("depends_on");
        let a = Val::Sym(symbols.intern("hdf5"));
        let b = Val::Sym(symbols.intern("zlib"));
        let facts = vec![GroundAtom::new(node, vec![a]), GroundAtom::new(dep, vec![a, b])];
        let ground = Grounder::new(&mut symbols).ground(&program, &facts).unwrap();
        let names: Vec<String> =
            ground.atoms.iter().map(|(_, at)| at.display(&symbols).to_string()).collect();
        assert!(names.contains(&"node(zlib)".to_string()));
    }

    #[test]
    fn unsafe_rule_is_rejected() {
        let program = parse_program("p(X) :- not q(X).").unwrap();
        let mut symbols = SymbolTable::new();
        let q = symbols.intern("q");
        let a = Val::Sym(symbols.intern("a"));
        let facts = vec![GroundAtom::new(q, vec![a])];
        // The head variable X is never bound by a positive literal; grounding either
        // produces no instance (body empty) or reports an error — it must not panic.
        if let Ok(g) = Grounder::new(&mut symbols).ground(&program, &facts) {
            // If grounding succeeds, the unsafe rule must not have produced any
            // p-instance out of thin air.
            for rule in &g.rules {
                if let Some(head) = rule.head {
                    let name = g.atoms.atom(head).display(&symbols).to_string();
                    assert!(!name.starts_with("p("), "unsafe rule derived {name}");
                }
            }
        }
    }

    #[test]
    fn comparison_literals_filter_instances() {
        let (ground, symbols) = ground_text(
            r#"
            num(1). num(2). num(3).
            small(X) :- num(X), X < 3.
            diff(X, Y) :- num(X), num(Y), X != Y.
            "#,
        );
        let names = atom_names(&ground, &symbols);
        assert!(names.contains(&"small(1)".to_string()));
        assert!(names.contains(&"small(2)".to_string()));
        assert!(!names.contains(&"small(3)".to_string()));
        assert!(names.contains(&"diff(1,2)".to_string()));
        assert!(!names.contains(&"diff(2,2)".to_string()));
    }
}

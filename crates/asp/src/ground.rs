//! The grounder: instantiates a first-order program into a propositional (ground) one.
//!
//! This is the `gringo` analogue of the reproduction. Grounding proceeds in two phases:
//!
//! 1. **Possible-atom fixpoint.** Starting from the input facts, rules are instantiated
//!    over positive body literals only (an over-approximation that ignores negation),
//!    semi-naively, until no new head atoms appear. This discovers every atom that could
//!    possibly be true in a stable model.
//! 2. **Rule instantiation.** With the possible-atom set fixed, every rule is instantiated
//!    once more and simplified exactly as the paper describes for gringo (Fig. 3): body
//!    literals on input facts are dropped, negative literals on impossible atoms are
//!    dropped, instances contradicted by facts are discarded.
//!
//! The dialect restrictions (documented in the crate root) are: conditions of conditional
//! literals and of choice elements must be input facts, and every rule must be *safe*
//! (every variable appears in a positive, non-conditional body literal, or in the
//! conditions of its own conditional element).
//!
//! # Hot-path engineering
//!
//! Grounding time is dominated by joining the positive body literals of every rule
//! against the atom database, so this module mirrors the engineering gringo applies to
//! the same problem:
//!
//! * **Join planning.** Body literals are not joined in textual order. At every join
//!   depth the planner picks the *most selective* remaining literal — the one with the
//!   fewest candidate atoms under the bindings accumulated so far — re-evaluated per
//!   partial substitution (sideways information passing). Selectivity is measured
//!   directly as candidate-list length after index selection, which subsumes the
//!   "bound-argument count first" heuristic: more bound arguments select sharper
//!   indexes and hence shorter lists (see `best_key` and `Grounder::join_ordered`).
//! * **Index-driven candidate lists.** Every lookup goes through the
//!   [`crate::symbols::AtomTable`] indexes (predicate / one bound argument /
//!   two bound arguments); candidate lists are iterated in place — the join never
//!   copies them and never clones atoms. Index lists are append-only, so interning new
//!   head atoms mid-join is safe: the iteration snapshots the length and re-fetches
//!   the slice (see `key_slice`).
//! * **Semi-naive delta evaluation.** After the first fixpoint round, a rule is
//!   re-instantiated only *once per delta occurrence*: for each body literal whose
//!   predicate gained atoms in the previous round, each new atom is matched against
//!   that literal and only the remaining literals are joined. Literals left of the
//!   delta literal are restricted to *old* atoms, which makes every derivation happen
//!   exactly once. The delta membership test is a persistent bitset
//!   (`AtomBitSet`) cleared incrementally — no per-round O(atoms) rebuild.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crate::ast::{ArithOp, Atom, BodyElem, ChoiceElement, CmpOp, Head, Literal, Program, Term};
use crate::hasher::FxHashMap;
use crate::symbols::{AtomId, AtomTable, GroundAtom, SymbolId, SymbolTable, Val};

/// Upper bound on atom arity, so the join can keep its binding-undo buffer in a
/// fixed-size stack array instead of allocating per candidate.
const MAX_ARITY: usize = 16;

/// A growable bitset over atom ids: the persistent delta marker of the semi-naive
/// fixpoint. It is allocated once, grown as atoms are interned, and cleared
/// *incrementally* (only the bits set in the previous round), so no round pays an
/// O(total atoms) rebuild.
#[derive(Debug, Default)]
struct AtomBitSet {
    words: Vec<u64>,
}

impl AtomBitSet {
    /// Ensure capacity for `n_atoms` ids.
    fn grow(&mut self, n_atoms: usize) {
        let words = n_atoms.div_ceil(64);
        if self.words.len() < words {
            self.words.resize(words, 0);
        }
    }

    fn set(&mut self, id: AtomId) {
        self.words[id as usize / 64] |= 1u64 << (id % 64);
    }

    fn clear(&mut self, id: AtomId) {
        self.words[id as usize / 64] &= !(1u64 << (id % 64));
    }

    fn contains(&self, id: AtomId) -> bool {
        self.words.get(id as usize / 64).is_some_and(|w| w & (1u64 << (id % 64)) != 0)
    }
}

/// An error produced during grounding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundError {
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for GroundError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "grounding error: {}", self.message)
    }
}

impl std::error::Error for GroundError {}

/// A ground normal rule or integrity constraint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroundRule {
    /// Head atom; `None` for integrity constraints.
    pub head: Option<AtomId>,
    /// Positive body atoms.
    pub pos: Vec<AtomId>,
    /// Negative body atoms (`not a`).
    pub neg: Vec<AtomId>,
}

/// Deduplication index for ground rules: maps a rule's hash to the indices of the
/// rules already emitted with that hash, comparing in full only on collision. Unlike a
/// `HashSet<GroundRule>`, this never clones a rule — the emitted list is the only
/// owner.
#[derive(Debug, Default)]
struct RuleDedup {
    by_hash: FxHashMap<u64, Vec<u32>>,
}

impl RuleDedup {
    /// Append `rule` to `rules` unless an identical rule was already emitted.
    fn push_if_new(&mut self, rule: GroundRule, rules: &mut Vec<GroundRule>) {
        use std::hash::{Hash, Hasher};
        let mut hasher = crate::hasher::FxHasher::default();
        rule.hash(&mut hasher);
        let ids = self.by_hash.entry(hasher.finish()).or_default();
        if ids.iter().any(|&i| rules[i as usize] == rule) {
            return;
        }
        ids.push(rules.len() as u32);
        rules.push(rule);
    }
}

/// A ground choice rule with optional cardinality bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundChoice {
    /// The choosable head atoms.
    pub heads: Vec<AtomId>,
    /// Lower cardinality bound.
    pub lower: Option<i64>,
    /// Upper cardinality bound.
    pub upper: Option<i64>,
    /// Positive body atoms.
    pub pos: Vec<AtomId>,
    /// Negative body atoms.
    pub neg: Vec<AtomId>,
}

/// One ground minimize entry: `weight@priority` is paid whenever `condition` is true
/// (`condition == None` means the weight is always paid).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundMinimize {
    /// Priority level (higher = more significant).
    pub priority: i64,
    /// Weight contributed at that level.
    pub weight: i64,
    /// The atom whose truth triggers the weight, if any.
    pub condition: Option<AtomId>,
}

/// Statistics describing the grounding step.
#[derive(Debug, Clone, Default)]
pub struct GroundStats {
    /// Number of possible atoms discovered.
    pub atoms: usize,
    /// Number of ground normal rules / constraints.
    pub rules: usize,
    /// Number of ground choice rules.
    pub choices: usize,
    /// Number of ground minimize entries.
    pub minimize: usize,
    /// Number of fixpoint rounds in phase 1.
    pub rounds: usize,
    /// Wall-clock time spent in phase 1 (possible-atom fixpoint).
    pub phase1: Duration,
    /// Wall-clock time spent in phase 2 (rule instantiation + minimize).
    pub phase2: Duration,
    /// Wall-clock time spent grounding.
    pub duration: Duration,
    /// True when this grounding was derived incrementally from a frozen
    /// [`BaseProgram`] (multi-shot sessions): phase 1 continued semi-naively from the
    /// request's delta facts and only touched rules were re-instantiated.
    pub delta: bool,
    /// Ground instances reused verbatim from the frozen base (delta groundings only).
    pub reused_rules: usize,
    /// Rules re-instantiated because a delta atom touched one of their literals
    /// (delta groundings only).
    pub delta_rules: usize,
}

/// Statistics of one in-place base patch ([`Grounder::patch_base`]).
#[derive(Debug, Clone, Default)]
pub struct PatchStats {
    /// Distinct input facts present after the patch but not before.
    pub added_facts: usize,
    /// Distinct input facts present before the patch but not after.
    pub removed_facts: usize,
    /// Possible atoms before the patch.
    pub atoms_before: usize,
    /// Possible atoms after the patch.
    pub atoms_after: usize,
    /// Possible atoms the patch added to the closure.
    pub atoms_added: usize,
    /// Possible atoms the patch retracted from the closure (rebuild path only).
    pub atoms_removed: usize,
    /// Source rules re-instantiated because the delta touched them.
    pub rules_reinstantiated: usize,
    /// Frozen instances (rules + choices) kept without re-instantiation.
    pub rules_reused: usize,
    /// True when a removed fact forced the closure to be rebuilt from scratch;
    /// false for the cheaper additions-only semi-naive continuation.
    pub rebuilt: bool,
    /// Wall-clock time of the patch.
    pub duration: Duration,
}

/// The ground (propositional) program.
#[derive(Debug, Clone, Default)]
pub struct GroundProgram {
    /// Table of all possible atoms.
    pub atoms: crate::symbols::AtomTable,
    /// Ground rules and integrity constraints.
    pub rules: Vec<GroundRule>,
    /// Ground choice rules.
    pub choices: Vec<GroundChoice>,
    /// Ground minimize entries.
    pub minimize: Vec<GroundMinimize>,
    /// True when grounding already proved the program unsatisfiable (a constraint with an
    /// empty body was derived).
    pub trivially_unsat: bool,
    /// Grounding statistics.
    pub stats: GroundStats,
}

impl GroundProgram {
    /// Atoms that are certainly true (input facts).
    pub fn fact_atoms(&self) -> Vec<AtomId> {
        self.atoms.iter().filter(|(id, _)| self.atoms.is_certain(*id)).map(|(id, _)| id).collect()
    }
}

/// A literal's *delta signature*: the predicate plus the first argument when it is a
/// constant. This is the granularity at which delta grounding decides whether a new
/// atom can affect a rule — coarse enough to be a couple of hash probes per literal,
/// fine enough to tell `attr3("version", ..)` apart from `attr3("depends_on", ..)` in
/// programs (like the concretizer's) that discriminate one wide predicate by its first
/// argument.
#[derive(Debug, Clone, Copy)]
struct SigLit {
    pred: SymbolId,
    arg0: Option<Val>,
}

fn atom_sig(atom: &CAtom) -> SigLit {
    let arg0 = match atom.args.first() {
        Some(CTerm::Val(v)) => Some(*v),
        _ => None,
    };
    SigLit { pred: atom.pred, arg0 }
}

/// Every literal of a rule whose matched atoms (or their certainty) can change the
/// rule's ground instances: positive and negative body literals, conditional literals
/// (the atom and its conditions), and choice elements (the atom and its conditions).
/// Head atoms of normal rules are deliberately absent: a rule derives new head atoms
/// only when its body matches a delta atom, and an existing head turning certain
/// leaves the frozen instance semantically inert rather than wrong.
fn rule_signature(rule: &CRule) -> Vec<SigLit> {
    let mut sigs = Vec::new();
    sigs.extend(rule.pos.iter().map(atom_sig));
    sigs.extend(rule.neg.iter().map(atom_sig));
    for cond in &rule.conds {
        sigs.push(atom_sig(&cond.atom));
        sigs.extend(cond.conditions.iter().map(atom_sig));
    }
    if let CHead::Choice { elements, .. } = &rule.head {
        for elem in elements {
            sigs.push(atom_sig(&elem.atom));
            sigs.extend(elem.conditions.iter().map(atom_sig));
        }
    }
    sigs
}

/// The subset of a rule's signature that participates in *phase-1 head derivation*
/// beyond the positive body: choice-element conditions. (Negative literals and the
/// conditions of body conditional literals are ignored by the phase-1
/// over-approximation, so they cannot gate which atoms become possible.)
fn rule_phase1_condition_signature(rule: &CRule) -> Vec<SigLit> {
    let mut sigs = Vec::new();
    if let CHead::Choice { elements, .. } = &rule.head {
        for elem in elements {
            sigs.extend(elem.conditions.iter().map(atom_sig));
        }
    }
    sigs
}

/// The head signature of a normal rule ([`CompiledProgram::head_sigs`]): empty for
/// constraints and choice rules (choice element atoms are already part of
/// [`rule_signature`]).
fn rule_head_signature(rule: &CRule) -> Vec<SigLit> {
    match &rule.head {
        CHead::Atom(atom) => vec![atom_sig(atom)],
        _ => Vec::new(),
    }
}

fn minimize_signature(m: &CMinimize) -> Vec<SigLit> {
    m.pos.iter().chain(m.neg.iter()).map(atom_sig).collect()
}

/// The set of `(predicate, first-argument)` discriminators touched by a delta
/// grounding's new (or newly-certain) atoms. A literal whose first argument is a
/// constant matches only its exact key; any other literal shape falls back to the
/// predicate-level set.
#[derive(Debug, Default)]
struct TouchSet {
    preds: crate::hasher::FxHashSet<SymbolId>,
    keys: crate::hasher::FxHashSet<(SymbolId, Val)>,
}

impl TouchSet {
    fn touch(&mut self, atom: &GroundAtom) {
        self.preds.insert(atom.pred);
        if let Some(&v) = atom.args.first() {
            self.keys.insert((atom.pred, v));
        }
    }

    fn clear(&mut self) {
        self.preds.clear();
        self.keys.clear();
    }

    fn absorb(&mut self, other: &TouchSet) {
        self.preds.extend(other.preds.iter().copied());
        self.keys.extend(other.keys.iter().copied());
    }

    fn matches(&self, sig: &SigLit) -> bool {
        match sig.arg0 {
            Some(v) => self.keys.contains(&(sig.pred, v)),
            None => self.preds.contains(&sig.pred),
        }
    }

    fn matches_any(&self, sigs: &[SigLit]) -> bool {
        sigs.iter().any(|s| self.matches(s))
    }
}

/// Everything compiled once from a program's text: the rules and minimize statements
/// plus the per-rule delta signatures. Owned by a [`BaseProgram`] so per-request delta
/// groundings never re-parse or re-compile.
#[derive(Debug)]
pub struct CompiledProgram {
    crules: Vec<CRule>,
    cminimize: Vec<CMinimize>,
    /// Parallel to `crules`: the full literal signature (phase-2 affectedness).
    rule_sigs: Vec<Vec<SigLit>>,
    /// Parallel to `crules`: choice-element condition signatures (phase-1 re-joins).
    rule_p1_sigs: Vec<Vec<SigLit>>,
    /// Parallel to `crules`: the normal-rule head signature. Request deltas ignore
    /// heads (see [`rule_signature`]), but a *base* patch cannot: phase 2 drops
    /// instances whose head atom is certain, so a delta fact landing on a derivable
    /// head changes the rule's instance set even when no body literal is touched.
    head_sigs: Vec<Vec<SigLit>>,
    /// Parallel to `cminimize`.
    minimize_sigs: Vec<Vec<SigLit>>,
    /// The `#external` guard atoms of the program text, in declaration order —
    /// replayed by [`Grounder::patch_base`] when it rebuilds the closure in the
    /// exact interning order of a fresh freeze.
    externals: Vec<GroundAtom>,
    /// Ground facts from the program text (`node("hdf5").`), in source order —
    /// replayed together with `externals` on the rebuild path.
    text_facts: Vec<GroundAtom>,
}

/// One frozen minimize condition: `(statement index, tuple key, positive atoms,
/// negative atoms)`. Kept flat (not pre-aggregated) so a request can merge the
/// surviving conditions of unaffected statements with freshly ground ones without
/// double-counting shared tuple keys.
type TupleEntry = (u32, (i64, i64, Vec<Val>), Vec<AtomId>, Vec<AtomId>);

/// A program ground once against its *base* facts — the frozen half of a multi-shot
/// session. Holds the complete base atom table (whose append-only join indexes double
/// as the persistent base relation for the semi-naive continuation) plus the frozen
/// ground instances and minimize conditions. Immutable and `Sync`: many concurrent
/// [`Grounder::ground_delta`] calls may borrow one base.
///
/// # Owner buckets
///
/// Everything frozen is bucketed by *owner*: the first argument symbol (scanning an
/// atom's arguments, or a rule instance's head/positive/negative atoms) that belongs
/// to the caller-declared **partition** symbol set — `None` (global) when no argument
/// does. A restricted delta grounding ([`Grounder::ground_delta`]) then visits only
/// the global bucket and the buckets of non-excluded owners: per-request work is
/// proportional to the *kept* slice of the base, not to the whole universe. Bucketing
/// is purely an access-path optimization — every visited atom and instance is still
/// checked in full against the excluded set, and an atom in a skipped bucket
/// necessarily mentions its excluded owner, so skipping never changes the result.
/// With an empty partition everything is global and a request scans the whole base.
#[derive(Debug)]
pub struct BaseProgram {
    compiled: CompiledProgram,
    atoms: AtomTable,
    trivially_unsat: bool,
    /// Owner → base atom ids (ascending; owner = first partition symbol in the args).
    atom_buckets: FxHashMap<SymbolId, Vec<AtomId>>,
    /// Atoms with no partition symbol: visited by every request.
    global_atoms: Vec<AtomId>,
    /// Owner → `(rule index, instance)` frozen normal rules / constraints.
    rule_buckets: FxHashMap<SymbolId, Vec<(u32, GroundRule)>>,
    global_rules: Vec<(u32, GroundRule)>,
    /// Owner → `(rule index, instance)` frozen choice rules. Choice owners come from
    /// the *body* only: heads are filtered per request, so an owned head must not
    /// drop the whole instance into a skippable bucket.
    choice_buckets: FxHashMap<SymbolId, Vec<(u32, GroundChoice)>>,
    global_choices: Vec<(u32, GroundChoice)>,
    /// Owner → frozen minimize conditions.
    tuple_buckets: FxHashMap<SymbolId, Vec<TupleEntry>>,
    global_tuples: Vec<TupleEntry>,
    /// The input fact stream the base was ground from — the diff target of
    /// [`Grounder::patch_base`].
    input_facts: Vec<GroundAtom>,
    /// The partition the owner buckets were built under.
    partition: crate::hasher::FxHashSet<SymbolId>,
    /// Statistics of the base grounding.
    pub stats: GroundStats,
}

impl BaseProgram {
    /// The base atom table (all possible atoms derivable without any request facts).
    pub fn atoms(&self) -> &AtomTable {
        &self.atoms
    }

    /// Total frozen ground instances (rules + choices) available for reuse.
    pub fn frozen_instances(&self) -> usize {
        self.rule_buckets.values().map(Vec::len).sum::<usize>()
            + self.choice_buckets.values().map(Vec::len).sum::<usize>()
            + self.global_rules.len()
            + self.global_choices.len()
    }
}

/// The owner of an atom under a partition: its first argument symbol that belongs to
/// the partition set, or `None` (global) when no argument does.
fn first_partition_sym(
    atom: &GroundAtom,
    partition: &crate::hasher::FxHashSet<SymbolId>,
) -> Option<SymbolId> {
    atom.args.iter().find_map(|v| match v {
        Val::Sym(s) if partition.contains(s) => Some(*s),
        _ => None,
    })
}

/// Compiled term: variables resolved to slot indices.
#[derive(Debug, Clone)]
enum CTerm {
    Val(Val),
    Var(usize),
    Wildcard,
    BinOp(ArithOp, Box<CTerm>, Box<CTerm>),
}

/// Compiled atom.
#[derive(Debug, Clone)]
struct CAtom {
    pred: SymbolId,
    args: Vec<CTerm>,
}

#[derive(Debug, Clone)]
struct CCmp {
    op: CmpOp,
    lhs: CTerm,
    rhs: CTerm,
}

#[derive(Debug, Clone)]
struct CCond {
    negated: bool,
    atom: CAtom,
    conditions: Vec<CAtom>,
}

#[derive(Debug, Clone)]
struct CChoiceElem {
    atom: CAtom,
    conditions: Vec<CAtom>,
}

#[derive(Debug, Clone)]
enum CHead {
    None,
    Atom(CAtom),
    Choice { lower: Option<CTerm>, upper: Option<CTerm>, elements: Vec<CChoiceElem> },
}

/// A rule compiled for grounding.
#[derive(Debug, Clone)]
struct CRule {
    head: CHead,
    /// Positive predicate body literals, in join order.
    pos: Vec<CAtom>,
    /// Parallel to `pos`: does the literal carry an arithmetic argument? (Precomputed
    /// so the join planner's readiness check is free for the common case.)
    pos_binop: Vec<bool>,
    /// Negative predicate body literals.
    neg: Vec<CAtom>,
    /// Comparison literals.
    cmps: Vec<CCmp>,
    /// Conditional literals.
    conds: Vec<CCond>,
    /// Number of variable slots.
    nvars: usize,
}

#[derive(Debug, Clone)]
struct CMinimize {
    weight: CTerm,
    priority: CTerm,
    terms: Vec<CTerm>,
    pos: Vec<CAtom>,
    neg: Vec<CAtom>,
    cmps: Vec<CCmp>,
    nvars: usize,
}

/// Minimize tuples collected during grounding: `(priority, weight, terms)` keys mapped
/// to the condition bodies (positive, negative atom lists) under which they are paid.
type MinimizeTuples = FxHashMap<(i64, i64, Vec<Val>), Vec<(Vec<AtomId>, Vec<AtomId>)>>;

/// Callback invoked for every complete substitution of a rule's positive body. The
/// final slice holds, for each positive literal (by its original index), the atom id it
/// was matched against — so downstream processing never re-instantiates or re-hashes
/// body atoms.
type OnJoinMatch<'cb, 's> = dyn FnMut(
        &mut Grounder<'s>,
        &mut GroundProgram,
        &[Option<Val>],
        &[AtomId],
    ) -> Result<(), GroundError>
    + 'cb;

/// Callback invoked for every complete assignment of a condition list's variables.
type OnConditionMatch<'cb> =
    dyn FnMut(&mut GroundProgram, &[Option<Val>]) -> Result<(), GroundError> + 'cb;

/// The grounder.
pub struct Grounder<'a> {
    symbols: &'a mut SymbolTable,
    /// Reusable atom buffer for instantiate-then-lookup on the derive path, so
    /// re-deriving an existing atom allocates nothing (see [`AtomTable::intern_ref`]).
    scratch_atom: GroundAtom,
}

impl<'a> Grounder<'a> {
    /// Create a grounder that interns into the given symbol table.
    pub fn new(symbols: &'a mut SymbolTable) -> Self {
        Grounder { symbols, scratch_atom: GroundAtom::new(0, Vec::new()) }
    }

    /// Ground `program` together with externally supplied input `facts`.
    pub fn ground(
        mut self,
        program: &Program,
        facts: &[GroundAtom],
    ) -> Result<GroundProgram, GroundError> {
        let start = Instant::now();
        let mut ground = GroundProgram::default();
        let compiled = self.compile(program, facts, &mut ground)?;

        // ---- Phase 1: possible-atom fixpoint -----------------------------------------
        let seeds: Vec<AtomId> = ground.atoms.iter().map(|(id, _)| id).collect();
        let rounds = self.fixpoint(&compiled, &mut ground, seeds, true, None)?;
        let phase1_time = start.elapsed();

        // ---- Phase 2: rule instantiation ----------------------------------------------
        let mut seen_rules: RuleDedup = RuleDedup::default();
        for rule in &compiled.crules {
            self.phase2_rule(rule, &mut ground, &mut seen_rules)?;
        }
        // Minimize statements.
        let mut tuples: MinimizeTuples = MinimizeTuples::default();
        for m in &compiled.cminimize {
            self.ground_minimize(m, &ground, &mut tuples)?;
        }
        self.emit_minimize(tuples, &mut ground);

        let duration = start.elapsed();
        ground.stats = GroundStats {
            atoms: ground.atoms.len(),
            rules: ground.rules.len(),
            choices: ground.choices.len(),
            minimize: ground.minimize.len(),
            rounds,
            phase1: phase1_time,
            phase2: duration - phase1_time,
            duration,
            ..GroundStats::default()
        };
        Ok(ground)
    }

    /// Ground `program` against the *base* facts only, producing a frozen
    /// [`BaseProgram`] from which many per-request [`Grounder::ground_delta`] calls can
    /// be answered. The base grounding runs both phases to completion; rule instances
    /// carry their source-rule index (deduplication is per rule: an instance emitted
    /// by two different rules must survive in both, because a later delta grounding
    /// may re-instantiate either rule alone), minimize statements are kept as flat
    /// condition entries so frozen and re-ground tuples merge without double-counting
    /// shared keys, and everything is bucketed by owner under `partition` (see the
    /// [`BaseProgram`] docs).
    pub fn ground_base(
        mut self,
        program: &Program,
        facts: &[GroundAtom],
        partition: &crate::hasher::FxHashSet<SymbolId>,
    ) -> Result<BaseProgram, GroundError> {
        let start = Instant::now();
        let mut ground = GroundProgram::default();
        let compiled = self.compile(program, facts, &mut ground)?;

        let seeds: Vec<AtomId> = ground.atoms.iter().map(|(id, _)| id).collect();
        let rounds = self.fixpoint(&compiled, &mut ground, seeds, true, None)?;
        let phase1_time = start.elapsed();

        // Phase 2, spans recorded per rule.
        let mut spans: Vec<(usize, usize, usize, usize)> =
            Vec::with_capacity(compiled.crules.len());
        for rule in &compiled.crules {
            let (r0, c0) = (ground.rules.len(), ground.choices.len());
            let mut seen = RuleDedup::default();
            self.phase2_rule(rule, &mut ground, &mut seen)?;
            spans.push((r0, ground.rules.len(), c0, ground.choices.len()));
        }
        // Minimize statements stay as flat per-statement condition entries; they are
        // merged and emitted per request (emitting here would bake in
        // cross-statement tuple aggregation a partial re-grounding could then
        // double-count).
        let mut tuple_buckets: FxHashMap<SymbolId, Vec<TupleEntry>> = FxHashMap::default();
        let mut global_tuples: Vec<TupleEntry> = Vec::new();
        let mut minimize_total = 0;
        for (mi, m) in compiled.cminimize.iter().enumerate() {
            let mut tuples = MinimizeTuples::default();
            self.ground_minimize(m, &ground, &mut tuples)?;
            minimize_total += tuples.len();
            let mut sorted: Vec<_> = tuples.into_iter().collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            for (key, bodies) in sorted {
                for (pos, neg) in bodies {
                    let owner = pos
                        .iter()
                        .chain(neg.iter())
                        .find_map(|&a| first_partition_sym(ground.atoms.atom(a), partition));
                    let entry = (mi as u32, key.clone(), pos, neg);
                    match owner {
                        Some(o) => tuple_buckets.entry(o).or_default().push(entry),
                        None => global_tuples.push(entry),
                    }
                }
            }
        }

        let duration = start.elapsed();
        let stats = GroundStats {
            atoms: ground.atoms.len(),
            rules: ground.rules.len(),
            choices: ground.choices.len(),
            minimize: minimize_total,
            rounds,
            phase1: phase1_time,
            phase2: duration - phase1_time,
            duration,
            ..GroundStats::default()
        };

        // Bucket the atoms and (with their source-rule index) the instances.
        let mut atom_buckets: FxHashMap<SymbolId, Vec<AtomId>> = FxHashMap::default();
        let mut global_atoms: Vec<AtomId> = Vec::new();
        for (id, atom) in ground.atoms.iter() {
            match first_partition_sym(atom, partition) {
                Some(owner) => atom_buckets.entry(owner).or_default().push(id),
                None => global_atoms.push(id),
            }
        }
        let mut rule_buckets: FxHashMap<SymbolId, Vec<(u32, GroundRule)>> = FxHashMap::default();
        let mut global_rules: Vec<(u32, GroundRule)> = Vec::new();
        let mut choice_buckets: FxHashMap<SymbolId, Vec<(u32, GroundChoice)>> =
            FxHashMap::default();
        let mut global_choices: Vec<(u32, GroundChoice)> = Vec::new();
        let owner_of = |ids: &[AtomId]| -> Option<SymbolId> {
            ids.iter().find_map(|&a| first_partition_sym(ground.atoms.atom(a), partition))
        };
        let mut rules_iter = ground.rules.iter();
        let mut choices_iter = ground.choices.iter();
        for (ri, (r0, r1, c0, c1)) in spans.iter().enumerate() {
            for rule in rules_iter.by_ref().take(r1 - r0) {
                let owner = rule
                    .head
                    .and_then(|h| first_partition_sym(ground.atoms.atom(h), partition))
                    .or_else(|| owner_of(&rule.pos))
                    .or_else(|| owner_of(&rule.neg));
                let entry = (ri as u32, rule.clone());
                match owner {
                    Some(o) => rule_buckets.entry(o).or_default().push(entry),
                    None => global_rules.push(entry),
                }
            }
            for choice in choices_iter.by_ref().take(c1 - c0) {
                // Body only: an owned *head* is filtered per request, not a reason to
                // skip the whole instance.
                let owner = owner_of(&choice.pos).or_else(|| owner_of(&choice.neg));
                let entry = (ri as u32, choice.clone());
                match owner {
                    Some(o) => choice_buckets.entry(o).or_default().push(entry),
                    None => global_choices.push(entry),
                }
            }
        }

        Ok(BaseProgram {
            compiled,
            atoms: ground.atoms,
            trivially_unsat: ground.trivially_unsat,
            atom_buckets,
            global_atoms,
            rule_buckets,
            global_rules,
            choice_buckets,
            global_choices,
            tuple_buckets,
            global_tuples,
            input_facts: facts.to_vec(),
            partition: partition.clone(),
            stats,
        })
    }

    /// Ground one request's *delta* facts on top of a frozen [`BaseProgram`],
    /// producing a complete [`GroundProgram`] equivalent to grounding (base facts −
    /// excluded) + delta facts from scratch:
    ///
    /// 1. **Restriction.** The request's view of the base is built by re-interning
    ///    every base atom that does not mention a symbol in `excluded` (with the
    ///    certain/external flags carried over). Callers use this for relevance
    ///    restriction — e.g. the concretizer excludes every package outside the
    ///    request's dependency closure, shrinking the per-request program from the
    ///    whole-repository universe to exactly what a from-scratch solve of this
    ///    request would ground. With an empty `excluded` set the pass degenerates to
    ///    a plain copy of the base relation. Atoms are re-interned in base order, so
    ///    ids are dense and deterministic; the append-only join indexes built by the
    ///    interning are the persistent base relation for step 2.
    /// 2. **Semi-naive continuation.** Phase 1 continues the fixpoint from the new
    ///    fact atoms only: the restricted base closure is already complete (heads
    ///    derivable from kept atoms mention only kept symbols), so only derivations
    ///    reachable from delta atoms are computed.
    /// 3. **Touched-rule re-instantiation.** Every new (or newly-certain) atom marks
    ///    its `(predicate, first-argument)` discriminator as *touched*; a rule any of
    ///    whose literals — positive, negative, conditional (atom and conditions), or
    ///    choice elements — matches a touched discriminator is re-instantiated in
    ///    full against the restricted relation, all other rules reuse their frozen
    ///    base instances — remapped, dropping instances whose *head or positive body*
    ///    references an excluded atom, and simplifying excluded atoms out of
    ///    *negative* literal lists (an excluded atom is impossible in the restricted
    ///    program, so `not a` is trivially true — exactly what a from-scratch
    ///    grounding of the restricted facts would do). Negative and conditional
    ///    literals force full re-instantiation (not delta-restricted joining)
    ///    because new atoms can change the *simplification* of instances whose
    ///    positive body is old.
    ///
    /// `excluded_ints` are sorted, non-overlapping half-open `[start, end)` ranges
    /// matched against *first* arguments only (id-keyed fact schemes).
    pub fn ground_delta(
        mut self,
        base: &BaseProgram,
        excluded: &crate::hasher::FxHashSet<SymbolId>,
        excluded_ints: &[(i64, i64)],
        facts: &[GroundAtom],
    ) -> Result<GroundProgram, GroundError> {
        let start = Instant::now();
        let mut ground = GroundProgram {
            atoms: AtomTable::new_without_pair_index(),
            rules: Vec::new(),
            choices: Vec::new(),
            minimize: Vec::new(),
            trivially_unsat: base.trivially_unsat,
            stats: GroundStats::default(),
        };
        // Restriction pass: re-intern the kept base atoms (global bucket plus the
        // buckets of non-excluded owners, in base-id order so ids are deterministic).
        // `remap[base_id]` is the request-local id, or the sentinel for excluded /
        // skipped atoms. Visited atoms are still checked in full: an atom in a
        // visited bucket may mention an excluded symbol in a later argument.
        const EXCLUDED: AtomId = AtomId::MAX;
        // An atom is dropped when it mentions an excluded symbol anywhere, or an
        // excluded integer in its *first* argument. The position restriction is what
        // makes integer exclusion usable for id-keyed facts (`condition(ID, ...)`
        // schemes put the id first) without ever colliding with ordinary integers
        // (weights, priorities) in later argument positions — callers must allocate
        // excludable ids from a range no other first-position integer uses.
        let keep = |atom: &GroundAtom| {
            if !excluded_ints.is_empty() {
                if let Some(Val::Int(i)) = atom.args.first() {
                    // Ranges are sorted and disjoint: the candidate range is the
                    // last one starting at or before `i`.
                    let idx = excluded_ints.partition_point(|&(start, _)| start <= *i);
                    if idx > 0 && excluded_ints[idx - 1].1 > *i {
                        return false;
                    }
                }
            }
            excluded.is_empty()
                || !atom.args.iter().any(|v| matches!(v, Val::Sym(s) if excluded.contains(s)))
        };
        let mut visited: Vec<AtomId> = base.global_atoms.clone();
        let mut owners: Vec<SymbolId> =
            base.atom_buckets.keys().copied().filter(|s| !excluded.contains(s)).collect();
        owners.sort_unstable();
        for o in &owners {
            visited.extend_from_slice(&base.atom_buckets[o]);
        }
        visited.sort_unstable();
        ground.atoms.reserve(visited.len());
        let mut remap: Vec<AtomId> = vec![EXCLUDED; base.atoms.len()];
        for &id in &visited {
            let atom = base.atoms.atom(id);
            if !keep(atom) {
                continue;
            }
            let (nid, _) = ground.atoms.intern(atom.clone());
            if base.atoms.is_certain(id) {
                ground.atoms.set_certain(nid);
            }
            remap[id as usize] = nid;
        }
        for &ext in base.atoms.externals() {
            if remap[ext as usize] != EXCLUDED {
                ground.atoms.set_external(remap[ext as usize]);
            }
        }

        let mut touched = TouchSet::default();
        let mut seeds: Vec<AtomId> = Vec::new();
        for fact in facts {
            let (id, new) = ground.atoms.intern_ref(fact);
            if new {
                ground.atoms.set_certain(id);
                seeds.push(id); // touched by the fixpoint's first delta round
            } else if !ground.atoms.is_certain(id) {
                // A delta fact coinciding with a derived base atom: it becomes
                // certain, and every frozen instance mentioning it must re-simplify.
                ground.atoms.set_certain(id);
                touched.touch(ground.atoms.atom(id));
            }
        }
        let rounds =
            self.fixpoint(&base.compiled, &mut ground, seeds, false, Some(&mut touched))?;
        let phase1_time = start.elapsed();

        // Which rules did the delta touch? Affected rules are re-instantiated in full
        // against the restricted relation; everything else reuses frozen instances.
        let affected: Vec<bool> =
            base.compiled.rule_sigs.iter().map(|sigs| touched.matches_any(sigs)).collect();
        let mut reused_rules = 0usize;
        let mut delta_rules = 0usize;
        for (ri, rule) in base.compiled.crules.iter().enumerate() {
            if affected[ri] {
                delta_rules += 1;
                let mut seen = RuleDedup::default();
                self.phase2_rule(rule, &mut ground, &mut seen)?;
            }
        }
        // A frozen instance survives iff its head and every positive atom are kept;
        // excluded atoms in *negative* lists are simplified away instead (they are
        // impossible in the restricted program, so `not a` holds trivially — the
        // same simplification a from-scratch grounding of the restricted facts
        // performs).
        let map = |remap: &[AtomId], ids: &[AtomId], out: &mut Vec<AtomId>| -> bool {
            out.clear();
            for &a in ids {
                let n = remap[a as usize];
                if n == EXCLUDED {
                    return false;
                }
                out.push(n);
            }
            true
        };
        let map_neg = |remap: &[AtomId], ids: &[AtomId], out: &mut Vec<AtomId>| {
            out.clear();
            out.extend(ids.iter().map(|&a| remap[a as usize]).filter(|&n| n != EXCLUDED));
        };
        let mut mapped: Vec<AtomId> = Vec::new();
        let mut mapped2: Vec<AtomId> = Vec::new();
        {
            let mut copy_rules = |entries: &[(u32, GroundRule)], ground: &mut GroundProgram| {
                for (ri, frozen) in entries {
                    if affected[*ri as usize] {
                        continue; // re-instantiated above
                    }
                    let head = match frozen.head {
                        Some(h) => match remap[h as usize] {
                            EXCLUDED => continue,
                            n => Some(n),
                        },
                        None => None,
                    };
                    if !map(&remap, &frozen.pos, &mut mapped) {
                        continue;
                    }
                    map_neg(&remap, &frozen.neg, &mut mapped2);
                    reused_rules += 1;
                    ground.rules.push(GroundRule {
                        head,
                        pos: mapped.clone(),
                        neg: mapped2.clone(),
                    });
                }
            };
            copy_rules(&base.global_rules, &mut ground);
            for o in &owners {
                if let Some(entries) = base.rule_buckets.get(o) {
                    copy_rules(entries, &mut ground);
                }
            }
        }
        {
            let mut copy_choices = |entries: &[(u32, GroundChoice)], ground: &mut GroundProgram| {
                for (ri, frozen) in entries {
                    if affected[*ri as usize] {
                        continue;
                    }
                    if !map(&remap, &frozen.pos, &mut mapped) {
                        continue;
                    }
                    map_neg(&remap, &frozen.neg, &mut mapped2);
                    // Excluded heads drop out of the choice (their enabling condition
                    // facts are excluded too); an instance may keep a subset.
                    let heads: Vec<AtomId> = frozen
                        .heads
                        .iter()
                        .filter_map(|&h| match remap[h as usize] {
                            EXCLUDED => None,
                            n => Some(n),
                        })
                        .collect();
                    reused_rules += 1;
                    ground.choices.push(GroundChoice {
                        heads,
                        lower: frozen.lower,
                        upper: frozen.upper,
                        pos: mapped.clone(),
                        neg: mapped2.clone(),
                    });
                }
            };
            copy_choices(&base.global_choices, &mut ground);
            for o in &owners {
                if let Some(entries) = base.choice_buckets.get(o) {
                    copy_choices(entries, &mut ground);
                }
            }
        }
        let mut tuples: MinimizeTuples = MinimizeTuples::default();
        for (mi, m) in base.compiled.cminimize.iter().enumerate() {
            if touched.matches_any(&base.compiled.minimize_sigs[mi]) {
                self.ground_minimize(m, &ground, &mut tuples)?;
            }
        }
        {
            let affected_min: Vec<bool> =
                base.compiled.minimize_sigs.iter().map(|sigs| touched.matches_any(sigs)).collect();
            let mut copy_tuples = |entries: &[TupleEntry]| {
                for (mi, key, pos, neg) in entries {
                    if affected_min[*mi as usize] {
                        continue; // re-ground above
                    }
                    if map(&remap, pos, &mut mapped) {
                        map_neg(&remap, neg, &mut mapped2);
                        tuples
                            .entry(key.clone())
                            .or_default()
                            .push((mapped.clone(), mapped2.clone()));
                    }
                }
            };
            copy_tuples(&base.global_tuples);
            for o in &owners {
                if let Some(entries) = base.tuple_buckets.get(o) {
                    copy_tuples(entries);
                }
            }
        }
        self.emit_minimize(tuples, &mut ground);

        let duration = start.elapsed();
        ground.stats = GroundStats {
            atoms: ground.atoms.len(),
            rules: ground.rules.len(),
            choices: ground.choices.len(),
            minimize: ground.minimize.len(),
            rounds,
            phase1: phase1_time,
            phase2: duration - phase1_time,
            duration,
            delta: true,
            reused_rules,
            delta_rules,
        };
        Ok(ground)
    }

    /// Patch a frozen [`BaseProgram`] **in place** so it becomes equivalent to a
    /// fresh [`Grounder::ground_base`] of `new_facts` (the complete post-delta input
    /// fact stream) under `partition`. The streams are diffed as sets of distinct
    /// atoms (duplicates are irrelevant to grounding) and the cheapest applicable
    /// strategy runs:
    ///
    /// * **Additions only** — the common buildcache-install churn. The semi-naive
    ///   phase-1 fixpoint *continues* from the added facts on top of the existing
    ///   closure (the same machinery as a per-request delta, pointed at the base
    ///   relation itself). Every rule whose body literals *or head* match a touched
    ///   discriminator is re-instantiated and its frozen buckets replaced; all other
    ///   instances survive untouched — the relation only grew, so their atom ids
    ///   stay valid.
    /// * **Any removal** — a version yanked, a hash uninstalled. Derivations that
    ///   existed only because of the removed facts must be retracted, which an
    ///   append-only relation cannot express: the possible-atom closure is rebuilt
    ///   from scratch in the exact interning order of a fresh freeze (input facts,
    ///   `#external` guards, program-text facts — so every surviving atom id
    ///   coincides with a fresh [`Grounder::ground_base`] of `new_facts`), then the
    ///   frozen instances of *unaffected* rules are remapped onto the new ids while
    ///   only the rules the diff touched pay phase 2 again.
    ///
    /// Heads participate in affectedness here (unlike request deltas): phase 2
    /// drops instances whose head atom is certain, so a delta fact landing on a
    /// derivable head changes a rule's instance set without touching its body.
    ///
    /// Either way the patched base answers every subsequent
    /// [`Grounder::ground_delta`] exactly like a fresh freeze of `new_facts` would;
    /// only the bucket-internal instance *order* (and, on the additions path, the
    /// ids of atoms interned after the original freeze) may differ.
    pub fn patch_base(
        mut self,
        base: &mut BaseProgram,
        new_facts: Vec<GroundAtom>,
        partition: crate::hasher::FxHashSet<SymbolId>,
    ) -> Result<PatchStats, GroundError> {
        let start = Instant::now();
        let mut stats = PatchStats { atoms_before: base.atoms.len(), ..PatchStats::default() };
        // Distinct-atom diff of the two input streams.
        let mut presence: FxHashMap<&GroundAtom, (bool, bool)> = FxHashMap::default();
        for f in &base.input_facts {
            presence.entry(f).or_default().0 = true;
        }
        for f in &new_facts {
            presence.entry(f).or_default().1 = true;
        }
        stats.removed_facts = presence.values().filter(|&&(old, new)| old && !new).count();
        // Added facts in new-stream first-occurrence order, for determinism.
        let mut added: Vec<GroundAtom> = Vec::new();
        for f in &new_facts {
            if let Some(flags) = presence.get_mut(f) {
                if !flags.0 {
                    flags.0 = true; // consume, so a duplicated new fact is added once
                    added.push(f.clone());
                }
            }
        }
        drop(presence);
        stats.added_facts = added.len();
        if stats.removed_facts > 0 {
            stats.rebuilt = true;
            self.patch_rebuild(base, &new_facts, &partition, &mut stats)?;
        } else if !added.is_empty() {
            self.patch_additions(base, &added, &partition, &mut stats)?;
        }
        base.input_facts = new_facts;
        base.partition = partition;
        base.stats.atoms = base.atoms.len();
        base.stats.rules =
            base.global_rules.len() + base.rule_buckets.values().map(Vec::len).sum::<usize>();
        base.stats.choices =
            base.global_choices.len() + base.choice_buckets.values().map(Vec::len).sum::<usize>();
        stats.atoms_after = base.atoms.len();
        stats.duration = start.elapsed();
        Ok(stats)
    }

    /// Additions-only in-place patch: continue the phase-1 fixpoint from the added
    /// facts, then re-instantiate exactly the touched rules and minimize statements.
    fn patch_additions(
        &mut self,
        base: &mut BaseProgram,
        added: &[GroundAtom],
        partition: &crate::hasher::FxHashSet<SymbolId>,
        stats: &mut PatchStats,
    ) -> Result<(), GroundError> {
        // Move the base relation into a scratch GroundProgram so the shared fixpoint
        // and phase-2 machinery can run against it; it moves back at the end.
        let mut ground = GroundProgram {
            atoms: std::mem::take(&mut base.atoms),
            trivially_unsat: base.trivially_unsat,
            ..GroundProgram::default()
        };
        let old_len = ground.atoms.len();
        let mut touched = TouchSet::default();
        let mut seeds: Vec<AtomId> = Vec::new();
        for fact in added {
            let (id, new) = ground.atoms.intern_ref(fact);
            if new {
                ground.atoms.set_certain(id);
                seeds.push(id); // touched by the fixpoint's first delta round
            } else if !ground.atoms.is_certain(id) {
                // The added fact coincides with a derived atom: it turns certain, and
                // every frozen instance mentioning it must re-simplify.
                ground.atoms.set_certain(id);
                touched.touch(ground.atoms.atom(id));
            }
        }
        self.fixpoint(&base.compiled, &mut ground, seeds, false, Some(&mut touched))?;
        stats.atoms_added = ground.atoms.len() - old_len;

        let affected: Vec<bool> = base
            .compiled
            .rule_sigs
            .iter()
            .zip(&base.compiled.head_sigs)
            .map(|(body, head)| touched.matches_any(body) || touched.matches_any(head))
            .collect();

        // Re-instantiate the affected rules against the grown relation (the compiled
        // program is borrowed here; the buckets are edited afterwards).
        let mut new_rules: Vec<(u32, GroundRule)> = Vec::new();
        let mut new_choices: Vec<(u32, GroundChoice)> = Vec::new();
        for (ri, rule) in base.compiled.crules.iter().enumerate() {
            if !affected[ri] {
                continue;
            }
            stats.rules_reinstantiated += 1;
            let mut seen = RuleDedup::default();
            self.phase2_rule(rule, &mut ground, &mut seen)?;
            new_rules.extend(ground.rules.drain(..).map(|r| (ri as u32, r)));
            new_choices.extend(ground.choices.drain(..).map(|c| (ri as u32, c)));
        }
        let affected_min: Vec<bool> =
            base.compiled.minimize_sigs.iter().map(|sigs| touched.matches_any(sigs)).collect();
        let mut new_tuples: Vec<TupleEntry> = Vec::new();
        for (mi, m) in base.compiled.cminimize.iter().enumerate() {
            if !affected_min[mi] {
                continue;
            }
            let mut tuples = MinimizeTuples::default();
            self.ground_minimize(m, &ground, &mut tuples)?;
            let mut sorted: Vec<_> = tuples.into_iter().collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            for (key, bodies) in sorted {
                for (pos, neg) in bodies {
                    new_tuples.push((mi as u32, key.clone(), pos, neg));
                }
            }
        }

        // Retract the affected rules' frozen instances; everything else survives
        // verbatim (pre-patch atom ids are stable — the relation only grew).
        let mut reused = 0usize;
        for bucket in base.rule_buckets.values_mut() {
            bucket.retain(|(ri, _)| !affected[*ri as usize]);
            reused += bucket.len();
        }
        base.global_rules.retain(|(ri, _)| !affected[*ri as usize]);
        reused += base.global_rules.len();
        for bucket in base.choice_buckets.values_mut() {
            bucket.retain(|(ri, _)| !affected[*ri as usize]);
            reused += bucket.len();
        }
        base.global_choices.retain(|(ri, _)| !affected[*ri as usize]);
        reused += base.global_choices.len();
        stats.rules_reused = reused;
        for bucket in base.tuple_buckets.values_mut() {
            bucket.retain(|(mi, ..)| !affected_min[*mi as usize]);
        }
        base.global_tuples.retain(|(mi, ..)| !affected_min[*mi as usize]);

        // Bucket the new atoms (per-bucket id order stays ascending: every new id is
        // larger than any pre-patch id) and the re-instantiated instances.
        for id in old_len..ground.atoms.len() {
            let id = id as AtomId;
            match first_partition_sym(ground.atoms.atom(id), partition) {
                Some(o) => base.atom_buckets.entry(o).or_default().push(id),
                None => base.global_atoms.push(id),
            }
        }
        let owner_of = |ids: &[AtomId]| -> Option<SymbolId> {
            ids.iter().find_map(|&a| first_partition_sym(ground.atoms.atom(a), partition))
        };
        for (ri, rule) in new_rules {
            let owner = rule
                .head
                .and_then(|h| first_partition_sym(ground.atoms.atom(h), partition))
                .or_else(|| owner_of(&rule.pos))
                .or_else(|| owner_of(&rule.neg));
            match owner {
                Some(o) => base.rule_buckets.entry(o).or_default().push((ri, rule)),
                None => base.global_rules.push((ri, rule)),
            }
        }
        for (ri, choice) in new_choices {
            let owner = owner_of(&choice.pos).or_else(|| owner_of(&choice.neg));
            match owner {
                Some(o) => base.choice_buckets.entry(o).or_default().push((ri, choice)),
                None => base.global_choices.push((ri, choice)),
            }
        }
        for entry in new_tuples {
            let owner = entry
                .2
                .iter()
                .chain(entry.3.iter())
                .find_map(|&a| first_partition_sym(ground.atoms.atom(a), partition));
            match owner {
                Some(o) => base.tuple_buckets.entry(o).or_default().push(entry),
                None => base.global_tuples.push(entry),
            }
        }

        base.trivially_unsat = ground.trivially_unsat;
        base.atoms = ground.atoms;
        Ok(())
    }

    /// Removal-capable patch: rebuild the possible-atom closure from scratch in the
    /// exact interning order of a fresh freeze, then remap the unaffected frozen
    /// instances onto the new ids and re-instantiate only the rules the diff touched.
    fn patch_rebuild(
        &mut self,
        base: &mut BaseProgram,
        new_facts: &[GroundAtom],
        partition: &crate::hasher::FxHashSet<SymbolId>,
        stats: &mut PatchStats,
    ) -> Result<(), GroundError> {
        // Mirror `compile()`'s interning order — input facts, `#external` guards,
        // program-text facts — so atom ids coincide with a fresh freeze.
        let mut ground = GroundProgram::default();
        for fact in new_facts {
            let (id, _) = ground.atoms.intern(fact.clone());
            ground.atoms.set_certain(id);
        }
        for ext in &base.compiled.externals {
            let (id, _) = ground.atoms.intern(ext.clone());
            ground.atoms.set_external(id);
        }
        for fact in &base.compiled.text_facts {
            let (id, _) = ground.atoms.intern(fact.clone());
            ground.atoms.set_certain(id);
        }
        let seeds: Vec<AtomId> = ground.atoms.iter().map(|(id, _)| id).collect();
        self.fixpoint(&base.compiled, &mut ground, seeds, true, None)?;

        // Diff the closures. Retracted atoms, new atoms, and atoms whose certainty
        // changed all mark their discriminator touched; `remap` carries old → new
        // ids for the survivors.
        const GONE: AtomId = AtomId::MAX;
        let mut touched = TouchSet::default();
        let mut remap: Vec<AtomId> = vec![GONE; base.atoms.len()];
        for (old_id, atom) in base.atoms.iter() {
            match ground.atoms.get(atom) {
                Some(new_id) => {
                    remap[old_id as usize] = new_id;
                    if ground.atoms.is_certain(new_id) != base.atoms.is_certain(old_id) {
                        touched.touch(atom);
                    }
                }
                None => {
                    stats.atoms_removed += 1;
                    touched.touch(atom);
                }
            }
        }
        for (_, atom) in ground.atoms.iter() {
            if base.atoms.get(atom).is_none() {
                stats.atoms_added += 1;
                touched.touch(atom);
            }
        }

        let affected: Vec<bool> = base
            .compiled
            .rule_sigs
            .iter()
            .zip(&base.compiled.head_sigs)
            .map(|(body, head)| touched.matches_any(body) || touched.matches_any(head))
            .collect();
        let affected_min: Vec<bool> =
            base.compiled.minimize_sigs.iter().map(|sigs| touched.matches_any(sigs)).collect();

        // Phase 2 for the affected rules and minimize statements against the new
        // relation.
        let mut new_rules: Vec<(u32, GroundRule)> = Vec::new();
        let mut new_choices: Vec<(u32, GroundChoice)> = Vec::new();
        for (ri, rule) in base.compiled.crules.iter().enumerate() {
            if !affected[ri] {
                continue;
            }
            stats.rules_reinstantiated += 1;
            let mut seen = RuleDedup::default();
            self.phase2_rule(rule, &mut ground, &mut seen)?;
            new_rules.extend(ground.rules.drain(..).map(|r| (ri as u32, r)));
            new_choices.extend(ground.choices.drain(..).map(|c| (ri as u32, c)));
        }
        let mut new_tuples: Vec<TupleEntry> = Vec::new();
        for (mi, m) in base.compiled.cminimize.iter().enumerate() {
            if !affected_min[mi] {
                continue;
            }
            let mut tuples = MinimizeTuples::default();
            self.ground_minimize(m, &ground, &mut tuples)?;
            let mut sorted: Vec<_> = tuples.into_iter().collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            for (key, bodies) in sorted {
                for (pos, neg) in bodies {
                    new_tuples.push((mi as u32, key.clone(), pos, neg));
                }
            }
        }
        let mut trivially_unsat = ground.trivially_unsat;

        // Remap the unaffected instances. Every atom they reference matches one of
        // their rule's signature literals, so it is untouched — present in the new
        // closure with unchanged certainty — and the remap cannot miss (the
        // debug_asserts pin that invariant; an instance that does trip one is
        // dropped, which a fresh freeze would have done too).
        let old_rules = std::mem::take(&mut base.rule_buckets);
        let old_global_rules = std::mem::take(&mut base.global_rules);
        let old_choices = std::mem::take(&mut base.choice_buckets);
        let old_global_choices = std::mem::take(&mut base.global_choices);
        let old_tuples = std::mem::take(&mut base.tuple_buckets);
        let old_global_tuples = std::mem::take(&mut base.global_tuples);
        let map_ids = |ids: &[AtomId], out: &mut Vec<AtomId>| -> bool {
            out.clear();
            for &a in ids {
                let n = remap[a as usize];
                if n == GONE {
                    debug_assert!(false, "unaffected instance references a retracted atom");
                    return false;
                }
                out.push(n);
            }
            true
        };
        let mut mapped: Vec<AtomId> = Vec::new();
        let mut mapped2: Vec<AtomId> = Vec::new();
        for (ri, rule) in old_global_rules.iter().chain(old_rules.values().flatten()) {
            if affected[*ri as usize] {
                continue;
            }
            let head = match rule.head {
                Some(h) => match remap[h as usize] {
                    GONE => {
                        debug_assert!(false, "unaffected head atom was retracted");
                        continue;
                    }
                    n => Some(n),
                },
                None => None,
            };
            if !map_ids(&rule.pos, &mut mapped) || !map_ids(&rule.neg, &mut mapped2) {
                continue;
            }
            if head.is_none() && mapped.is_empty() && mapped2.is_empty() {
                trivially_unsat = true;
            }
            stats.rules_reused += 1;
            new_rules.push((*ri, GroundRule { head, pos: mapped.clone(), neg: mapped2.clone() }));
        }
        for (ri, choice) in old_global_choices.iter().chain(old_choices.values().flatten()) {
            if affected[*ri as usize] {
                continue;
            }
            // Choice heads are part of the rule signature (element atoms), so an
            // unaffected instance's heads all survive.
            if !map_ids(&choice.heads, &mut mapped) {
                continue;
            }
            let heads = mapped.clone();
            if !map_ids(&choice.pos, &mut mapped) || !map_ids(&choice.neg, &mut mapped2) {
                continue;
            }
            stats.rules_reused += 1;
            new_choices.push((
                *ri,
                GroundChoice {
                    heads,
                    lower: choice.lower,
                    upper: choice.upper,
                    pos: mapped.clone(),
                    neg: mapped2.clone(),
                },
            ));
        }
        for (mi, key, pos, neg) in old_global_tuples.iter().chain(old_tuples.values().flatten()) {
            if affected_min[*mi as usize] {
                continue;
            }
            if !map_ids(pos, &mut mapped) || !map_ids(neg, &mut mapped2) {
                continue;
            }
            new_tuples.push((*mi, key.clone(), mapped.clone(), mapped2.clone()));
        }

        // Rebucket everything against the new ids.
        base.atom_buckets.clear();
        base.global_atoms.clear();
        for (id, atom) in ground.atoms.iter() {
            match first_partition_sym(atom, partition) {
                Some(o) => base.atom_buckets.entry(o).or_default().push(id),
                None => base.global_atoms.push(id),
            }
        }
        let owner_of = |ids: &[AtomId]| -> Option<SymbolId> {
            ids.iter().find_map(|&a| first_partition_sym(ground.atoms.atom(a), partition))
        };
        for (ri, rule) in new_rules {
            let owner = rule
                .head
                .and_then(|h| first_partition_sym(ground.atoms.atom(h), partition))
                .or_else(|| owner_of(&rule.pos))
                .or_else(|| owner_of(&rule.neg));
            match owner {
                Some(o) => base.rule_buckets.entry(o).or_default().push((ri, rule)),
                None => base.global_rules.push((ri, rule)),
            }
        }
        for (ri, choice) in new_choices {
            let owner = owner_of(&choice.pos).or_else(|| owner_of(&choice.neg));
            match owner {
                Some(o) => base.choice_buckets.entry(o).or_default().push((ri, choice)),
                None => base.global_choices.push((ri, choice)),
            }
        }
        for entry in new_tuples {
            let owner = entry
                .2
                .iter()
                .chain(entry.3.iter())
                .find_map(|&a| first_partition_sym(ground.atoms.atom(a), partition));
            match owner {
                Some(o) => base.tuple_buckets.entry(o).or_default().push(entry),
                None => base.global_tuples.push(entry),
            }
        }

        base.trivially_unsat = trivially_unsat;
        base.atoms = ground.atoms;
        Ok(())
    }

    /// Shared grounding prelude: intern the input facts (certain), the `#external`
    /// guard atoms (possible-but-uncertain — they seed the phase-1 fixpoint, yet
    /// nothing ever derives them; the translation and the stability check exempt them,
    /// so a per-solve assumption can fix their truth without regrounding), and the
    /// program-text ground facts (`node("hdf5").`), then compile the remaining rules
    /// and minimize statements together with their delta signatures.
    fn compile(
        &mut self,
        program: &Program,
        facts: &[GroundAtom],
        ground: &mut GroundProgram,
    ) -> Result<CompiledProgram, GroundError> {
        let consts: HashMap<String, Term> = program.consts.iter().cloned().collect();
        for fact in facts {
            let (id, _) = ground.atoms.intern(fact.clone());
            ground.atoms.set_certain(id);
        }
        let mut externals = Vec::with_capacity(program.externals.len());
        for atom in &program.externals {
            let ga = self.intern_ground_atom(atom, &consts)?;
            externals.push(ga.clone());
            let (id, _) = ground.atoms.intern(ga);
            ground.atoms.set_external(id);
        }
        let mut crules = Vec::with_capacity(program.rules.len());
        let mut text_facts = Vec::new();
        for rule in &program.rules {
            // Ground facts in the program text are handled directly.
            if rule.body.is_empty() {
                if let Head::Atom(atom) = &rule.head {
                    if atom.is_ground() {
                        let ga = self.intern_ground_atom(atom, &consts)?;
                        text_facts.push(ga.clone());
                        let (id, _) = ground.atoms.intern(ga);
                        ground.atoms.set_certain(id);
                        continue;
                    }
                }
            }
            crules.push(self.compile_rule(rule, &consts)?);
        }
        let cminimize: Vec<CMinimize> = program
            .minimize
            .iter()
            .map(|m| self.compile_minimize(m, &consts))
            .collect::<Result<_, _>>()?;
        let rule_sigs = crules.iter().map(rule_signature).collect();
        let rule_p1_sigs = crules.iter().map(rule_phase1_condition_signature).collect();
        let head_sigs = crules.iter().map(rule_head_signature).collect();
        let minimize_sigs = cminimize.iter().map(minimize_signature).collect();
        Ok(CompiledProgram {
            crules,
            cminimize,
            rule_sigs,
            rule_p1_sigs,
            head_sigs,
            minimize_sigs,
            externals,
            text_facts,
        })
    }

    /// The phase-1 possible-atom fixpoint. With `full_first_round` the first round
    /// joins every rule unrestricted (one-shot and base grounding); otherwise the
    /// fixpoint *continues* semi-naively from `seeds` on top of an already-complete
    /// base closure (delta grounding). `touched` (delta mode only) accumulates the
    /// discriminators of every delta atom; it also triggers full re-joins of rules
    /// whose choice-element conditions gained atoms this round — their new heads live
    /// in instances whose positive body did not change, which the occurrence-driven
    /// delta pass alone would miss.
    fn fixpoint(
        &mut self,
        compiled: &CompiledProgram,
        ground: &mut GroundProgram,
        seeds: Vec<AtomId>,
        full_first_round: bool,
        mut touched: Option<&mut TouchSet>,
    ) -> Result<usize, GroundError> {
        let mut rounds = 0;
        let mut delta: Vec<AtomId> = seeds;
        // Persistent delta structures, reused across rounds: the membership bitset and
        // the per-predicate delta lists driving the occurrence-based instantiation.
        let mut delta_set = AtomBitSet::default();
        let mut delta_by_pred: FxHashMap<SymbolId, Vec<AtomId>> = FxHashMap::default();
        let mut first_round = full_first_round;
        let mut round_touch = TouchSet::default();
        while !delta.is_empty() || first_round {
            rounds += 1;
            if rounds > 100_000 {
                return Err(GroundError { message: "grounding did not reach a fixpoint".into() });
            }
            if !first_round {
                delta_set.grow(ground.atoms.len());
                for &d in &delta {
                    delta_set.set(d);
                }
                for v in delta_by_pred.values_mut() {
                    v.clear();
                }
                for &d in &delta {
                    delta_by_pred.entry(ground.atoms.atom(d).pred).or_default().push(d);
                }
            }
            if let Some(t) = touched.as_deref_mut() {
                round_touch.clear();
                for &d in &delta {
                    round_touch.touch(ground.atoms.atom(d));
                }
                t.absorb(&round_touch);
            }
            let mut new_atoms: Vec<AtomId> = Vec::new();
            for (ri, rule) in compiled.crules.iter().enumerate() {
                let full = first_round
                    || (touched.is_some() && round_touch.matches_any(&compiled.rule_p1_sigs[ri]));
                self.phase1_rule(rule, ground, &delta_set, &delta_by_pred, full, &mut new_atoms)?;
            }
            if !first_round {
                for &d in &delta {
                    delta_set.clear(d);
                }
            }
            delta = new_atoms;
            first_round = false;
        }
        Ok(rounds)
    }

    // ---- compilation -----------------------------------------------------------------

    fn compile_term(
        &mut self,
        term: &Term,
        vars: &mut Vec<String>,
        consts: &HashMap<String, Term>,
    ) -> Result<CTerm, GroundError> {
        Ok(match term {
            Term::Sym(s) => {
                if let Some(def) = consts.get(s) {
                    // #const substitution (definitions must be ground).
                    self.compile_term(def, vars, consts)?
                } else {
                    CTerm::Val(Val::Sym(self.symbols.intern(s)))
                }
            }
            Term::Int(i) => CTerm::Val(Val::Int(*i)),
            Term::Var(v) if v == "_" => CTerm::Wildcard,
            Term::Var(v) => {
                let idx = match vars.iter().position(|x| x == v) {
                    Some(i) => i,
                    None => {
                        vars.push(v.clone());
                        vars.len() - 1
                    }
                };
                CTerm::Var(idx)
            }
            Term::BinOp(op, a, b) => CTerm::BinOp(
                *op,
                Box::new(self.compile_term(a, vars, consts)?),
                Box::new(self.compile_term(b, vars, consts)?),
            ),
        })
    }

    fn compile_atom(
        &mut self,
        atom: &Atom,
        vars: &mut Vec<String>,
        consts: &HashMap<String, Term>,
    ) -> Result<CAtom, GroundError> {
        let pred = self.symbols.intern(&atom.pred);
        if atom.args.len() > MAX_ARITY {
            return Err(GroundError {
                message: format!("atom {} exceeds the maximum arity of {MAX_ARITY}", atom.pred),
            });
        }
        let args = atom
            .args
            .iter()
            .map(|t| self.compile_term(t, vars, consts))
            .collect::<Result<_, _>>()?;
        Ok(CAtom { pred, args })
    }

    fn compile_rule(
        &mut self,
        rule: &crate::ast::Rule,
        consts: &HashMap<String, Term>,
    ) -> Result<CRule, GroundError> {
        let mut vars = Vec::new();
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        let mut cmps = Vec::new();
        let mut conds = Vec::new();
        for elem in &rule.body {
            match elem {
                BodyElem::Lit(Literal::Pred { negated: false, atom }) => {
                    pos.push(self.compile_atom(atom, &mut vars, consts)?);
                }
                BodyElem::Lit(Literal::Pred { negated: true, atom }) => {
                    neg.push(self.compile_atom(atom, &mut vars, consts)?);
                }
                BodyElem::Lit(Literal::Cmp { op, lhs, rhs }) => {
                    cmps.push(CCmp {
                        op: *op,
                        lhs: self.compile_term(lhs, &mut vars, consts)?,
                        rhs: self.compile_term(rhs, &mut vars, consts)?,
                    });
                }
                BodyElem::Cond { literal, conditions } => {
                    let (negated, atom) = match literal {
                        Literal::Pred { negated, atom } => (*negated, atom),
                        Literal::Cmp { .. } => {
                            return Err(GroundError {
                                message: "comparison literals cannot be conditional".into(),
                            })
                        }
                    };
                    let catom = self.compile_atom(atom, &mut vars, consts)?;
                    let cconds = conditions
                        .iter()
                        .map(|c| match c {
                            Literal::Pred { negated: false, atom } => {
                                self.compile_atom(atom, &mut vars, consts)
                            }
                            _ => Err(GroundError {
                                message:
                                    "conditions of conditional literals must be positive atoms"
                                        .into(),
                            }),
                        })
                        .collect::<Result<_, _>>()?;
                    conds.push(CCond { negated, atom: catom, conditions: cconds });
                }
            }
        }
        let head = match &rule.head {
            Head::None => CHead::None,
            Head::Atom(atom) => CHead::Atom(self.compile_atom(atom, &mut vars, consts)?),
            Head::Choice { lower, upper, elements } => {
                let lower =
                    lower.as_ref().map(|t| self.compile_term(t, &mut vars, consts)).transpose()?;
                let upper =
                    upper.as_ref().map(|t| self.compile_term(t, &mut vars, consts)).transpose()?;
                let elements = elements
                    .iter()
                    .map(|e| self.compile_choice_elem(e, &mut vars, consts))
                    .collect::<Result<_, _>>()?;
                CHead::Choice { lower, upper, elements }
            }
        };
        let pos_binop = pos.iter().map(has_binop_arg).collect();
        Ok(CRule { head, pos, pos_binop, neg, cmps, conds, nvars: vars.len() })
    }

    fn compile_choice_elem(
        &mut self,
        elem: &ChoiceElement,
        vars: &mut Vec<String>,
        consts: &HashMap<String, Term>,
    ) -> Result<CChoiceElem, GroundError> {
        let atom = self.compile_atom(&elem.atom, vars, consts)?;
        let conditions = elem
            .conditions
            .iter()
            .map(|c| match c {
                Literal::Pred { negated: false, atom } => self.compile_atom(atom, vars, consts),
                _ => Err(GroundError {
                    message: "choice element conditions must be positive atoms".into(),
                }),
            })
            .collect::<Result<_, _>>()?;
        Ok(CChoiceElem { atom, conditions })
    }

    fn compile_minimize(
        &mut self,
        m: &crate::ast::MinimizeElement,
        consts: &HashMap<String, Term>,
    ) -> Result<CMinimize, GroundError> {
        let mut vars = Vec::new();
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        let mut cmps = Vec::new();
        for c in &m.conditions {
            match c {
                Literal::Pred { negated: false, atom } => {
                    pos.push(self.compile_atom(atom, &mut vars, consts)?)
                }
                Literal::Pred { negated: true, atom } => {
                    neg.push(self.compile_atom(atom, &mut vars, consts)?)
                }
                Literal::Cmp { op, lhs, rhs } => cmps.push(CCmp {
                    op: *op,
                    lhs: self.compile_term(lhs, &mut vars, consts)?,
                    rhs: self.compile_term(rhs, &mut vars, consts)?,
                }),
            }
        }
        let weight = self.compile_term(&m.weight, &mut vars, consts)?;
        let priority = self.compile_term(&m.priority, &mut vars, consts)?;
        let terms = m
            .terms
            .iter()
            .map(|t| self.compile_term(t, &mut vars, consts))
            .collect::<Result<_, _>>()?;
        Ok(CMinimize { weight, priority, terms, pos, neg, cmps, nvars: vars.len() })
    }

    fn intern_ground_atom(
        &mut self,
        atom: &Atom,
        consts: &HashMap<String, Term>,
    ) -> Result<GroundAtom, GroundError> {
        let mut vars = Vec::new();
        let catom = self.compile_atom(atom, &mut vars, consts)?;
        if !vars.is_empty() {
            return Err(GroundError { message: format!("fact {atom} is not ground") });
        }
        let subst: Vec<Option<Val>> = Vec::new();
        instantiate_atom(&catom, &subst)
            .ok_or_else(|| GroundError { message: format!("cannot evaluate fact {atom}") })
    }

    // ---- phase 1 ----------------------------------------------------------------------

    fn phase1_rule(
        &mut self,
        rule: &CRule,
        ground: &mut GroundProgram,
        delta_set: &AtomBitSet,
        delta_by_pred: &FxHashMap<SymbolId, Vec<AtomId>>,
        first_round: bool,
        new_atoms: &mut Vec<AtomId>,
    ) -> Result<(), GroundError> {
        // Nothing to derive for constraints in phase 1.
        if matches!(rule.head, CHead::None) {
            return Ok(());
        }
        let mut subst = vec![None; rule.nvars];
        if first_round {
            // Every atom is "new": one unrestricted (planned) join covers everything.
            return self.join_all(
                rule,
                ground,
                &mut subst,
                &mut |this, ground, subst, _matched| {
                    for cmp in &rule.cmps {
                        if let Some(false) = eval_cmp(cmp, subst) {
                            return Ok(());
                        }
                    }
                    this.derive_head(rule, ground, subst, new_atoms)
                },
            );
        }
        // Body-less rules cannot fire anything new after the first round.
        if rule.pos.is_empty() {
            return Ok(());
        }
        // Semi-naive, occurrence-driven: for each body literal whose predicate gained
        // atoms last round, match each delta atom against that literal once, then join
        // only the remaining literals. Literals *left* of the delta literal are
        // restricted to old atoms so every derivation is produced exactly once.
        let mut order: Vec<usize> = Vec::with_capacity(rule.pos.len());
        let mut matched: Vec<AtomId> = vec![0; rule.pos.len()];
        let mut on_match = |this: &mut Grounder<'a>,
                            ground: &mut GroundProgram,
                            subst: &[Option<Val>],
                            _matched: &[AtomId]| {
            for cmp in &rule.cmps {
                if let Some(false) = eval_cmp(cmp, subst) {
                    return Ok(());
                }
            }
            this.derive_head(rule, ground, subst, new_atoms)
        };
        for i in 0..rule.pos.len() {
            let Some(datoms) = delta_by_pred.get(&rule.pos[i].pred) else { continue };
            if datoms.is_empty() {
                continue;
            }
            if rule.pos_binop[i] {
                // The delta literal has an arithmetic argument, so it cannot be bound
                // before the variables inside the term: run a full planned join with
                // this literal restricted to delta atoms instead.
                order.clear();
                order.extend(0..rule.pos.len());
                self.join_ordered(
                    rule,
                    &mut order,
                    0,
                    i,
                    i,
                    Some(delta_set),
                    ground,
                    &mut subst,
                    &mut matched,
                    &mut on_match,
                )?;
                continue;
            }
            for &cand in datoms {
                let mut touched = [0usize; MAX_ARITY];
                let Some(nb) =
                    match_into_subst(&ground.atoms, cand, &rule.pos[i], &mut subst, &mut touched)
                else {
                    continue;
                };
                if !rule.cmps.iter().any(|c| eval_cmp(c, &subst) == Some(false)) {
                    matched[i] = cand;
                    order.clear();
                    order.extend((0..rule.pos.len()).filter(|&j| j != i));
                    self.join_ordered(
                        rule,
                        &mut order,
                        0,
                        i,
                        usize::MAX,
                        Some(delta_set),
                        ground,
                        &mut subst,
                        &mut matched,
                        &mut on_match,
                    )?;
                }
                for &slot in &touched[..nb] {
                    subst[slot] = None;
                }
            }
        }
        Ok(())
    }

    fn derive_head(
        &mut self,
        rule: &CRule,
        ground: &mut GroundProgram,
        subst: &[Option<Val>],
        new_atoms: &mut Vec<AtomId>,
    ) -> Result<(), GroundError> {
        match &rule.head {
            CHead::None => {}
            CHead::Atom(atom) => {
                let mut scratch = std::mem::take(&mut self.scratch_atom);
                let ok = instantiate_into(atom, subst, &mut scratch);
                if !ok {
                    self.scratch_atom = scratch;
                    return Err(GroundError {
                        message: "unsafe rule: head variables not bound by positive body".into(),
                    });
                }
                let (id, new) = ground.atoms.intern_ref(&scratch);
                self.scratch_atom = scratch;
                if new {
                    new_atoms.push(id);
                }
            }
            CHead::Choice { elements, .. } => {
                let mut scratch = std::mem::take(&mut self.scratch_atom);
                for elem in elements {
                    let mut local = subst.to_vec();
                    self.expand_conditions(
                        &elem.conditions,
                        0,
                        ground,
                        &mut local,
                        false,
                        &mut |ground, local| {
                            if instantiate_into(&elem.atom, local, &mut scratch) {
                                let (id, new) = ground.atoms.intern_ref(&scratch);
                                if new {
                                    new_atoms.push(id);
                                }
                            }
                            Ok(())
                        },
                    )?;
                }
                self.scratch_atom = scratch;
            }
        }
        Ok(())
    }

    // ---- phase 2 ----------------------------------------------------------------------

    fn phase2_rule(
        &mut self,
        rule: &CRule,
        ground: &mut GroundProgram,
        seen: &mut RuleDedup,
    ) -> Result<(), GroundError> {
        // Instances are processed directly in the join callback: the only mutation the
        // processing performs on the atom table is re-interning atoms that phase 1
        // already discovered (the fixpoint is complete), so the join's snapshot
        // iteration stays valid and no substitution needs to be copied.
        let mut subst = vec![None; rule.nvars];
        self.join_all(rule, ground, &mut subst, &mut |this, ground, inst, matched| {
            this.phase2_instance(rule, ground, inst, matched, seen)
        })?;
        Ok(())
    }

    /// Simplify and emit one complete phase-2 substitution of a rule. A `Ok(())` return
    /// with no emission means the instance was discarded (a body literal contradicted
    /// by the input facts).
    fn phase2_instance(
        &mut self,
        rule: &CRule,
        ground: &mut GroundProgram,
        inst: &[Option<Val>],
        matched: &[AtomId],
        seen: &mut RuleDedup,
    ) -> Result<(), GroundError> {
        {
            // Comparisons.
            for cmp in &rule.cmps {
                match eval_cmp(cmp, inst) {
                    Some(true) => {}
                    Some(false) => return Ok(()),
                    None => {
                        return Err(GroundError {
                            message: "comparison with unbound variables (unsafe rule)".into(),
                        })
                    }
                }
            }
            // Positive body: drop certain atoms, keep the rest. The join already
            // matched each literal against a concrete atom — use its id directly.
            let mut pos = Vec::new();
            for &id in matched {
                if !ground.atoms.is_certain(id) {
                    pos.push(id);
                }
            }
            // Negative body.
            let mut neg = Vec::new();
            for a in &rule.neg {
                if !self.add_negative_literal(a, inst, ground, &mut neg)? {
                    return Ok(());
                }
            }
            // Conditional literals expand to conjunctions over certain condition facts.
            for cond in &rule.conds {
                let mut local = inst.to_vec();
                let mut ok = true;
                let mut extra_pos = Vec::new();
                let mut extra_neg = Vec::new();
                let mut scratch = std::mem::take(&mut self.scratch_atom);
                self.expand_conditions(
                    &cond.conditions,
                    0,
                    ground,
                    &mut local,
                    true,
                    &mut |ground, local| {
                        if !ok {
                            return Ok(());
                        }
                        match instantiate_into(&cond.atom, local, &mut scratch) {
                            true => {
                                match ground.atoms.get(&scratch) {
                                    Some(id) => {
                                        if cond.negated {
                                            if ground.atoms.is_certain(id) {
                                                ok = false;
                                            } else {
                                                extra_neg.push(id);
                                            }
                                        } else if !ground.atoms.is_certain(id) {
                                            extra_pos.push(id);
                                        }
                                    }
                                    None => {
                                        // Atom can never be true.
                                        if !cond.negated {
                                            ok = false;
                                        }
                                    }
                                }
                            }
                            false => ok = false,
                        }
                        Ok(())
                    },
                )?;
                self.scratch_atom = scratch;
                if !ok {
                    return Ok(());
                }
                pos.extend(extra_pos);
                neg.extend(extra_neg);
            }

            pos.sort_unstable();
            pos.dedup();
            neg.sort_unstable();
            neg.dedup();

            match &rule.head {
                CHead::None => {
                    if pos.is_empty() && neg.is_empty() {
                        ground.trivially_unsat = true;
                    }
                    let gr = GroundRule { head: None, pos, neg };
                    seen.push_if_new(gr, &mut ground.rules);
                }
                CHead::Atom(atom) => {
                    let mut scratch = std::mem::take(&mut self.scratch_atom);
                    let ok = instantiate_into(atom, inst, &mut scratch);
                    if !ok {
                        self.scratch_atom = scratch;
                        return Err(GroundError {
                            message: "unsafe rule: head variables not bound".into(),
                        });
                    }
                    let (id, _) = ground.atoms.intern_ref(&scratch);
                    self.scratch_atom = scratch;
                    if ground.atoms.is_certain(id) {
                        return Ok(());
                    }
                    let gr = GroundRule { head: Some(id), pos, neg };
                    seen.push_if_new(gr, &mut ground.rules);
                }
                CHead::Choice { lower, upper, elements } => {
                    let lower = match lower {
                        Some(t) => Some(eval_int(t, inst).ok_or_else(|| GroundError {
                            message: "choice lower bound must be an integer".into(),
                        })?),
                        None => None,
                    };
                    let upper = match upper {
                        Some(t) => Some(eval_int(t, inst).ok_or_else(|| GroundError {
                            message: "choice upper bound must be an integer".into(),
                        })?),
                        None => None,
                    };
                    let mut heads = Vec::new();
                    let mut scratch = std::mem::take(&mut self.scratch_atom);
                    for elem in elements {
                        let mut local = inst.to_vec();
                        self.expand_conditions(
                            &elem.conditions,
                            0,
                            ground,
                            &mut local,
                            true,
                            &mut |ground, local| {
                                if instantiate_into(&elem.atom, local, &mut scratch) {
                                    let (id, _) = ground.atoms.intern_ref(&scratch);
                                    heads.push(id);
                                }
                                Ok(())
                            },
                        )?;
                    }
                    self.scratch_atom = scratch;
                    heads.sort_unstable();
                    heads.dedup();
                    ground.choices.push(GroundChoice { heads, lower, upper, pos, neg });
                }
            }
        }
        Ok(())
    }

    /// Returns false when the rule instance must be discarded (negative literal on a fact).
    fn add_negative_literal(
        &mut self,
        atom: &CAtom,
        inst: &[Option<Val>],
        ground: &GroundProgram,
        neg: &mut Vec<AtomId>,
    ) -> Result<bool, GroundError> {
        // Wildcards in negative literals mean "no instance exists": `not hash(P, _)`.
        if atom.args.iter().any(|a| matches!(a, CTerm::Wildcard)) {
            // Enumerate the possible atoms of the predicate matching the bound
            // arguments, narrowed through the sharpest index the bound arguments
            // admit. `ground` is borrowed immutably here, so the candidate slice can
            // be iterated in place — no copy.
            let (key, _) = best_key(atom, inst, &ground.atoms);
            for &cand in key_slice(&ground.atoms, &key) {
                if atom_matches_bound(atom, inst, ground.atoms.atom(cand)) {
                    if ground.atoms.is_certain(cand) {
                        return Ok(false);
                    }
                    neg.push(cand);
                }
            }
            return Ok(true);
        }
        let mut scratch = std::mem::take(&mut self.scratch_atom);
        let ok = instantiate_into(atom, inst, &mut scratch);
        let found = if ok { ground.atoms.get(&scratch) } else { None };
        self.scratch_atom = scratch;
        if !ok {
            return Err(GroundError {
                message: "unsafe rule: negative literal with unbound variables".into(),
            });
        }
        match found {
            None => Ok(true), // atom impossible: `not a` trivially true
            Some(id) if ground.atoms.is_certain(id) => Ok(false),
            Some(id) => {
                neg.push(id);
                Ok(true)
            }
        }
    }

    // ---- joins -------------------------------------------------------------------------

    /// Join *all* positive body literals of a rule in planner order (no delta
    /// restriction), calling `on_match` for every complete substitution.
    fn join_all(
        &mut self,
        rule: &CRule,
        ground: &mut GroundProgram,
        subst: &mut Vec<Option<Val>>,
        on_match: &mut OnJoinMatch<'_, 'a>,
    ) -> Result<(), GroundError> {
        let mut order: Vec<usize> = (0..rule.pos.len()).collect();
        let mut matched: Vec<AtomId> = vec![0; rule.pos.len()];
        self.join_ordered(
            rule,
            &mut order,
            0,
            usize::MAX,
            usize::MAX,
            None,
            ground,
            subst,
            &mut matched,
            on_match,
        )
    }

    /// Join the positive body literals listed in `order[done..]`, calling `on_match`
    /// for every complete substitution.
    ///
    /// At each depth the *most selective* remaining literal (fewest candidates under
    /// the current bindings, after index selection) is joined next; `order[done..]` is
    /// permuted in place to record the choice. Candidate lists are iterated by
    /// position with the slice re-fetched per step, because `on_match` may intern new
    /// atoms (append-only indexes make entries below the snapshot length stable).
    ///
    /// Semi-naive restriction: when `delta` is given, literals with an original index
    /// `< delta_pos` (the literal already matched against a delta atom by the caller)
    /// only match atoms *outside* the delta, so each derivation is found exactly once
    /// per round. When `delta_exact` names a literal, that literal only matches atoms
    /// *inside* the delta (the fallback driver for delta literals with arithmetic
    /// arguments, which cannot be pre-bound by the caller).
    #[allow(clippy::too_many_arguments)]
    fn join_ordered(
        &mut self,
        rule: &CRule,
        order: &mut Vec<usize>,
        done: usize,
        delta_pos: usize,
        delta_exact: usize,
        delta: Option<&AtomBitSet>,
        ground: &mut GroundProgram,
        subst: &mut Vec<Option<Val>>,
        matched: &mut Vec<AtomId>,
        on_match: &mut OnJoinMatch<'_, 'a>,
    ) -> Result<(), GroundError> {
        if done == order.len() {
            return on_match(self, ground, subst, matched);
        }
        // Pick the most selective *ready* remaining literal under the current
        // substitution (a literal with an unevaluable arithmetic argument must wait
        // for its binders). If none is ready, fall back to the textually first
        // remaining literal — the pre-planner join order.
        let mut best_k = usize::MAX;
        let mut best = (CandKey::Pred(rule.pos[order[done]].pred), usize::MAX);
        #[allow(clippy::needless_range_loop)] // `order` is also mutated below via swap
        for k in done..order.len() {
            if best.1 == 0 {
                break;
            }
            if rule.pos_binop[order[k]] && !literal_ready(&rule.pos[order[k]], subst) {
                continue;
            }
            let key = best_key(&rule.pos[order[k]], subst, &ground.atoms);
            if key.1 < best.1 {
                best_k = k;
                best = key;
            }
        }
        if best_k == usize::MAX {
            let first = (done..order.len()).min_by_key(|&k| order[k]).expect("non-empty");
            best_k = first;
            best = best_key(&rule.pos[order[first]], subst, &ground.atoms);
        }
        order.swap(done, best_k);
        let li = order[done];
        let (key, snapshot_len) = best;
        let mut touched = [0usize; MAX_ARITY];
        for ci in 0..snapshot_len {
            let cand = key_slice(&ground.atoms, &key)[ci];
            if let Some(d) = delta {
                if li == delta_exact {
                    if !d.contains(cand) {
                        continue;
                    }
                } else if li < delta_pos && d.contains(cand) {
                    continue;
                }
            }
            if let Some(nb) =
                match_into_subst(&ground.atoms, cand, &rule.pos[li], subst, &mut touched)
            {
                matched[li] = cand;
                // Fully bound comparisons prune the join as early as possible.
                if !rule.cmps.iter().any(|c| eval_cmp(c, subst) == Some(false)) {
                    self.join_ordered(
                        rule,
                        order,
                        done + 1,
                        delta_pos,
                        delta_exact,
                        delta,
                        ground,
                        subst,
                        matched,
                        on_match,
                    )?;
                }
                for &slot in &touched[..nb] {
                    subst[slot] = None;
                }
            }
        }
        Ok(())
    }

    /// Expand a list of condition atoms (which must match input facts when
    /// `certain_only`, or any possible atom during phase 1) over all groundings,
    /// calling `on_match` for each complete assignment of the condition variables.
    fn expand_conditions(
        &mut self,
        conditions: &[CAtom],
        index: usize,
        ground: &mut GroundProgram,
        subst: &mut Vec<Option<Val>>,
        certain_only: bool,
        on_match: &mut OnConditionMatch<'_>,
    ) -> Result<(), GroundError> {
        if index == conditions.len() {
            return on_match(ground, subst);
        }
        let atom = &conditions[index];
        let (key, snapshot_len) = best_key(atom, subst, &ground.atoms);
        let mut touched = [0usize; MAX_ARITY];
        for ci in 0..snapshot_len {
            let cand = key_slice(&ground.atoms, &key)[ci];
            if certain_only && !ground.atoms.is_certain(cand) {
                continue;
            }
            if let Some(nb) = match_into_subst(&ground.atoms, cand, atom, subst, &mut touched) {
                self.expand_conditions(
                    conditions,
                    index + 1,
                    ground,
                    subst,
                    certain_only,
                    on_match,
                )?;
                for &slot in &touched[..nb] {
                    subst[slot] = None;
                }
            }
        }
        Ok(())
    }

    // ---- minimize -----------------------------------------------------------------------

    fn ground_minimize(
        &mut self,
        m: &CMinimize,
        ground: &GroundProgram,
        tuples: &mut MinimizeTuples,
    ) -> Result<(), GroundError> {
        let mut subst = vec![None; m.nvars];
        self.join_minimize(m, 0, ground, &mut subst, tuples)
    }

    /// Join a minimize statement's positive conditions over the possible atoms,
    /// binding in place like every other join path (`ground` is immutable here, so
    /// candidate slices are iterated directly).
    fn join_minimize(
        &mut self,
        m: &CMinimize,
        index: usize,
        ground: &GroundProgram,
        subst: &mut Vec<Option<Val>>,
        tuples: &mut MinimizeTuples,
    ) -> Result<(), GroundError> {
        if index < m.pos.len() {
            let atom = &m.pos[index];
            let (key, _) = best_key(atom, subst, &ground.atoms);
            let mut touched = [0usize; MAX_ARITY];
            for &cand in key_slice(&ground.atoms, &key) {
                if let Some(nb) = match_into_subst(&ground.atoms, cand, atom, subst, &mut touched) {
                    self.join_minimize(m, index + 1, ground, subst, tuples)?;
                    for &slot in &touched[..nb] {
                        subst[slot] = None;
                    }
                }
            }
            return Ok(());
        }
        {
            let subst = &*subst;
            // Complete substitution: evaluate comparisons, weight, priority, terms.
            let mut ok = true;
            for cmp in &m.cmps {
                if eval_cmp(cmp, subst) != Some(true) {
                    ok = false;
                    break;
                }
            }
            if !ok {
                return Ok(());
            }
            let weight = eval_int(&m.weight, subst).ok_or_else(|| GroundError {
                message: "minimize weight must evaluate to an integer".into(),
            })?;
            let priority = eval_int(&m.priority, subst).ok_or_else(|| GroundError {
                message: "minimize priority must evaluate to an integer".into(),
            })?;
            let terms: Vec<Val> =
                m.terms.iter().map(|t| eval_term(t, subst)).collect::<Option<_>>().ok_or_else(
                    || GroundError { message: "minimize tuple terms must be bound".into() },
                )?;
            // Collect condition atoms (dropping certain ones).
            let mut pos = Vec::new();
            let mut skip = false;
            let mut scratch = std::mem::take(&mut self.scratch_atom);
            for a in &m.pos {
                assert!(instantiate_into(a, subst, &mut scratch), "bound by join");
                let id = ground.atoms.get(&scratch).expect("possible");
                if !ground.atoms.is_certain(id) {
                    pos.push(id);
                }
            }
            let mut neg = Vec::new();
            for a in &m.neg {
                if !instantiate_into(a, subst, &mut scratch) {
                    self.scratch_atom = scratch;
                    return Err(GroundError {
                        message: "negative minimize condition with unbound variables".into(),
                    });
                }
                match ground.atoms.get(&scratch) {
                    None => {}
                    Some(id) if ground.atoms.is_certain(id) => {
                        skip = true;
                    }
                    Some(id) => neg.push(id),
                }
            }
            self.scratch_atom = scratch;
            if skip {
                return Ok(());
            }
            tuples.entry((priority, weight, terms)).or_default().push((pos, neg));
        }
        Ok(())
    }

    fn emit_minimize(&mut self, tuples: MinimizeTuples, ground: &mut GroundProgram) {
        let aux_pred = self.symbols.intern("__opt_tuple");
        let mut counter: i64 = 0;
        let mut sorted: Vec<_> = tuples.into_iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        for ((priority, weight, _terms), bodies) in sorted {
            // A tuple with any empty condition always contributes.
            if bodies.iter().any(|(p, n)| p.is_empty() && n.is_empty()) {
                ground.minimize.push(GroundMinimize { priority, weight, condition: None });
                continue;
            }
            // A tuple with a single, single-atom positive condition uses that atom directly.
            if bodies.len() == 1 && bodies[0].0.len() == 1 && bodies[0].1.is_empty() {
                ground.minimize.push(GroundMinimize {
                    priority,
                    weight,
                    condition: Some(bodies[0].0[0]),
                });
                continue;
            }
            // General case: an auxiliary atom defined by one rule per condition instance.
            counter += 1;
            let (aux, _) = ground.atoms.intern(GroundAtom::new(aux_pred, vec![Val::Int(counter)]));
            for (pos, neg) in bodies {
                ground.rules.push(GroundRule { head: Some(aux), pos, neg });
            }
            ground.minimize.push(GroundMinimize { priority, weight, condition: Some(aux) });
        }
    }
}

// ---- term / atom evaluation helpers ---------------------------------------------------

fn eval_term(term: &CTerm, subst: &[Option<Val>]) -> Option<Val> {
    match term {
        CTerm::Val(v) => Some(*v),
        CTerm::Var(i) => subst[*i],
        CTerm::Wildcard => None,
        CTerm::BinOp(op, a, b) => {
            let a = eval_term(a, subst)?;
            let b = eval_term(b, subst)?;
            match (a, b) {
                (Val::Int(x), Val::Int(y)) => Some(Val::Int(match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                })),
                _ => None,
            }
        }
    }
}

fn eval_int(term: &CTerm, subst: &[Option<Val>]) -> Option<i64> {
    match eval_term(term, subst) {
        Some(Val::Int(i)) => Some(i),
        _ => None,
    }
}

fn eval_cmp(cmp: &CCmp, subst: &[Option<Val>]) -> Option<bool> {
    let lhs = eval_term(&cmp.lhs, subst)?;
    let rhs = eval_term(&cmp.rhs, subst)?;
    Some(match cmp.op {
        CmpOp::Eq => lhs == rhs,
        CmpOp::Ne => lhs != rhs,
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => match (lhs, rhs) {
            (Val::Int(a), Val::Int(b)) => match cmp.op {
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
                _ => unreachable!(),
            },
            // Ordered comparisons are only defined for integers in this dialect.
            _ => false,
        },
    })
}

/// Instantiate a compiled atom into a reusable buffer (no allocation when the
/// buffer's capacity suffices). Returns `false` when a term is unbound.
fn instantiate_into(atom: &CAtom, subst: &[Option<Val>], out: &mut GroundAtom) -> bool {
    out.pred = atom.pred;
    out.args.clear();
    for t in &atom.args {
        match eval_term(t, subst) {
            Some(v) => out.args.push(v),
            None => return false,
        }
    }
    true
}

fn instantiate_atom(atom: &CAtom, subst: &[Option<Val>]) -> Option<GroundAtom> {
    let mut args = Vec::with_capacity(atom.args.len());
    for t in &atom.args {
        args.push(eval_term(t, subst)?);
    }
    Some(GroundAtom::new(atom.pred, args))
}

/// Does a possible ground atom match a compiled atom given the current (partial)
/// substitution, considering only already-bound variables and constants? Wildcards and
/// unbound variables match anything.
fn atom_matches_bound(atom: &CAtom, subst: &[Option<Val>], ga: &GroundAtom) -> bool {
    if atom.pred != ga.pred || atom.args.len() != ga.args.len() {
        return false;
    }
    for (t, &v) in atom.args.iter().zip(ga.args.iter()) {
        match t {
            CTerm::Wildcard => {}
            CTerm::Var(i) => {
                if let Some(bound) = subst[*i] {
                    if bound != v {
                        return false;
                    }
                }
            }
            other => match eval_term(other, subst) {
                Some(val) if val == v => {}
                Some(_) => return false,
                None => {}
            },
        }
    }
    true
}

/// Match the table atom `cand` against a compiled atom, binding unbound variables
/// *directly* in `subst`. The slots newly bound are recorded in `touched` (the caller
/// resets them on backtrack); on a failed match every partial binding is undone before
/// returning `None`. Returns the number of touched slots on a match.
///
/// Binding in place (instead of a side list) keeps the join allocation-free, makes
/// repeated variables inside one atom unify naturally, and lets arithmetic terms over
/// variables bound by *earlier* arguments of the same atom evaluate.
fn match_into_subst(
    atoms: &AtomTable,
    cand: AtomId,
    atom: &CAtom,
    subst: &mut [Option<Val>],
    touched: &mut [usize; MAX_ARITY],
) -> Option<usize> {
    let ga = atoms.atom(cand);
    if atom.pred != ga.pred || atom.args.len() != ga.args.len() {
        return None;
    }
    let mut n = 0;
    for (t, &v) in atom.args.iter().zip(ga.args.iter()) {
        let ok = match t {
            CTerm::Wildcard => true,
            CTerm::Var(i) => match subst[*i] {
                Some(bound) => bound == v,
                None => {
                    subst[*i] = Some(v);
                    touched[n] = *i;
                    n += 1;
                    true
                }
            },
            other => matches!(eval_term(other, subst), Some(val) if val == v),
        };
        if !ok {
            for &slot in &touched[..n] {
                subst[slot] = None;
            }
            return None;
        }
    }
    Some(n)
}

/// The index list chosen for one body literal under the current substitution. The key
/// is stable across interning (indexes are append-only), so the join can re-fetch the
/// backing slice cheaply while the atom table grows.
#[derive(Debug, Clone, Copy)]
enum CandKey {
    /// All atoms of the predicate (no argument bound).
    Pred(SymbolId),
    /// Single bound argument: `(pred, position, value)`.
    Arg(SymbolId, u8, Val),
    /// Two bound arguments: `(pred, pos₁, val₁, pos₂, val₂)` with `pos₁ < pos₂`.
    Args2(SymbolId, u8, Val, u8, Val),
}

/// The candidate slice a [`CandKey`] denotes, re-fetched from the current table state.
fn key_slice<'t>(atoms: &'t AtomTable, key: &CandKey) -> &'t [AtomId] {
    match *key {
        CandKey::Pred(p) => atoms.with_pred(p),
        CandKey::Arg(p, pos, v) => atoms.with_pred_arg(p, pos, v),
        CandKey::Args2(p, p1, v1, p2, v2) => atoms.with_pred_args2(p, p1, v1, p2, v2),
    }
}

/// Does any argument of this atom contain an arithmetic term? Such literals can only
/// be joined once the variables inside the term are bound (matching evaluates the
/// term), so the planner must not order them before their binders.
fn has_binop_arg(atom: &CAtom) -> bool {
    atom.args.iter().any(|t| matches!(t, CTerm::BinOp(..)))
}

/// Is this literal joinable *now*: every arithmetic argument evaluates under the
/// current substitution? (Plain variables bind during matching and constants always
/// evaluate, so only `BinOp` arguments gate readiness.)
fn literal_ready(atom: &CAtom, subst: &[Option<Val>]) -> bool {
    atom.args.iter().all(|t| match t {
        CTerm::BinOp(..) => eval_term(t, subst).is_some(),
        _ => true,
    })
}

/// Choose the most selective available index for `atom` under `subst`: evaluate every
/// argument, compare the single-argument candidate lists of all bound positions, and —
/// when at least two of the first [`AtomTable::MAX_PAIR_INDEXED_ARGS`] positions are
/// bound — the pair index over the two individually most selective ones. Returns the
/// winning key together with its candidate count (the join planner's selectivity
/// measure).
fn best_key(atom: &CAtom, subst: &[Option<Val>], atoms: &AtomTable) -> (CandKey, usize) {
    let mut best = CandKey::Pred(atom.pred);
    let mut best_len = atoms.with_pred(atom.pred).len();
    if best_len == 0 {
        return (best, 0);
    }
    // The two individually most selective bound positions eligible for the pair index.
    let mut pair: [Option<(u8, Val, usize)>; 2] = [None, None];
    for (pos, t) in atom.args.iter().enumerate().take(u8::MAX as usize) {
        let val = match t {
            CTerm::Val(v) => Some(*v),
            CTerm::Var(i) => subst[*i],
            CTerm::Wildcard => None,
            CTerm::BinOp(..) => eval_term(t, subst),
        };
        let Some(v) = val else { continue };
        let len = atoms.with_pred_arg(atom.pred, pos as u8, v).len();
        if len < best_len {
            best = CandKey::Arg(atom.pred, pos as u8, v);
            best_len = len;
        }
        if pos < AtomTable::MAX_PAIR_INDEXED_ARGS {
            let entry = Some((pos as u8, v, len));
            if pair[0].is_none_or(|(_, _, l)| len < l) {
                pair[1] = pair[0];
                pair[0] = entry;
            } else if pair[1].is_none_or(|(_, _, l)| len < l) {
                pair[1] = entry;
            }
        }
    }
    if atoms.pair_indexing() {
        if let (Some((p1, v1, _)), Some((p2, v2, _))) = (pair[0], pair[1]) {
            let ((p1, v1), (p2, v2)) =
                if p1 < p2 { ((p1, v1), (p2, v2)) } else { ((p2, v2), (p1, v1)) };
            let len = atoms.with_pred_args2(atom.pred, p1, v1, p2, v2).len();
            if len < best_len {
                best = CandKey::Args2(atom.pred, p1, v1, p2, v2);
                best_len = len;
            }
        }
    }
    (best, best_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn ground_text(text: &str) -> (GroundProgram, SymbolTable) {
        let program = parse_program(text).unwrap();
        let mut symbols = SymbolTable::new();
        let ground = Grounder::new(&mut symbols).ground(&program, &[]).unwrap();
        (ground, symbols)
    }

    fn atom_names(ground: &GroundProgram, symbols: &SymbolTable) -> Vec<String> {
        ground.atoms.iter().map(|(_, a)| a.display(symbols).to_string()).collect()
    }

    #[test]
    fn fig3_grounding_derives_transitive_nodes() {
        // The example of Fig. 3 in the paper.
        let (ground, symbols) = ground_text(
            r#"
            depends_on(a, b).
            depends_on(a, c).
            depends_on(b, d).
            depends_on(c, d).
            node(Dep) :- node(Pkg), depends_on(Pkg, Dep).
            1 { node(a); node(b) }.
            "#,
        );
        let names = atom_names(&ground, &symbols);
        for expected in ["node(a)", "node(b)", "node(c)", "node(d)"] {
            assert!(names.contains(&expected.to_string()), "missing {expected}: {names:?}");
        }
        // The ground rules are simplified: depends_on facts do not appear in rule bodies.
        for r in &ground.rules {
            assert!(r.pos.len() <= 1, "facts should have been simplified away: {r:?}");
        }
        assert_eq!(ground.choices.len(), 1);
        assert_eq!(ground.choices[0].lower, Some(1));
    }

    #[test]
    fn transitive_closure_and_constraints() {
        let (ground, symbols) = ground_text(
            r#"
            depends_on(a, b).
            depends_on(b, c).
            path(A, B) :- depends_on(A, B).
            path(A, C) :- path(A, B), depends_on(B, C).
            :- path(A, B), path(B, A).
            "#,
        );
        let names = atom_names(&ground, &symbols);
        assert!(names.contains(&"path(a,c)".to_string()));
        // Constraints were grounded (though none can fire since no cycle is possible).
        assert!(
            ground.rules.iter().filter(|r| r.head.is_none()).count() > 0 || !ground.trivially_unsat
        );
    }

    #[test]
    fn negative_literal_on_fact_discards_instance() {
        let (ground, symbols) = ground_text(
            r#"
            p(1). p(2).
            q(2).
            r(X) :- p(X), not q(X).
            "#,
        );
        let names = atom_names(&ground, &symbols);
        assert!(names.contains(&"r(1)".to_string()));
        // r(2) is still a *possible* atom (phase 1 over-approximates), but no rule
        // instance can derive it: the instance was discarded because q(2) is a fact.
        let r2 = ground
            .atoms
            .iter()
            .find(|(_, a)| a.display(&symbols).to_string() == "r(2)")
            .map(|(id, _)| id);
        if let Some(r2) = r2 {
            assert!(!ground.rules.iter().any(|r| r.head == Some(r2)), "no rule may derive r(2)");
        }
    }

    #[test]
    fn choice_rule_bounds_and_conditions() {
        let (ground, symbols) = ground_text(
            r#"
            node(zlib).
            possible_version(zlib, "1.2.11").
            possible_version(zlib, "1.2.8").
            1 { version(P, V) : possible_version(P, V) } 1 :- node(P).
            "#,
        );
        assert_eq!(ground.choices.len(), 1);
        let c = &ground.choices[0];
        assert_eq!(c.heads.len(), 2);
        assert_eq!((c.lower, c.upper), (Some(1), Some(1)));
        let names = atom_names(&ground, &symbols);
        assert!(names.contains(&"version(zlib,\"1.2.11\")".to_string()));
    }

    #[test]
    fn conditional_literal_expands_over_facts() {
        let (ground, _symbols) = ground_text(
            r#"
            condition(1).
            condition_requirement(1, n, a).
            condition_requirement(1, n, b).
            attr(n, a).
            attr(n, b).
            condition_holds(ID) :- condition(ID); attr(N, A) : condition_requirement(ID, N, A).
            "#,
        );
        // attr facts are certain, so the body simplifies completely and condition_holds(1)
        // is derivable by a rule with an empty body.
        let rule = ground.rules.iter().find(|r| r.head.is_some()).unwrap();
        assert!(rule.pos.is_empty() && rule.neg.is_empty());
    }

    #[test]
    fn conditional_literal_with_derived_attrs_stays_in_body() {
        let (ground, symbols) = ground_text(
            r#"
            condition(1).
            condition_requirement(1, n, a).
            fact(a).
            attr(N, A) :- chosen(N, A).
            { chosen(n, a) }.
            condition_holds(ID) :- condition(ID); attr(N, A) : condition_requirement(ID, N, A).
            "#,
        );
        // attr(n,a) is possible but not certain, so it must remain in the body.
        let holds_id = ground
            .atoms
            .iter()
            .find(|(_, a)| a.display(&symbols).to_string() == "condition_holds(1)")
            .map(|(id, _)| id)
            .unwrap();
        let rule = ground.rules.iter().find(|r| r.head == Some(holds_id)).unwrap();
        assert_eq!(rule.pos.len(), 1);
    }

    #[test]
    fn minimize_statements_are_grounded() {
        let (ground, _symbols) = ground_text(
            r#"
            node(a). node(b).
            possible_version(a, v1, 0).
            possible_version(a, v2, 1).
            possible_version(b, v1, 0).
            1 { version(P, V) : possible_version(P, V, W) } 1 :- node(P).
            version_weight(P, V, W) :- version(P, V), possible_version(P, V, W).
            #minimize{ W@3,P,V : version_weight(P, V, W) }.
            "#,
        );
        assert_eq!(ground.minimize.len(), 3);
        assert!(ground.minimize.iter().all(|m| m.priority == 3));
        assert!(ground.minimize.iter().all(|m| m.condition.is_some()));
    }

    #[test]
    fn wildcard_negation_covers_all_instances() {
        let (ground, symbols) = ground_text(
            r#"
            node(a). node(b).
            installed_hash(a, h1).
            installed_hash(a, h2).
            { hash(P, H) : installed_hash(P, H) } 1 :- node(P).
            build(P) :- not hash(P, _), node(P).
            "#,
        );
        // build(a) must have both hash(a,h1) and hash(a,h2) in its negative body.
        let build_a = ground
            .atoms
            .iter()
            .find(|(_, a)| a.display(&symbols).to_string() == "build(a)")
            .map(|(id, _)| id)
            .unwrap();
        let rule = ground.rules.iter().find(|r| r.head == Some(build_a)).unwrap();
        assert_eq!(rule.neg.len(), 2);
        // build(b) has no installed hashes at all: derived unconditionally.
        let build_b = ground
            .atoms
            .iter()
            .find(|(_, a)| a.display(&symbols).to_string() == "build(b)")
            .map(|(id, _)| id)
            .unwrap();
        let rule_b = ground.rules.iter().find(|r| r.head == Some(build_b)).unwrap();
        assert!(rule_b.neg.is_empty() && rule_b.pos.is_empty());
    }

    #[test]
    fn const_substitution() {
        let (ground, _symbols) = ground_text(
            r#"
            #const prio = 7.
            item(a).
            cost(X, prio) :- item(X).
            #minimize{ W@1,X : cost(X, W) }.
            "#,
        );
        assert_eq!(ground.minimize.len(), 1);
        // Weight is the substituted constant.
        assert_eq!(ground.minimize[0].weight, 7);
    }

    #[test]
    fn external_facts_participate() {
        let program = parse_program("node(D) :- node(P), depends_on(P, D).").unwrap();
        let mut symbols = SymbolTable::new();
        let node = symbols.intern("node");
        let dep = symbols.intern("depends_on");
        let a = Val::Sym(symbols.intern("hdf5"));
        let b = Val::Sym(symbols.intern("zlib"));
        let facts = vec![GroundAtom::new(node, vec![a]), GroundAtom::new(dep, vec![a, b])];
        let ground = Grounder::new(&mut symbols).ground(&program, &facts).unwrap();
        let names: Vec<String> =
            ground.atoms.iter().map(|(_, at)| at.display(&symbols).to_string()).collect();
        assert!(names.contains(&"node(zlib)".to_string()));
    }

    #[test]
    fn unsafe_rule_is_rejected() {
        let program = parse_program("p(X) :- not q(X).").unwrap();
        let mut symbols = SymbolTable::new();
        let q = symbols.intern("q");
        let a = Val::Sym(symbols.intern("a"));
        let facts = vec![GroundAtom::new(q, vec![a])];
        // The head variable X is never bound by a positive literal; grounding either
        // produces no instance (body empty) or reports an error — it must not panic.
        if let Ok(g) = Grounder::new(&mut symbols).ground(&program, &facts) {
            // If grounding succeeds, the unsafe rule must not have produced any
            // p-instance out of thin air.
            for rule in &g.rules {
                if let Some(head) = rule.head {
                    let name = g.atoms.atom(head).display(&symbols).to_string();
                    assert!(!name.starts_with("p("), "unsafe rule derived {name}");
                }
            }
        }
    }

    #[test]
    fn restriction_simplifies_excluded_negative_literals() {
        // `a :- b, not c("x").` with c("x") possible-but-uncertain: the frozen
        // instance carries neg=[c("x")]. Excluding "x" must KEEP the instance with
        // the now-impossible negative literal simplified away — exactly what a
        // from-scratch grounding of the restricted facts would emit — so `a` stays
        // derivable.
        let program = parse_program(
            r#"
            a :- b, not c("x").
            { c("x") } :- d.
            b. d.
            "#,
        )
        .unwrap();
        let mut symbols = SymbolTable::new();
        let base = Grounder::new(&mut symbols)
            .ground_base(&program, &[], &crate::hasher::FxHashSet::default())
            .unwrap();
        let x = symbols.lookup("x").unwrap();
        let excluded: crate::hasher::FxHashSet<SymbolId> = [x].into_iter().collect();
        let ground = Grounder::new(&mut symbols).ground_delta(&base, &excluded, &[], &[]).unwrap();
        let a_id = ground
            .atoms
            .iter()
            .find(|(_, at)| at.display(&symbols).to_string() == "a")
            .map(|(id, _)| id)
            .expect("a must stay possible");
        let rule = ground
            .rules
            .iter()
            .find(|r| r.head == Some(a_id))
            .expect("the instance deriving `a` must survive the restriction");
        assert!(rule.neg.is_empty(), "impossible negative literal must be dropped: {rule:?}");
        // And without any exclusion the negative literal stays.
        let ground = Grounder::new(&mut symbols)
            .ground_delta(&base, &crate::hasher::FxHashSet::default(), &[], &[])
            .unwrap();
        let a_id = ground
            .atoms
            .iter()
            .find(|(_, at)| at.display(&symbols).to_string() == "a")
            .map(|(id, _)| id)
            .unwrap();
        let rule = ground.rules.iter().find(|r| r.head == Some(a_id)).unwrap();
        assert_eq!(rule.neg.len(), 1);
    }

    fn fact(symbols: &mut SymbolTable, pred: &str, args: &[&str]) -> GroundAtom {
        let p = symbols.intern(pred);
        let args = args.iter().map(|a| Val::Sym(symbols.intern(a))).collect();
        GroundAtom::new(p, args)
    }

    /// Everything a request can observe about a ground program, order-insensitively.
    fn render_ground(ground: &GroundProgram, symbols: &SymbolTable) -> String {
        let name = |id: AtomId| ground.atoms.atom(id).display(symbols).to_string();
        let sorted = |ids: &[AtomId]| {
            let mut v: Vec<String> = ids.iter().map(|&a| name(a)).collect();
            v.sort();
            v
        };
        let mut atoms: Vec<String> = ground
            .atoms
            .iter()
            .map(|(id, a)| {
                format!(
                    "{} certain={} external={}",
                    a.display(symbols),
                    ground.atoms.is_certain(id),
                    ground.atoms.is_external(id)
                )
            })
            .collect();
        atoms.sort();
        let mut rules: Vec<String> = ground
            .rules
            .iter()
            .map(|r| {
                format!("{:?}:-{:?},not {:?}", r.head.map(&name), sorted(&r.pos), sorted(&r.neg))
            })
            .collect();
        rules.sort();
        let mut choices: Vec<String> = ground
            .choices
            .iter()
            .map(|c| {
                format!(
                    "{:?}{{{:?}}}{:?}:-{:?},not {:?}",
                    c.lower,
                    sorted(&c.heads),
                    c.upper,
                    sorted(&c.pos),
                    sorted(&c.neg)
                )
            })
            .collect();
        choices.sort();
        let mut minimize: Vec<String> = ground
            .minimize
            .iter()
            .map(|m| format!("{}@{} if {:?}", m.weight, m.priority, m.condition.map(&name)))
            .collect();
        minimize.sort();
        format!(
            "unsat={}\natoms={atoms:#?}\nrules={rules:#?}\nchoices={choices:#?}\nmin={minimize:#?}",
            ground.trivially_unsat
        )
    }

    const PATCH_TEST_PROGRAM: &str = r#"
        r(X) :- p(X), not q(X).
        { s(X) } :- p(X).
        t(X) :- s(X).
        #minimize{ 1@1,X : t(X) }.
    "#;

    #[test]
    fn patch_base_additions_matches_fresh_freeze() {
        let program = parse_program(PATCH_TEST_PROGRAM).unwrap();
        let mut symbols = SymbolTable::new();
        let f_a = fact(&mut symbols, "p", &["a"]);
        let f_b = fact(&mut symbols, "p", &["b"]);
        let f_q = fact(&mut symbols, "q", &["a"]);
        let none = crate::hasher::FxHashSet::default();
        let mut patched = Grounder::new(&mut symbols)
            .ground_base(&program, std::slice::from_ref(&f_a), &none)
            .unwrap();
        let stats = Grounder::new(&mut symbols)
            .patch_base(&mut patched, vec![f_a.clone(), f_b.clone(), f_q.clone()], none.clone())
            .unwrap();
        assert!(!stats.rebuilt, "pure additions must not rebuild");
        assert_eq!((stats.added_facts, stats.removed_facts), (2, 0));
        let fresh =
            Grounder::new(&mut symbols).ground_base(&program, &[f_a, f_b, f_q], &none).unwrap();
        let ga = Grounder::new(&mut symbols).ground_delta(&patched, &none, &[], &[]).unwrap();
        let gb = Grounder::new(&mut symbols).ground_delta(&fresh, &none, &[], &[]).unwrap();
        assert_eq!(render_ground(&ga, &symbols), render_ground(&gb, &symbols));
    }

    #[test]
    fn patch_base_removal_rebuilds_and_roundtrips() {
        let program = parse_program(PATCH_TEST_PROGRAM).unwrap();
        let mut symbols = SymbolTable::new();
        let f_a = fact(&mut symbols, "p", &["a"]);
        let f_b = fact(&mut symbols, "p", &["b"]);
        let none = crate::hasher::FxHashSet::default();
        let mut patched = Grounder::new(&mut symbols)
            .ground_base(&program, &[f_a.clone(), f_b.clone()], &none)
            .unwrap();
        // Remove p(b): the rebuild path must reproduce a fresh freeze of [p(a)]
        // exactly, down to the atom ids.
        let stats = Grounder::new(&mut symbols)
            .patch_base(&mut patched, vec![f_a.clone()], none.clone())
            .unwrap();
        assert!(stats.rebuilt, "a removal must rebuild the closure");
        let fresh = Grounder::new(&mut symbols)
            .ground_base(&program, std::slice::from_ref(&f_a), &none)
            .unwrap();
        assert_eq!(patched.atoms.len(), fresh.atoms.len());
        for (id, atom) in fresh.atoms.iter() {
            assert_eq!(patched.atoms.atom(id), atom, "atom ids must coincide after a rebuild");
            assert_eq!(patched.atoms.is_certain(id), fresh.atoms.is_certain(id));
        }
        let ga = Grounder::new(&mut symbols).ground_delta(&patched, &none, &[], &[]).unwrap();
        let gb = Grounder::new(&mut symbols).ground_delta(&fresh, &none, &[], &[]).unwrap();
        assert_eq!(render_ground(&ga, &symbols), render_ground(&gb, &symbols));
        // Re-add p(b): the additions path must restore observational equality with a
        // fresh freeze of the original fact set (removal-then-re-add round trip).
        Grounder::new(&mut symbols)
            .patch_base(&mut patched, vec![f_a.clone(), f_b.clone()], none.clone())
            .unwrap();
        let fresh2 = Grounder::new(&mut symbols).ground_base(&program, &[f_a, f_b], &none).unwrap();
        let ga = Grounder::new(&mut symbols).ground_delta(&patched, &none, &[], &[]).unwrap();
        let gb = Grounder::new(&mut symbols).ground_delta(&fresh2, &none, &[], &[]).unwrap();
        assert_eq!(render_ground(&ga, &symbols), render_ground(&gb, &symbols));
    }

    #[test]
    fn patch_base_retracts_instances_whose_head_turns_certain() {
        // `h :- p.` freezes as the body-less instance `h.` (p is certain, h is
        // derivable-but-uncertain). A patch that adds `h` as an input fact makes the
        // head certain, and phase 2 drops certain-headed instances — the patched
        // base must agree with a fresh freeze even though no *body* literal of the
        // rule is touched (this is what `head_sigs` exists for).
        let program = parse_program("h :- p.").unwrap();
        let mut symbols = SymbolTable::new();
        let p = fact(&mut symbols, "p", &[]);
        let h = fact(&mut symbols, "h", &[]);
        let none = crate::hasher::FxHashSet::default();
        let mut patched = Grounder::new(&mut symbols)
            .ground_base(&program, std::slice::from_ref(&p), &none)
            .unwrap();
        assert_eq!(patched.frozen_instances(), 1);
        Grounder::new(&mut symbols)
            .patch_base(&mut patched, vec![p.clone(), h.clone()], none.clone())
            .unwrap();
        let fresh = Grounder::new(&mut symbols).ground_base(&program, &[p, h], &none).unwrap();
        assert_eq!(fresh.frozen_instances(), 0);
        assert_eq!(patched.frozen_instances(), 0, "certain-headed instance must be retracted");
    }

    #[test]
    fn comparison_literals_filter_instances() {
        let (ground, symbols) = ground_text(
            r#"
            num(1). num(2). num(3).
            small(X) :- num(X), X < 3.
            diff(X, Y) :- num(X), num(Y), X != Y.
            "#,
        );
        let names = atom_names(&ground, &symbols);
        assert!(names.contains(&"small(1)".to_string()));
        assert!(names.contains(&"small(2)".to_string()));
        assert!(!names.contains(&"small(3)".to_string()));
        assert!(names.contains(&"diff(1,2)".to_string()));
        assert!(!names.contains(&"diff(2,2)".to_string()));
    }
}

//! The clingo-like front end: build a program from text and facts, ground it, solve it.
//!
//! [`Control`] mirrors the workflow described in Section V of the paper:
//!
//! 1. generate facts for the problem instance ([`Control::add_fact`]),
//! 2. load the logic program encoding the software model ([`Control::add_program`]),
//! 3. ground ([`Control::ground`]), and
//! 4. solve, retrieving the best stable model ([`Control::solve`]).
//!
//! Timing of the load / ground / solve phases is recorded in [`Stats`], matching the
//! phases instrumented in Section VII of the paper (setup is measured by the caller,
//! since fact generation happens outside the solver).

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::ast::Program;
use crate::ground::{BaseProgram, GroundError, GroundProgram, GroundStats, Grounder, PatchStats};
use crate::optimize::{
    enumerate_models_with_stats, solve_optimal_assuming, OptOutcome, OptStrategy, OptimalModel,
    OptimizeError, ProbeVerdict, StableProbe,
};
use crate::parser::{parse_program, ParseError};
use crate::sat::{Lit, SatConfig, SolveBudgetState};
use crate::symbols::{GroundAtom, SymbolTable, Val};
use crate::translate::{translate, Translation};

/// Errors surfaced by the [`Control`] API.
#[derive(Debug)]
pub enum AspError {
    /// The program text failed to parse.
    Parse(ParseError),
    /// Grounding failed.
    Ground(GroundError),
    /// Optimization failed.
    Optimize(OptimizeError),
    /// A method was called out of order (e.g. `solve` before `ground`).
    Usage(String),
}

impl std::fmt::Display for AspError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AspError::Parse(e) => write!(f, "{e}"),
            AspError::Ground(e) => write!(f, "{e}"),
            AspError::Optimize(e) => write!(f, "{e}"),
            AspError::Usage(m) => write!(f, "usage error: {m}"),
        }
    }
}

impl std::error::Error for AspError {}

impl From<ParseError> for AspError {
    fn from(e: ParseError) -> Self {
        AspError::Parse(e)
    }
}

impl From<GroundError> for AspError {
    fn from(e: GroundError) -> Self {
        AspError::Ground(e)
    }
}

impl From<OptimizeError> for AspError {
    fn from(e: OptimizeError) -> Self {
        AspError::Optimize(e)
    }
}

/// Configuration presets named after the clingo presets benchmarked in Fig. 7d of the
/// paper. Each preset maps to a different set of low-level search parameters; as in the
/// paper, the presets only affect the solving phase, never grounding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Preset {
    /// Geared towards typical ASP programs (the paper's default choice).
    #[default]
    Tweety,
    /// Geared towards industrial problems.
    Trendy,
    /// Geared towards large problems.
    Handy,
}

impl Preset {
    /// All presets, in the order used by the paper's Figure 7d.
    pub fn all() -> [Preset; 3] {
        [Preset::Tweety, Preset::Trendy, Preset::Handy]
    }

    /// The preset's name as used in clingo.
    pub fn name(&self) -> &'static str {
        match self {
            Preset::Tweety => "tweety",
            Preset::Trendy => "trendy",
            Preset::Handy => "handy",
        }
    }
}

/// A per-solve resource budget: a wall-clock deadline and/or a total conflict
/// limit. Installed through [`SolverConfig::budget`], it bounds every solve on the
/// control — a monitor thread arms a shared flag when the deadline passes, the
/// solvers count conflicts into a shared total, and the search loop checks the flag
/// once per iteration, so an expired budget interrupts the solve within one solver
/// check interval. The outcome degrades gracefully: if branch-and-bound had already
/// proven a model, [`AssumeOutcome::Budget`] returns it marked non-optimal instead
/// of returning nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolveBudget {
    /// Maximum wall-clock time for one solve (`None` = no deadline).
    pub wall_deadline: Option<Duration>,
    /// Maximum total conflicts across all solver runs (and portfolio workers) of one
    /// solve (`None` = no limit).
    pub conflict_limit: Option<u64>,
}

impl SolveBudget {
    /// A budget with both halves unset (no deadline, no conflict limit).
    pub fn unlimited() -> Self {
        SolveBudget::default()
    }

    /// Is any bound actually set?
    pub fn is_bounded(&self) -> bool {
        self.wall_deadline.is_some() || self.conflict_limit.is_some()
    }

    /// This budget with every set bound doubled — the retry policy's escalation:
    /// a retried solve gets twice the wall clock and twice the conflicts.
    pub fn doubled(&self) -> Self {
        SolveBudget {
            wall_deadline: self.wall_deadline.map(|d| d * 2),
            conflict_limit: self.conflict_limit.map(|c| c.saturating_mul(2)),
        }
    }
}

/// Arms a shared [`SolveBudgetState`] when a wall deadline passes, via a monitor
/// thread parked on a channel: the drop of the guard (solve finished) disconnects
/// the channel and the monitor exits without arming. A zero deadline arms
/// synchronously — no thread, no scheduling race — which keeps "expire immediately"
/// deterministic for tests.
struct BudgetGuard {
    state: Arc<SolveBudgetState>,
    _cancel: Option<std::sync::mpsc::Sender<()>>,
    monitor: Option<std::thread::JoinHandle<()>>,
}

impl BudgetGuard {
    fn new(budget: &SolveBudget) -> Self {
        let state = Arc::new(SolveBudgetState::new(budget.conflict_limit));
        let (cancel, monitor) = match budget.wall_deadline {
            Some(deadline) if deadline.is_zero() => {
                state.arm();
                (None, None)
            }
            Some(deadline) => {
                let (tx, rx) = std::sync::mpsc::channel::<()>();
                let armed = Arc::clone(&state);
                let handle = std::thread::spawn(move || {
                    // Timeout = deadline passed with the guard still alive: arm.
                    // Disconnected = the guard dropped first: the solve finished
                    // within budget, exit without arming.
                    if rx.recv_timeout(deadline) == Err(std::sync::mpsc::RecvTimeoutError::Timeout)
                    {
                        armed.arm();
                    }
                });
                (Some(tx), Some(handle))
            }
            None => (None, None),
        };
        BudgetGuard { state, _cancel: cancel, monitor }
    }
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        // Dropping the sender disconnects the monitor's channel; the join is then
        // immediate and keeps monitor threads from accumulating across a batch.
        self._cancel = None;
        if let Some(handle) = self.monitor.take() {
            let _ = handle.join();
        }
    }
}

/// Solver configuration: preset, optimization strategy, and RNG seed.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Search parameter preset.
    pub preset: Preset,
    /// Optimization strategy.
    pub strategy: OptStrategy,
    /// Seed for randomized tie-breaking.
    pub seed: u64,
    /// Minimize levels with a priority below this floor are dropped from the
    /// optimization entirely: they are neither optimized nor reported in the
    /// objective vector. The diagnostics path uses this to optimize only the
    /// high-priority `error(Priority, Msg, Args)` levels on the relaxed second-phase
    /// solve.
    pub priority_floor: i64,
    /// Number of differently-seeded solver configurations raced per optimizer search
    /// (`0` or `1` = serial). Results are byte-identical regardless of the value; a
    /// portfolio only changes how fast the canonical answer is found.
    pub portfolio: usize,
    /// Share provenance-safe learned clauses between requests with an identical
    /// translation (same closure digest) through the session's
    /// [`crate::SharedClauseStore`]. Results are byte-identical either way.
    pub share_nogoods: bool,
    /// Optional per-solve resource budget (wall deadline and/or conflict limit);
    /// `None` means every solve runs to completion. See [`SolveBudget`].
    pub budget: Option<SolveBudget>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            preset: Preset::default(),
            strategy: OptStrategy::default(),
            seed: 0,
            priority_floor: i64::MIN,
            portfolio: 1,
            share_nogoods: true,
            budget: None,
        }
    }
}

impl SolverConfig {
    /// Create a configuration from a preset with the default strategy.
    pub fn preset(preset: Preset) -> Self {
        SolverConfig { preset, ..Default::default() }
    }

    /// The low-level SAT parameters for this configuration.
    pub fn sat_config(&self) -> SatConfig {
        let mut cfg = match self.preset {
            Preset::Tweety => SatConfig {
                var_decay: 0.92,
                restart_base: 128,
                default_phase: false,
                random_polarity: 0.01,
                seed: 0x7eea,
                learned_limit: 4000,
                clause_decay: 0.999,
                portfolio: 1,
            },
            Preset::Trendy => SatConfig {
                var_decay: 0.97,
                restart_base: 512,
                default_phase: true,
                random_polarity: 0.05,
                seed: 0x7e2d,
                learned_limit: 8000,
                clause_decay: 0.999,
                portfolio: 1,
            },
            Preset::Handy => SatConfig {
                var_decay: 0.99,
                restart_base: 1024,
                default_phase: false,
                random_polarity: 0.0,
                seed: 0x4a2d,
                learned_limit: 16000,
                clause_decay: 0.9995,
                portfolio: 1,
            },
        };
        cfg.seed ^= self.seed;
        cfg.portfolio = self.portfolio.max(1);
        cfg
    }
}

/// A value in a fact argument or a model atom.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A string / symbolic constant.
    Str(String),
    /// An integer.
    Int(i64),
}

impl Value {
    /// The string form (integers are rendered in decimal).
    pub fn as_str(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Int(i) => i.to_string(),
        }
    }

    /// The integer value, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

/// A stable model returned by the solver: the true atoms, organised for extraction.
#[derive(Debug, Clone, Default)]
pub struct Model {
    atoms: Vec<(String, Vec<Value>)>,
}

impl Model {
    /// All true atoms as `(predicate, arguments)` pairs.
    pub fn atoms(&self) -> &[(String, Vec<Value>)] {
        &self.atoms
    }

    /// Iterate over the argument tuples of every true atom with the given predicate.
    pub fn with_pred<'a>(&'a self, pred: &'a str) -> impl Iterator<Item = &'a [Value]> + 'a {
        self.atoms.iter().filter(move |(p, _)| p == pred).map(|(_, args)| args.as_slice())
    }

    /// Does the model contain this exact atom?
    pub fn contains(&self, pred: &str, args: &[Value]) -> bool {
        self.atoms.iter().any(|(p, a)| p == pred && a == args)
    }

    /// Number of true atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True when no atom is true.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }
}

/// An assumption for [`Control::solve_with_assumptions`]: a ground atom, by predicate
/// and arguments, asserted true (`positive`) or false for the duration of one solve.
/// Assumptions are decisions, not clauses — the control object stays reusable, and a
/// failed solve reports the *unsat core*: the subset of assumptions that is jointly
/// refuted by the program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assumption {
    /// Predicate name of the assumed atom.
    pub pred: String,
    /// Ground arguments of the assumed atom.
    pub args: Vec<Value>,
    /// Assume the atom true (`true`) or false (`false`).
    pub positive: bool,
}

impl Assumption {
    /// Assume the atom `pred(args)` is true.
    pub fn holds(pred: &str, args: &[Value]) -> Self {
        Assumption { pred: pred.to_string(), args: args.to_vec(), positive: true }
    }

    /// Assume the atom `pred(args)` is false.
    pub fn fails(pred: &str, args: &[Value]) -> Self {
        Assumption { pred: pred.to_string(), args: args.to_vec(), positive: false }
    }
}

/// Outcome of an assumption-based optimizing solve.
#[derive(Debug, Clone)]
pub enum AssumeOutcome {
    /// An optimal stable model satisfying every assumption was found.
    Optimal {
        /// The model.
        model: Model,
        /// Objective vector as `(priority, value)`, highest priority first.
        cost: Vec<(i64, i64)>,
    },
    /// No stable model satisfies the assumptions.
    Unsatisfiable {
        /// Indices (into the assumption slice passed in) of an unsat core: a subset of
        /// the assumptions that cannot hold together. Empty when the program has no
        /// stable model at all, independent of any assumption.
        core: Vec<usize>,
    },
    /// The solve budget ([`SolverConfig::budget`]) expired before optimality was
    /// proven.
    Budget {
        /// The best model branch-and-bound had proven when the budget expired, with
        /// the objective vector it achieved — *not* guaranteed optimal, and (unlike
        /// the [`AssumeOutcome::Optimal`] model) not deterministic across runs.
        /// `None` when the budget expired before any model was found.
        partial: Option<(Model, Vec<(i64, i64)>)>,
    },
}

/// Outcome of an optimizing solve.
#[derive(Debug, Clone)]
pub enum SolveOutcome {
    /// An optimal stable model was found.
    Optimal {
        /// The model.
        model: Model,
        /// Objective vector as `(priority, value)`, highest priority first.
        cost: Vec<(i64, i64)>,
    },
    /// The problem has no stable model.
    Unsatisfiable,
}

impl SolveOutcome {
    /// The model, if the solve was satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SolveOutcome::Optimal { model, .. } => Some(model),
            SolveOutcome::Unsatisfiable => None,
        }
    }

    /// True when a model was found.
    pub fn is_satisfiable(&self) -> bool {
        matches!(self, SolveOutcome::Optimal { .. })
    }
}

/// Timing and size statistics for one solve, mirroring the phases measured in the paper
/// (Section VII): load (parsing the logic program), ground, and solve.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Time spent parsing program text.
    pub load_time: Duration,
    /// Time spent grounding.
    pub ground_time: Duration,
    /// Time spent solving (including optimization and stability checks).
    pub solve_time: Duration,
    /// Number of input facts.
    pub facts: usize,
    /// Grounding statistics.
    pub ground: GroundStats,
    /// Number of SAT variables after translation.
    pub variables: usize,
    /// Number of clauses after translation.
    pub clauses: usize,
    /// Candidate models examined (including unstable supported models rejected by the
    /// stability check), during optimization or enumeration.
    pub models_examined: u64,
    /// Solver invocations performed by the optimizer.
    pub solver_runs: u64,
    /// Total conflicts.
    pub conflicts: u64,
    /// Loop nogoods added by the stable-model check.
    pub loop_nogoods: u64,
    /// Total decisions across all solver runs.
    pub decisions: u64,
    /// Total literal propagations across all solver runs.
    pub propagations: u64,
    /// Total restarts across all solver runs.
    pub restarts: u64,
    /// Total learned clauses across all solver runs.
    pub learned: u64,
    /// Total learned clauses deleted again by the reduction policy.
    pub deleted: u64,
    /// Clauses replayed from the session clause cache (loop nogoods + provenance-safe
    /// learned clauses of earlier solves on this grounding) into the most recent
    /// solve's solvers — the warm-start the shared cache provides.
    pub warm_clauses: u64,
    /// Clauses transferred into this control's clause cache from the cross-request
    /// [`crate::SharedClauseStore`] (zero without a store or on a store miss).
    pub transferred_clauses: u64,
    /// Seed of the solver configuration that claimed the most recent portfolio race
    /// of the last optimizing solve (the base seed when solving serially).
    pub winner_seed: u64,
    /// Did the most recent solve end because its [`SolveBudget`] expired?
    pub budget_exhausted: bool,
}

impl Stats {
    /// Total time across all phases measured by the solver.
    pub fn total_time(&self) -> Duration {
        self.load_time + self.ground_time + self.solve_time
    }
}

/// The solver front end.
pub struct Control {
    config: SolverConfig,
    symbols: SymbolTable,
    program: Program,
    facts: Vec<GroundAtom>,
    ground: Option<GroundProgram>,
    translation: Option<Translation>,
    stats: Stats,
    /// The reusable solver of the last UNSAT [`Control::solve_with_assumptions`]
    /// call, with the fixed `#external` units it was built with: adopted by the next
    /// [`Control::minimize_core`] as its probe (same clause database, learned clauses
    /// included) instead of rebuilding a solver from scratch. Invalidated by
    /// [`Control::ground`].
    retired_unsat: Option<(crate::sat::Solver, Vec<Lit>)>,
    /// The frozen base this control was forked from ([`FrozenControl::request`]), if
    /// any: [`Control::ground`] then grounds the facts added since the fork as a
    /// *delta* on the base instead of re-grounding from scratch.
    base: Option<Arc<FrozenInner>>,
    /// Relevance restriction for the next delta grounding (session forks only): base
    /// atoms mentioning any of these symbols are dropped from this request's view of
    /// the frozen base. See [`Control::restrict_symbols`].
    restricted: crate::hasher::FxHashSet<crate::symbols::SymbolId>,
    /// Integer companions of `restricted` as half-open `[start, end)` ranges, matched
    /// against *first* arguments only (id-keyed fact schemes). Sorted and merged by
    /// [`Control::ground`]. See [`Control::restrict_int_ranges`].
    restricted_ints: Vec<(i64, i64)>,
    /// Was any restriction *requested* (even one whose symbols did not resolve)?
    /// Grounding a non-fork with a requested restriction is a usage error — silently
    /// returning unrestricted results would be worse than failing.
    restriction_requested: bool,
    /// The session clause cache for the *current grounding*: loop nogoods and
    /// provenance-safe learned clauses collected across every solve on this control,
    /// replayed into each newly built solver so later solves (e.g. the relaxed
    /// diagnostics re-solve after a failed hard solve) warm-start instead of
    /// re-deriving program consequences. Invalidated by [`Control::ground`].
    clause_cache: crate::sat::ClauseCache,
    /// Cross-request clause store shared between the controls of one session (see
    /// [`Control::set_shared_store`]): [`Control::ground`] pre-seeds the clause cache
    /// from the shelf keyed by the translation's closure digest, and every solve
    /// publishes the cache back.
    shared_store: Option<Arc<crate::sat::SharedClauseStore>>,
    /// The shelf key of the current grounding (its translation's closure digest),
    /// once a store is attached and [`Control::ground`] has run.
    store_key: Option<u64>,
}

/// A program plus its base facts, ground once and frozen — the shared half of a
/// multi-shot session. Created by [`Control::freeze_base`]; every
/// [`FrozenControl::request`] forks a cheap per-request [`Control`] whose
/// [`Control::ground`] call grounds only that request's delta facts on top of the
/// frozen base. Clones share the underlying base (`Arc`), and a `FrozenControl` is
/// `Send + Sync`, so independent requests may be answered from many threads at once.
#[derive(Clone)]
pub struct FrozenControl {
    inner: Arc<FrozenInner>,
}

struct FrozenInner {
    config: SolverConfig,
    symbols: SymbolTable,
    base: BaseProgram,
    load_time: Duration,
}

impl FrozenControl {
    /// Fork a per-request control: the base program, facts, and symbols are shared
    /// (the symbol table is cloned so the request may intern new constants), and only
    /// facts added to the fork are ground — incrementally — by [`Control::ground`].
    pub fn request(&self) -> Control {
        Control {
            config: self.inner.config.clone(),
            symbols: self.inner.symbols.clone(),
            program: Program::default(),
            facts: Vec::new(),
            ground: None,
            translation: None,
            stats: Stats::default(),
            retired_unsat: None,
            base: Some(self.inner.clone()),
            restricted: crate::hasher::FxHashSet::default(),
            restricted_ints: Vec::new(),
            restriction_requested: false,
            clause_cache: crate::sat::ClauseCache::default(),
            shared_store: None,
            store_key: None,
        }
    }

    /// Statistics of the one-time base grounding.
    pub fn base_stats(&self) -> &GroundStats {
        &self.inner.base.stats
    }

    /// Time spent parsing the program text (paid once, amortized over all requests).
    pub fn load_time(&self) -> Duration {
        self.inner.load_time
    }

    /// Total frozen ground instances available for per-request reuse.
    pub fn frozen_instances(&self) -> usize {
        self.inner.base.frozen_instances()
    }

    /// Patch the frozen base **in place** so it answers subsequent requests exactly
    /// like a fresh [`Control::freeze_base_partitioned`] of the post-delta universe
    /// would — without dropping the session or re-parsing the program.
    ///
    /// `staged` must be a [`FrozenControl::request`] fork *of this base* carrying the
    /// complete post-delta input fact stream (every base fact re-emitted, not just
    /// the changed ones — the grounder diffs the streams itself and applies the
    /// cheapest strategy: a semi-naive phase-1 continuation for pure additions, an
    /// id-exact closure rebuild with frozen-instance remapping when facts were
    /// removed; see [`Grounder::patch_base`]). The fork's symbol table — a superset
    /// clone of the base's, extended with whatever new names the delta interned — is
    /// adopted wholesale, so old symbol ids keep their meaning. `partition` re-states
    /// the owner partition for the patched universe (a delta can add or remove
    /// owners).
    ///
    /// Fails with [`AspError::Usage`] when `staged` was forked from a different base,
    /// or when the base is still shared — another clone of this `FrozenControl`, or
    /// an in-flight request fork, holds a reference. Callers that cannot rule out
    /// sharing should treat that error as "evict and re-freeze".
    pub fn patch_base<S: AsRef<str>>(
        &mut self,
        staged: Control,
        partition: &[S],
    ) -> Result<PatchStats, AspError> {
        match &staged.base {
            Some(inner) if Arc::ptr_eq(inner, &self.inner) => {}
            _ => {
                return Err(AspError::Usage(
                    "patch_base needs a request fork of this frozen base".into(),
                ))
            }
        }
        // Destructure the fork before checking exclusivity: only its symbols and
        // facts survive. Its `base` Arc must be dropped *explicitly* — fields
        // matched by `..` live to the end of the scope, which would keep the
        // refcount at 2 and make the exclusivity check below always fail.
        let Control { symbols, facts, base, .. } = staged;
        drop(base);
        let inner = Arc::get_mut(&mut self.inner).ok_or_else(|| {
            AspError::Usage(
                "the frozen base is shared (a clone or an in-flight request fork is still \
                 alive); cannot patch in place"
                    .into(),
            )
        })?;
        inner.symbols = symbols;
        let partition: crate::hasher::FxHashSet<crate::symbols::SymbolId> =
            partition.iter().filter_map(|s| inner.symbols.lookup(s.as_ref())).collect();
        Ok(Grounder::new(&mut inner.symbols).patch_base(&mut inner.base, facts, partition)?)
    }
}

impl Control {
    /// Create a new, empty control object.
    pub fn new(config: SolverConfig) -> Self {
        Control {
            config,
            symbols: SymbolTable::new(),
            program: Program::default(),
            facts: Vec::new(),
            ground: None,
            translation: None,
            stats: Stats::default(),
            retired_unsat: None,
            base: None,
            restricted: crate::hasher::FxHashSet::default(),
            restricted_ints: Vec::new(),
            restriction_requested: false,
            clause_cache: crate::sat::ClauseCache::default(),
            shared_store: None,
            store_key: None,
        }
    }

    /// Attach the cross-request clause store shared by a session: from the next
    /// [`Control::ground`] on, this control's clause cache is pre-seeded with the
    /// provenance-safe clauses earlier requests learned on an *identical* translation
    /// (same closure digest — same formula, variable ids included), and every solve
    /// publishes its own harvest back. Must be called before [`Control::ground`] to
    /// take effect for that grounding. Results are byte-identical with or without a
    /// store; transfers only speed the search up.
    pub fn set_shared_store(&mut self, store: Arc<crate::sat::SharedClauseStore>) {
        self.shared_store = Some(store);
    }

    /// Restrict this request's view of the frozen base (session forks only): every
    /// base atom mentioning one of these symbols is dropped before the delta
    /// grounding, as are the frozen rule instances referencing such atoms. Callers
    /// use this for *relevance restriction* — dropping everything about packages
    /// outside a request's dependency closure shrinks the per-request program from
    /// the whole-universe base to what a from-scratch solve would ground, which is
    /// what makes a session request cheaper than a one-shot solve rather than larger.
    /// Symbols the base never interned are ignored. Must be called before
    /// [`Control::ground`].
    pub fn restrict_symbols<I, S>(&mut self, names: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.restriction_requested = true;
        for name in names {
            if let Some(id) = self.symbols.lookup(name.as_ref()) {
                self.restricted.insert(id);
            }
        }
    }

    /// Integer companion of [`Control::restrict_symbols`]: base atoms whose *first*
    /// argument falls into one of these half-open `[start, end)` ranges are dropped
    /// from this request's view of the frozen base. Intended for id-keyed fact
    /// schemes (a generalized-condition id in the first argument); callers must
    /// allocate such ids from a range no other first-position integer uses, so
    /// exclusion can never hit a weight or priority. Ranges are sorted and merged
    /// when grounding runs.
    pub fn restrict_int_ranges(&mut self, ranges: impl IntoIterator<Item = (i64, i64)>) {
        self.restriction_requested = true;
        self.restricted_ints.extend(ranges.into_iter().filter(|&(s, e)| s < e));
    }

    /// Parse and add a logic program.
    pub fn add_program(&mut self, text: &str) -> Result<(), AspError> {
        if self.base.is_some() {
            return Err(AspError::Usage(
                "the program is frozen; per-request controls only accept facts".into(),
            ));
        }
        let start = Instant::now();
        let parsed = parse_program(text)?;
        self.program.extend(parsed);
        self.stats.load_time += start.elapsed();
        Ok(())
    }

    /// Ground the program and the facts added so far *once* and freeze the result:
    /// the returned [`FrozenControl`] answers many independent requests, each of which
    /// re-grounds only its own delta facts (clingo's multi-shot `ground`/`solve`
    /// amortization). The base grounding is complete — phase-1 closure, per-rule
    /// instance buckets, per-statement minimize tuples — so a request's
    /// [`Control::ground`] does work proportional to what its facts touch, not to the
    /// base program.
    pub fn freeze_base(self) -> Result<FrozenControl, AspError> {
        self.freeze_base_partitioned::<&str>(&[])
    }

    /// [`Control::freeze_base`] with an *owner partition*: the frozen base buckets
    /// its atoms and instances by the first argument symbol belonging to `partition`
    /// (e.g. every package name), so a request that excludes some owners via
    /// [`Control::restrict_symbols`] only ever visits the buckets it keeps — the
    /// per-request restriction cost is proportional to the kept slice, not to the
    /// whole base. Purely an access-path optimization: results are identical to an
    /// unpartitioned freeze.
    pub fn freeze_base_partitioned<S: AsRef<str>>(
        mut self,
        partition: &[S],
    ) -> Result<FrozenControl, AspError> {
        if self.base.is_some() {
            return Err(AspError::Usage("cannot freeze a per-request control".into()));
        }
        let partition: crate::hasher::FxHashSet<crate::symbols::SymbolId> =
            partition.iter().filter_map(|s| self.symbols.lookup(s.as_ref())).collect();
        let base =
            Grounder::new(&mut self.symbols).ground_base(&self.program, &self.facts, &partition)?;
        Ok(FrozenControl {
            inner: Arc::new(FrozenInner {
                config: self.config,
                symbols: self.symbols,
                base,
                load_time: self.stats.load_time,
            }),
        })
    }

    /// Add one input fact.
    pub fn add_fact(&mut self, pred: &str, args: &[Value]) {
        let pred = self.symbols.intern(pred);
        let args = args
            .iter()
            .map(|v| match v {
                Value::Str(s) => Val::Sym(self.symbols.intern(s)),
                Value::Int(i) => Val::Int(*i),
            })
            .collect();
        self.facts.push(GroundAtom::new(pred, args));
    }

    /// Number of facts added so far.
    pub fn fact_count(&self) -> usize {
        self.facts.len()
    }

    /// An order-sensitive digest of every fact added so far, computed over predicate
    /// and argument *names* (not interned ids). Two controls fed the same fact stream
    /// produce the same digest, so this is the cache key for a frozen base program:
    /// a changed repository, site, or buildcache changes the digest.
    pub fn fact_digest(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut hasher = crate::hasher::FxHasher::default();
        for fact in &self.facts {
            self.symbols.name(fact.pred).hash(&mut hasher);
            for v in &fact.args {
                match v {
                    Val::Int(i) => {
                        0u8.hash(&mut hasher);
                        i.hash(&mut hasher);
                    }
                    Val::Sym(s) => {
                        1u8.hash(&mut hasher);
                        self.symbols.name(*s).hash(&mut hasher);
                    }
                }
            }
            0xFEu8.hash(&mut hasher);
        }
        hasher.finish()
    }

    /// Ground the program together with the facts added so far. On a per-request
    /// control ([`FrozenControl::request`]) this grounds the added facts as a delta on
    /// the frozen base instead of re-grounding from scratch.
    pub fn ground(&mut self) -> Result<(), AspError> {
        let start = Instant::now();
        if self.base.is_none() && self.restriction_requested {
            // Silently ignoring a requested restriction would hand back unrestricted
            // results; restriction only means something on a session fork.
            return Err(AspError::Usage(
                "restrict_symbols/restrict_int_ranges require a control forked from a \
                 frozen base"
                    .into(),
            ));
        }
        let ground = match &self.base {
            Some(inner) => {
                // Sort and merge the excluded id ranges so the grounder can test
                // membership with one binary search.
                self.restricted_ints.sort_unstable();
                self.restricted_ints.dedup();
                let mut merged: Vec<(i64, i64)> = Vec::with_capacity(self.restricted_ints.len());
                for &(s, e) in &self.restricted_ints {
                    match merged.last_mut() {
                        Some(last) if s <= last.1 => last.1 = last.1.max(e),
                        _ => merged.push((s, e)),
                    }
                }
                self.restricted_ints = merged;
                Grounder::new(&mut self.symbols).ground_delta(
                    &inner.base,
                    &self.restricted,
                    &self.restricted_ints,
                    &self.facts,
                )?
            }
            None => Grounder::new(&mut self.symbols).ground(&self.program, &self.facts)?,
        };
        let translation = translate(&ground);
        self.stats.ground_time = start.elapsed();
        self.stats.facts = self.facts.len();
        self.stats.ground = ground.stats.clone();
        self.stats.variables = translation.num_vars;
        self.stats.clauses = translation.clauses.len();
        self.ground = Some(ground);
        self.translation = Some(translation);
        self.retired_unsat = None; // built against the previous translation
        self.clause_cache = crate::sat::ClauseCache::default(); // ditto
        self.stats.transferred_clauses = 0;
        if let Some(store) = &self.shared_store {
            // Cross-request transfer: pre-seed the fresh cache with the clauses
            // sibling requests learned on an identical translation. Equal digest ⇒
            // identical formula ⇒ every provenance-safe clause holds verbatim.
            let key = self.translation.as_ref().expect("just set").digest();
            self.store_key = Some(key);
            self.stats.transferred_clauses = store.fetch_into(key, &mut self.clause_cache) as u64;
        }
        Ok(())
    }

    /// Solve for the optimal stable model. Under an expired [`SolveBudget`] the best
    /// model proven so far is returned (marked by [`Stats::budget_exhausted`]); a
    /// budget that expired before any model was found is an [`AspError::Optimize`].
    pub fn solve(&mut self) -> Result<SolveOutcome, AspError> {
        match self.solve_with_assumptions(&[])? {
            AssumeOutcome::Optimal { model, cost } => Ok(SolveOutcome::Optimal { model, cost }),
            AssumeOutcome::Unsatisfiable { .. } => Ok(SolveOutcome::Unsatisfiable),
            AssumeOutcome::Budget { partial: Some((model, cost)) } => {
                Ok(SolveOutcome::Optimal { model, cost })
            }
            AssumeOutcome::Budget { partial: None } => Err(AspError::Optimize(OptimizeError {
                message: "solve budget exhausted before any model was found".into(),
            })),
        }
    }

    /// Mutable access to the solver configuration, for per-request tuning between
    /// solves (the durable batch runner's retry policy re-seeds the solver and
    /// enlarges the budget this way). Takes effect at the next solve; the grounding
    /// is unaffected.
    pub fn solver_config_mut(&mut self) -> &mut SolverConfig {
        &mut self.config
    }

    /// Solve for the optimal stable model under the given assumptions (clingo's
    /// `solve(assumptions=...)`). On UNSAT the outcome carries an *unsat core*: indices
    /// of a subset of `assumptions` that cannot hold together, extracted by tracking
    /// assumption decisions through conflict analysis. The core is sound (its members
    /// really are jointly unsatisfiable) but not necessarily minimal — pass it to
    /// [`Control::minimize_core`] for a minimal explanation.
    pub fn solve_with_assumptions(
        &mut self,
        assumptions: &[Assumption],
    ) -> Result<AssumeOutcome, AspError> {
        self.solve_with_assumptions_floor(assumptions, self.config.priority_floor)
    }

    /// [`Control::solve_with_assumptions`] with a *per-solve* `priority_floor`
    /// overriding [`SolverConfig::priority_floor`]: minimize levels below the floor are
    /// neither optimized nor reported for this solve only. Together with `#external`
    /// guard atoms this makes one ground program serve differently-parameterized
    /// solves — e.g. the concretizer's diagnostics flip a `relax_mode` assumption and
    /// raise the floor to optimize only the error levels, with no regrounding and no
    /// solver rebuild between the phases.
    pub fn solve_with_assumptions_floor(
        &mut self,
        assumptions: &[Assumption],
        priority_floor: i64,
    ) -> Result<AssumeOutcome, AspError> {
        let (ground, translation) = match (&self.ground, &self.translation) {
            (Some(g), Some(t)) => (g, t),
            _ => return Err(AspError::Usage("ground() must be called before solve()".into())),
        };
        let start = Instant::now();
        // Map assumptions onto SAT literals. Atoms the grounder never saw are false in
        // every model: a positive assumption on one is trivially refuted by itself, a
        // negative one is trivially satisfied (and skipped). Assumptions on
        // `#external` guard atoms are split off as *fixed* literals — root-level unit
        // clauses in every solver of this solve (clingo's `assign_external`) — so the
        // guard's consequences propagate once at the root instead of being re-decided
        // per solver run, and guards never pollute unsat cores.
        let mut lits: Vec<Lit> = Vec::with_capacity(assumptions.len());
        let mut fixed: Vec<Lit> = Vec::new();
        let mut fixed_index: Vec<usize> = Vec::new();
        let mut lit_index: Vec<(Lit, usize)> = Vec::with_capacity(assumptions.len());
        for (i, a) in assumptions.iter().enumerate() {
            match self.assumption_lit(ground, a) {
                Some(lit) if ground.atoms.is_external(lit.var() as crate::symbols::AtomId) => {
                    // Contradictory guard assignments would turn into conflicting
                    // root units — an empty-core UNSAT indistinguishable from
                    // structural infeasibility. Blame the pair instead.
                    if let Some(j) = fixed.iter().position(|&f| f == lit.negate()) {
                        self.stats.solve_time += start.elapsed();
                        return Ok(AssumeOutcome::Unsatisfiable { core: vec![fixed_index[j], i] });
                    }
                    fixed.push(lit);
                    fixed_index.push(i);
                }
                Some(lit) => {
                    lits.push(lit);
                    lit_index.push((lit, i));
                }
                None if a.positive => {
                    self.stats.solve_time += start.elapsed();
                    return Ok(AssumeOutcome::Unsatisfiable { core: vec![i] });
                }
                None => {}
            }
        }
        let mut cache = std::mem::take(&mut self.clause_cache);
        self.stats.warm_clauses = cache.len() as u64;
        self.stats.budget_exhausted = false;
        let mut retired = None;
        // The guard owns the deadline monitor; dropping it (on every exit path from
        // this call) cancels the monitor, so the budget is scoped to this one solve.
        let guard = self.config.budget.filter(|b| b.is_bounded()).map(|b| BudgetGuard::new(&b));
        let result = solve_optimal_assuming(
            ground,
            translation,
            &self.config.sat_config(),
            self.config.strategy,
            &lits,
            &fixed,
            priority_floor,
            &mut retired,
            &mut cache,
            guard.as_ref().map(|g| &g.state),
        );
        drop(guard);
        self.clause_cache = cache;
        self.publish_cache();
        let result = result?;
        self.stats.solve_time += start.elapsed();
        match result {
            OptOutcome::Optimal(optimal) => {
                // A satisfiable solve supersedes any stale retired solver: nothing
                // will minimize a core now, so don't hold a clause database alive.
                self.retired_unsat = None;
                self.record_opt_stats(&optimal);
                let model = self.extract_model(&optimal.model);
                Ok(AssumeOutcome::Optimal { model, cost: optimal.cost })
            }
            OptOutcome::Unsat { core, sat } => {
                // Keep the failed run's solver (and the guard units it was built
                // with) for the follow-up core minimization.
                self.retired_unsat = retired.map(|s| (s, fixed));
                self.record_sat_stats(&sat);
                let mut indices: Vec<usize> = core
                    .iter()
                    .filter_map(|l| lit_index.iter().find(|(cl, _)| cl == l).map(|&(_, i)| i))
                    .collect();
                indices.sort_unstable();
                indices.dedup();
                Ok(AssumeOutcome::Unsatisfiable { core: indices })
            }
            OptOutcome::Budget { partial, sat } => {
                // An interrupted solve leaves nothing worth minimizing a core from.
                self.retired_unsat = None;
                self.record_sat_stats(&sat);
                self.stats.budget_exhausted = true;
                let partial = partial.map(|opt| {
                    self.record_opt_stats(&opt);
                    (self.extract_model(&opt.model), opt.cost)
                });
                Ok(AssumeOutcome::Budget { partial })
            }
        }
    }

    /// Deletion-based minimization of an unsat core returned by
    /// [`Control::solve_with_assumptions`]: repeatedly drop one member and re-test
    /// satisfiability of the rest; members whose removal makes the problem satisfiable
    /// are *necessary* and kept, the others are deleted. Each test is a plain stable-
    /// model probe (no optimization) consuming only the SAT/UNSAT verdict — a fact
    /// about the formula — so the minimized core is a deterministic function of the
    /// input core, independent of warm starts, cross-request clause transfers, and
    /// portfolio race timing. Returns the minimized core (indices into `assumptions`)
    /// and the number of probe solves performed.
    ///
    /// `pinned` assumptions are held in every probe but are never candidates for
    /// deletion and never appear in the result — the caller uses them for `#external`
    /// guard atoms (e.g. `relax_mode` pinned false) whose truth parameterizes the
    /// program rather than expressing a requirement worth blaming. Without the pin a
    /// probe could "satisfy" the remaining core merely by flipping the guard, deleting
    /// genuinely necessary members.
    pub fn minimize_core(
        &mut self,
        assumptions: &[Assumption],
        core: &[usize],
        pinned: &[Assumption],
    ) -> Result<(Vec<usize>, u64), AspError> {
        let retired = self.retired_unsat.take();
        let (ground, translation) = match (&self.ground, &self.translation) {
            (Some(g), Some(t)) => (g, t),
            _ => {
                return Err(AspError::Usage(
                    "ground() must be called before minimize_core()".into(),
                ))
            }
        };
        let start = Instant::now();
        let mut core: Vec<usize> = core.to_vec();
        if core.is_empty() {
            // Unsat without any assumption involved: nothing to minimize, and no
            // probe solver worth building.
            return Ok((core, 0));
        }
        let mut rounds = 0u64;
        // One solver serves every deletion probe: assumptions are decisions, not
        // clauses, so the clause database (and every learned clause and loop nogood)
        // carries over between probes instead of being rebuilt per round.
        // Pinned guards are asserted as root-level units in the probe solver itself —
        // held in every probe, never deletable, never blamed. When the preceding
        // UNSAT solve left its solver behind with the same guard units, adopt it
        // outright: same clause database, no rebuild, and the clauses learned while
        // refuting the assumptions prune the probes too.
        let pinned_lits: Vec<Lit> =
            pinned.iter().filter_map(|a| self.assumption_lit(ground, a)).collect();
        let mut cache = std::mem::take(&mut self.clause_cache);
        let mut probe = match retired {
            Some((solver, fixed)) if fixed == pinned_lits => {
                StableProbe::from_solver(ground, solver)
            }
            _ => StableProbe::new(
                ground,
                translation,
                &self.config.sat_config(),
                &pinned_lits,
                &cache,
            ),
        };
        // The diagnostics probes honour the same per-solve budget as the solves: an
        // expired budget aborts the minimization (keeping the current core — still a
        // sound explanation, merely not minimal) instead of probing unboundedly.
        let guard = self.config.budget.filter(|b| b.is_bounded()).map(|b| BudgetGuard::new(&b));
        if let Some(g) = &guard {
            probe.set_budget(Some(Arc::clone(&g.state)));
        }
        let mut i = 0;
        while i < core.len() {
            // Probe the core with member `i` removed (pinned guards always held).
            let mut trial_lits: Vec<Lit> = Vec::with_capacity(core.len() - 1);
            for (j, &idx) in core.iter().enumerate() {
                if j == i {
                    continue;
                }
                if let Some(lit) = self.assumption_lit(ground, &assumptions[idx]) {
                    trial_lits.push(lit);
                }
                // Trivially-failed members cannot be dropped by this probe path; they
                // were already singled out before a search-derived core existed.
            }
            rounds += 1;
            match probe.check(ground, &trial_lits, &mut cache) {
                ProbeVerdict::Unsat(_) => {
                    // Still unsat without member `i`: it is redundant — drop it and
                    // probe the next candidate at the same position. Only the UNSAT
                    // *verdict* is consumed, never the probe's own sub-core: a
                    // final-conflict core depends on the probe's learned-clause
                    // trajectory (warm starts, cross-request transfers, portfolio
                    // history), while the verdict is a fact about the formula — so
                    // the minimized core is a deterministic function of the input
                    // core alone.
                    core.remove(i);
                }
                ProbeVerdict::Stable => i += 1, // member `i` is necessary
                ProbeVerdict::Interrupted => {
                    // Budget expired mid-minimization: keep the remaining core as-is
                    // (every member not yet probed stays). It is still sound.
                    self.stats.budget_exhausted = true;
                    break;
                }
            }
        }
        drop(guard);
        let probe_stats = probe.stats().clone();
        probe.harvest_into(&mut cache);
        self.clause_cache = cache;
        self.publish_cache();
        self.record_sat_stats(&probe_stats);
        self.stats.solve_time += start.elapsed();
        Ok((core, rounds))
    }

    /// Publish the session clause cache to the cross-request store (no-op without an
    /// attached store or before grounding).
    fn publish_cache(&self) {
        if let (Some(store), Some(key)) = (&self.shared_store, self.store_key) {
            store.publish(key, &self.clause_cache);
        }
    }

    /// The SAT literal for an assumption, or `None` when the assumed atom does not
    /// exist in the ground program (it is then false in every model).
    fn assumption_lit(&self, ground: &GroundProgram, a: &Assumption) -> Option<Lit> {
        let pred = self.symbols.lookup(&a.pred)?;
        let mut args = Vec::with_capacity(a.args.len());
        for v in &a.args {
            args.push(match v {
                Value::Str(s) => Val::Sym(self.symbols.lookup(s)?),
                Value::Int(i) => Val::Int(*i),
            });
        }
        let id = ground.atoms.get(&GroundAtom::new(pred, args))?;
        Some(if a.positive {
            Translation::atom_lit(id)
        } else {
            Translation::atom_lit(id).negate()
        })
    }

    /// Enumerate up to `limit` stable models without optimization.
    pub fn solve_models(&mut self, limit: usize) -> Result<Vec<Model>, AspError> {
        let (ground, translation) = match (&self.ground, &self.translation) {
            (Some(g), Some(t)) => (g, t),
            _ => {
                return Err(AspError::Usage("ground() must be called before solve_models()".into()))
            }
        };
        let start = Instant::now();
        let (models, sat, examined) =
            enumerate_models_with_stats(ground, translation, &self.config.sat_config(), limit);
        self.stats.solve_time += start.elapsed();
        self.record_sat_stats(&sat);
        self.stats.models_examined = examined;
        Ok(models.iter().map(|m| self.extract_model(m)).collect())
    }

    /// Statistics for the phases run so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Access to the ground program (available after [`Control::ground`]).
    pub fn ground_program(&self) -> Option<&GroundProgram> {
        self.ground.as_ref()
    }

    fn record_opt_stats(&mut self, optimal: &OptimalModel) {
        self.stats.models_examined = optimal.models_examined;
        self.stats.solver_runs = optimal.solver_runs;
        self.stats.loop_nogoods = optimal.loop_nogoods;
        self.stats.winner_seed = optimal.winner_seed;
        self.record_sat_stats(&optimal.sat);
    }

    /// Mirror a solver's aggregate statistics into the flat [`Stats`] fields (the one
    /// place to extend when [`crate::sat::SatStats`] grows a counter).
    fn record_sat_stats(&mut self, sat: &crate::sat::SatStats) {
        self.stats.conflicts = sat.conflicts;
        self.stats.decisions = sat.decisions;
        self.stats.propagations = sat.propagations;
        self.stats.restarts = sat.restarts;
        self.stats.learned = sat.learned;
        self.stats.deleted = sat.deleted;
    }

    fn extract_model(&self, model: &[bool]) -> Model {
        let ground = self.ground.as_ref().expect("grounded");
        let mut atoms = Vec::new();
        for (id, atom) in ground.atoms.iter() {
            if !model[id as usize] {
                continue;
            }
            let pred = self.symbols.name(atom.pred).to_string();
            if pred.starts_with("__") {
                continue; // internal auxiliary atoms
            }
            let args = atom
                .args
                .iter()
                .map(|v| match v {
                    Val::Int(i) => Value::Int(*i),
                    Val::Sym(s) => Value::Str(self.symbols.name(*s).to_string()),
                })
                .collect();
            atoms.push((pred, args));
        }
        Model { atoms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_fact_program_solve() {
        let mut ctl = Control::new(SolverConfig::default());
        ctl.add_fact("node", &["hdf5".into()]);
        ctl.add_fact("depends_on", &["hdf5".into(), "zlib".into()]);
        ctl.add_program("node(D) :- node(P), depends_on(P, D).").unwrap();
        ctl.ground().unwrap();
        let outcome = ctl.solve().unwrap();
        let model = outcome.model().expect("satisfiable");
        assert!(model.contains("node", &["zlib".into()]));
        assert!(ctl.stats().ground_time > Duration::ZERO);
    }

    #[test]
    fn optimization_cost_is_reported() {
        let mut ctl = Control::new(SolverConfig::default());
        ctl.add_program(
            r#"
            node(p).
            possible_version(p, "2.0", 0).
            possible_version(p, "1.0", 1).
            1 { version(P, V) : possible_version(P, V, W) } 1 :- node(P).
            version_weight(P, W) :- version(P, V), possible_version(P, V, W).
            #minimize{ W@3,P : version_weight(P, W) }.
            "#,
        )
        .unwrap();
        ctl.ground().unwrap();
        match ctl.solve().unwrap() {
            SolveOutcome::Optimal { model, cost } => {
                assert!(model.contains("version", &["p".into(), "2.0".into()]));
                assert_eq!(cost, vec![(3, 0)]);
            }
            SolveOutcome::Unsatisfiable => panic!("expected a model"),
        }
    }

    #[test]
    fn unsatisfiable_is_reported() {
        let mut ctl = Control::new(SolverConfig::default());
        ctl.add_program("p. :- p.").unwrap();
        ctl.ground().unwrap();
        assert!(!ctl.solve().unwrap().is_satisfiable());
    }

    #[test]
    fn presets_solve_the_same_problem() {
        for preset in Preset::all() {
            let mut ctl = Control::new(SolverConfig::preset(preset));
            ctl.add_program(
                r#"
                1 { pick(a); pick(b); pick(c) } 1.
                cost(a, 2). cost(b, 1). cost(c, 3).
                paid(W) :- pick(P), cost(P, W).
                #minimize{ W@1 : paid(W) }.
                "#,
            )
            .unwrap();
            ctl.ground().unwrap();
            match ctl.solve().unwrap() {
                SolveOutcome::Optimal { model, cost } => {
                    assert!(model.contains("pick", &["b".into()]), "preset {preset:?}");
                    assert_eq!(cost, vec![(1, 1)]);
                }
                SolveOutcome::Unsatisfiable => panic!("expected a model"),
            }
        }
    }

    #[test]
    fn assumptions_select_between_models() {
        let mut ctl = Control::new(SolverConfig::default());
        ctl.add_program("1 { pick(a); pick(b) } 1.").unwrap();
        ctl.ground().unwrap();
        let outcome =
            ctl.solve_with_assumptions(&[Assumption::holds("pick", &["b".into()])]).unwrap();
        match outcome {
            AssumeOutcome::Optimal { model, .. } => {
                assert!(model.contains("pick", &["b".into()]));
                assert!(!model.contains("pick", &["a".into()]));
            }
            AssumeOutcome::Unsatisfiable { .. } => panic!("expected a model"),
            AssumeOutcome::Budget { .. } => panic!("no budget installed"),
        }
    }

    #[test]
    fn failed_assumptions_report_a_core() {
        // Assuming both picks violates the exactly-one choice; the unrelated third
        // assumption must not be blamed.
        let mut ctl = Control::new(SolverConfig::default());
        ctl.add_program("1 { pick(a); pick(b) } 1. { free(c) }.").unwrap();
        ctl.ground().unwrap();
        let assumptions = [
            Assumption::holds("free", &["c".into()]),
            Assumption::holds("pick", &["a".into()]),
            Assumption::holds("pick", &["b".into()]),
        ];
        match ctl.solve_with_assumptions(&assumptions).unwrap() {
            AssumeOutcome::Unsatisfiable { core } => {
                assert_eq!(core, vec![1, 2]);
                let (minimized, rounds) = ctl.minimize_core(&assumptions, &core, &[]).unwrap();
                assert_eq!(minimized, vec![1, 2]);
                assert!(rounds >= 2, "each member must be probed: {rounds}");
            }
            AssumeOutcome::Optimal { .. } => panic!("expected unsat"),
            AssumeOutcome::Budget { .. } => panic!("no budget installed"),
        }
    }

    #[test]
    fn core_minimization_drops_redundant_members() {
        // q is forced by fact; assuming not q is unsat all by itself, so the other
        // assumptions must be minimized away.
        let mut ctl = Control::new(SolverConfig::default());
        ctl.add_program("q. { p(a); p(b) }.").unwrap();
        ctl.ground().unwrap();
        let assumptions = [
            Assumption::holds("p", &["a".into()]),
            Assumption::holds("p", &["b".into()]),
            Assumption::fails("q", &[]),
        ];
        match ctl.solve_with_assumptions(&assumptions).unwrap() {
            AssumeOutcome::Unsatisfiable { core } => {
                let (minimized, _rounds) = ctl.minimize_core(&assumptions, &core, &[]).unwrap();
                assert_eq!(minimized, vec![2], "only the ~q assumption is to blame");
            }
            AssumeOutcome::Optimal { .. } => panic!("expected unsat"),
            AssumeOutcome::Budget { .. } => panic!("no budget installed"),
        }
    }

    #[test]
    fn externally_supportable_loop_atom_is_satisfiable_under_assumption() {
        // Regression: a, b support each other but a is also externally supported by
        // the free choice x. Assuming a must find the stable model {x, a, b}; an
        // unsound bare loop nogood (no external-support witness) would report UNSAT
        // after rejecting the unstable {a, b} candidate.
        let mut ctl = Control::new(SolverConfig::default());
        ctl.add_program("a :- b. b :- a. a :- x. { x }.").unwrap();
        ctl.ground().unwrap();
        match ctl.solve_with_assumptions(&[Assumption::holds("a", &[])]).unwrap() {
            AssumeOutcome::Optimal { model, .. } => {
                assert!(model.contains("a", &[]));
                assert!(model.contains("x", &[]), "a is founded only through x");
            }
            AssumeOutcome::Unsatisfiable { core } => {
                panic!("satisfiable assumption reported unsat with core {core:?}")
            }
            AssumeOutcome::Budget { .. } => panic!("no budget installed"),
        }
        // And enumeration must see both stable models: {} and {x, a, b}.
        let mut ctl = Control::new(SolverConfig::default());
        ctl.add_program("a :- b. b :- a. a :- x. { x }.").unwrap();
        ctl.ground().unwrap();
        assert_eq!(ctl.solve_models(8).unwrap().len(), 2);
    }

    #[test]
    fn assuming_an_unknown_atom_true_is_a_singleton_core() {
        let mut ctl = Control::new(SolverConfig::default());
        ctl.add_program("p.").unwrap();
        ctl.ground().unwrap();
        let assumptions = [Assumption::holds("nonexistent", &["x".into()])];
        match ctl.solve_with_assumptions(&assumptions).unwrap() {
            AssumeOutcome::Unsatisfiable { core } => assert_eq!(core, vec![0]),
            AssumeOutcome::Optimal { .. } => panic!("expected unsat"),
            AssumeOutcome::Budget { .. } => panic!("no budget installed"),
        }
        // Assuming it *false* is trivially fine.
        let assumptions = [Assumption::fails("nonexistent", &["x".into()])];
        assert!(matches!(
            ctl.solve_with_assumptions(&assumptions).unwrap(),
            AssumeOutcome::Optimal { .. }
        ));
    }

    #[test]
    fn priority_floor_skips_low_priority_levels() {
        let mut ctl = Control::new(SolverConfig { priority_floor: 100, ..Default::default() });
        ctl.add_program(
            r#"
            1 { pick(a); pick(b) } 1.
            important(a, 0). important(b, 1).
            minor(a, 1). minor(b, 0).
            icost(W) :- pick(P), important(P, W).
            mcost(W) :- pick(P), minor(P, W).
            #minimize{ W@200 : icost(W) }.
            #minimize{ W@1 : mcost(W) }.
            "#,
        )
        .unwrap();
        ctl.ground().unwrap();
        match ctl.solve().unwrap() {
            SolveOutcome::Optimal { model, cost } => {
                assert!(model.contains("pick", &["a".into()]));
                // Only the level above the floor appears in the objective vector.
                assert_eq!(cost, vec![(200, 0)]);
            }
            SolveOutcome::Unsatisfiable => panic!("expected a model"),
        }
    }

    #[test]
    fn external_guard_flips_between_solves_without_regrounding() {
        // One grounding, two interpretations: with `relax` assumed false the guarded
        // constraint is active (picking the flagged option is unsat); with `relax`
        // assumed true the constraint is disabled and the violation is minimized.
        let mut ctl = Control::new(SolverConfig::default());
        ctl.add_program(
            r#"
            #external relax.
            1 { pick(a); pick(b) } 1.
            flagged(a).
            violation(P) :- pick(P), flagged(P).
            :- violation(P), not relax.
            #minimize{ 1@1000,P : violation(P), relax }.
            "#,
        )
        .unwrap();
        ctl.ground().unwrap();
        let pick_a = Assumption::holds("pick", &["a".into()]);
        // Hard mode: pick(a) violates, so it is refuted and the core names it.
        let hard = [pick_a.clone(), Assumption::fails("relax", &[])];
        match ctl.solve_with_assumptions(&hard).unwrap() {
            AssumeOutcome::Unsatisfiable { core } => assert!(core.contains(&0), "{core:?}"),
            AssumeOutcome::Optimal { .. } => panic!("hard mode must refute pick(a)"),
            AssumeOutcome::Budget { .. } => panic!("no budget installed"),
        }
        // Hard mode without the offending pick is satisfiable and must choose b.
        match ctl.solve_with_assumptions(&[Assumption::fails("relax", &[])]).unwrap() {
            AssumeOutcome::Optimal { model, cost } => {
                assert!(model.contains("pick", &["b".into()]));
                assert!(!model.contains("relax", &[]));
                assert_eq!(cost, vec![(1000, 0)]);
            }
            AssumeOutcome::Unsatisfiable { .. } => panic!("expected a model"),
            AssumeOutcome::Budget { .. } => panic!("no budget installed"),
        }
        // Relax mode on the SAME control (no second ground call): the violation is
        // admitted and reported by the minimize level.
        let ground_time = ctl.stats().ground_time;
        let relaxed = [pick_a, Assumption::holds("relax", &[])];
        match ctl.solve_with_assumptions_floor(&relaxed, 1000).unwrap() {
            AssumeOutcome::Optimal { model, cost } => {
                assert!(model.contains("violation", &["a".into()]));
                assert_eq!(cost, vec![(1000, 1)]);
            }
            AssumeOutcome::Unsatisfiable { .. } => panic!("relax mode must admit the model"),
            AssumeOutcome::Budget { .. } => panic!("no budget installed"),
        }
        assert_eq!(ctl.stats().ground_time, ground_time, "no regrounding may happen");
    }

    #[test]
    fn true_external_is_founded_not_unfounded() {
        // `a` is supported only through the external guard: assuming the guard true
        // must yield the stable model {g, a} — a stability check that treated g as
        // underivable would refute it with a loop nogood.
        let mut ctl = Control::new(SolverConfig::default());
        ctl.add_program("#external g. a :- g.").unwrap();
        ctl.ground().unwrap();
        match ctl.solve_with_assumptions(&[Assumption::holds("g", &[])]).unwrap() {
            AssumeOutcome::Optimal { model, .. } => {
                assert!(model.contains("g", &[]));
                assert!(model.contains("a", &[]));
            }
            AssumeOutcome::Unsatisfiable { core } => panic!("unexpected unsat, core {core:?}"),
            AssumeOutcome::Budget { .. } => panic!("no budget installed"),
        }
        // Unassumed, the guard stays free; both truth values admit stable models.
        assert_eq!(ctl.solve_models(8).unwrap().len(), 2);
    }

    #[test]
    fn clause_cache_warm_starts_later_solves() {
        // a and b support each other; a is also supported through the free choice x.
        // Solving under the assumption a must reject the unstable {a, b} candidate
        // with a loop nogood; a second solve on the SAME control replays it from the
        // session clause cache and must not examine unstable candidates again.
        let mut ctl = Control::new(SolverConfig::default());
        ctl.add_program("a :- b. b :- a. a :- x. { x }. #minimize{ 1@1 : x }.").unwrap();
        ctl.ground().unwrap();
        let a = [Assumption::holds("a", &[])];
        assert!(matches!(ctl.solve_with_assumptions(&a).unwrap(), AssumeOutcome::Optimal { .. }));
        assert!(ctl.stats().loop_nogoods > 0, "first solve must discover the loop nogood");
        assert!(matches!(ctl.solve_with_assumptions(&a).unwrap(), AssumeOutcome::Optimal { .. }));
        assert!(ctl.stats().warm_clauses > 0, "the cache must seed the second solve");
        assert_eq!(ctl.stats().loop_nogoods, 0, "the replayed nogood must prevent re-derivation");
    }

    #[test]
    fn pinned_assumptions_survive_core_minimization() {
        // Without the pin, every deletion probe could flip `g` true and disable the
        // guarded constraint, wrongly deleting the genuinely necessary member p.
        let mut ctl = Control::new(SolverConfig::default());
        ctl.add_program("#external g. { p; q }. :- p, not g.").unwrap();
        ctl.ground().unwrap();
        let assumptions = [Assumption::holds("p", &[]), Assumption::holds("q", &[])];
        let pinned = [Assumption::fails("g", &[])];
        let all: Vec<Assumption> =
            assumptions.iter().cloned().chain(pinned.iter().cloned()).collect();
        let core = match ctl.solve_with_assumptions(&all).unwrap() {
            AssumeOutcome::Unsatisfiable { core } => core,
            AssumeOutcome::Optimal { .. } => panic!("expected unsat"),
            AssumeOutcome::Budget { .. } => panic!("no budget installed"),
        };
        let search_core: Vec<usize> = core.into_iter().filter(|&i| i < 2).collect();
        let (minimized, _rounds) = ctl.minimize_core(&assumptions, &search_core, &pinned).unwrap();
        assert_eq!(minimized, vec![0], "only the p assumption is to blame");
    }

    #[test]
    fn contradictory_external_assumptions_are_blamed() {
        // Assigning a guard both ways must name the conflicting pair, not collapse
        // into an empty-core UNSAT that reads as structural infeasibility.
        let mut ctl = Control::new(SolverConfig::default());
        ctl.add_program("#external g. { p }.").unwrap();
        ctl.ground().unwrap();
        let a =
            [Assumption::holds("g", &[]), Assumption::holds("p", &[]), Assumption::fails("g", &[])];
        match ctl.solve_with_assumptions(&a).unwrap() {
            AssumeOutcome::Unsatisfiable { core } => assert_eq!(core, vec![0, 2]),
            AssumeOutcome::Optimal { .. } => panic!("expected unsat"),
            AssumeOutcome::Budget { .. } => panic!("no budget installed"),
        }
    }

    #[test]
    fn external_must_be_ground() {
        let mut ctl = Control::new(SolverConfig::default());
        assert!(matches!(ctl.add_program("#external g(X)."), Err(AspError::Parse(_))));
    }

    #[test]
    fn solve_before_ground_is_an_error() {
        let mut ctl = Control::new(SolverConfig::default());
        ctl.add_program("p.").unwrap();
        assert!(matches!(ctl.solve(), Err(AspError::Usage(_))));
    }

    /// A miniature concretizer-shaped program: base facts describe the universe,
    /// request facts pick roots; derivations, negation, conditions, choices, and
    /// minimize levels are all exercised so delta grounding is compared against
    /// one-shot grounding on every feature.
    const SESSION_LP: &str = r#"
        node(D) :- node(P), depends_on(P, D).
        needed(P) :- root(P).
        needed(D) :- node(P), depends_on(P, D).
        violation(P) :- node(P), not needed(P).
        :- violation(P).
        1 { version(P, V) : version_declared(P, V, W) } 1 :- node(P), has_version(P).
        has_version(P) :- version_declared(P, V, W).
        version_weight(P, W) :- version(P, V), version_declared(P, V, W).
        #minimize{ W@3,P : version_weight(P, W) }.
        #minimize{ 1@1,P : node(P), not root(P) }.
        node(P) :- root(P).
    "#;

    fn session_base_facts(ctl: &mut Control) {
        for (p, d) in [("a", "b"), ("b", "c"), ("x", "c")] {
            ctl.add_fact("depends_on", &[p.into(), d.into()]);
        }
        for (p, v, w) in [("a", "2.0", 0), ("a", "1.0", 1), ("b", "1.0", 0), ("c", "1.0", 0)] {
            ctl.add_fact("version_declared", &[p.into(), v.into(), w.into()]);
        }
    }

    fn solve_cost_and_atoms(outcome: SolveOutcome) -> (Vec<(i64, i64)>, Vec<String>) {
        match outcome {
            SolveOutcome::Optimal { model, cost } => {
                let mut atoms: Vec<String> = model
                    .atoms()
                    .iter()
                    .map(|(p, args)| {
                        let rendered: Vec<String> = args.iter().map(|a| a.as_str()).collect();
                        format!("{p}({})", rendered.join(","))
                    })
                    .collect();
                atoms.sort();
                (cost, atoms)
            }
            SolveOutcome::Unsatisfiable => (vec![], vec!["UNSAT".into()]),
        }
    }

    #[test]
    fn frozen_base_requests_match_one_shot_solves() {
        let mut base = Control::new(SolverConfig::default());
        base.add_program(SESSION_LP).unwrap();
        session_base_facts(&mut base);
        let frozen = base.freeze_base().unwrap();
        assert!(frozen.frozen_instances() > 0);

        for root in ["a", "b", "c", "x"] {
            let mut req = frozen.request();
            req.add_fact("root", &[root.into()]);
            req.ground().unwrap();
            assert!(req.stats().ground.delta, "request grounding must be incremental");
            assert!(req.stats().ground.reused_rules > 0, "base instances must be reused");
            let session = solve_cost_and_atoms(req.solve().unwrap());

            let mut one = Control::new(SolverConfig::default());
            one.add_program(SESSION_LP).unwrap();
            session_base_facts(&mut one);
            one.add_fact("root", &[root.into()]);
            one.ground().unwrap();
            let oneshot = solve_cost_and_atoms(one.solve().unwrap());
            assert_eq!(session, oneshot, "root {root}: session and one-shot must agree");
        }
    }

    #[test]
    fn delta_fact_on_derived_atom_becomes_certain() {
        // The request asserts node(c) directly — an atom the base already derives
        // (uncertain). The delta grounding must re-simplify the touched rules; the
        // solve then agrees with a from-scratch grounding. Without a root, node(c)
        // violates the needed() constraint: both paths must report UNSAT.
        let mut base = Control::new(SolverConfig::default());
        base.add_program(SESSION_LP).unwrap();
        session_base_facts(&mut base);
        let frozen = base.freeze_base().unwrap();
        let mut req = frozen.request();
        req.add_fact("node", &["c".into()]);
        req.ground().unwrap();
        assert!(!req.solve().unwrap().is_satisfiable());

        // With a root requiring it, the fact is redundant and both agree on SAT.
        let mut req = frozen.request();
        req.add_fact("node", &["c".into()]);
        req.add_fact("root", &["c".into()]);
        req.ground().unwrap();
        let session = solve_cost_and_atoms(req.solve().unwrap());
        let mut one = Control::new(SolverConfig::default());
        one.add_program(SESSION_LP).unwrap();
        session_base_facts(&mut one);
        one.add_fact("node", &["c".into()]);
        one.add_fact("root", &["c".into()]);
        one.ground().unwrap();
        assert_eq!(session, solve_cost_and_atoms(one.solve().unwrap()));
    }

    #[test]
    fn request_with_new_symbols_and_new_condition_facts() {
        // Delta facts intern brand-new symbols and extend a choice element's
        // condition (version_declared) — the phase-1 full re-join path.
        let mut base = Control::new(SolverConfig::default());
        base.add_program(SESSION_LP).unwrap();
        session_base_facts(&mut base);
        let frozen = base.freeze_base().unwrap();
        let mut req = frozen.request();
        req.add_fact("root", &["fresh".into()]);
        req.add_fact("depends_on", &["fresh".into(), "a".into()]);
        req.add_fact("version_declared", &["fresh".into(), "0.9".into(), 0.into()]);
        req.ground().unwrap();
        let session = solve_cost_and_atoms(req.solve().unwrap());
        assert!(session.1.iter().any(|a| a == "version(fresh,0.9)"), "{session:?}");

        let mut one = Control::new(SolverConfig::default());
        one.add_program(SESSION_LP).unwrap();
        session_base_facts(&mut one);
        one.add_fact("root", &["fresh".into()]);
        one.add_fact("depends_on", &["fresh".into(), "a".into()]);
        one.add_fact("version_declared", &["fresh".into(), "0.9".into(), 0.into()]);
        one.ground().unwrap();
        assert_eq!(session, solve_cost_and_atoms(one.solve().unwrap()));
    }

    #[test]
    fn restriction_on_a_non_fork_is_an_error() {
        // Restrictions only mean something on a session fork: silently returning
        // unrestricted results would be worse than failing.
        let mut ctl = Control::new(SolverConfig::default());
        ctl.add_program("p(a).").unwrap();
        ctl.restrict_symbols(["a"]);
        assert!(matches!(ctl.ground(), Err(AspError::Usage(_))));
    }

    #[test]
    fn int_range_restriction_drops_id_keyed_atoms() {
        // Id-keyed facts (ids from a dedicated range, first argument): excluding a
        // range drops those atoms and their derivations from the request's view.
        let mut base = Control::new(SolverConfig::default());
        base.add_fact("cond", &[10_000_001i64.into(), "a".into()]);
        base.add_fact("cond", &[10_000_002i64.into(), "b".into()]);
        base.add_program("holds(ID) :- cond(ID, P).").unwrap();
        let frozen = base.freeze_base().unwrap();
        let mut req = frozen.request();
        req.restrict_int_ranges([(10_000_002, 10_000_003)]);
        req.ground().unwrap();
        match req.solve().unwrap() {
            SolveOutcome::Optimal { model, .. } => {
                assert!(model.contains("holds", &[Value::Int(10_000_001)]));
                assert!(!model.contains("holds", &[Value::Int(10_000_002)]));
            }
            SolveOutcome::Unsatisfiable => panic!("expected a model"),
        }
    }

    #[test]
    fn frozen_control_rejects_programs_and_serves_many_requests() {
        let mut base = Control::new(SolverConfig::default());
        base.add_program(SESSION_LP).unwrap();
        session_base_facts(&mut base);
        let frozen = base.freeze_base().unwrap();
        let mut req = frozen.request();
        assert!(matches!(req.add_program("p."), Err(AspError::Usage(_))));
        // The same frozen base serves many requests, including after failures.
        for _ in 0..3 {
            let mut req = frozen.request();
            req.add_fact("root", &["a".into()]);
            req.ground().unwrap();
            assert!(req.solve().unwrap().is_satisfiable());
        }
    }

    const BASE_DEPS: [(&str, &str); 3] = [("a", "b"), ("b", "c"), ("x", "c")];
    const BASE_VERSIONS: [(&str, &str, i64); 4] =
        [("a", "2.0", 0), ("a", "1.0", 1), ("b", "1.0", 0), ("c", "1.0", 0)];

    /// Solve `root(<root>)` on a control freshly built from the given fact universe.
    fn one_shot(
        deps: &[(&str, &str)],
        versions: &[(&str, &str, i64)],
        root: &str,
    ) -> (Vec<(i64, i64)>, Vec<String>) {
        let mut one = Control::new(SolverConfig::default());
        one.add_program(SESSION_LP).unwrap();
        for (p, d) in deps {
            one.add_fact("depends_on", &[(*p).into(), (*d).into()]);
        }
        for (p, v, w) in versions {
            one.add_fact("version_declared", &[(*p).into(), (*v).into(), (*w).into()]);
        }
        one.add_fact("root", &[root.into()]);
        one.ground().unwrap();
        solve_cost_and_atoms(one.solve().unwrap())
    }

    /// Stage a complete post-delta fact stream on a fork of `frozen`.
    fn stage_facts(
        frozen: &FrozenControl,
        deps: &[(&str, &str)],
        versions: &[(&str, &str, i64)],
    ) -> Control {
        let mut staged = frozen.request();
        for (p, d) in deps {
            staged.add_fact("depends_on", &[(*p).into(), (*d).into()]);
        }
        for (p, v, w) in versions {
            staged.add_fact("version_declared", &[(*p).into(), (*v).into(), (*w).into()]);
        }
        staged
    }

    /// Solve `root(<root>)` on a fork of `frozen` and render the outcome.
    fn session_solve(frozen: &FrozenControl, root: &str) -> (Vec<(i64, i64)>, Vec<String>) {
        let mut req = frozen.request();
        req.add_fact("root", &[root.into()]);
        req.ground().unwrap();
        solve_cost_and_atoms(req.solve().unwrap())
    }

    #[test]
    fn patch_base_additions_then_solve_matches_fresh_freeze() {
        let mut base = Control::new(SolverConfig::default());
        base.add_program(SESSION_LP).unwrap();
        session_base_facts(&mut base);
        let mut frozen = base.freeze_base().unwrap();

        // Publish a brand-new package d that x now depends on: pure addition.
        let mut deps = BASE_DEPS.to_vec();
        deps.push(("x", "d"));
        let mut versions = BASE_VERSIONS.to_vec();
        versions.push(("d", "1.0", 0));
        let staged = stage_facts(&frozen, &deps, &versions);
        let stats = frozen.patch_base(staged, &[] as &[&str]).unwrap();
        assert!(!stats.rebuilt, "a pure addition must take the in-place path");
        assert!(stats.added_facts > 0 && stats.removed_facts == 0, "{stats:?}");

        let patched = session_solve(&frozen, "x");
        assert!(patched.1.iter().any(|a| a == "version(d,1.0)"), "{patched:?}");
        assert_eq!(patched, one_shot(&deps, &versions, "x"));
        // Untouched parts of the base answer exactly as before the patch.
        assert_eq!(session_solve(&frozen, "a"), one_shot(&deps, &versions, "a"));
    }

    #[test]
    fn patch_base_removal_then_re_add_round_trips() {
        let mut base = Control::new(SolverConfig::default());
        base.add_program(SESSION_LP).unwrap();
        session_base_facts(&mut base);
        let mut frozen = base.freeze_base().unwrap();

        // Yank a@2.0: the preferred version disappears, so solves must fall back.
        let after: Vec<_> =
            BASE_VERSIONS.iter().copied().filter(|(p, v, _)| !(*p == "a" && *v == "2.0")).collect();
        let staged = stage_facts(&frozen, &BASE_DEPS, &after);
        let stats = frozen.patch_base(staged, &[] as &[&str]).unwrap();
        assert!(stats.rebuilt, "a removal must rebuild");
        let yanked = session_solve(&frozen, "a");
        assert!(yanked.1.iter().any(|a| a == "version(a,1.0)"), "{yanked:?}");
        assert_eq!(yanked, one_shot(&BASE_DEPS, &after, "a"));

        // Re-publish it: the session must converge back to the original answers.
        let staged = stage_facts(&frozen, &BASE_DEPS, &BASE_VERSIONS);
        frozen.patch_base(staged, &[] as &[&str]).unwrap();
        assert_eq!(session_solve(&frozen, "a"), one_shot(&BASE_DEPS, &BASE_VERSIONS, "a"));
    }

    #[test]
    fn patch_base_rejects_foreign_forks_and_shared_bases() {
        let mut base = Control::new(SolverConfig::default());
        base.add_program(SESSION_LP).unwrap();
        session_base_facts(&mut base);
        let mut frozen = base.freeze_base().unwrap();

        // A fork of a *different* frozen base is not a valid delta carrier.
        let mut other = Control::new(SolverConfig::default());
        other.add_program(SESSION_LP).unwrap();
        session_base_facts(&mut other);
        let other_frozen = other.freeze_base().unwrap();
        let foreign = other_frozen.request();
        assert!(matches!(frozen.patch_base(foreign, &[] as &[&str]), Err(AspError::Usage(_))));

        // While another fork is alive the base is shared and cannot be mutated.
        let staged = stage_facts(&frozen, &BASE_DEPS, &BASE_VERSIONS);
        let in_flight = frozen.request();
        assert!(matches!(frozen.patch_base(staged, &[] as &[&str]), Err(AspError::Usage(_))));
        drop(in_flight);

        // Once the fork is gone, patching succeeds again.
        let staged = stage_facts(&frozen, &BASE_DEPS, &BASE_VERSIONS);
        assert!(frozen.patch_base(staged, &[] as &[&str]).is_ok());
    }

    #[test]
    fn model_query_api() {
        let mut ctl = Control::new(SolverConfig::default());
        ctl.add_fact("version_declared", &["zlib".into(), "1.2.11".into(), 0.into()]);
        ctl.add_program("chosen(P, V) :- version_declared(P, V, W).").unwrap();
        ctl.ground().unwrap();
        let outcome = ctl.solve().unwrap();
        let model = outcome.model().unwrap();
        let rows: Vec<_> = model.with_pred("chosen").collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0].as_str(), "zlib");
        assert_eq!(rows[0][1].as_str(), "1.2.11");
    }

    /// A program whose first model is found without a single conflict (flip
    /// `escape` on) but whose optimality proof ("no model avoids the escape
    /// hatch") is a pigeonhole UNSAT instance requiring well over a thousand
    /// conflicts. Any conflict limit between those two extremes deterministically
    /// interrupts branch and bound *after* the incumbent is proven stable.
    const PIGEON_DESCENT_LP: &str = r#"
        pigeon(p1). pigeon(p2). pigeon(p3). pigeon(p4). pigeon(p5). pigeon(p6). pigeon(p7).
        hole(h1). hole(h2). hole(h3). hole(h4). hole(h5). hole(h6).
        { escape }.
        1 { at(P, H) : hole(H) } 1 :- pigeon(P), not escape.
        :- at(P1, H), at(P2, H), P1 != P2.
        #minimize{ 1@1 : escape }.
    "#;

    #[test]
    fn zero_wall_deadline_interrupts_before_any_model() {
        // A zero deadline arms the budget synchronously (no monitor thread), so
        // the very first descent into the solver is interrupted: deterministic
        // coverage for the no-partial-model path.
        let mut ctl = Control::new(SolverConfig {
            budget: Some(SolveBudget { wall_deadline: Some(Duration::ZERO), conflict_limit: None }),
            ..SolverConfig::default()
        });
        ctl.add_program(PIGEON_DESCENT_LP).unwrap();
        ctl.ground().unwrap();
        match ctl.solve_with_assumptions(&[]).unwrap() {
            AssumeOutcome::Budget { partial: None } => {}
            other => panic!("expected an empty budget outcome, got {other:?}"),
        }
        assert!(ctl.stats().budget_exhausted);
        // The budget is per solve: clearing it restores normal optimal solving.
        ctl.solver_config_mut().budget = None;
        match ctl.solve_with_assumptions(&[]).unwrap() {
            AssumeOutcome::Optimal { cost, .. } => assert_eq!(cost, vec![(1, 1)]),
            other => panic!("expected optimal after clearing the budget, got {other:?}"),
        }
        assert!(!ctl.stats().budget_exhausted);
    }

    #[test]
    fn conflict_limit_degrades_to_best_proven_model() {
        let mut ctl = Control::new(SolverConfig {
            budget: Some(SolveBudget { wall_deadline: None, conflict_limit: Some(100) }),
            ..SolverConfig::default()
        });
        ctl.add_program(PIGEON_DESCENT_LP).unwrap();
        ctl.ground().unwrap();
        match ctl.solve_with_assumptions(&[]).unwrap() {
            AssumeOutcome::Budget { partial: Some((model, cost)) } => {
                // The incumbent stable model (escape hatch taken) survives the
                // interrupted optimality proof, marked non-optimal via stats.
                assert!(model.contains("escape", &[]));
                assert_eq!(cost, vec![(1, 1)]);
            }
            other => panic!("expected a partial budget outcome, got {other:?}"),
        }
        assert!(ctl.stats().budget_exhausted);
        assert!(ctl.stats().conflicts >= 100);
    }

    #[test]
    fn budget_partial_surfaces_as_non_optimal_solve_outcome() {
        // The plain solve() entry point folds a partial budget model into
        // SolveOutcome::Optimal; budget_exhausted records that optimality was
        // not proven.
        let mut ctl = Control::new(SolverConfig {
            budget: Some(SolveBudget { wall_deadline: None, conflict_limit: Some(100) }),
            ..SolverConfig::default()
        });
        ctl.add_program(PIGEON_DESCENT_LP).unwrap();
        ctl.ground().unwrap();
        match ctl.solve().unwrap() {
            SolveOutcome::Optimal { model, cost } => {
                assert!(model.contains("escape", &[]));
                assert_eq!(cost, vec![(1, 1)]);
            }
            SolveOutcome::Unsatisfiable => panic!("expected a model"),
        }
        assert!(ctl.stats().budget_exhausted);
    }

    #[test]
    fn doubled_budget_escalates_both_limits() {
        let b = SolveBudget {
            wall_deadline: Some(Duration::from_millis(250)),
            conflict_limit: Some(1000),
        };
        let d = b.doubled();
        assert_eq!(d.wall_deadline, Some(Duration::from_millis(500)));
        assert_eq!(d.conflict_limit, Some(2000));
        assert!(!SolveBudget::unlimited().is_bounded());
        assert!(b.is_bounded());
    }
}

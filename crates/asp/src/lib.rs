//! A self-contained Answer Set Programming engine.
//!
//! This crate is the *clingo substitute* for the Rust reproduction of
//! *Using Answer Set Programming for HPC Dependency Solving* (SC'22). The paper's
//! concretizer sends a logic program plus tens of thousands of facts to clingo
//! (gringo + clasp); here the same pipeline is implemented from scratch:
//!
//! * [`parser`] — the ASP input language (facts, rules with variables, integrity
//!   constraints, choice rules with cardinality bounds, conditional literals,
//!   `#minimize` with priorities),
//! * [`ground`] — the grounder (the gringo analogue): semi-naive instantiation of
//!   first-order rules into a propositional program, with the simplifications shown in
//!   Fig. 3 of the paper,
//! * [`sat`] — a CDCL solver (the clasp analogue) with watched literals, 1-UIP clause
//!   learning, VSIDS, phase saving, restarts, and native cardinality / weighted-sum
//!   constraints,
//! * [`translate`] — Clark completion + choice-bound translation to clauses/constraints,
//! * [`stable`] — lazy unfounded-set checking so only *stable* models are reported,
//! * [`optimize`] — lexicographic multi-objective optimization (model-guided branch and
//!   bound), and
//! * [`control`] — a clingo-like front end ([`Control`]) with phase timings
//!   (load / ground / solve) and configuration presets named after the clingo presets
//!   the paper benchmarks (tweety, trendy, handy).
//!
//! # Dialect restrictions
//!
//! The engine supports the fragment of the ASP language the paper's concretization
//! program uses, with two restrictions: conditions of conditional literals and of choice
//! elements must be input facts, and every rule must be safe (each variable bound by a
//! positive body literal). `#maximize`, function terms, and intervals are not supported.
//!
//! `#external atom.` declares a ground *guard atom* in the clingo style: the grounder
//! treats it as possible, the translation exempts it from support-based elimination
//! (it is free instead of forced false), and the stability check treats a true
//! external as founded. Its truth is fixed per solve through an assumption
//! ([`Control::solve_with_assumptions`]), so one ground program can serve several
//! differently-parameterized solves — together with the per-solve priority floor of
//! [`Control::solve_with_assumptions_floor`], this is what lets the concretizer flip
//! between hard and relaxed error semantics without regrounding.
//!
//! # Example
//!
//! ```
//! use asp::{Control, SolverConfig, SolveOutcome};
//!
//! let mut ctl = Control::new(SolverConfig::default());
//! ctl.add_fact("depends_on", &["a".into(), "b".into()]);
//! ctl.add_fact("node", &["a".into()]);
//! ctl.add_program("node(D) :- node(P), depends_on(P, D).").unwrap();
//! ctl.ground().unwrap();
//! match ctl.solve().unwrap() {
//!     SolveOutcome::Optimal { model, .. } => {
//!         assert!(model.contains("node", &["b".into()]));
//!     }
//!     SolveOutcome::Unsatisfiable => unreachable!(),
//! }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod control;
pub mod ground;
pub mod hasher;
pub mod lexer;
pub mod optimize;
pub mod parser;
pub mod sat;
pub mod stable;
pub mod symbols;
pub mod translate;

pub use control::{
    AspError, AssumeOutcome, Assumption, Control, FrozenControl, Model, Preset, SolveBudget,
    SolveOutcome, SolverConfig, Stats, Value,
};
pub use ground::PatchStats;
pub use optimize::OptStrategy;
pub use sat::SharedClauseStore;

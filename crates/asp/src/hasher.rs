//! A fast, non-cryptographic hasher for the engine's hot maps.
//!
//! Grounding interns hundreds of thousands of atoms and performs millions of index
//! lookups; with the standard library's default SipHash those lookups dominate the
//! profile. This is the Firefox/rustc "FxHash" multiply-rotate scheme: not DoS
//! resistant, which is fine for maps keyed by interned ids and ground values that the
//! program itself produced.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash word-at-a-time multiply-rotate hasher.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_and_sets_behave() {
        let mut m: FxHashMap<(u32, u8, i64), Vec<u32>> = FxHashMap::default();
        for i in 0..1000u32 {
            m.entry((i % 50, (i % 7) as u8, i as i64)).or_default().push(i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(3, 3, 3)), Some(&vec![3]));

        let mut s: FxHashSet<Vec<u32>> = FxHashSet::default();
        assert!(s.insert(vec![1, 2, 3]));
        assert!(!s.insert(vec![1, 2, 3]));
    }

    #[test]
    fn hash_differs_across_inputs() {
        use std::hash::Hash;
        let h = |x: &dyn Fn(&mut FxHasher)| {
            let mut hasher = FxHasher::default();
            x(&mut hasher);
            hasher.finish()
        };
        let a = h(&|hh| 1u64.hash(hh));
        let b = h(&|hh| 2u64.hash(hh));
        assert_ne!(a, b);
        let s1 = h(&|hh| "hello".hash(hh));
        let s2 = h(&|hh| "hellp".hash(hh));
        assert_ne!(s1, s2);
    }
}

//! Stable-model (answer-set) checking.
//!
//! Clark completion admits *supported* models that are not *stable*: sets of atoms that
//! justify each other only through a positive cycle (e.g. two packages that "depend on"
//! each other with no root requiring either). [`unfounded_set`] recomputes the least
//! model of the reduct of the program w.r.t. a candidate model; any true atom not in that
//! least model is unfounded. The solver then adds a *loop nogood* requiring at least one
//! unfounded atom to be false and continues the search, exactly like clasp's lazy
//! unfounded-set checking.

use crate::ground::GroundProgram;
use crate::symbols::AtomId;

/// Compute the set of atoms that are true in `model` but not derivable from the reduct of
/// the program w.r.t. `model`. An empty result means the model is stable.
///
/// `model` is indexed by SAT variable; only the first `ground.atoms.len()` entries (the
/// program atoms) are inspected.
pub fn unfounded_set(ground: &GroundProgram, model: &[bool]) -> Vec<AtomId> {
    let n = ground.atoms.len();
    let mut derived = vec![false; n];
    for (id, _) in ground.atoms.iter() {
        if ground.atoms.is_certain(id) {
            derived[id as usize] = true;
        }
    }

    // Fixpoint over the reduct: a rule contributes when its negative body is not
    // contradicted by the model and its positive body is already derived. Choice rules
    // justify exactly the atoms the model chose.
    let mut changed = true;
    while changed {
        changed = false;
        for rule in &ground.rules {
            let head = match rule.head {
                Some(h) => h,
                None => continue,
            };
            if derived[head as usize] {
                continue;
            }
            if rule.neg.iter().any(|&a| model[a as usize]) {
                continue;
            }
            if rule.pos.iter().all(|&a| derived[a as usize]) {
                derived[head as usize] = true;
                changed = true;
            }
        }
        for choice in &ground.choices {
            if choice.neg.iter().any(|&a| model[a as usize]) {
                continue;
            }
            if !choice.pos.iter().all(|&a| derived[a as usize]) {
                continue;
            }
            for &h in &choice.heads {
                if model[h as usize] && !derived[h as usize] {
                    derived[h as usize] = true;
                    changed = true;
                }
            }
        }
    }

    (0..n as AtomId)
        .filter(|&a| model[a as usize] && !derived[a as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::Grounder;
    use crate::parser::parse_program;
    use crate::symbols::SymbolTable;

    fn ground_text(text: &str) -> (GroundProgram, SymbolTable) {
        let program = parse_program(text).unwrap();
        let mut symbols = SymbolTable::new();
        let ground = Grounder::new(&mut symbols).ground(&program, &[]).unwrap();
        (ground, symbols)
    }

    fn model_with(ground: &GroundProgram, symbols: &SymbolTable, true_atoms: &[&str]) -> Vec<bool> {
        let mut model = vec![false; ground.atoms.len()];
        for (id, atom) in ground.atoms.iter() {
            let name = atom.display(symbols).to_string();
            if ground.atoms.is_certain(id) || true_atoms.contains(&name.as_str()) {
                model[id as usize] = true;
            }
        }
        model
    }

    #[test]
    fn self_supporting_loop_is_unfounded() {
        // With `start` false, {a, b} can only justify each other through the positive
        // cycle a :- b / b :- a: supported but not stable.
        let (ground, symbols) = ground_text(
            r#"
            { start }.
            a :- start.
            a :- b.
            b :- a.
            "#,
        );
        let model = model_with(&ground, &symbols, &["a", "b"]);
        let unfounded = unfounded_set(&ground, &model);
        assert_eq!(unfounded.len(), 2);

        // When `start` is chosen the same atoms are founded.
        let model = model_with(&ground, &symbols, &["start", "a", "b"]);
        assert!(unfounded_set(&ground, &model).is_empty());

        let empty = model_with(&ground, &symbols, &[]);
        assert!(unfounded_set(&ground, &empty).is_empty());
    }

    #[test]
    fn derivation_through_facts_is_founded() {
        let (ground, symbols) = ground_text(
            r#"
            node(a).
            depends_on(a, b).
            depends_on(b, a).
            node(D) :- node(P), depends_on(P, D).
            "#,
        );
        // Both node(a) (a fact) and node(b) (derived from it) are founded even though the
        // dependency edges form a cycle.
        let model = model_with(&ground, &symbols, &["node(b)"]);
        assert!(unfounded_set(&ground, &model).is_empty());
    }

    #[test]
    fn chosen_atoms_are_founded_only_if_their_choice_body_holds() {
        let (ground, symbols) = ground_text(
            r#"
            q(1).
            { seed }.
            trigger :- seed.
            { pick(X) : q(X) } 1 :- trigger.
            trigger :- pick(1).
            "#,
        );
        // With `seed` false, {trigger, pick(1)} supports itself in a cycle: pick is only
        // available when trigger holds, and trigger only holds when pick(1) is true.
        let model = model_with(&ground, &symbols, &["trigger", "pick(1)"]);
        let unfounded = unfounded_set(&ground, &model);
        assert!(!unfounded.is_empty());
        // With `seed` chosen, trigger is founded and so is the chosen pick(1).
        let model = model_with(&ground, &symbols, &["seed", "trigger", "pick(1)"]);
        assert!(unfounded_set(&ground, &model).is_empty());
    }

    #[test]
    fn negative_bodies_respect_the_model() {
        let (ground, symbols) = ground_text(
            r#"
            item(a).
            blocked(a).
            ok(X) :- item(X), not blocked(X).
            "#,
        );
        // ok(a) cannot be derived because blocked(a) is true in the model.
        let model = model_with(&ground, &symbols, &["ok(a)"]);
        let unfounded = unfounded_set(&ground, &model);
        assert_eq!(unfounded.len(), 1);
    }
}

//! Stable-model (answer-set) checking.
//!
//! Clark completion admits *supported* models that are not *stable*: sets of atoms that
//! justify each other only through a positive cycle (e.g. two packages that "depend on"
//! each other with no root requiring either). [`unfounded_set`] recomputes the least
//! model of the reduct of the program w.r.t. a candidate model; any true atom not in that
//! least model is unfounded. The solver then adds the *loop nogood* built by
//! [`StabilityChecker::unfounded_nogood`] and continues the search, exactly like clasp's
//! lazy unfounded-set checking.
//!
//! The nogood is the loop formula's clausal core: at least one unfounded atom must be
//! false **or** at least one *external support* of the set must come true — one
//! currently-false body literal per rule that could support the set from outside it.
//! A bare "some unfounded atom is false" clause would be unsound: it would also
//! eliminate later models in which the very same atoms are legitimately founded through
//! one of those external rules.

use crate::ground::GroundProgram;
use crate::sat::{Lit, Var};
use crate::symbols::AtomId;

/// A reusable unfounded-set checker.
///
/// The least model of the reduct is computed with a counting worklist algorithm
/// (Dowling–Gallier): every rule keeps the number of its not-yet-derived positive body
/// atoms, a CSR occurrence index maps each atom to the rules whose counters it
/// decrements, and a rule fires exactly when its counter reaches zero. One check is
/// O(program size), not O(rules × fixpoint depth) — and the occurrence index and the
/// base counters (positive body atoms that are not input facts) are built once and
/// shared by every check, which matters because the optimizer validates every candidate
/// model this way.
pub struct StabilityChecker {
    /// CSR offsets: for atom `a`, its occurrences are `occ_data[occ_off[a]..occ_off[a+1]]`.
    occ_off: Vec<u32>,
    /// Rule ids (`0..rules.len()` normal rules, then `rules.len()..` choice rules).
    occ_data: Vec<u32>,
    /// Per rule: number of positive body atoms that are not certain (input facts).
    base_remaining: Vec<u32>,
    /// Scratch: per-call remaining counters.
    remaining: Vec<u32>,
    /// Scratch: derived marker per atom.
    derived: Vec<bool>,
    /// Scratch: worklist of newly derived atoms.
    worklist: Vec<AtomId>,
    /// Scratch: unfounded-set membership, used while collecting external supports.
    in_unfounded: Vec<bool>,
}

impl StabilityChecker {
    /// Build the occurrence index for a ground program.
    pub fn new(ground: &GroundProgram) -> Self {
        let n_atoms = ground.atoms.len();
        let n_rules = ground.rules.len() + ground.choices.len();
        // Count occurrences per atom (positive bodies only, which are deduplicated by
        // the grounder, so each occurrence decrements its counter exactly once).
        let mut occ_off = vec![0u32; n_atoms + 1];
        let mut base_remaining = vec![0u32; n_rules];
        let pos_bodies =
            ground.rules.iter().map(|r| &r.pos).chain(ground.choices.iter().map(|c| &c.pos));
        for (ri, pos) in pos_bodies.clone().enumerate() {
            for &a in pos.iter() {
                if !ground.atoms.is_certain(a) {
                    occ_off[a as usize + 1] += 1;
                    base_remaining[ri] += 1;
                }
            }
        }
        for i in 0..n_atoms {
            occ_off[i + 1] += occ_off[i];
        }
        let mut cursor = occ_off.clone();
        let mut occ_data = vec![0u32; occ_off[n_atoms] as usize];
        for (ri, pos) in pos_bodies.enumerate() {
            for &a in pos.iter() {
                if !ground.atoms.is_certain(a) {
                    occ_data[cursor[a as usize] as usize] = ri as u32;
                    cursor[a as usize] += 1;
                }
            }
        }
        StabilityChecker {
            occ_off,
            occ_data,
            base_remaining,
            remaining: Vec::new(),
            derived: vec![false; n_atoms],
            worklist: Vec::new(),
            in_unfounded: vec![false; n_atoms],
        }
    }

    /// Check `model` for stability and, when it is unstable, build the sound loop
    /// nogood for its unfounded set `U`: a clause requiring at least one atom of `U`
    /// to be false **or** at least one *external support* of `U` to come true.
    ///
    /// External supports are the rules (normal or choice) with a head in `U` whose
    /// positive body is disjoint from `U`; by construction of `U` each such body is
    /// false under `model`, so it contributes one currently-false witness literal. Any
    /// stable model falsifying all witnesses has every external body false, leaving
    /// `U` unfounded — so the clause holds in every stable model and may safely
    /// persist across solver runs. Returns `None` when the model is stable.
    pub fn unfounded_nogood(&mut self, ground: &GroundProgram, model: &[bool]) -> Option<Vec<Lit>> {
        let unfounded = self.unfounded_set(ground, model);
        if unfounded.is_empty() {
            return None;
        }
        for &u in &unfounded {
            self.in_unfounded[u as usize] = true;
        }
        let mut clause: Vec<Lit> = unfounded.iter().map(|&u| Lit::neg(u as Var)).collect();
        let external = |pos: &[AtomId], in_u: &[bool]| !pos.iter().any(|&p| in_u[p as usize]);
        let witness = |pos: &[AtomId], neg: &[AtomId]| -> Option<Lit> {
            if let Some(&p) = pos.iter().find(|&&p| !model[p as usize]) {
                return Some(Lit::pos(p as Var));
            }
            neg.iter().find(|&&n| model[n as usize]).map(|&n| Lit::neg(n as Var))
        };
        for rule in &ground.rules {
            let Some(h) = rule.head else { continue };
            if !self.in_unfounded[h as usize] || !external(&rule.pos, &self.in_unfounded) {
                continue;
            }
            // An external rule of an unfounded set always has a false body literal
            // (a true external body would have derived the head in the reduct).
            clause.extend(witness(&rule.pos, &rule.neg));
        }
        for choice in &ground.choices {
            if !choice.heads.iter().any(|&h| self.in_unfounded[h as usize])
                || !external(&choice.pos, &self.in_unfounded)
            {
                continue;
            }
            clause.extend(witness(&choice.pos, &choice.neg));
        }
        for &u in &unfounded {
            self.in_unfounded[u as usize] = false;
        }
        clause.sort_unstable();
        clause.dedup();
        Some(clause)
    }

    /// Compute the set of atoms that are true in `model` but not derivable from the
    /// reduct of the program w.r.t. `model`. An empty result means the model is stable.
    ///
    /// `model` is indexed by SAT variable; only the first `ground.atoms.len()` entries
    /// (the program atoms) are inspected.
    pub fn unfounded_set(&mut self, ground: &GroundProgram, model: &[bool]) -> Vec<AtomId> {
        let n = ground.atoms.len();
        let n_normal = ground.rules.len();
        self.remaining.clear();
        self.remaining.extend_from_slice(&self.base_remaining);
        for d in &mut self.derived {
            *d = false;
        }
        self.worklist.clear();

        // Seed: input facts are derived; rules whose positive body is fully certain
        // fire immediately (if their negative body survives the reduct). A true
        // `#external` guard atom counts as derived too — its truth is supplied from
        // outside the program (a per-solve assumption), like a fact, so atoms founded
        // through it must not be reported unfounded. Unlike facts, externals occur in
        // the occurrence counters, so they go on the worklist to decrement them.
        for (id, _) in ground.atoms.iter() {
            if ground.atoms.is_certain(id) {
                self.derived[id as usize] = true;
            }
        }
        for &ext in ground.atoms.externals() {
            if model[ext as usize] && !self.derived[ext as usize] {
                self.derived[ext as usize] = true;
                self.worklist.push(ext);
            }
        }
        for ri in 0..self.base_remaining.len() {
            if self.base_remaining[ri] == 0 {
                self.fire_rule(ri, ground, model, n_normal);
            }
        }
        // Worklist propagation: each newly derived atom decrements the counters of the
        // rules whose positive bodies contain it.
        while let Some(a) = self.worklist.pop() {
            let (start, end) =
                (self.occ_off[a as usize] as usize, self.occ_off[a as usize + 1] as usize);
            for k in start..end {
                let ri = self.occ_data[k] as usize;
                self.remaining[ri] -= 1;
                if self.remaining[ri] == 0 {
                    self.fire_rule(ri, ground, model, n_normal);
                }
            }
        }

        (0..n as AtomId).filter(|&a| model[a as usize] && !self.derived[a as usize]).collect()
    }

    /// A rule's positive body is fully derived: derive its head(s), respecting the
    /// reduct (negative body false in the model) and, for choices, the model's picks.
    fn fire_rule(&mut self, ri: usize, ground: &GroundProgram, model: &[bool], n_normal: usize) {
        if ri < n_normal {
            let rule = &ground.rules[ri];
            let head = match rule.head {
                Some(h) => h,
                None => return,
            };
            if self.derived[head as usize] {
                return;
            }
            if rule.neg.iter().any(|&a| model[a as usize]) {
                return;
            }
            self.derived[head as usize] = true;
            self.worklist.push(head);
        } else {
            let choice = &ground.choices[ri - n_normal];
            if choice.neg.iter().any(|&a| model[a as usize]) {
                return;
            }
            for &h in &choice.heads {
                if model[h as usize] && !self.derived[h as usize] {
                    self.derived[h as usize] = true;
                    self.worklist.push(h);
                }
            }
        }
    }
}

/// One-shot convenience wrapper over [`StabilityChecker`]: build the index, run a
/// single check. Callers that validate many models should hold a checker instead.
pub fn unfounded_set(ground: &GroundProgram, model: &[bool]) -> Vec<AtomId> {
    StabilityChecker::new(ground).unfounded_set(ground, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::Grounder;
    use crate::parser::parse_program;
    use crate::symbols::SymbolTable;

    fn ground_text(text: &str) -> (GroundProgram, SymbolTable) {
        let program = parse_program(text).unwrap();
        let mut symbols = SymbolTable::new();
        let ground = Grounder::new(&mut symbols).ground(&program, &[]).unwrap();
        (ground, symbols)
    }

    fn model_with(ground: &GroundProgram, symbols: &SymbolTable, true_atoms: &[&str]) -> Vec<bool> {
        let mut model = vec![false; ground.atoms.len()];
        for (id, atom) in ground.atoms.iter() {
            let name = atom.display(symbols).to_string();
            if ground.atoms.is_certain(id) || true_atoms.contains(&name.as_str()) {
                model[id as usize] = true;
            }
        }
        model
    }

    #[test]
    fn self_supporting_loop_is_unfounded() {
        // With `start` false, {a, b} can only justify each other through the positive
        // cycle a :- b / b :- a: supported but not stable.
        let (ground, symbols) = ground_text(
            r#"
            { start }.
            a :- start.
            a :- b.
            b :- a.
            "#,
        );
        let model = model_with(&ground, &symbols, &["a", "b"]);
        let unfounded = unfounded_set(&ground, &model);
        assert_eq!(unfounded.len(), 2);

        // When `start` is chosen the same atoms are founded.
        let model = model_with(&ground, &symbols, &["start", "a", "b"]);
        assert!(unfounded_set(&ground, &model).is_empty());

        let empty = model_with(&ground, &symbols, &[]);
        assert!(unfounded_set(&ground, &empty).is_empty());
    }

    #[test]
    fn derivation_through_facts_is_founded() {
        let (ground, symbols) = ground_text(
            r#"
            node(a).
            depends_on(a, b).
            depends_on(b, a).
            node(D) :- node(P), depends_on(P, D).
            "#,
        );
        // Both node(a) (a fact) and node(b) (derived from it) are founded even though the
        // dependency edges form a cycle.
        let model = model_with(&ground, &symbols, &["node(b)"]);
        assert!(unfounded_set(&ground, &model).is_empty());
    }

    #[test]
    fn chosen_atoms_are_founded_only_if_their_choice_body_holds() {
        let (ground, symbols) = ground_text(
            r#"
            q(1).
            { seed }.
            trigger :- seed.
            { pick(X) : q(X) } 1 :- trigger.
            trigger :- pick(1).
            "#,
        );
        // With `seed` false, {trigger, pick(1)} supports itself in a cycle: pick is only
        // available when trigger holds, and trigger only holds when pick(1) is true.
        let model = model_with(&ground, &symbols, &["trigger", "pick(1)"]);
        let unfounded = unfounded_set(&ground, &model);
        assert!(!unfounded.is_empty());
        // With `seed` chosen, trigger is founded and so is the chosen pick(1).
        let model = model_with(&ground, &symbols, &["seed", "trigger", "pick(1)"]);
        assert!(unfounded_set(&ground, &model).is_empty());
    }

    #[test]
    fn loop_nogood_carries_external_support_witnesses() {
        // U = {a, b}; the rule a :- x is U's external support with x false, so the
        // nogood must be (¬a ∨ ¬b ∨ x) — not the unsound bare ¬a ∨ ¬b, which would
        // also kill the stable model {x, a, b}.
        let (ground, symbols) = ground_text(
            r#"
            a :- b.
            b :- a.
            a :- x.
            { x }.
            "#,
        );
        let model = model_with(&ground, &symbols, &["a", "b"]);
        let mut checker = StabilityChecker::new(&ground);
        let nogood = checker.unfounded_nogood(&ground, &model).expect("unstable");
        let id_of = |name: &str| {
            ground
                .atoms
                .iter()
                .find(|(_, atom)| atom.display(&symbols).to_string() == name)
                .map(|(id, _)| id)
                .unwrap()
        };
        assert!(nogood.contains(&Lit::neg(id_of("a"))), "{nogood:?}");
        assert!(nogood.contains(&Lit::neg(id_of("b"))), "{nogood:?}");
        assert!(
            nogood.contains(&Lit::pos(id_of("x"))),
            "external support witness x missing: {nogood:?}"
        );
        // The externally supported model is stable: no nogood.
        let model = model_with(&ground, &symbols, &["x", "a", "b"]);
        assert!(checker.unfounded_nogood(&ground, &model).is_none());
    }

    #[test]
    fn negative_bodies_respect_the_model() {
        let (ground, symbols) = ground_text(
            r#"
            item(a).
            blocked(a).
            ok(X) :- item(X), not blocked(X).
            "#,
        );
        // ok(a) cannot be derived because blocked(a) is true in the model.
        let model = model_with(&ground, &symbols, &["ok(a)"]);
        let unfounded = unfounded_set(&ground, &model);
        assert_eq!(unfounded.len(), 1);
    }
}

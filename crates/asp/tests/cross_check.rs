//! Cross-check of the optimized grounder + solver pipeline against a brute-force
//! reference.
//!
//! Random small programs (facts, safe rules with negation, choice rules with bounds,
//! integrity constraints, minimize statements) are solved twice:
//!
//! * by the engine — `Control::ground()` (indexed semi-naive grounding, join planner)
//!   followed by `enumerate_models` / `solve_optimal` (incremental linear propagation,
//!   learned-clause deletion, warm-started bounds), and
//! * by an independent brute-force enumerator that tries *every* subset of the possible
//!   atoms and applies the textbook stable-model definition (rule/constraint/bound
//!   satisfaction plus foundedness via a naive multi-pass reduct fixpoint — the
//!   algorithm the optimized `StabilityChecker` replaced).
//!
//! The stable-model *sets* must match exactly, and the optimizer's objective vector
//! must equal the lexicographic minimum over the brute-force models. This pins the
//! whole chain of hot-path rewrites to the semantics of the naive implementation.

use proptest::prelude::*;

use asp::control::{Control, SolverConfig};
use asp::ground::GroundProgram;
use asp::symbols::SymbolTable;

// ---------- reference implementation ----------------------------------------------------

/// Textbook stable-model test, written against the *naive* definitions on purpose.
fn is_stable_reference(ground: &GroundProgram, model: &[bool]) -> bool {
    // Input facts are true.
    for (id, _) in ground.atoms.iter() {
        if ground.atoms.is_certain(id) && !model[id as usize] {
            return false;
        }
    }
    // Rules and constraints are satisfied.
    for rule in &ground.rules {
        let body = rule.pos.iter().all(|&a| model[a as usize])
            && rule.neg.iter().all(|&a| !model[a as usize]);
        match rule.head {
            None => {
                if body {
                    return false;
                }
            }
            Some(h) => {
                if body && !model[h as usize] {
                    return false;
                }
            }
        }
    }
    // Choice bounds hold whenever the choice body holds.
    for choice in &ground.choices {
        let body = choice.pos.iter().all(|&a| model[a as usize])
            && choice.neg.iter().all(|&a| !model[a as usize]);
        if body {
            let count = choice.heads.iter().filter(|&&h| model[h as usize]).count() as i64;
            if choice.lower.is_some_and(|l| count < l) || choice.upper.is_some_and(|u| count > u) {
                return false;
            }
        }
    }
    // Foundedness: naive fixpoint over the reduct.
    let n = ground.atoms.len();
    let mut derived = vec![false; n];
    for (id, _) in ground.atoms.iter() {
        if ground.atoms.is_certain(id) {
            derived[id as usize] = true;
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for rule in &ground.rules {
            let Some(head) = rule.head else { continue };
            if derived[head as usize]
                || rule.neg.iter().any(|&a| model[a as usize])
                || !rule.pos.iter().all(|&a| derived[a as usize])
            {
                continue;
            }
            derived[head as usize] = true;
            changed = true;
        }
        for choice in &ground.choices {
            if choice.neg.iter().any(|&a| model[a as usize])
                || !choice.pos.iter().all(|&a| derived[a as usize])
            {
                continue;
            }
            for &h in &choice.heads {
                if model[h as usize] && !derived[h as usize] {
                    derived[h as usize] = true;
                    changed = true;
                }
            }
        }
    }
    (0..n).all(|a| !model[a] || derived[a])
}

/// Visit every candidate interpretation (all subsets of the non-certain atoms, with
/// the input facts forced true). Only usable for tiny programs (the generator stays
/// below ~16 free atoms).
fn for_each_candidate(ground: &GroundProgram, mut f: impl FnMut(&[bool])) {
    let n = ground.atoms.len();
    let free: Vec<usize> = (0..n).filter(|&a| !ground.atoms.is_certain(a as u32)).collect();
    assert!(free.len() <= 18, "generator produced too many atoms for brute force");
    let mut model = vec![false; n];
    for (id, _) in ground.atoms.iter() {
        if ground.atoms.is_certain(id) {
            model[id as usize] = true;
        }
    }
    for mask in 0u32..(1u32 << free.len()) {
        for (bit, &a) in free.iter().enumerate() {
            model[a] = mask & (1 << bit) != 0;
        }
        f(&model);
    }
}

/// Every stable model of the ground program, by exhaustive search.
fn brute_force_models(ground: &GroundProgram) -> Vec<Vec<bool>> {
    let mut models = Vec::new();
    for_each_candidate(ground, |model| {
        if is_stable_reference(ground, model) {
            models.push(model.to_vec());
        }
    });
    models
}

/// Project a model onto user-visible atom names (internal `__` auxiliaries dropped),
/// as a sorted list usable for set comparison.
fn visible_atoms(ground: &GroundProgram, symbols: &SymbolTable, model: &[bool]) -> Vec<String> {
    let mut atoms: Vec<String> = ground
        .atoms
        .iter()
        .filter(|(id, atom)| model[*id as usize] && !symbols.name(atom.pred).starts_with("__"))
        .map(|(_, atom)| atom.display(symbols).to_string())
        .collect();
    atoms.sort();
    atoms
}

/// The objective vector of a model: `(priority, value)` sorted by decreasing priority,
/// one entry per priority level occurring in the program.
fn cost_vector(ground: &GroundProgram, model: &[bool]) -> Vec<(i64, i64)> {
    let mut by_priority: std::collections::BTreeMap<i64, i64> = std::collections::BTreeMap::new();
    for m in &ground.minimize {
        let paid = m.condition.is_none_or(|a| model[a as usize]);
        *by_priority.entry(m.priority).or_insert(0) += if paid { m.weight } else { 0 };
    }
    by_priority.into_iter().rev().collect()
}

// ---------- program generator ------------------------------------------------------------

const CONSTS: [&str; 3] = ["a", "b", "c"];
const FACT_PREDS: [&str; 2] = ["p", "q"];
const HEAD_PREDS: [&str; 2] = ["r", "s"];
const BODY_PREDS: [&str; 4] = ["p", "q", "r", "s"];

/// A generated program, kept both as text (for the engine) and as structure (for the
/// independent reference grounding — so grounder bugs cannot cancel out).
#[derive(Debug, Clone)]
#[allow(clippy::type_complexity)]
struct GenProgram {
    text: String,
    facts: Vec<(usize, usize)>,
    rules: Vec<(usize, usize, Option<(usize, bool)>)>,
    choice: Option<(u8, usize, usize, bool)>,
    constraint: Option<(usize, usize)>,
    minimize: Option<(u8, u8, usize)>,
}

fn program_strategy() -> impl Strategy<Value = GenProgram> {
    let fact = (0usize..FACT_PREDS.len(), 0usize..CONSTS.len());
    let rule = (
        0usize..HEAD_PREDS.len(), // head predicate
        0usize..BODY_PREDS.len(), // first (positive, safe) body literal
        proptest::option::of((0usize..BODY_PREDS.len(), any::<bool>())), // second literal
    );
    let choice = (
        0u8..3,                   // lower bound
        0usize..HEAD_PREDS.len(), // chosen predicate
        0usize..FACT_PREDS.len(), // condition predicate
        any::<bool>(),            // has upper bound?
    );
    let constraint = (0usize..BODY_PREDS.len(), 0usize..BODY_PREDS.len());
    let minimize = (1u8..4, 1u8..3, 0usize..HEAD_PREDS.len());
    (
        proptest::collection::vec(fact, 1..6),
        proptest::collection::vec(rule, 0..4),
        proptest::option::of(choice),
        proptest::option::of(constraint),
        proptest::option::of(minimize),
    )
        .prop_map(|(facts, rules, choice, constraint, minimize)| {
            let mut text = String::new();
            for &(p, c) in &facts {
                text.push_str(&format!("{}({}).\n", FACT_PREDS[p], CONSTS[c]));
            }
            for &(h, b1, b2) in &rules {
                let mut body = format!("{}(X)", BODY_PREDS[b1]);
                if let Some((p2, negated)) = b2 {
                    let neg = if negated { "not " } else { "" };
                    body.push_str(&format!(", {}{}(X)", neg, BODY_PREDS[p2]));
                }
                text.push_str(&format!("{}(X) :- {}.\n", HEAD_PREDS[h], body));
            }
            if let Some((lower, h, c, has_upper)) = choice {
                let upper = if has_upper { format!(" {}", lower + 1) } else { String::new() };
                text.push_str(&format!(
                    "{} {{ {}(X) : {}(X) }}{}.\n",
                    lower, HEAD_PREDS[h], FACT_PREDS[c], upper
                ));
            }
            if let Some((p1, p2)) = constraint {
                text.push_str(&format!(":- {}(X), {}(X).\n", BODY_PREDS[p1], BODY_PREDS[p2]));
            }
            if let Some((w, prio, h)) = minimize {
                text.push_str(&format!(
                    "#minimize{{ {}@{},X : {}(X) }}.\n",
                    w, prio, HEAD_PREDS[h]
                ));
            }
            GenProgram { text, facts, rules, choice, constraint, minimize }
        })
}

// ---------- the cross-checks -------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn enumerated_models_match_brute_force(program in program_strategy()) {
        let mut ctl = Control::new(SolverConfig::default());
        ctl.add_program(&program.text).expect("generated programs parse");
        ctl.ground().expect("generated programs ground");
        let engine_models = ctl.solve_models(1 << 16).expect("enumeration succeeds");

        let ground = ctl.ground_program().expect("grounded");
        let reference = brute_force_models(ground);

        // Compare as sets of visible atom sets. (The engine needs no dedup — blocking
        // clauses cover all program atoms — but sorting makes the comparison order-free.)
        let symbols = engine_symbols(&program.text);
        let mut engine_sets: Vec<Vec<String>> = engine_models
            .iter()
            .map(|m| {
                let mut v: Vec<String> = m
                    .atoms()
                    .iter()
                    .map(|(p, args)| render_atom(p, args))
                    .collect();
                v.sort();
                v
            })
            .collect();
        engine_sets.sort();
        engine_sets.dedup();
        let mut reference_sets: Vec<Vec<String>> = reference
            .iter()
            .map(|m| visible_atoms(ground, &symbols, m))
            .collect();
        reference_sets.sort();
        reference_sets.dedup();
        prop_assert_eq!(
            engine_sets,
            reference_sets,
            "stable-model sets diverge for program:\n{}",
            program.text
        );
    }

    #[test]
    fn stability_checker_matches_naive_reference(program in program_strategy()) {
        // The optimized worklist checker must agree with the naive multi-pass
        // definition on *every* candidate interpretation, not only on the models the
        // SAT search happens to propose.
        let mut ctl = Control::new(SolverConfig::default());
        ctl.add_program(&program.text).expect("generated programs parse");
        ctl.ground().expect("generated programs ground");
        let ground = ctl.ground_program().expect("grounded");
        let mut checker = asp::stable::StabilityChecker::new(ground);
        let mut failure: Option<String> = None;
        for_each_candidate(ground, |model| {
            if failure.is_some() {
                return;
            }
            let constraints_ok = ground.rules.iter().all(|rule| {
                rule.head.is_some()
                    || !(rule.pos.iter().all(|&a| model[a as usize])
                        && rule.neg.iter().all(|&a| !model[a as usize]))
            });
            if !constraints_ok {
                return;
            }
            let fast_stable = checker.unfounded_set(ground, model).is_empty();
            // The reference folds rule/bound satisfaction into stability; compare on
            // foundedness only for interpretations that satisfy the rules, where the
            // two notions coincide.
            let naive_stable = is_stable_reference(ground, model);
            let rules_sat = ground.rules.iter().all(|rule| match rule.head {
                None => true,
                Some(h) => {
                    !(rule.pos.iter().all(|&a| model[a as usize])
                        && rule.neg.iter().all(|&a| !model[a as usize]))
                        || model[h as usize]
                }
            });
            let bounds_sat = ground.choices.iter().all(|choice| {
                let body = choice.pos.iter().all(|&a| model[a as usize])
                    && choice.neg.iter().all(|&a| !model[a as usize]);
                !body || {
                    let count =
                        choice.heads.iter().filter(|&&h| model[h as usize]).count() as i64;
                    !(choice.lower.is_some_and(|l| count < l)
                        || choice.upper.is_some_and(|u| count > u))
                }
            });
            if rules_sat && bounds_sat && fast_stable != naive_stable {
                failure = Some(format!(
                    "checker disagreement (fast {fast_stable}, naive {naive_stable}) for:\n{}",
                    program.text
                ));
            }
        });
        prop_assert!(failure.is_none(), "{}", failure.unwrap_or_default());
    }

    #[test]
    fn optimum_matches_brute_force(program in program_strategy()) {
        let mut ctl = Control::new(SolverConfig::default());
        ctl.add_program(&program.text).expect("generated programs parse");
        ctl.ground().expect("generated programs ground");
        let ground = ctl.ground_program().expect("grounded").clone();
        let reference = brute_force_models(&ground);
        let best_reference = reference.iter().map(|m| cost_vector(&ground, m)).min();

        match ctl.solve().expect("solve succeeds") {
            asp::control::SolveOutcome::Unsatisfiable => {
                prop_assert!(
                    best_reference.is_none(),
                    "engine UNSAT but reference has models for:\n{}",
                    program.text
                );
            }
            asp::control::SolveOutcome::Optimal { cost, .. } => {
                let expected = best_reference.unwrap_or_else(|| {
                    panic!("engine found a model but reference has none:\n{}", program.text)
                });
                // The engine reports every level of the program; both vectors are
                // sorted by decreasing priority, so they must be equal.
                prop_assert_eq!(
                    cost,
                    expected,
                    "objective vectors diverge for program:\n{}",
                    program.text
                );
            }
        }
    }

    #[test]
    fn guarded_hard_mode_matches_plain_hard_program(program in program_strategy()) {
        // The concretizer's single-grounding diagnostics fold rewrites hard
        // constraints `:- body.` into `viol :- body. :- viol, not g.` with `g` an
        // `#external` guard pinned false on the normal solve. With the guard false,
        // the guarded program must have exactly the same stable models as the plain
        // one — no semantics may leak from the guard machinery (free-but-unsupported
        // external atom, guarded constraint, high-priority minimize level).
        let plain = format!("{}:- p(X), q(X).\n", program.text);
        let guarded = format!(
            "{}viol(X) :- p(X), q(X).\n#external g.\n:- viol(X), not g.\n\
             #minimize{{ 1@1000,X : viol(X) }}.\n",
            program.text
        );

        let mut ctl_a = Control::new(SolverConfig::default());
        ctl_a.add_program(&plain).expect("plain program parses");
        ctl_a.ground().expect("plain program grounds");
        let mut sets_a: Vec<Vec<String>> = ctl_a
            .solve_models(1 << 16)
            .expect("plain enumeration succeeds")
            .iter()
            .map(|m| {
                let mut v: Vec<String> =
                    m.atoms().iter().map(|(p, args)| render_atom(p, args)).collect();
                v.sort();
                v
            })
            .collect();
        sets_a.sort();

        // Enumerate the guarded program (the free external explores both guard
        // values), keep the guard-false models, and project the guard machinery away.
        let mut ctl_b = Control::new(SolverConfig::default());
        ctl_b.add_program(&guarded).expect("guarded program parses");
        ctl_b.ground().expect("guarded program grounds");
        let mut sets_b: Vec<Vec<String>> = ctl_b
            .solve_models(1 << 16)
            .expect("guarded enumeration succeeds")
            .iter()
            .filter(|m| !m.contains("g", &[]))
            .map(|m| {
                let mut v: Vec<String> = m
                    .atoms()
                    .iter()
                    .filter(|(p, _)| p != "g" && p != "viol")
                    .map(|(p, args)| render_atom(p, args))
                    .collect();
                v.sort();
                v
            })
            .collect();
        sets_b.sort();
        prop_assert_eq!(
            sets_a,
            sets_b,
            "guard machinery leaked into the hard-mode models for:\n{}",
            program.text
        );

        // And the optimizing solve with the guard *assumed* false must agree with the
        // plain program on satisfiability and on every ordinary objective level (the
        // guard's 1000-level reports zero).
        let outcome_a = ctl_a.solve().expect("plain solve succeeds");
        let outcome_b = ctl_b
            .solve_with_assumptions(&[asp::control::Assumption::fails("g", &[])])
            .expect("guarded solve succeeds");
        match (outcome_a, outcome_b) {
            (
                asp::control::SolveOutcome::Optimal { cost: cost_a, .. },
                asp::control::AssumeOutcome::Optimal { cost: cost_b, .. },
            ) => {
                let below: Vec<(i64, i64)> =
                    cost_b.iter().copied().filter(|&(p, _)| p < 1000).collect();
                prop_assert_eq!(cost_a, below, "ordinary levels diverge:\n{}", program.text);
                prop_assert!(
                    cost_b.iter().all(|&(p, v)| p < 1000 || v == 0),
                    "guard level nonzero in hard mode:\n{}",
                    program.text
                );
            }
            (
                asp::control::SolveOutcome::Unsatisfiable,
                asp::control::AssumeOutcome::Unsatisfiable { .. },
            ) => {}
            (a, b) => {
                prop_assert!(
                    false,
                    "satisfiability diverges (plain {:?}, guarded {:?}) for:\n{}",
                    a,
                    b,
                    program.text
                );
            }
        }
    }
}

/// Re-ground the program just to obtain a symbol table matching the reference
/// grounding (`Control` owns its table privately).
fn engine_symbols(text: &str) -> SymbolTable {
    let program = asp::parser::parse_program(text).unwrap();
    let mut symbols = SymbolTable::new();
    let _ = asp::ground::Grounder::new(&mut symbols).ground(&program, &[]).unwrap();
    symbols
}

fn render_atom(pred: &str, args: &[asp::control::Value]) -> String {
    if args.is_empty() {
        return pred.to_string();
    }
    let rendered: Vec<String> = args.iter().map(|a| a.as_str()).collect();
    format!("{}({})", pred, rendered.join(","))
}

#[test]
fn reference_enumerator_sanity() {
    // The Fig. 3 program has exactly two distinct stable atom sets.
    let text = r#"
        depends_on(a, b).
        depends_on(a, c).
        depends_on(b, d).
        depends_on(c, d).
        node(Dep) :- node(Pkg), depends_on(Pkg, Dep).
        1 { node(a); node(b) }.
    "#;
    let mut ctl = Control::new(SolverConfig::default());
    ctl.add_program(text).unwrap();
    ctl.ground().unwrap();
    let ground = ctl.ground_program().unwrap();
    let models = brute_force_models(ground);
    let symbols = engine_symbols(text);
    let mut sets: Vec<Vec<String>> =
        models.iter().map(|m| visible_atoms(ground, &symbols, m)).collect();
    sets.sort();
    sets.dedup();
    assert_eq!(sets.len(), 2, "{sets:?}");

    // And a program where optimization matters.
    let text = r#"
        item(a). item(b).
        1 { pick(X) : item(X) } 1.
        #minimize{ 2@1,X : pick(X) }.
    "#;
    let mut ctl = Control::new(SolverConfig::default());
    ctl.add_program(text).unwrap();
    ctl.ground().unwrap();
    let ground = ctl.ground_program().unwrap().clone();
    let models = brute_force_models(&ground);
    assert_eq!(models.len(), 2);
    let best = models.iter().map(|m| cost_vector(&ground, m)).min().unwrap();
    assert_eq!(best, vec![(1, 2)]);
    match ctl.solve().unwrap() {
        asp::control::SolveOutcome::Optimal { cost, .. } => assert_eq!(cost, best),
        _ => panic!("satisfiable"),
    }
}

// ---------- fully independent reference (its own grounding) ------------------------------
//
// Everything below works from the generator's *structure*, never touching the engine's
// grounder, translator, or solver — so a bug anywhere in that pipeline shows up as a
// divergence instead of cancelling out.

mod independent {
    use super::GenProgram;
    use super::{BODY_PREDS, CONSTS, FACT_PREDS, HEAD_PREDS};

    const N_PREDS: usize = 4; // p, q, r, s (indexed as in BODY_PREDS)
    const N_ATOMS: usize = N_PREDS * CONSTS.len();

    fn atom(pred: usize, c: usize) -> usize {
        pred * CONSTS.len() + c
    }

    fn head_pred(h: usize) -> usize {
        // HEAD_PREDS are r, s = BODY_PREDS[2..]
        debug_assert!(HEAD_PREDS[h] == BODY_PREDS[h + 2]);
        h + 2
    }

    pub struct Reference {
        facts: Vec<bool>,
        /// (head, pos body atoms, neg body atoms)
        rules: Vec<(usize, Vec<usize>, Vec<usize>)>,
        constraints: Vec<(Vec<usize>, Vec<usize>)>,
        /// (heads, lower, upper)
        choice: Option<(Vec<usize>, i64, Option<i64>)>,
        /// (priority, weight, condition atom) over *possible* condition atoms.
        minimize: Vec<(i64, i64, usize)>,
        possible: Vec<bool>,
    }

    impl Reference {
        pub fn new(p: &GenProgram) -> Reference {
            let mut facts = vec![false; N_ATOMS];
            for &(fp, c) in &p.facts {
                // FACT_PREDS are p, q = BODY_PREDS[..2]
                debug_assert!(FACT_PREDS[fp] == BODY_PREDS[fp]);
                facts[atom(fp, c)] = true;
            }
            let mut rules = Vec::new();
            for &(h, b1, b2) in &p.rules {
                for c in 0..CONSTS.len() {
                    let mut pos = vec![atom(b1, c)];
                    let mut neg = Vec::new();
                    if let Some((p2, negated)) = b2 {
                        if negated {
                            neg.push(atom(p2, c));
                        } else {
                            pos.push(atom(p2, c));
                        }
                    }
                    rules.push((atom(head_pred(h), c), pos, neg));
                }
            }
            let mut constraints = Vec::new();
            if let Some((p1, p2)) = p.constraint {
                for c in 0..CONSTS.len() {
                    let mut pos = vec![atom(p1, c)];
                    if p2 != p1 {
                        pos.push(atom(p2, c));
                    }
                    constraints.push((pos, Vec::new()));
                }
            }
            let choice = p.choice.map(|(lower, h, cond, has_upper)| {
                let heads: Vec<usize> = (0..CONSTS.len())
                    .filter(|&c| facts[atom(cond, c)])
                    .map(|c| atom(head_pred(h), c))
                    .collect();
                let upper = has_upper.then_some(lower as i64 + 1);
                (heads, lower as i64, upper)
            });

            // Possible atoms: facts, plus rule heads whose positive bodies are possible
            // (negation ignored), plus choice heads — the same over-approximation the
            // engine's phase 1 computes.
            let mut possible = facts.clone();
            if let Some((heads, _, _)) = &choice {
                for &h in heads {
                    possible[h] = true;
                }
            }
            let mut changed = true;
            while changed {
                changed = false;
                for (head, pos, _) in &rules {
                    if !possible[*head] && pos.iter().all(|&a| possible[a]) {
                        possible[*head] = true;
                        changed = true;
                    }
                }
            }

            let mut minimize = Vec::new();
            if let Some((w, prio, h)) = p.minimize {
                for c in 0..CONSTS.len() {
                    let target = atom(head_pred(h), c);
                    if possible[target] {
                        minimize.push((prio as i64, w as i64, target));
                    }
                }
            }
            Reference { facts, rules, constraints, choice, minimize, possible }
        }

        fn is_stable(&self, model: &[bool]) -> bool {
            for (head, pos, neg) in &self.rules {
                if pos.iter().all(|&a| model[a]) && neg.iter().all(|&a| !model[a]) && !model[*head]
                {
                    return false;
                }
            }
            for (pos, neg) in &self.constraints {
                if pos.iter().all(|&a| model[a]) && neg.iter().all(|&a| !model[a]) {
                    return false;
                }
            }
            if let Some((heads, lower, upper)) = &self.choice {
                let count = heads.iter().filter(|&&h| model[h]).count() as i64;
                if count < *lower || upper.is_some_and(|u| count > u) {
                    return false;
                }
            }
            // Foundedness (naive fixpoint over the reduct).
            let mut derived = self.facts.clone();
            if let Some((heads, _, _)) = &self.choice {
                for &h in heads {
                    if model[h] {
                        derived[h] = true;
                    }
                }
            }
            let mut changed = true;
            while changed {
                changed = false;
                for (head, pos, neg) in &self.rules {
                    if !derived[*head]
                        && neg.iter().all(|&a| !model[a])
                        && pos.iter().all(|&a| derived[a])
                    {
                        derived[*head] = true;
                        changed = true;
                    }
                }
            }
            (0..N_ATOMS).all(|a| !model[a] || derived[a])
        }

        /// All stable models, as sorted lists of atom names.
        pub fn stable_models(&self) -> Vec<Vec<String>> {
            let free: Vec<usize> = (0..N_ATOMS).filter(|&a| !self.facts[a]).collect();
            let mut out = Vec::new();
            let mut model = self.facts.clone();
            for mask in 0u32..(1u32 << free.len()) {
                for (bit, &a) in free.iter().enumerate() {
                    model[a] = mask & (1 << bit) != 0;
                }
                if self.is_stable(&model) {
                    out.push(self.render(&model));
                }
            }
            out.sort();
            out.dedup();
            out
        }

        /// The best (lexicographically minimal) objective vector over stable models,
        /// with one entry per priority level the minimize statement grounds to.
        pub fn best_cost(&self) -> Option<Vec<(i64, i64)>> {
            let free: Vec<usize> = (0..N_ATOMS).filter(|&a| !self.facts[a]).collect();
            let mut best: Option<Vec<(i64, i64)>> = None;
            let mut model = self.facts.clone();
            for mask in 0u32..(1u32 << free.len()) {
                for (bit, &a) in free.iter().enumerate() {
                    model[a] = mask & (1 << bit) != 0;
                }
                if self.is_stable(&model) {
                    let cost = self.cost(&model);
                    if best.as_ref().is_none_or(|b| cost < *b) {
                        best = Some(cost);
                    }
                }
            }
            best
        }

        fn cost(&self, model: &[bool]) -> Vec<(i64, i64)> {
            let mut by_priority: std::collections::BTreeMap<i64, i64> = Default::default();
            for &(prio, w, cond) in &self.minimize {
                *by_priority.entry(prio).or_insert(0) += if model[cond] { w } else { 0 };
            }
            by_priority.into_iter().rev().collect()
        }

        /// The possible-atom over-approximation, for diagnostics.
        pub fn possible_atoms(&self) -> Vec<String> {
            let mut v: Vec<String> =
                (0..N_ATOMS).filter(|&a| self.possible[a]).map(Self::name).collect();
            v.sort();
            v
        }

        fn render(&self, model: &[bool]) -> Vec<String> {
            let mut v: Vec<String> = (0..N_ATOMS).filter(|&a| model[a]).map(Self::name).collect();
            v.sort();
            v
        }

        fn name(a: usize) -> String {
            format!("{}({})", BODY_PREDS[a / CONSTS.len()], CONSTS[a % CONSTS.len()])
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn engine_matches_independent_reference_models(program in program_strategy()) {
        let reference = independent::Reference::new(&program);
        let expected = reference.stable_models();

        let mut ctl = Control::new(SolverConfig::default());
        ctl.add_program(&program.text).expect("generated programs parse");
        ctl.ground().expect("generated programs ground");
        let engine_models = ctl.solve_models(1 << 16).expect("enumeration succeeds");
        let mut engine_sets: Vec<Vec<String>> = engine_models
            .iter()
            .map(|m| {
                let mut v: Vec<String> = m
                    .atoms()
                    .iter()
                    .map(|(p, args)| render_atom(p, args))
                    .collect();
                v.sort();
                v
            })
            .collect();
        engine_sets.sort();
        engine_sets.dedup();
        prop_assert_eq!(
            engine_sets,
            expected,
            "independent reference diverges (possible: {:?}) for program:\n{}",
            reference.possible_atoms(),
            program.text
        );
    }

    #[test]
    fn engine_matches_independent_reference_optimum(program in program_strategy()) {
        let reference = independent::Reference::new(&program);
        let expected = reference.best_cost();

        let mut ctl = Control::new(SolverConfig::default());
        ctl.add_program(&program.text).expect("generated programs parse");
        ctl.ground().expect("generated programs ground");
        match ctl.solve().expect("solve succeeds") {
            asp::control::SolveOutcome::Unsatisfiable => {
                prop_assert!(
                    expected.is_none(),
                    "engine UNSAT but the independent reference has models for:\n{}",
                    program.text
                );
            }
            asp::control::SolveOutcome::Optimal { cost, .. } => {
                let expected = expected.unwrap_or_else(|| {
                    panic!("engine found a model but the reference has none:\n{}", program.text)
                });
                prop_assert_eq!(cost, expected, "optimum diverges for program:\n{}", program.text);
            }
        }
    }
}

#[test]
fn right_recursion_with_early_consumer_is_complete() {
    // The recursive literal sits at body position 1 (the semi-naive delta must drive
    // *every* occurrence, not just the first), and the consumer rule appears before
    // the producer (so a phase-1 omission cannot be healed by phase-2 interning).
    let text = r#"
        depends_on(a, b). depends_on(b, c). depends_on(c, d). depends_on(d, e).
        reach(X) :- path(a, X).
        path(A, B) :- depends_on(A, B).
        path(A, C) :- depends_on(A, B), path(B, C).
    "#;
    let mut ctl = Control::new(SolverConfig::default());
    ctl.add_program(text).unwrap();
    ctl.ground().unwrap();
    let models = ctl.solve_models(4).unwrap();
    assert_eq!(models.len(), 1);
    for target in ["b", "c", "d", "e"] {
        assert!(
            models[0].contains("reach", &[(*target).into()]),
            "reach({target}) missing: the fixpoint lost a delta occurrence"
        );
    }
}

#[test]
fn arithmetic_arguments_respect_binding_order() {
    // m/1 is far more selective than n/1, tempting the planner to join `m(X + 1)`
    // first — but the term is unevaluable until n(X) binds X, so the planner must
    // defer it. (Regression test: a selectivity-only planner silently derived nothing.)
    let text = r#"
        n(1). n(2). n(3). n(4). n(5).
        m(3).
        r(X) :- n(X), m(X + 1).
    "#;
    let mut ctl = Control::new(SolverConfig::default());
    ctl.add_program(text).unwrap();
    ctl.ground().unwrap();
    let models = ctl.solve_models(2).unwrap();
    assert_eq!(models.len(), 1);
    let rs: Vec<i64> = models[0].with_pred("r").filter_map(|a| a[0].as_int()).collect();
    assert_eq!(rs, vec![2], "r(2) must be derived through the arithmetic literal");
}

#[test]
fn delta_literal_with_arithmetic_argument_is_driven() {
    // t2 atoms appear only in round 1 (the producer rule is textually *after* the
    // consumer), so in round 2 the delta literal of `r2(X) :- s2(X), t2(X + 1)` is
    // the arithmetic one — the semi-naive driver must fall back to a delta-restricted
    // join instead of pre-binding the delta atom. `probe` sits first so a phase-2
    // re-derivation cannot mask a phase-1 omission.
    let text = r#"
        probe(X) :- r2(X).
        r2(X) :- s2(X), t2(X + 1).
        t2(X) :- u2(X).
        u2(2). u2(3). u2(4).
        s2(1). s2(2). s2(3).
    "#;
    let mut ctl = Control::new(SolverConfig::default());
    ctl.add_program(text).unwrap();
    ctl.ground().unwrap();
    let models = ctl.solve_models(2).unwrap();
    assert_eq!(models.len(), 1);
    let mut probes: Vec<i64> = models[0].with_pred("probe").filter_map(|a| a[0].as_int()).collect();
    probes.sort_unstable();
    assert_eq!(probes, vec![1, 2, 3], "every r2 instance must be found via the delta fallback");
}

//! Compiler specs: the `%gcc@11.2.0` part of a spec.

use std::fmt;

use crate::version::{Version, VersionConstraint};

/// A compiler constraint or assignment: a compiler name plus an optional version
/// constraint (`%gcc`, `%gcc@10.3.1`, `%intel@2021:`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CompilerSpec {
    /// Compiler name (`gcc`, `clang`, `intel`, `nvhpc`, ...).
    pub name: String,
    /// Version constraint; [`VersionConstraint::any`] when only the name is given.
    pub versions: VersionConstraint,
}

impl CompilerSpec {
    /// A compiler constraint with no version restriction.
    pub fn named(name: &str) -> Self {
        CompilerSpec { name: name.to_string(), versions: VersionConstraint::any() }
    }

    /// A compiler at an exact version.
    pub fn at(name: &str, version: &str) -> Self {
        CompilerSpec {
            name: name.to_string(),
            versions: VersionConstraint::exact(Version::new(version)),
        }
    }

    /// Does a concrete `(name, version)` compiler satisfy this constraint?
    pub fn satisfied_by(&self, name: &str, version: &Version) -> bool {
        self.name == name && self.versions.satisfies(version)
    }
}

impl fmt::Display for CompilerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.versions.is_any() {
            write!(f, "%{}", self.name)
        } else {
            write!(f, "%{}@{}", self.name, self.versions)
        }
    }
}

/// A concrete compiler available on the system (an entry of the compiler configuration).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Compiler {
    /// Compiler name.
    pub name: String,
    /// Exact version.
    pub version: Version,
}

impl Compiler {
    /// Construct a concrete compiler.
    pub fn new(name: &str, version: &str) -> Self {
        Compiler { name: name.to_string(), version: Version::new(version) }
    }
}

impl fmt::Display for Compiler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.name, self.version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiler_spec_satisfaction() {
        let c = CompilerSpec::at("gcc", "11.2.0");
        assert!(c.satisfied_by("gcc", &Version::new("11.2.0")));
        assert!(!c.satisfied_by("gcc", &Version::new("10.3.1")));
        assert!(!c.satisfied_by("clang", &Version::new("11.2.0")));

        let c = CompilerSpec::named("gcc");
        assert!(c.satisfied_by("gcc", &Version::new("4.8.5")));
    }

    #[test]
    fn display() {
        assert_eq!(CompilerSpec::named("gcc").to_string(), "%gcc");
        assert_eq!(CompilerSpec::at("gcc", "10.3.1").to_string(), "%gcc@10.3.1");
        assert_eq!(Compiler::new("clang", "14.0.6").to_string(), "clang@14.0.6");
    }
}

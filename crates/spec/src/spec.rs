//! Abstract and concrete specs.
//!
//! An *abstract spec* ([`Spec`]) is a set of constraints on a node of the dependency DAG
//! plus constraints on (some of) its dependencies — exactly what a user types on the
//! command line or a package writes in a `depends_on` / `when=` clause. A *concrete spec*
//! ([`ConcreteSpec`]) is a fully resolved DAG where every node has a single version,
//! values for every variant, a compiler, an OS, a platform and a target — the output of
//! concretization and the input to an installation.

use std::collections::BTreeMap;
use std::fmt;

use crate::compiler::{Compiler, CompilerSpec};
use crate::hash::dag_hash;
use crate::platform::Platform;
use crate::variant::VariantValue;
use crate::version::{Version, VersionConstraint};

/// The kind of a dependency edge. Spack distinguishes build-only tools from link/run
/// dependencies; the solver treats them uniformly but the distinction is preserved for
/// extraction and display.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum DepKind {
    /// Needed at build time only (e.g. `cmake`).
    Build,
    /// Linked into the dependent.
    Link,
    /// Needed at run time.
    Run,
    /// Any/all of the above (the default when a recipe does not say).
    #[default]
    All,
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DepKind::Build => "build",
            DepKind::Link => "link",
            DepKind::Run => "run",
            DepKind::All => "all",
        };
        write!(f, "{s}")
    }
}

/// An anonymous spec is an abstract spec with no package name — the form used by `when=`
/// clauses such as `when="+mpi"` or `when="@1.1.0:"`.
pub type Anonymous = Spec;

/// An abstract spec: constraints on one node and, recursively, on named dependencies.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Spec {
    /// Package name; `None` for anonymous constraint specs used in `when=` clauses.
    pub name: Option<String>,
    /// Version constraint (`@...`).
    pub versions: VersionConstraint,
    /// Variant constraints (`+x`, `~y`, `k=v`).
    pub variants: BTreeMap<String, VariantValue>,
    /// Compiler constraint (`%gcc@11`).
    pub compiler: Option<CompilerSpec>,
    /// Operating system constraint (`os=centos8`).
    pub os: Option<String>,
    /// Platform constraint (`platform=linux`).
    pub platform: Option<Platform>,
    /// Target constraint (`target=skylake`).
    pub target: Option<String>,
    /// Constraints on dependencies (`^zlib@1.2.8:` ...).
    pub dependencies: Vec<Spec>,
}

impl Spec {
    /// An abstract spec constraining only the package name.
    pub fn named(name: &str) -> Self {
        Spec { name: Some(name.to_string()), ..Default::default() }
    }

    /// An anonymous spec (no name), used for `when=` conditions.
    pub fn anonymous() -> Self {
        Spec::default()
    }

    /// Builder-style: add a version constraint.
    pub fn with_versions(mut self, vc: &str) -> Self {
        self.versions = VersionConstraint::parse(vc);
        self
    }

    /// Builder-style: set a variant constraint.
    pub fn with_variant(mut self, name: &str, value: impl Into<VariantValue>) -> Self {
        self.variants.insert(name.to_string(), value.into());
        self
    }

    /// Builder-style: set the compiler constraint.
    pub fn with_compiler(mut self, c: CompilerSpec) -> Self {
        self.compiler = Some(c);
        self
    }

    /// Builder-style: set the target constraint.
    pub fn with_target(mut self, t: &str) -> Self {
        self.target = Some(t.to_string());
        self
    }

    /// Builder-style: add a dependency constraint.
    pub fn with_dependency(mut self, dep: Spec) -> Self {
        self.dependencies.push(dep);
        self
    }

    /// True when the spec constrains nothing at all.
    pub fn is_empty(&self) -> bool {
        self.name.is_none()
            && self.versions.is_any()
            && self.variants.is_empty()
            && self.compiler.is_none()
            && self.os.is_none()
            && self.platform.is_none()
            && self.target.is_none()
            && self.dependencies.is_empty()
    }

    /// Merge another abstract spec's constraints into this one (logical AND). Dependency
    /// constraints are concatenated; per-node fields are narrowed.
    pub fn constrain(&mut self, other: &Spec) {
        if self.name.is_none() {
            self.name = other.name.clone();
        }
        self.versions.constrain(&other.versions);
        for (k, v) in &other.variants {
            self.variants.insert(k.clone(), v.clone());
        }
        if self.compiler.is_none() {
            self.compiler = other.compiler.clone();
        }
        if self.os.is_none() {
            self.os = other.os.clone();
        }
        if self.platform.is_none() {
            self.platform = other.platform;
        }
        if self.target.is_none() {
            self.target = other.target.clone();
        }
        self.dependencies.extend(other.dependencies.iter().cloned());
    }
}

impl fmt::Display for Spec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(name) = &self.name {
            write!(f, "{name}")?;
        }
        if !self.versions.is_any() {
            write!(f, "@{}", self.versions)?;
        }
        if let Some(c) = &self.compiler {
            write!(f, "{c}")?;
        }
        for (k, v) in &self.variants {
            match v {
                VariantValue::Bool(true) => write!(f, "+{k}")?,
                VariantValue::Bool(false) => write!(f, "~{k}")?,
                VariantValue::Value(val) => write!(f, " {k}={val}")?,
            }
        }
        if let Some(os) = &self.os {
            write!(f, " os={os}")?;
        }
        if let Some(p) = &self.platform {
            write!(f, " platform={p}")?;
        }
        if let Some(t) = &self.target {
            write!(f, " target={t}")?;
        }
        for d in &self.dependencies {
            write!(f, " ^{d}")?;
        }
        Ok(())
    }
}

/// One fully concretized node of an installation DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcreteNode {
    /// Package name.
    pub name: String,
    /// Chosen version.
    pub version: Version,
    /// Value assigned to every variant of the package.
    pub variants: BTreeMap<String, VariantValue>,
    /// Compiler used to build this node.
    pub compiler: Compiler,
    /// Operating system.
    pub os: String,
    /// Platform.
    pub platform: Platform,
    /// Target microarchitecture.
    pub target: String,
    /// Outgoing dependency edges: index into [`ConcreteSpec::nodes`] plus edge kind.
    pub deps: Vec<(usize, DepKind)>,
    /// Names of virtual packages this node was selected to provide (e.g. `mpi`).
    pub provides: Vec<String>,
}

impl ConcreteNode {
    /// Render the node in spec syntax (without dependencies).
    pub fn format_node(&self) -> String {
        let mut s = format!("{}@{}%{}", self.name, self.version, self.compiler);
        for (k, v) in &self.variants {
            match v {
                VariantValue::Bool(true) => s.push_str(&format!("+{k}")),
                VariantValue::Bool(false) => s.push_str(&format!("~{k}")),
                VariantValue::Value(val) => s.push_str(&format!(" {k}={val}")),
            }
        }
        s.push_str(&format!(" arch={}-{}-{}", self.platform, self.os, self.target));
        s
    }
}

/// A concrete spec: the installation DAG produced by concretization.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConcreteSpec {
    /// All nodes; edges are indices into this vector.
    pub nodes: Vec<ConcreteNode>,
    /// Indices of root nodes (the packages the user asked for).
    pub roots: Vec<usize>,
}

impl ConcreteSpec {
    /// Number of nodes in the DAG.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Find a node index by package name.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.name == name)
    }

    /// Get a node by package name.
    pub fn node(&self, name: &str) -> Option<&ConcreteNode> {
        self.find(name).map(|i| &self.nodes[i])
    }

    /// Does the DAG contain a package with this name?
    pub fn contains(&self, name: &str) -> bool {
        self.find(name).is_some()
    }

    /// Indices in topological order (dependencies after dependents when walking roots
    /// first; i.e. parents precede children).
    pub fn topological_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut seen = vec![false; self.nodes.len()];
        fn visit(spec: &ConcreteSpec, i: usize, seen: &mut [bool], order: &mut Vec<usize>) {
            if seen[i] {
                return;
            }
            seen[i] = true;
            order.push(i);
            for &(d, _) in &spec.nodes[i].deps {
                visit(spec, d, seen, order);
            }
        }
        for &r in &self.roots {
            visit(self, r, &mut seen, &mut order);
        }
        for i in 0..self.nodes.len() {
            visit(self, i, &mut seen, &mut order);
        }
        order
    }

    /// The DAG hash of a node: covers the node's own parameters and, recursively, the
    /// hashes of its dependencies (Fig. 4 in the paper).
    pub fn node_hash(&self, index: usize) -> String {
        let mut memo = vec![None; self.nodes.len()];
        self.node_hash_memo(index, &mut memo)
    }

    fn node_hash_memo(&self, index: usize, memo: &mut Vec<Option<String>>) -> String {
        if let Some(h) = &memo[index] {
            return h.clone();
        }
        let node = &self.nodes[index];
        let mut dep_hashes: Vec<String> =
            node.deps.iter().map(|&(d, _)| self.node_hash_memo(d, memo)).collect();
        dep_hashes.sort();
        let h = dag_hash(&node.format_node(), &dep_hashes);
        memo[index] = Some(h.clone());
        h
    }

    /// Does the concrete node at `index` satisfy an abstract (single-node) constraint?
    /// Dependency constraints of `abstract_spec` are checked against the transitive
    /// dependencies of the node.
    pub fn node_satisfies(&self, index: usize, abstract_spec: &Spec) -> bool {
        let node = &self.nodes[index];
        if let Some(name) = &abstract_spec.name {
            if name != &node.name && !node.provides.iter().any(|p| p == name) {
                return false;
            }
        }
        if !abstract_spec.versions.is_any() && !abstract_spec.versions.satisfies(&node.version) {
            return false;
        }
        for (k, v) in &abstract_spec.variants {
            match node.variants.get(k) {
                Some(actual) if actual == v => {}
                _ => return false,
            }
        }
        if let Some(c) = &abstract_spec.compiler {
            if !c.satisfied_by(&node.compiler.name, &node.compiler.version) {
                return false;
            }
        }
        if let Some(os) = &abstract_spec.os {
            if os != &node.os {
                return false;
            }
        }
        if let Some(p) = &abstract_spec.platform {
            if *p != node.platform {
                return false;
            }
        }
        if let Some(t) = &abstract_spec.target {
            if t != &node.target {
                return false;
            }
        }
        // Dependency constraints: every ^dep constraint must be satisfied by some
        // transitive dependency of this node.
        for dep_constraint in &abstract_spec.dependencies {
            let mut found = false;
            let mut stack: Vec<usize> = node.deps.iter().map(|&(d, _)| d).collect();
            let mut seen = vec![false; self.nodes.len()];
            while let Some(i) = stack.pop() {
                if seen[i] {
                    continue;
                }
                seen[i] = true;
                if self.node_satisfies(i, dep_constraint) {
                    found = true;
                    break;
                }
                stack.extend(self.nodes[i].deps.iter().map(|&(d, _)| d));
            }
            if !found {
                return false;
            }
        }
        true
    }

    /// Does the whole concrete spec satisfy an abstract root request? The root constraint
    /// must be satisfied by one of the root nodes.
    pub fn satisfies(&self, abstract_spec: &Spec) -> bool {
        self.roots.iter().any(|&r| self.node_satisfies(r, abstract_spec))
    }
}

impl fmt::Display for ConcreteSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (depth_root, &root) in self.roots.iter().enumerate() {
            if depth_root > 0 {
                writeln!(f)?;
            }
            // Depth-first pretty print, Spack-style with indentation.
            fn rec(
                spec: &ConcreteSpec,
                i: usize,
                depth: usize,
                seen: &mut Vec<bool>,
                f: &mut fmt::Formatter<'_>,
            ) -> fmt::Result {
                let prefix =
                    if depth == 0 { String::new() } else { format!("{}^", "    ".repeat(depth)) };
                writeln!(f, "{prefix}{}", spec.nodes[i].format_node())?;
                if seen[i] {
                    return Ok(());
                }
                seen[i] = true;
                let mut deps = spec.nodes[i].deps.clone();
                deps.sort_by(|a, b| spec.nodes[a.0].name.cmp(&spec.nodes[b.0].name));
                for (d, _) in deps {
                    rec(spec, d, depth + 1, seen, f)?;
                }
                Ok(())
            }
            let mut seen = vec![false; self.nodes.len()];
            rec(self, root, 0, &mut seen, f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dag() -> ConcreteSpec {
        // hdf5 -> zlib, hdf5 -> mpich (provides mpi)
        let zlib = ConcreteNode {
            name: "zlib".into(),
            version: Version::new("1.2.11"),
            variants: BTreeMap::from([("pic".to_string(), VariantValue::Bool(true))]),
            compiler: Compiler::new("gcc", "11.2.0"),
            os: "centos8".into(),
            platform: Platform::Linux,
            target: "skylake".into(),
            deps: vec![],
            provides: vec![],
        };
        let mpich = ConcreteNode {
            name: "mpich".into(),
            version: Version::new("3.4.2"),
            variants: BTreeMap::new(),
            compiler: Compiler::new("gcc", "11.2.0"),
            os: "centos8".into(),
            platform: Platform::Linux,
            target: "skylake".into(),
            deps: vec![],
            provides: vec!["mpi".into()],
        };
        let hdf5 = ConcreteNode {
            name: "hdf5".into(),
            version: Version::new("1.10.2"),
            variants: BTreeMap::from([("mpi".to_string(), VariantValue::Bool(true))]),
            compiler: Compiler::new("gcc", "11.2.0"),
            os: "centos8".into(),
            platform: Platform::Linux,
            target: "skylake".into(),
            deps: vec![(0, DepKind::Link), (1, DepKind::Link)],
            provides: vec![],
        };
        ConcreteSpec { nodes: vec![zlib, mpich, hdf5], roots: vec![2] }
    }

    #[test]
    fn satisfies_name_and_version() {
        let dag = sample_dag();
        assert!(dag.satisfies(&Spec::named("hdf5")));
        assert!(dag.satisfies(&Spec::named("hdf5").with_versions("1.10.2")));
        assert!(dag.satisfies(&Spec::named("hdf5").with_versions("1.10:")));
        assert!(!dag.satisfies(&Spec::named("hdf5").with_versions("1.12:")));
        assert!(!dag.satisfies(&Spec::named("zlib")), "zlib is not a root");
    }

    #[test]
    fn satisfies_dependency_constraints() {
        let dag = sample_dag();
        let s = Spec::named("hdf5").with_dependency(Spec::named("zlib").with_versions("1.2.8:"));
        assert!(dag.satisfies(&s));
        let s = Spec::named("hdf5").with_dependency(Spec::named("zlib").with_versions("1.2.12:"));
        assert!(!dag.satisfies(&s));
        // Virtual name matches via provides.
        let s = Spec::named("hdf5").with_dependency(Spec::named("mpi"));
        assert!(dag.satisfies(&s));
    }

    #[test]
    fn satisfies_variants_and_compiler() {
        let dag = sample_dag();
        assert!(dag.satisfies(&Spec::named("hdf5").with_variant("mpi", true)));
        assert!(!dag.satisfies(&Spec::named("hdf5").with_variant("mpi", false)));
        assert!(
            dag.satisfies(&Spec::named("hdf5").with_compiler(CompilerSpec::at("gcc", "11.2.0")))
        );
        assert!(!dag.satisfies(&Spec::named("hdf5").with_compiler(CompilerSpec::named("intel"))));
    }

    #[test]
    fn node_hash_changes_with_configuration() {
        let dag = sample_dag();
        let h1 = dag.node_hash(2);
        let mut dag2 = dag.clone();
        dag2.nodes[0].version = Version::new("1.2.12");
        let h2 = dag2.node_hash(2);
        assert_ne!(h1, h2, "hash must change when a dependency changes");
        assert_eq!(dag.node_hash(2), h1, "hash is deterministic");
    }

    #[test]
    fn topological_order_visits_all() {
        let dag = sample_dag();
        let order = dag.topological_order();
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], 2, "root first");
    }

    #[test]
    fn display_contains_arch_triple() {
        let dag = sample_dag();
        let text = dag.to_string();
        assert!(text.contains("arch=linux-centos8-skylake"));
        assert!(text.contains("hdf5@1.10.2"));
    }

    #[test]
    fn abstract_spec_display_and_constrain() {
        let s = Spec::named("hdf5")
            .with_versions("1.10.2")
            .with_variant("mpi", true)
            .with_compiler(CompilerSpec::named("gcc"))
            .with_dependency(Spec::named("zlib"));
        let text = s.to_string();
        assert!(text.starts_with("hdf5@1.10.2"));
        assert!(text.contains("+mpi"));
        assert!(text.contains("^zlib"));

        let mut a = Spec::named("hdf5");
        a.constrain(&Spec::anonymous().with_variant("mpi", true));
        assert_eq!(a.variants.get("mpi"), Some(&VariantValue::Bool(true)));
    }
}

//! Target microarchitectures.
//!
//! Spack (via archspec) models CPU microarchitectures as a partially ordered hierarchy:
//! `x86_64 < x86_64_v2 < haswell < skylake < icelake`, `ppc64le < power8le < power9le`,
//! `aarch64 < neoverse_n1`, etc. Newer targets are *preferred* (lower optimization weight)
//! but require compiler support: the paper's example is that `gcc@4.8.3` cannot generate
//! optimized instructions for `skylake`.
//!
//! [`TargetCatalog`] provides the hierarchy, per-target weights (0 = best), and the
//! compiler-support table used to generate `compiler_supports_target/3` facts.

use std::collections::HashMap;
use std::fmt;

use crate::version::Version;

/// A single microarchitecture target.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Target {
    name: String,
}

impl Target {
    /// Construct a target by name.
    pub fn new(name: &str) -> Self {
        Target { name: name.to_string() }
    }

    /// Canonical name (`skylake`, `x86_64`, ...).
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// An entry in the catalog: a target, its family, its preference weight, and the minimum
/// compiler versions able to generate code for it.
#[derive(Debug, Clone)]
pub struct TargetInfo {
    /// The target itself.
    pub target: Target,
    /// Family root (`x86_64`, `ppc64le`, `aarch64`).
    pub family: String,
    /// Preference weight: 0 is the most desirable (newest) target of its family.
    pub weight: u32,
    /// Minimum compiler version required, per compiler name. Compilers absent from the
    /// map cannot target this microarchitecture at all; the generic family target is
    /// supported by every compiler.
    pub min_compiler: HashMap<String, Version>,
}

/// The catalog of known targets — a trimmed-down archspec.
#[derive(Debug, Clone)]
pub struct TargetCatalog {
    entries: Vec<TargetInfo>,
}

impl Default for TargetCatalog {
    fn default() -> Self {
        Self::builtin()
    }
}

impl TargetCatalog {
    /// The built-in catalog used throughout the reproduction: three families with the
    /// generations that appear in the paper (haswell on Quartz, power9 on Lassen,
    /// skylake/cascadelake/icelake as the preferred x86 targets).
    pub fn builtin() -> Self {
        fn req(pairs: &[(&str, &str)]) -> HashMap<String, Version> {
            pairs.iter().map(|(c, v)| (c.to_string(), Version::new(v))).collect()
        }
        let entries = vec![
            // x86_64 family, newest first (weight 0 = best).
            TargetInfo {
                target: Target::new("icelake"),
                family: "x86_64".into(),
                weight: 0,
                min_compiler: req(&[("gcc", "8.3.0"), ("clang", "9.0.0"), ("intel", "19.0")]),
            },
            TargetInfo {
                target: Target::new("cascadelake"),
                family: "x86_64".into(),
                weight: 1,
                min_compiler: req(&[("gcc", "8.3.0"), ("clang", "8.0.0"), ("intel", "19.0")]),
            },
            TargetInfo {
                target: Target::new("skylake"),
                family: "x86_64".into(),
                weight: 2,
                min_compiler: req(&[("gcc", "6.1.0"), ("clang", "4.0.0"), ("intel", "17.0")]),
            },
            TargetInfo {
                target: Target::new("broadwell"),
                family: "x86_64".into(),
                weight: 3,
                min_compiler: req(&[("gcc", "4.9.0"), ("clang", "3.9.0"), ("intel", "16.0")]),
            },
            TargetInfo {
                target: Target::new("haswell"),
                family: "x86_64".into(),
                weight: 4,
                min_compiler: req(&[("gcc", "4.8.0"), ("clang", "3.5.0"), ("intel", "15.0")]),
            },
            TargetInfo {
                target: Target::new("x86_64_v2"),
                family: "x86_64".into(),
                weight: 5,
                min_compiler: req(&[("gcc", "4.6.0"), ("clang", "3.3.0"), ("intel", "14.0")]),
            },
            TargetInfo {
                target: Target::new("x86_64"),
                family: "x86_64".into(),
                weight: 6,
                min_compiler: HashMap::new(),
            },
            // ppc64le family (Lassen / Sierra).
            TargetInfo {
                target: Target::new("power9le"),
                family: "ppc64le".into(),
                weight: 0,
                min_compiler: req(&[("gcc", "6.1.0"), ("clang", "5.0.0"), ("xl", "16.1")]),
            },
            TargetInfo {
                target: Target::new("power8le"),
                family: "ppc64le".into(),
                weight: 1,
                min_compiler: req(&[("gcc", "4.9.0"), ("clang", "3.8.0"), ("xl", "13.1")]),
            },
            TargetInfo {
                target: Target::new("ppc64le"),
                family: "ppc64le".into(),
                weight: 2,
                min_compiler: HashMap::new(),
            },
            // aarch64 family.
            TargetInfo {
                target: Target::new("neoverse_n1"),
                family: "aarch64".into(),
                weight: 0,
                min_compiler: req(&[("gcc", "9.0.0"), ("clang", "10.0.0")]),
            },
            TargetInfo {
                target: Target::new("aarch64"),
                family: "aarch64".into(),
                weight: 1,
                min_compiler: HashMap::new(),
            },
        ];
        TargetCatalog { entries }
    }

    /// All catalog entries.
    pub fn entries(&self) -> &[TargetInfo] {
        &self.entries
    }

    /// Entries of one family, best (lowest weight) first.
    pub fn family(&self, family: &str) -> Vec<&TargetInfo> {
        let mut v: Vec<&TargetInfo> = self.entries.iter().filter(|e| e.family == family).collect();
        v.sort_by_key(|e| e.weight);
        v
    }

    /// Look up a target by name.
    pub fn get(&self, name: &str) -> Option<&TargetInfo> {
        self.entries.iter().find(|e| e.target.name() == name)
    }

    /// Can `compiler` at `version` generate code for `target`?
    pub fn compiler_supports(&self, compiler: &str, version: &Version, target: &str) -> bool {
        match self.get(target) {
            None => false,
            Some(info) => {
                if info.min_compiler.is_empty() {
                    return true; // generic family target: every compiler can emit it
                }
                match info.min_compiler.get(compiler) {
                    Some(min) => version >= min,
                    None => false,
                }
            }
        }
    }

    /// The weight (0 = best) of a target, if known.
    pub fn weight(&self, target: &str) -> Option<u32> {
        self.get(target).map(|e| e.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_contains_paper_targets() {
        let cat = TargetCatalog::builtin();
        for t in ["skylake", "cascadelake", "haswell", "x86_64", "power9le", "aarch64"] {
            assert!(cat.get(t).is_some(), "missing target {t}");
        }
    }

    #[test]
    fn old_gcc_cannot_target_skylake() {
        // The paper's example: gcc@4.8.3 cannot generate optimized instructions for skylake.
        let cat = TargetCatalog::builtin();
        assert!(!cat.compiler_supports("gcc", &Version::new("4.8.3"), "skylake"));
        assert!(cat.compiler_supports("gcc", &Version::new("11.2.0"), "skylake"));
        // Any compiler supports the generic family target.
        assert!(cat.compiler_supports("gcc", &Version::new("4.8.3"), "x86_64"));
    }

    #[test]
    fn weights_prefer_newer() {
        let cat = TargetCatalog::builtin();
        assert!(cat.weight("icelake").unwrap() < cat.weight("skylake").unwrap());
        assert!(cat.weight("skylake").unwrap() < cat.weight("x86_64").unwrap());
    }

    #[test]
    fn family_listing_sorted() {
        let cat = TargetCatalog::builtin();
        let fam = cat.family("x86_64");
        assert_eq!(fam.first().unwrap().target.name(), "icelake");
        assert_eq!(fam.last().unwrap().target.name(), "x86_64");
    }
}

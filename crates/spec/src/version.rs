//! Package versions and version constraints.
//!
//! Spack versions are dotted sequences of numeric and alphanumeric components
//! (`1.10.2`, `2021.06.14`, `develop`, `1.2.0b3`). Constraints are written with the `@`
//! sigil: `@1.10.2` (exact-or-prefix), `@1.0.7:` (at least), `@:1.4` (at most),
//! `@1.2:1.4` (range), and comma-separated unions `@1.2:1.4,2.0:`.

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// One component of a dotted version: either numeric or an alphanumeric word.
///
/// Numeric components compare numerically; alphanumeric components compare
/// lexicographically and sort *before* numeric components (so `1.2alpha < 1.2.0`
/// does not arise — we follow the simpler rule that within a position, words sort
/// before numbers, mirroring Spack's treatment of pre-release words).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Component {
    /// A numeric component such as `10` in `1.10.2`.
    Num(u64),
    /// A word component such as `develop` or `rc1`.
    Word(String),
}

impl PartialOrd for Component {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Component {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Component::Num(a), Component::Num(b)) => a.cmp(b),
            (Component::Word(a), Component::Word(b)) => a.cmp(b),
            // Words (pre-releases, branches) sort before numbers at the same position.
            (Component::Word(_), Component::Num(_)) => Ordering::Less,
            (Component::Num(_), Component::Word(_)) => Ordering::Greater,
        }
    }
}

/// A package version: a non-empty sequence of [`Component`]s.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Version {
    components: Vec<Component>,
}

impl Version {
    /// Parse a version from its textual form. Never fails: any string is a version
    /// (this mirrors Spack, where `develop`, `master`, git hashes etc. are versions).
    pub fn new(s: &str) -> Self {
        let mut components = Vec::new();
        let mut cur = String::new();
        let mut cur_is_digit: Option<bool> = None;
        for ch in s.chars() {
            if ch == '.' || ch == '-' || ch == '_' {
                if !cur.is_empty() {
                    components.push(Self::finish(&cur, cur_is_digit));
                    cur.clear();
                    cur_is_digit = None;
                }
                continue;
            }
            let is_digit = ch.is_ascii_digit();
            match cur_is_digit {
                None => cur_is_digit = Some(is_digit),
                Some(prev) if prev != is_digit => {
                    components.push(Self::finish(&cur, Some(prev)));
                    cur.clear();
                    cur_is_digit = Some(is_digit);
                }
                _ => {}
            }
            cur.push(ch);
        }
        if !cur.is_empty() {
            components.push(Self::finish(&cur, cur_is_digit));
        }
        if components.is_empty() {
            components.push(Component::Word(String::new()));
        }
        Version { components }
    }

    fn finish(cur: &str, is_digit: Option<bool>) -> Component {
        if is_digit == Some(true) {
            Component::Num(cur.parse().unwrap_or(u64::MAX))
        } else {
            Component::Word(cur.to_string())
        }
    }

    /// The components of this version.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// True when `self` is the same as `other` or a more specific version of it,
    /// e.g. `1.10.2` satisfies `1.10` (prefix match), matching Spack's `@1.10` semantics.
    pub fn satisfies_prefix(&self, other: &Version) -> bool {
        if other.components.len() > self.components.len() {
            return false;
        }
        self.components[..other.components.len()] == other.components[..]
    }

    /// True for versions that denote a moving development branch rather than a release.
    pub fn is_development(&self) -> bool {
        matches!(self.components.first(),
            Some(Component::Word(w)) if w == "develop" || w == "main" || w == "master")
    }
}

impl PartialOrd for Version {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Version {
    fn cmp(&self, other: &Self) -> Ordering {
        // Development branches are "infinitely new" in Spack; keep that property.
        match (self.is_development(), other.is_development()) {
            (true, false) => return Ordering::Greater,
            (false, true) => return Ordering::Less,
            _ => {}
        }
        let n = self.components.len().max(other.components.len());
        for i in 0..n {
            match (self.components.get(i), other.components.get(i)) {
                (Some(a), Some(b)) => match a.cmp(b) {
                    Ordering::Equal => continue,
                    ord => return ord,
                },
                // `1.2` < `1.2.1`
                (None, Some(_)) => return Ordering::Less,
                (Some(_), None) => return Ordering::Greater,
                (None, None) => unreachable!(),
            }
        }
        Ordering::Equal
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            match c {
                Component::Num(n) => write!(f, "{n}")?,
                Component::Word(w) => write!(f, "{w}")?,
            }
        }
        Ok(())
    }
}

impl FromStr for Version {
    type Err = std::convert::Infallible;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(Version::new(s))
    }
}

impl From<&str> for Version {
    fn from(s: &str) -> Self {
        Version::new(s)
    }
}

/// A contiguous range of versions, possibly open at either end.
///
/// `lo: None` means "no lower bound", `hi: None` means "no upper bound"; both bounds are
/// inclusive, matching Spack's `lo:hi` syntax.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VersionRange {
    /// Inclusive lower bound, if any.
    pub lo: Option<Version>,
    /// Inclusive upper bound, if any.
    pub hi: Option<Version>,
}

impl VersionRange {
    /// The range containing every version.
    pub fn any() -> Self {
        VersionRange { lo: None, hi: None }
    }

    /// The range `[lo, +inf)`.
    pub fn at_least(lo: Version) -> Self {
        VersionRange { lo: Some(lo), hi: None }
    }

    /// The range `(-inf, hi]`.
    pub fn at_most(hi: Version) -> Self {
        VersionRange { lo: None, hi: Some(hi) }
    }

    /// The closed range `[lo, hi]`.
    pub fn between(lo: Version, hi: Version) -> Self {
        VersionRange { lo: Some(lo), hi: Some(hi) }
    }

    /// Does `v` fall inside this range? Upper bounds use prefix-inclusive semantics so
    /// `:1.4` admits `1.4.3`, like Spack.
    pub fn contains(&self, v: &Version) -> bool {
        if let Some(lo) = &self.lo {
            if v < lo && !v.satisfies_prefix(lo) {
                return false;
            }
        }
        if let Some(hi) = &self.hi {
            if v > hi && !v.satisfies_prefix(hi) {
                return false;
            }
        }
        true
    }

    /// Do two ranges overlap (share at least one possible version)?
    pub fn intersects(&self, other: &VersionRange) -> bool {
        let lo_ok = match (&self.lo, &other.hi) {
            (Some(lo), Some(hi)) => lo <= hi || lo.satisfies_prefix(hi) || hi.satisfies_prefix(lo),
            _ => true,
        };
        let hi_ok = match (&self.hi, &other.lo) {
            (Some(hi), Some(lo)) => lo <= hi || lo.satisfies_prefix(hi) || hi.satisfies_prefix(lo),
            _ => true,
        };
        lo_ok && hi_ok
    }
}

impl fmt::Display for VersionRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.lo, &self.hi) {
            (None, None) => write!(f, ":"),
            (Some(lo), None) => write!(f, "{lo}:"),
            (None, Some(hi)) => write!(f, ":{hi}"),
            (Some(lo), Some(hi)) if lo == hi => write!(f, "{lo}"),
            (Some(lo), Some(hi)) => write!(f, "{lo}:{hi}"),
        }
    }
}

/// A version constraint: a union of ranges and/or exact versions (`@1.2:1.4,2.0:`).
///
/// An empty list means "unconstrained" (anything satisfies it).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct VersionConstraint {
    ranges: Vec<VersionRange>,
}

impl VersionConstraint {
    /// The unconstrained version constraint.
    pub fn any() -> Self {
        VersionConstraint { ranges: Vec::new() }
    }

    /// A constraint matching exactly one version (and its prefix-extensions).
    pub fn exact(v: Version) -> Self {
        VersionConstraint { ranges: vec![VersionRange::between(v.clone(), v)] }
    }

    /// Build a constraint from a set of ranges.
    pub fn from_ranges(ranges: Vec<VersionRange>) -> Self {
        VersionConstraint { ranges }
    }

    /// Parse the text following an `@` sigil: comma-separated ranges.
    pub fn parse(s: &str) -> Self {
        let s = s.trim();
        if s.is_empty() {
            return Self::any();
        }
        let mut ranges = Vec::new();
        for part in s.split(',') {
            let part = part.trim().trim_start_matches('=');
            if part.is_empty() {
                continue;
            }
            if let Some(idx) = part.find(':') {
                let (lo, hi) = part.split_at(idx);
                let hi = &hi[1..];
                let lo = if lo.is_empty() { None } else { Some(Version::new(lo)) };
                let hi = if hi.is_empty() { None } else { Some(Version::new(hi)) };
                ranges.push(VersionRange { lo, hi });
            } else {
                let v = Version::new(part);
                ranges.push(VersionRange::between(v.clone(), v));
            }
        }
        VersionConstraint { ranges }
    }

    /// True when no range was given (matches everything).
    pub fn is_any(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The ranges of this constraint.
    pub fn ranges(&self) -> &[VersionRange] {
        &self.ranges
    }

    /// Does a concrete version satisfy this constraint?
    pub fn satisfies(&self, v: &Version) -> bool {
        self.is_any() || self.ranges.iter().any(|r| r.contains(v))
    }

    /// Could the two constraints be satisfied by a common version?
    /// (Conservative: true when any pair of ranges overlaps.)
    pub fn intersects(&self, other: &VersionConstraint) -> bool {
        if self.is_any() || other.is_any() {
            return true;
        }
        self.ranges.iter().any(|a| other.ranges.iter().any(|b| a.intersects(b)))
    }

    /// Narrow this constraint by another one (logical AND): the result is the pairwise
    /// intersection of the two constraints' ranges. If the intersection is empty the
    /// constraint becomes unsatisfiable (a single empty range).
    pub fn constrain(&mut self, other: &VersionConstraint) {
        if self.is_any() {
            self.ranges = other.ranges.clone();
            return;
        }
        if other.is_any() {
            return;
        }
        let mut result = Vec::new();
        for a in &self.ranges {
            for b in &other.ranges {
                if !a.intersects(b) {
                    continue;
                }
                let lo = match (&a.lo, &b.lo) {
                    (Some(x), Some(y)) => Some(if x >= y { x.clone() } else { y.clone() }),
                    (Some(x), None) | (None, Some(x)) => Some(x.clone()),
                    (None, None) => None,
                };
                let hi = match (&a.hi, &b.hi) {
                    (Some(x), Some(y)) => Some(if x <= y { x.clone() } else { y.clone() }),
                    (Some(x), None) | (None, Some(x)) => Some(x.clone()),
                    (None, None) => None,
                };
                result.push(VersionRange { lo, hi });
            }
        }
        if result.is_empty() {
            // Unsatisfiable: an empty range that no version can satisfy.
            result.push(VersionRange {
                lo: Some(Version::new("999999999")),
                hi: Some(Version::new("0")),
            });
        }
        self.ranges = result;
    }
}

impl fmt::Display for VersionConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_any() {
            return write!(f, ":");
        }
        for (i, r) in self.ranges.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_ordering_numeric() {
        assert!(Version::new("1.10.2") > Version::new("1.9.0"));
        assert!(Version::new("1.2") < Version::new("1.2.1"));
        assert!(Version::new("2.0") > Version::new("1.99.99"));
        assert_eq!(Version::new("1.02"), Version::new("1.2"));
    }

    #[test]
    fn version_ordering_words() {
        assert!(Version::new("develop") > Version::new("99.0"));
        assert!(Version::new("1.2rc1") < Version::new("1.2.0"));
        assert!(Version::new("1.2alpha") < Version::new("1.2beta"));
    }

    #[test]
    fn version_display_roundtrip() {
        for s in ["1.10.2", "3.21.4", "2021.6.14"] {
            assert_eq!(Version::new(s).to_string(), s);
        }
    }

    #[test]
    fn prefix_satisfaction() {
        assert!(Version::new("1.10.2").satisfies_prefix(&Version::new("1.10")));
        assert!(!Version::new("1.10.2").satisfies_prefix(&Version::new("1.10.2.1")));
        assert!(!Version::new("1.11").satisfies_prefix(&Version::new("1.10")));
    }

    #[test]
    fn range_contains() {
        let r = VersionRange::at_least(Version::new("1.0.7"));
        assert!(r.contains(&Version::new("1.0.7")));
        assert!(r.contains(&Version::new("1.0.8")));
        assert!(!r.contains(&Version::new("1.0.6")));

        let r = VersionRange::at_most(Version::new("1.4"));
        assert!(r.contains(&Version::new("1.4.3")), "upper bounds are prefix-inclusive");
        assert!(!r.contains(&Version::new("1.5")));
    }

    #[test]
    fn constraint_parse_and_satisfy() {
        let c = VersionConstraint::parse("1.0.7:");
        assert!(c.satisfies(&Version::new("1.0.8")));
        assert!(!c.satisfies(&Version::new("1.0.6")));

        let c = VersionConstraint::parse("1.2:1.4,2.0:");
        assert!(c.satisfies(&Version::new("1.3")));
        assert!(c.satisfies(&Version::new("2.5")));
        assert!(!c.satisfies(&Version::new("1.5")));

        let c = VersionConstraint::parse("1.10.2");
        assert!(c.satisfies(&Version::new("1.10.2")));
        assert!(!c.satisfies(&Version::new("1.10.3")));
    }

    #[test]
    fn constraint_intersection() {
        let a = VersionConstraint::parse("1.2.8:");
        let b = VersionConstraint::parse(":1.2.11");
        assert!(a.intersects(&b));
        let c = VersionConstraint::parse(":1.2.5");
        assert!(!a.intersects(&c));
    }

    #[test]
    fn constrain_narrows() {
        let mut a = VersionConstraint::any();
        a.constrain(&VersionConstraint::parse("1.2:"));
        assert!(!a.is_any());
        assert!(a.satisfies(&Version::new("1.3")));
    }
}

//! DAG hashing.
//!
//! Spack identifies every concrete installation by a hash of its metadata and the hashes
//! of its dependencies (Fig. 4 of the paper), rendered in base32. We implement a small,
//! self-contained SHA-256 so the workspace needs no external crypto dependencies; the
//! property that matters for the reproduction is determinism and collision-resistance
//! adequate for package identity, both of which SHA-256 provides.

/// Compute the SHA-256 digest of a byte string.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    const K: [u32; 64] = [
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
        0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
        0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
        0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
        0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
        0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
        0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
        0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
        0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
        0xc67178f2,
    ];
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];

    // Pre-processing: append 0x80, pad with zeros, append bit length.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 64];
    for chunk in msg.chunks_exact(64) {
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes([
                chunk[4 * i],
                chunk[4 * i + 1],
                chunk[4 * i + 2],
                chunk[4 * i + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let (mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh) =
            (h[0], h[1], h[2], h[3], h[4], h[5], h[6], h[7]);
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = hh.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        h[5] = h[5].wrapping_add(f);
        h[6] = h[6].wrapping_add(g);
        h[7] = h[7].wrapping_add(hh);
    }
    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Encode bytes in the lower-case base32 alphabet Spack uses for hashes.
pub fn base32(data: &[u8]) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz234567";
    let mut out = String::new();
    let mut buffer: u64 = 0;
    let mut bits = 0u32;
    for &byte in data {
        buffer = (buffer << 8) | byte as u64;
        bits += 8;
        while bits >= 5 {
            bits -= 5;
            let idx = ((buffer >> bits) & 0x1f) as usize;
            out.push(ALPHABET[idx] as char);
        }
    }
    if bits > 0 {
        let idx = ((buffer << (5 - bits)) & 0x1f) as usize;
        out.push(ALPHABET[idx] as char);
    }
    out
}

/// Length (in base32 characters) of the hashes we expose — Spack uses 32.
pub const HASH_LEN: usize = 32;

/// Compute a DAG hash for a node from its own canonical description and the (sorted)
/// hashes of its dependencies.
pub fn dag_hash(node_description: &str, dep_hashes: &[String]) -> String {
    let mut payload = String::with_capacity(node_description.len() + dep_hashes.len() * 33);
    payload.push_str(node_description);
    for dep in dep_hashes {
        payload.push('\n');
        payload.push_str(dep);
    }
    let digest = sha256(payload.as_bytes());
    let mut s = base32(&digest);
    s.truncate(HASH_LEN);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha256_known_vectors() {
        // Standard test vectors.
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_long_input() {
        // One million 'a' characters (classic NIST vector).
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn base32_alphabet_only() {
        let s = base32(&sha256(b"hello world"));
        assert!(s.chars().all(|c| c.is_ascii_lowercase() || ('2'..='7').contains(&c)));
    }

    #[test]
    fn dag_hash_properties() {
        let a = dag_hash("zlib@1.2.11%gcc@11.2.0", &[]);
        let b = dag_hash("zlib@1.2.12%gcc@11.2.0", &[]);
        assert_ne!(a, b);
        assert_eq!(a.len(), HASH_LEN);
        // Dependency hash order does not matter if the caller sorts; unsorted differs.
        let with_deps = dag_hash("hdf5@1.10.2", &[a.clone(), b.clone()]);
        let with_deps2 = dag_hash("hdf5@1.10.2", &[a, b]);
        assert_eq!(with_deps, with_deps2);
    }
}

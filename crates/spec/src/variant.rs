//! Variants: compile-time build options attached to spec nodes.
//!
//! Spack variants are either boolean (`+mpi`, `~shared`) or multi-valued
//! (`api=default`, `threads=openmp`). In the sigil syntax `+name` enables, `~name` (or
//! `-name`) disables, and `name=value` selects a value.

use std::fmt;

/// A concrete value for a variant on a concrete spec node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VariantValue {
    /// Boolean variant value (`+foo` / `~foo`).
    Bool(bool),
    /// Single string value (`api=default`).
    Value(String),
}

impl VariantValue {
    /// Canonical textual form used in facts and display (`true`, `false`, or the value).
    pub fn as_str(&self) -> String {
        match self {
            VariantValue::Bool(true) => "true".to_string(),
            VariantValue::Bool(false) => "false".to_string(),
            VariantValue::Value(v) => v.clone(),
        }
    }

    /// Parse a textual value back into a variant value.
    pub fn parse(s: &str) -> Self {
        match s {
            "true" | "True" | "on" | "yes" => VariantValue::Bool(true),
            "false" | "False" | "off" | "no" => VariantValue::Bool(false),
            other => VariantValue::Value(other.to_string()),
        }
    }
}

impl fmt::Display for VariantValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl From<bool> for VariantValue {
    fn from(b: bool) -> Self {
        VariantValue::Bool(b)
    }
}

impl From<&str> for VariantValue {
    fn from(s: &str) -> Self {
        VariantValue::parse(s)
    }
}

/// A constraint on a variant as it appears in an abstract spec: the variant must take
/// exactly this value for the constraint to be satisfied.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VariantConstraint {
    /// Variant name (e.g. `mpi`, `threads`).
    pub name: String,
    /// Required value.
    pub value: VariantValue,
}

impl VariantConstraint {
    /// A boolean `+name` / `~name` constraint.
    pub fn boolean(name: &str, enabled: bool) -> Self {
        VariantConstraint { name: name.to_string(), value: VariantValue::Bool(enabled) }
    }

    /// A `name=value` constraint.
    pub fn valued(name: &str, value: &str) -> Self {
        VariantConstraint { name: name.to_string(), value: VariantValue::parse(value) }
    }
}

impl fmt::Display for VariantConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.value {
            VariantValue::Bool(true) => write!(f, "+{}", self.name),
            VariantValue::Bool(false) => write!(f, "~{}", self.name),
            VariantValue::Value(v) => write!(f, "{}={}", self.name, v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(VariantConstraint::boolean("mpi", true).to_string(), "+mpi");
        assert_eq!(VariantConstraint::boolean("shared", false).to_string(), "~shared");
        assert_eq!(VariantConstraint::valued("threads", "openmp").to_string(), "threads=openmp");
    }

    #[test]
    fn value_parse_roundtrip() {
        assert_eq!(VariantValue::parse("true"), VariantValue::Bool(true));
        assert_eq!(VariantValue::parse("false"), VariantValue::Bool(false));
        assert_eq!(VariantValue::parse("openmp"), VariantValue::Value("openmp".into()));
        assert_eq!(VariantValue::Bool(true).as_str(), "true");
    }
}

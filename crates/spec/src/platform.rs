//! Platforms and operating systems.
//!
//! Spack models the triple `platform-os-target` (e.g. `linux-centos8-skylake`). The
//! platform is almost always `linux` in the paper's evaluation; operating systems matter
//! because the E4S buildcache is partitioned by OS (rhel7 vs. others) in Figures 7e-7g.

use std::fmt;

/// A platform (kernel/vendor family).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Platform {
    /// Ordinary Linux clusters (Quartz, Lassen).
    Linux,
    /// Cray systems.
    Cray,
    /// macOS developer machines.
    Darwin,
}

impl Platform {
    /// Canonical lower-case name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Platform::Linux => "linux",
            Platform::Cray => "cray",
            Platform::Darwin => "darwin",
        }
    }

    /// Parse from a canonical name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "linux" => Some(Platform::Linux),
            "cray" => Some(Platform::Cray),
            "darwin" => Some(Platform::Darwin),
            _ => None,
        }
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// An operating system distribution + release, e.g. `centos8` or `rhel7`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OperatingSystem {
    name: String,
}

impl OperatingSystem {
    /// Construct an OS by name.
    pub fn new(name: &str) -> Self {
        OperatingSystem { name: name.to_string() }
    }

    /// The canonical name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operating systems used in the paper's evaluation environment.
    pub fn known() -> Vec<OperatingSystem> {
        ["centos8", "rhel7", "rhel8", "ubuntu20.04", "ubuntu22.04"]
            .iter()
            .map(|s| OperatingSystem::new(s))
            .collect()
    }
}

impl fmt::Display for OperatingSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_roundtrip() {
        for p in [Platform::Linux, Platform::Cray, Platform::Darwin] {
            assert_eq!(Platform::parse(p.as_str()), Some(p));
        }
        assert_eq!(Platform::parse("windows"), None);
    }

    #[test]
    fn os_names() {
        assert!(OperatingSystem::known().iter().any(|o| o.name() == "rhel7"));
        assert_eq!(OperatingSystem::new("centos8").to_string(), "centos8");
    }
}

//! Spec model for the `spack-asp-rs` reproduction of *Using Answer Set Programming for
//! HPC Dependency Solving* (SC'22).
//!
//! This crate implements the package-manager vocabulary the paper's concretizer operates
//! on (Section III of the paper):
//!
//! * [`version`] — package versions and version constraints (`@1.10.2`, `@1.0.7:`, ranges
//!   and unions of ranges),
//! * [`variant`] — build options (`+mpi`, `~shared`, `api=default`),
//! * [`compiler`] — compiler specs (`%gcc@11.2.0`),
//! * [`target`] — target microarchitectures with a generation/weight hierarchy and
//!   per-compiler support (e.g. old gcc cannot emit `skylake` code),
//! * [`platform`] — operating systems and platforms,
//! * [`spec`] — abstract and concrete specs: DAGs whose nodes carry all of the above,
//! * [`parse`] — the spec sigil syntax of Table I (`hdf5@1.10.2 %gcc +mpi ^zlib@1.2.8:`),
//! * [`hash`] — the DAG hash used for installation identity and build reuse (Fig. 4).
//!
//! An *abstract* spec is a set of constraints over the combinatorial build space; a
//! *concrete* spec is a fully specified build. Turning the former into the latter is the
//! concretizer's job (the `spack-concretizer` crate).

pub mod compiler;
pub mod hash;
pub mod parse;
pub mod platform;
pub mod spec;
pub mod target;
pub mod variant;
pub mod version;

pub use compiler::{Compiler, CompilerSpec};
pub use parse::{parse_spec, ParseError};
pub use platform::{OperatingSystem, Platform};
pub use spec::{Anonymous, ConcreteNode, ConcreteSpec, DepKind, Spec};
pub use target::{Target, TargetCatalog};
pub use variant::{VariantConstraint, VariantValue};
pub use version::{Version, VersionConstraint, VersionRange};

//! Parser for the spec sigil syntax (Table I of the paper).
//!
//! ```text
//! hdf5@1.10.2 %gcc@10.3.1 +mpi~shared api=default target=skylake ^zlib%gcc ^cmake target=aarch64
//! ```
//!
//! * `@` — version constraint,
//! * `%` — compiler (optionally with `@` version),
//! * `+` / `~` / `-` — enable / disable a boolean variant,
//! * `key=value` — multi-valued variant, or the special keys `os`, `platform`, `target`,
//!   and `arch` (`arch=linux-centos8-skylake`),
//! * `^` — constraints on a dependency; everything up to the next `^` applies to it.
//!
//! Anonymous specs (`when=` conditions such as `+mpi` or `@1.1.0:`) are supported: they
//! are specs with no leading package name.

use std::fmt;

use crate::compiler::CompilerSpec;
use crate::platform::Platform;
use crate::spec::Spec;
use crate::variant::VariantValue;
use crate::version::VersionConstraint;

/// An error produced while parsing spec syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset in the input where the problem was detected.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec parse error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a spec string into an abstract [`Spec`].
///
/// All `^` dependency constraints are attached to the root spec (Spack semantics: `^`
/// constrains a package *somewhere in the DAG*, not a direct dependency of the previous
/// node).
pub fn parse_spec(input: &str) -> Result<Spec, ParseError> {
    let mut parser = Parser { input: input.as_bytes(), pos: 0 };
    parser.skip_ws();
    if parser.eof() {
        return Ok(Spec::anonymous());
    }
    let mut root = parser.parse_node()?;
    loop {
        parser.skip_ws();
        if parser.eof() {
            break;
        }
        match parser.peek() {
            b'^' => {
                parser.pos += 1;
                let dep = parser.parse_node()?;
                if dep.is_empty() {
                    return Err(parser.error("empty dependency constraint after '^'"));
                }
                root.dependencies.push(dep);
            }
            _ => {
                // A bare word continuing the current node, e.g. "hdf5 mpi=true target=skylake".
                // Continuation words may only add sigil/key=value constraints (no new name).
                let cont = parser.parse_node()?;
                if cont.name.is_some() {
                    return Err(parser.error(
                        "unexpected package name; separate specs are not allowed in a single spec string",
                    ));
                }
                apply_anonymous(&mut root, cont);
            }
        }
    }
    Ok(root)
}

fn apply_anonymous(target: &mut Spec, cont: Spec) {
    target.versions.constrain(&cont.versions);
    for (k, v) in cont.variants {
        target.variants.insert(k, v);
    }
    if cont.compiler.is_some() {
        target.compiler = cont.compiler;
    }
    if cont.os.is_some() {
        target.os = cont.os;
    }
    if cont.platform.is_some() {
        target.platform = cont.platform;
    }
    if cont.target.is_some() {
        target.target = cont.target;
    }
    target.dependencies.extend(cont.dependencies);
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn eof(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> u8 {
        self.input[self.pos]
    }

    fn error(&self, message: &str) -> ParseError {
        ParseError { message: message.to_string(), offset: self.pos }
    }

    fn skip_ws(&mut self) {
        while !self.eof() && (self.peek() as char).is_whitespace() {
            self.pos += 1;
        }
    }

    fn take_while(&mut self, pred: impl Fn(u8) -> bool) -> String {
        let start = self.pos;
        while !self.eof() && pred(self.peek()) {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.input[start..self.pos]).into_owned()
    }

    fn is_name_char(b: u8) -> bool {
        b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.'
    }

    fn is_version_char(b: u8) -> bool {
        b.is_ascii_alphanumeric()
            || b == b'.'
            || b == b':'
            || b == b','
            || b == b'_'
            || b == b'-'
            || b == b'='
    }

    fn is_value_char(b: u8) -> bool {
        b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-' || b == b',' || b == b':'
    }

    /// Parse one node (a name followed by sigils, possibly over multiple whitespace
    /// separated words) until we hit `^` or end of input. A continuation word that
    /// begins a *new* package name stops the node (handled by the caller).
    fn parse_node(&mut self) -> Result<Spec, ParseError> {
        let mut spec = Spec::anonymous();
        self.skip_ws();
        // Leading package name (if the word starts with a name char and is not key=value).
        if !self.eof() && Self::is_name_char(self.peek()) {
            let save = self.pos;
            let word = self.take_while(Self::is_name_char);
            if !self.eof() && self.peek() == b'=' {
                // It was key=value, not a name: rewind and let the sigil loop handle it.
                self.pos = save;
            } else {
                spec.name = Some(word);
            }
        }
        loop {
            if self.eof() {
                break;
            }
            let c = self.peek();
            match c {
                b'@' => {
                    self.pos += 1;
                    let text = self.take_while(Self::is_version_char);
                    if text.is_empty() {
                        return Err(self.error("expected version after '@'"));
                    }
                    spec.versions.constrain(&VersionConstraint::parse(&text));
                }
                b'%' => {
                    self.pos += 1;
                    let name = self.take_while(Self::is_name_char);
                    if name.is_empty() {
                        return Err(self.error("expected compiler name after '%'"));
                    }
                    let mut compiler = CompilerSpec::named(&name);
                    if !self.eof() && self.peek() == b'@' {
                        self.pos += 1;
                        let vtext = self.take_while(Self::is_version_char);
                        if vtext.is_empty() {
                            return Err(self.error("expected compiler version after '@'"));
                        }
                        compiler.versions = VersionConstraint::parse(&vtext);
                    }
                    spec.compiler = Some(compiler);
                }
                b'+' => {
                    self.pos += 1;
                    let name = self.take_while(Self::is_name_char);
                    if name.is_empty() {
                        return Err(self.error("expected variant name after '+'"));
                    }
                    spec.variants.insert(name, VariantValue::Bool(true));
                }
                b'~' | b'-' => {
                    self.pos += 1;
                    let name = self.take_while(Self::is_name_char);
                    if name.is_empty() {
                        return Err(self.error("expected variant name after '~'"));
                    }
                    spec.variants.insert(name, VariantValue::Bool(false));
                }
                b'^' => break,
                c if (c as char).is_whitespace() => {
                    // Peek the next word: if it starts with a sigil or is key=value it
                    // continues this node; a new name or '^' ends it.
                    let save = self.pos;
                    self.skip_ws();
                    if self.eof() {
                        break;
                    }
                    let next = self.peek();
                    if next == b'^' {
                        break;
                    }
                    if Self::is_name_char(next) {
                        // Look ahead to see if this is key=value.
                        let word_start = self.pos;
                        let _word = self.take_while(Self::is_name_char);
                        let is_kv = !self.eof() && self.peek() == b'=';
                        self.pos = word_start;
                        if !is_kv {
                            // New package name: not part of this node.
                            self.pos = save;
                            break;
                        }
                    }
                    // Otherwise fall through and keep parsing sigils / key=value.
                }
                _ if Self::is_name_char(c) => {
                    // key=value
                    let key = self.take_while(Self::is_name_char);
                    if self.eof() || self.peek() != b'=' {
                        return Err(self.error("expected '=' in key=value constraint"));
                    }
                    self.pos += 1;
                    let value = self.take_while(Self::is_value_char);
                    if value.is_empty() {
                        return Err(self.error("expected value after '='"));
                    }
                    self.apply_key_value(&mut spec, &key, &value)?;
                }
                _ => {
                    return Err(self.error(&format!("unexpected character '{}'", c as char)));
                }
            }
        }
        Ok(spec)
    }

    fn apply_key_value(&self, spec: &mut Spec, key: &str, value: &str) -> Result<(), ParseError> {
        match key {
            "os" => spec.os = Some(value.to_string()),
            "platform" => {
                spec.platform = Some(
                    Platform::parse(value)
                        .ok_or_else(|| self.error(&format!("unknown platform '{value}'")))?,
                )
            }
            "target" => spec.target = Some(value.to_string()),
            "arch" => {
                // arch=platform-os-target
                let parts: Vec<&str> = value.splitn(3, '-').collect();
                if parts.len() != 3 {
                    return Err(self.error("arch= expects platform-os-target"));
                }
                spec.platform = Some(
                    Platform::parse(parts[0])
                        .ok_or_else(|| self.error(&format!("unknown platform '{}'", parts[0])))?,
                );
                spec.os = Some(parts[1].to_string());
                spec.target = Some(parts[2].to_string());
            }
            _ => {
                spec.variants.insert(key.to_string(), VariantValue::parse(value));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::Version;

    #[test]
    fn table1_sigils() {
        // Each row of Table I.
        let s = parse_spec("hdf5%gcc").unwrap();
        assert_eq!(s.compiler.as_ref().unwrap().name, "gcc");

        let s = parse_spec("hdf5@1.10.2").unwrap();
        assert!(s.versions.satisfies(&Version::new("1.10.2")));
        assert!(!s.versions.satisfies(&Version::new("1.12.0")));

        let s = parse_spec("hdf5%gcc@10.3.1").unwrap();
        let c = s.compiler.unwrap();
        assert_eq!(c.name, "gcc");
        assert!(c.versions.satisfies(&Version::new("10.3.1")));

        let s = parse_spec("hdf5+mpi").unwrap();
        assert_eq!(s.variants["mpi"], VariantValue::Bool(true));
        let s = parse_spec("hdf5~mpi").unwrap();
        assert_eq!(s.variants["mpi"], VariantValue::Bool(false));

        let s = parse_spec("hdf5 mpi=true").unwrap();
        assert_eq!(s.variants["mpi"], VariantValue::Bool(true));
        let s = parse_spec("hdf5 api=default").unwrap();
        assert_eq!(s.variants["api"], VariantValue::Value("default".into()));
        let s = parse_spec("hdf5 target=skylake").unwrap();
        assert_eq!(s.target.as_deref(), Some("skylake"));
    }

    #[test]
    fn recursive_dependency_constraints() {
        // Example from Section III-A.
        let s = parse_spec("hdf5@1.10.2 ^zlib%gcc ^cmake target=aarch64").unwrap();
        assert_eq!(s.name.as_deref(), Some("hdf5"));
        assert_eq!(s.dependencies.len(), 2);
        assert_eq!(s.dependencies[0].name.as_deref(), Some("zlib"));
        assert_eq!(s.dependencies[0].compiler.as_ref().unwrap().name, "gcc");
        assert_eq!(s.dependencies[1].name.as_deref(), Some("cmake"));
        assert_eq!(s.dependencies[1].target.as_deref(), Some("aarch64"));
    }

    #[test]
    fn adjacent_sigils() {
        let s = parse_spec("example@1.0.0+bzip%gcc@11.2.0 arch=linux-centos8-skylake").unwrap();
        assert!(s.versions.satisfies(&Version::new("1.0.0")));
        assert_eq!(s.variants["bzip"], VariantValue::Bool(true));
        assert_eq!(s.compiler.as_ref().unwrap().name, "gcc");
        assert_eq!(s.platform, Some(Platform::Linux));
        assert_eq!(s.os.as_deref(), Some("centos8"));
        assert_eq!(s.target.as_deref(), Some("skylake"));
    }

    #[test]
    fn anonymous_when_conditions() {
        let s = parse_spec("+mpi").unwrap();
        assert!(s.name.is_none());
        assert_eq!(s.variants["mpi"], VariantValue::Bool(true));

        let s = parse_spec("@1.1.0:").unwrap();
        assert!(s.name.is_none());
        assert!(s.versions.satisfies(&Version::new("1.2.0")));
        assert!(!s.versions.satisfies(&Version::new("1.0.0")));

        let s = parse_spec("%intel").unwrap();
        assert_eq!(s.compiler.unwrap().name, "intel");

        let s = parse_spec("target=aarch64").unwrap();
        assert_eq!(s.target.as_deref(), Some("aarch64"));

        let s = parse_spec("+openmp ^openblas").unwrap();
        assert_eq!(s.variants["openmp"], VariantValue::Bool(true));
        assert_eq!(s.dependencies[0].name.as_deref(), Some("openblas"));
    }

    #[test]
    fn version_ranges_and_lists() {
        let s = parse_spec("bzip2@1.0.7:").unwrap();
        assert!(s.versions.satisfies(&Version::new("1.0.8")));
        assert!(!s.versions.satisfies(&Version::new("1.0.6")));

        let s = parse_spec("zlib@1.2:1.4,2.0:").unwrap();
        assert!(s.versions.satisfies(&Version::new("1.3")));
        assert!(s.versions.satisfies(&Version::new("2.1")));
        assert!(!s.versions.satisfies(&Version::new("1.6")));
    }

    #[test]
    fn errors_reported() {
        assert!(parse_spec("hdf5@").is_err());
        assert!(parse_spec("hdf5%").is_err());
        assert!(parse_spec("hdf5+").is_err());
        assert!(parse_spec("hdf5 ^").is_err());
        assert!(parse_spec("hdf5 arch=linux-centos8").is_err());
        assert!(parse_spec("hdf5 platform=windows").is_err());
    }

    #[test]
    fn two_names_rejected() {
        assert!(parse_spec("hdf5 zlib").is_err());
    }

    #[test]
    fn display_roundtrip() {
        for text in [
            "hdf5@1.10.2+mpi",
            "hdf5%gcc@10.3.1",
            "hdf5 target=skylake",
            "hdf5@1.10.2 ^zlib@1.2.8: ^cmake target=aarch64",
        ] {
            let parsed = parse_spec(text).unwrap();
            let reparsed = parse_spec(&parsed.to_string()).unwrap();
            assert_eq!(parsed, reparsed, "round-trip failed for {text}");
        }
    }

    #[test]
    fn multiword_variants_attach_to_dependency() {
        let s = parse_spec("berkeleygw+openmp ^openblas threads=openmp").unwrap();
        assert_eq!(s.dependencies.len(), 1);
        let ob = &s.dependencies[0];
        assert_eq!(ob.name.as_deref(), Some("openblas"));
        assert_eq!(ob.variants["threads"], VariantValue::Value("openmp".into()));
    }
}

//! Synthetic buildcache generation.
//!
//! The paper's reuse experiments (Figures 7e–7g) sweep the size of the E4S binary
//! buildcache: 6,804 / 15,255 / 27,160 / 63,099 pre-built packages, obtained by
//! restricting the full cache to one architecture (`ppc64le`) and/or one operating system
//! (`rhel7`). The real cache is not available to this reproduction, so
//! [`synthesize_buildcache`] creates an equivalent artifact: for every package in a
//! repository, the default configuration is "installed" once per
//! (operating system × target × compiler) combination, producing a database with the
//! same multiplicative structure (and therefore the same kind of restriction sweep).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spack_repo::{PackageDef, Repository};
use spack_spec::{Compiler, Platform, VariantValue};

use crate::database::{Database, InstalledSpec};

/// Configuration of the synthetic buildcache.
#[derive(Debug, Clone)]
pub struct BuildcacheConfig {
    /// `(platform, operating system, target)` triples to populate.
    pub architectures: Vec<(Platform, String, String)>,
    /// Compilers to populate.
    pub compilers: Vec<Compiler>,
    /// When > 1, additionally create this many *older-version* replicas per package and
    /// combination, inflating the cache the way real caches accumulate history.
    pub replicas: usize,
    /// Seed for picking which non-default variants the replicas flip.
    pub seed: u64,
}

impl Default for BuildcacheConfig {
    fn default() -> Self {
        BuildcacheConfig {
            architectures: vec![
                (Platform::Linux, "rhel7".to_string(), "ppc64le".to_string()),
                (Platform::Linux, "rhel7".to_string(), "x86_64".to_string()),
                (Platform::Linux, "centos8".to_string(), "ppc64le".to_string()),
                (Platform::Linux, "centos8".to_string(), "skylake".to_string()),
            ],
            compilers: vec![Compiler::new("gcc", "11.2.0"), Compiler::new("gcc", "8.3.1")],
            replicas: 1,
            seed: 0xCAC4E,
        }
    }
}

impl BuildcacheConfig {
    /// The four buildcache scopes used in the paper, from smallest to largest:
    /// (ppc64le ∧ rhel7), rhel7, ppc64le, full.
    pub fn paper_scopes() -> [(&'static str, BuildcacheScope); 4] {
        [
            ("ppc64le+rhel7", BuildcacheScope { os: Some("rhel7"), target: Some("ppc64le") }),
            ("rhel7", BuildcacheScope { os: Some("rhel7"), target: None }),
            ("ppc64le", BuildcacheScope { os: None, target: Some("ppc64le") }),
            ("full", BuildcacheScope { os: None, target: None }),
        ]
    }
}

/// A restriction of a buildcache to an OS and/or target, as used in Figures 7e–7g.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildcacheScope {
    /// Keep only this operating system, if set.
    pub os: Option<&'static str>,
    /// Keep only this target, if set.
    pub target: Option<&'static str>,
}

impl BuildcacheScope {
    /// Apply the restriction.
    pub fn apply(&self, db: &Database) -> Database {
        db.filter(|r| {
            self.os.map(|os| r.os == os).unwrap_or(true)
                && self.target.map(|t| r.target == t).unwrap_or(true)
        })
    }
}

/// Synthesize a buildcache for every package of `repo` under `config`.
pub fn synthesize_buildcache(repo: &Repository, config: &BuildcacheConfig) -> Database {
    let mut db = Database::new();
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Topologically order packages so dependency hashes exist before dependents.
    let order = topological_names(repo);
    for (platform, os, target) in &config.architectures {
        for compiler in &config.compilers {
            for replica in 0..config.replicas.max(1) {
                // hash of the record created for each package in this combination
                let mut hashes: BTreeMap<String, String> = BTreeMap::new();
                for name in &order {
                    let pkg = match repo.get(name) {
                        Some(p) => p,
                        None => continue,
                    };
                    let record = default_record(
                        repo, pkg, *platform, os, target, compiler, replica, &hashes, &mut rng,
                    );
                    let hash = db.add(record);
                    hashes.insert(name.clone(), hash);
                }
            }
        }
    }
    db
}

/// Synthesize installed records for `names` and their dependency closures only — the
/// incremental companion of [`synthesize_buildcache`], used by live base updates ("a
/// binary was pushed to the cache") to install a few packages without regenerating the
/// whole cache. Records use the *first* architecture and compiler of `config` (replica
/// 0, no variant flips), so merging the result into a cache synthesized from the same
/// config yields records identical (same hashes) to ones [`synthesize_buildcache`]
/// would have produced. Unknown names are ignored.
pub fn synthesize_install(
    repo: &Repository,
    names: &[String],
    config: &BuildcacheConfig,
) -> Database {
    let mut db = Database::new();
    let (Some((platform, os, target)), Some(compiler)) =
        (config.architectures.first(), config.compilers.first())
    else {
        return db;
    };
    let mut rng = StdRng::seed_from_u64(config.seed);
    // The dependency closure of the requested names, resolved like the full synthesis.
    let mut wanted: BTreeMap<String, u8> = BTreeMap::new();
    let mut closure = Vec::new();
    for name in names {
        visit(repo, name, &mut wanted, &mut closure);
    }
    let keep: std::collections::BTreeSet<&str> = closure.iter().map(String::as_str).collect();
    // Walk the repo-wide topological order restricted to the closure, so dependency
    // hashes exist before dependents exactly as in the full synthesis.
    let mut hashes: BTreeMap<String, String> = BTreeMap::new();
    for name in topological_names(repo) {
        if !keep.contains(name.as_str()) {
            continue;
        }
        let Some(pkg) = repo.get(&name) else { continue };
        let record =
            default_record(repo, pkg, *platform, os, target, compiler, 0, &hashes, &mut rng);
        let hash = db.add(record);
        hashes.insert(name, hash);
    }
    db
}

/// The default (preferred-version, default-variant) installed record of a package.
#[allow(clippy::too_many_arguments)]
fn default_record(
    repo: &Repository,
    pkg: &PackageDef,
    platform: Platform,
    os: &str,
    target: &str,
    compiler: &Compiler,
    replica: usize,
    hashes: &BTreeMap<String, String>,
    rng: &mut StdRng,
) -> InstalledSpec {
    // Replicas > 0 install an older version when one exists (caches accumulate history).
    let version = if replica == 0 || pkg.versions.len() < 2 {
        pkg.preferred_version().cloned().unwrap_or_else(|| spack_spec::Version::new("1.0"))
    } else {
        pkg.versions[1.min(pkg.versions.len() - 1) + (replica - 1).min(pkg.versions.len() - 2)]
            .version
            .clone()
    };
    let mut variants: BTreeMap<String, VariantValue> = BTreeMap::new();
    for v in &pkg.variants {
        let mut value = v.default.clone();
        // Replicas occasionally flip a boolean variant, like real caches do.
        if replica > 0 && rng.gen_bool(0.2) {
            if let VariantValue::Bool(b) = value {
                value = VariantValue::Bool(!b);
            }
        }
        variants.insert(v.name.clone(), value);
    }
    // Dependencies: unconditional ones plus those whose condition is met by defaults.
    let mut deps = Vec::new();
    for dep in &pkg.dependencies {
        let applies = dep.when.is_empty()
            || dep.when.variants.iter().all(|(k, v)| variants.get(k) == Some(v))
                && dep.when.versions.satisfies(&version)
                && dep.when.compiler.is_none();
        if !applies {
            continue;
        }
        let dep_name = dep.spec.name.as_deref().unwrap_or_default();
        let resolved = if repo.is_virtual(dep_name) {
            repo.providers(dep_name).first().cloned()
        } else {
            Some(dep_name.to_string())
        };
        if let Some(resolved) = resolved {
            if let Some(hash) = hashes.get(&resolved) {
                deps.push((resolved, hash.clone()));
            }
        }
    }
    let provides = pkg.provides.iter().map(|p| p.virtual_name.clone()).collect();
    InstalledSpec {
        hash: String::new(),
        name: pkg.name.clone(),
        version,
        variants,
        compiler: compiler.clone(),
        os: os.to_string(),
        platform,
        target: target.to_string(),
        provides,
        deps,
    }
}

/// Depth-first post-order visit for [`topological_names`] and the closure walk of
/// [`synthesize_install`]: virtual edges resolve to their first provider, conditional
/// edges are included, cycles are broken arbitrarily.
fn visit(repo: &Repository, name: &str, state: &mut BTreeMap<String, u8>, order: &mut Vec<String>) {
    match state.get(name).copied().unwrap_or(0) {
        1 | 2 => return, // visiting or done
        _ => {}
    }
    state.insert(name.to_string(), 1);
    if let Some(pkg) = repo.get(name) {
        for dep in pkg.possible_dependency_names() {
            let resolved = if repo.is_virtual(dep) {
                repo.providers(dep).first().cloned()
            } else {
                Some(dep.to_string())
            };
            if let Some(r) = resolved {
                visit(repo, &r, state, order);
            }
        }
    }
    state.insert(name.to_string(), 2);
    order.push(name.to_string());
}

/// Package names in dependency-first order (virtual edges resolved to their first
/// provider; conditional edges included). Cycles are broken arbitrarily.
fn topological_names(repo: &Repository) -> Vec<String> {
    let mut order = Vec::new();
    let mut state: BTreeMap<String, u8> = BTreeMap::new();
    let names: Vec<String> = repo.names().map(|s| s.to_string()).collect();
    for name in names {
        visit(repo, &name, &mut state, &mut order);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use spack_repo::builtin_repo;

    #[test]
    fn buildcache_covers_every_package_and_combination() {
        let repo = builtin_repo();
        let config = BuildcacheConfig::default();
        let db = synthesize_buildcache(&repo, &config);
        // 4 architectures x 2 compilers, minus hash collisions for packages that are
        // identical across combinations (there are none: os/target/compiler differ).
        assert!(db.len() >= repo.len() * 4);
        assert!(!db.with_name("zlib").is_empty());
        assert!(!db.with_name("hdf5").is_empty());
    }

    #[test]
    fn scopes_shrink_monotonically() {
        let repo = builtin_repo();
        let db = synthesize_buildcache(&repo, &BuildcacheConfig::default());
        let scopes = BuildcacheConfig::paper_scopes();
        let sizes: Vec<usize> = scopes.iter().map(|(_, s)| s.apply(&db).len()).collect();
        // Ordered smallest to largest, and the full scope keeps everything.
        assert!(sizes[0] <= sizes[1] && sizes[1] <= sizes[3]);
        assert!(sizes[0] <= sizes[2] && sizes[2] <= sizes[3]);
        assert_eq!(sizes[3], db.len());
        assert!(sizes[0] > 0);
    }

    #[test]
    fn cached_records_reference_cached_dependencies() {
        let repo = builtin_repo();
        let db = synthesize_buildcache(&repo, &BuildcacheConfig::default());
        for record in db.iter() {
            for (dep_name, dep_hash) in &record.deps {
                let dep = db.get(dep_hash).unwrap_or_else(|| {
                    panic!("{}: dependency {dep_name} hash not in cache", record.name)
                });
                assert_eq!(&dep.name, dep_name);
                assert_eq!(dep.os, record.os, "dependencies share the arch of the parent");
                assert_eq!(dep.target, record.target);
            }
        }
    }

    #[test]
    fn replicas_inflate_the_cache() {
        let repo = builtin_repo();
        let small =
            synthesize_buildcache(&repo, &BuildcacheConfig { replicas: 1, ..Default::default() });
        let big =
            synthesize_buildcache(&repo, &BuildcacheConfig { replicas: 3, ..Default::default() });
        assert!(big.len() > small.len());
    }

    #[test]
    fn incremental_install_matches_full_synthesis_hashes() {
        // Installing one package synthesizes its dependency closure with hashes
        // identical to the ones the full-cache synthesis produces for the first
        // architecture/compiler combination.
        let repo = builtin_repo();
        let config = BuildcacheConfig::default();
        let full = synthesize_buildcache(&repo, &config);
        let inc = synthesize_install(&repo, &["hdf5".to_string()], &config);
        assert!(!inc.is_empty());
        assert!(!inc.with_name("hdf5").is_empty());
        for record in inc.iter() {
            assert!(
                full.get(&record.hash).is_some(),
                "{}: incremental hash {} must exist in the full cache",
                record.name,
                record.hash
            );
            for (_, dep_hash) in &record.deps {
                assert!(inc.get(dep_hash).is_some(), "closure must be self-contained");
            }
        }
        // Unknown names synthesize nothing.
        assert!(synthesize_install(&repo, &["no-such-pkg".to_string()], &config).is_empty());
    }

    #[test]
    fn virtual_dependencies_resolve_to_a_provider() {
        let repo = builtin_repo();
        let db = synthesize_buildcache(&repo, &BuildcacheConfig::default());
        let hdf5 = &db.with_name("hdf5")[0];
        // hdf5 +mpi (default) must depend on a concrete MPI provider, not on "mpi".
        assert!(hdf5.deps.iter().all(|(n, _)| n != "mpi"));
        assert!(
            hdf5.deps.iter().any(|(n, _)| repo.providers("mpi").contains(n)),
            "hdf5 should link against an mpi provider: {:?}",
            hdf5.deps
        );
    }
}

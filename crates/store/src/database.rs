//! The installation database: concrete, installed specs keyed by DAG hash.

use std::collections::BTreeMap;

use spack_spec::hash::dag_hash;
use spack_spec::{Compiler, ConcreteSpec, Platform, VariantValue, Version};

/// One installed (or cached) concrete package: a single node of an installation DAG,
/// with its dependencies referenced by hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstalledSpec {
    /// The DAG hash identifying this exact configuration.
    pub hash: String,
    /// Package name.
    pub name: String,
    /// Installed version.
    pub version: Version,
    /// Variant values.
    pub variants: BTreeMap<String, VariantValue>,
    /// Compiler used.
    pub compiler: Compiler,
    /// Operating system.
    pub os: String,
    /// Platform.
    pub platform: Platform,
    /// Target microarchitecture.
    pub target: String,
    /// Virtuals provided by this installation.
    pub provides: Vec<String>,
    /// Dependencies as `(package name, hash)` pairs.
    pub deps: Vec<(String, String)>,
}

impl InstalledSpec {
    /// Canonical single-node description used for hashing and display.
    pub fn description(&self) -> String {
        let mut s = format!("{}@{}%{}", self.name, self.version, self.compiler);
        for (k, v) in &self.variants {
            match v {
                VariantValue::Bool(true) => s.push_str(&format!("+{k}")),
                VariantValue::Bool(false) => s.push_str(&format!("~{k}")),
                VariantValue::Value(val) => s.push_str(&format!(" {k}={val}")),
            }
        }
        s.push_str(&format!(" arch={}-{}-{}", self.platform, self.os, self.target));
        s
    }

    /// Recompute the DAG hash from the node description and dependency hashes.
    pub fn compute_hash(&self) -> String {
        let mut dep_hashes: Vec<String> = self.deps.iter().map(|(_, h)| h.clone()).collect();
        dep_hashes.sort();
        dag_hash(&self.description(), &dep_hashes)
    }
}

/// The database of installed specs.
#[derive(Debug, Clone, Default)]
pub struct Database {
    by_hash: BTreeMap<String, InstalledSpec>,
    by_name: BTreeMap<String, Vec<String>>,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of installed records.
    pub fn len(&self) -> usize {
        self.by_hash.len()
    }

    /// True when nothing is installed.
    pub fn is_empty(&self) -> bool {
        self.by_hash.is_empty()
    }

    /// Add a record (its hash is recomputed to keep the database consistent).
    pub fn add(&mut self, mut record: InstalledSpec) -> String {
        record.hash = record.compute_hash();
        let hash = record.hash.clone();
        if !self.by_hash.contains_key(&hash) {
            self.by_name.entry(record.name.clone()).or_default().push(hash.clone());
            self.by_hash.insert(hash.clone(), record);
        }
        hash
    }

    /// Add every node of a concrete spec DAG (dependencies first), returning the hash of
    /// each root.
    pub fn add_concrete_spec(&mut self, spec: &ConcreteSpec) -> Vec<String> {
        // Process in post-order (children before parents) so dependency hashes exist
        // before the nodes that reference them.
        fn post_order(spec: &ConcreteSpec, i: usize, seen: &mut [bool], order: &mut Vec<usize>) {
            if seen[i] {
                return;
            }
            seen[i] = true;
            for &(d, _) in &spec.nodes[i].deps {
                post_order(spec, d, seen, order);
            }
            order.push(i);
        }
        let mut order = Vec::with_capacity(spec.nodes.len());
        let mut seen = vec![false; spec.nodes.len()];
        for i in 0..spec.nodes.len() {
            post_order(spec, i, &mut seen, &mut order);
        }
        let mut hashes: Vec<Option<String>> = vec![None; spec.nodes.len()];
        for &i in order.iter() {
            let node = &spec.nodes[i];
            let deps: Vec<(String, String)> = node
                .deps
                .iter()
                .map(|&(d, _)| {
                    (
                        spec.nodes[d].name.clone(),
                        hashes[d].clone().expect("dependency hashed first"),
                    )
                })
                .collect();
            let record = InstalledSpec {
                hash: String::new(),
                name: node.name.clone(),
                version: node.version.clone(),
                variants: node.variants.clone(),
                compiler: node.compiler.clone(),
                os: node.os.clone(),
                platform: node.platform,
                target: node.target.clone(),
                provides: node.provides.clone(),
                deps,
            };
            hashes[i] = Some(self.add(record));
        }
        spec.roots.iter().map(|&r| hashes[r].clone().expect("root hashed")).collect()
    }

    /// Look up a record by hash.
    pub fn get(&self, hash: &str) -> Option<&InstalledSpec> {
        self.by_hash.get(hash)
    }

    /// All records for a package name.
    pub fn with_name(&self, name: &str) -> Vec<&InstalledSpec> {
        self.by_name
            .get(name)
            .map(|hashes| hashes.iter().filter_map(|h| self.by_hash.get(h)).collect())
            .unwrap_or_default()
    }

    /// Iterate over all installed records.
    pub fn iter(&self) -> impl Iterator<Item = &InstalledSpec> {
        self.by_hash.values()
    }

    /// Hash-based exact-match reuse, as the *original* concretizer did it (Fig. 4): a
    /// node of a freshly concretized DAG is reused only if an installation with exactly
    /// the same hash exists.
    pub fn query_exact(&self, spec: &ConcreteSpec, node_index: usize) -> Option<&InstalledSpec> {
        let hash = spec.node_hash(node_index);
        self.by_hash.get(&hash)
    }

    /// Restrict the database to records matching a predicate (used to build the
    /// OS/architecture-restricted buildcaches of Figures 7e–7g).
    pub fn filter(&self, pred: impl Fn(&InstalledSpec) -> bool) -> Database {
        let mut db = Database::new();
        for record in self.by_hash.values() {
            if pred(record) {
                db.add(record.clone());
            }
        }
        db
    }

    /// Merge another database into this one.
    pub fn merge(&mut self, other: &Database) {
        for record in other.iter() {
            self.add(record.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spack_spec::spec::{ConcreteNode, DepKind};

    fn sample_spec() -> ConcreteSpec {
        let zlib = ConcreteNode {
            name: "zlib".into(),
            version: Version::new("1.2.11"),
            variants: BTreeMap::new(),
            compiler: Compiler::new("gcc", "11.2.0"),
            os: "centos8".into(),
            platform: Platform::Linux,
            target: "skylake".into(),
            deps: vec![],
            provides: vec![],
        };
        let hdf5 = ConcreteNode {
            name: "hdf5".into(),
            version: Version::new("1.12.1"),
            variants: BTreeMap::from([("mpi".to_string(), VariantValue::Bool(false))]),
            compiler: Compiler::new("gcc", "11.2.0"),
            os: "centos8".into(),
            platform: Platform::Linux,
            target: "skylake".into(),
            deps: vec![(0, DepKind::Link)],
            provides: vec![],
        };
        ConcreteSpec { nodes: vec![zlib, hdf5], roots: vec![1] }
    }

    #[test]
    fn add_concrete_spec_stores_all_nodes() {
        let mut db = Database::new();
        let roots = db.add_concrete_spec(&sample_spec());
        assert_eq!(db.len(), 2);
        assert_eq!(roots.len(), 1);
        let root = db.get(&roots[0]).unwrap();
        assert_eq!(root.name, "hdf5");
        assert_eq!(root.deps.len(), 1);
        assert_eq!(root.deps[0].0, "zlib");
        assert!(db.get(&root.deps[0].1).is_some());
    }

    #[test]
    fn exact_hash_query_matches_only_identical_configurations() {
        let mut db = Database::new();
        db.add_concrete_spec(&sample_spec());
        let spec = sample_spec();
        let root = spec.find("hdf5").unwrap();
        assert!(db.query_exact(&spec, root).is_some(), "identical spec must hit");

        // A small configuration change (zlib version) misses, as in Fig. 4/6a.
        let mut changed = sample_spec();
        changed.nodes[0].version = Version::new("1.2.12");
        assert!(db.query_exact(&changed, root).is_none(), "changed dependency must miss");
    }

    #[test]
    fn name_index_and_filter() {
        let mut db = Database::new();
        db.add_concrete_spec(&sample_spec());
        let mut other = sample_spec();
        other.nodes[1].os = "rhel7".into();
        other.nodes[0].os = "rhel7".into();
        db.add_concrete_spec(&other);
        assert_eq!(db.with_name("hdf5").len(), 2);

        let rhel_only = db.filter(|r| r.os == "rhel7");
        assert_eq!(rhel_only.len(), 2);
        assert!(rhel_only.with_name("hdf5").iter().all(|r| r.os == "rhel7"));
    }

    #[test]
    fn hashes_are_stable_and_content_addressed() {
        let mut db1 = Database::new();
        let mut db2 = Database::new();
        let h1 = db1.add_concrete_spec(&sample_spec());
        let h2 = db2.add_concrete_spec(&sample_spec());
        assert_eq!(h1, h2, "hashing must be deterministic across databases");
        assert_eq!(h1[0].len(), spack_spec::hash::HASH_LEN);
    }

    #[test]
    fn merge_combines_databases() {
        let mut a = Database::new();
        a.add_concrete_spec(&sample_spec());
        let mut changed = sample_spec();
        changed.nodes[1].version = Version::new("1.13.1");
        let mut b = Database::new();
        b.add_concrete_spec(&changed);
        a.merge(&b);
        assert_eq!(a.with_name("hdf5").len(), 2);
        // zlib is identical in both DAGs: content addressing dedups it.
        assert_eq!(a.with_name("zlib").len(), 1);
    }
}

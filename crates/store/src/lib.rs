//! Installation database and buildcache model.
//!
//! Spack records every installed configuration in a database keyed by the DAG hash of the
//! concrete spec (Fig. 4 of the paper); binary buildcaches are the same metadata for
//! pre-built archives. The concretizer's *reuse* optimization (Section VI) consumes this
//! metadata as facts: `installed_hash(pkg, hash)` plus one `imposed_constraint(hash, ...)`
//! per attribute of the installed spec.
//!
//! * [`Database`] — installed records indexed by hash and by package name, with the
//!   exact-hash query used by the *old* (hash-based) reuse scheme,
//! * [`buildcache`] — a synthesizer of E4S-like buildcaches: default configurations of
//!   every package in a repository replicated across architectures, operating systems,
//!   and compilers, used to reproduce the buildcache-size sweep of Figures 7e–7g.

#![warn(missing_docs)]

pub mod buildcache;
pub mod database;

pub use buildcache::{synthesize_buildcache, synthesize_install, BuildcacheConfig};
pub use database::{Database, InstalledSpec};

//! Integration tests for the `spack-solved` serving layer in `--pipe` mode:
//! out-of-order completion under a worker pool, shard routing by base digest,
//! per-request budgets, malformed-request resilience, drain-on-shutdown, and
//! byte-identity between the server and `spack-solve batch --json`.

use std::io::Cursor;
use std::process::{Command, Stdio};
use std::time::Duration;

use spack_concretizer::server::{serve_pipe, wire, ServerConfig};
use spack_repo::builtin_repo;
use spack_store::{synthesize_buildcache, BuildcacheConfig};

/// Run the in-process pipe server over a canned request script and return the
/// response lines plus the final stats snapshot.
fn serve(
    cache: bool,
    config: &ServerConfig,
    input: &str,
) -> (Vec<String>, spack_concretizer::server::ServerStats) {
    let repo = builtin_repo();
    let db;
    let database = if cache {
        db = synthesize_buildcache(&repo, &BuildcacheConfig::default());
        Some(&db)
    } else {
        None
    };
    let mut out: Vec<u8> = Vec::new();
    let stats = serve_pipe(&repo, database, config, Cursor::new(input.to_string()), &mut out);
    let text = String::from_utf8(out).expect("utf8 responses");
    (text.lines().map(|l| l.to_string()).collect(), stats)
}

fn response(line: &str) -> wire::SolveResponse {
    wire::SolveResponse::parse(line).unwrap_or_else(|e| panic!("bad response line: {e}\n{line}"))
}

#[test]
fn responses_stream_out_of_order_under_a_worker_pool() {
    // The stall hook freezes the hdf5 solve for two seconds *after* its shard
    // session is built, so the zlib request admitted behind it must overtake it
    // on another worker — deterministically, not by racing solve times.
    let config = ServerConfig {
        workers: 4,
        stall: Some(("hdf5".to_string(), Duration::from_secs(2))),
        ..ServerConfig::default()
    };
    let input = "{\"v\": 1, \"id\": \"slow\", \"specs\": [\"hdf5\"]}\n\
                 {\"v\": 1, \"id\": \"fast\", \"specs\": [\"zlib\"]}\n";
    let (lines, stats) = serve(false, &config, input);
    assert_eq!(lines.len(), 2, "{lines:?}");
    let first = response(&lines[0]);
    let second = response(&lines[1]);
    assert_eq!(first.id, "fast", "the unstalled request must finish first");
    assert_eq!(second.id, "slow");
    assert_eq!(first.status, wire::SolveStatus::Ok);
    assert_eq!(second.status, wire::SolveStatus::Ok);
    assert_eq!(stats.jobs_received, 2);
    assert_eq!(stats.jobs_completed, 2);
}

#[test]
fn requests_route_to_one_shard_per_site_and_reuse_digest() {
    // Two sites and a reuse flag: four solves over three distinct shard keys.
    // Each shard's base must be ground exactly once however many requests hit
    // it, and distinct shards must expose distinct base digests in `stats`.
    let config = ServerConfig { workers: 1, ..ServerConfig::default() };
    let input = "{\"v\": 1, \"id\": \"a\", \"specs\": [\"zlib\"], \"options\": {\"site\": \"minimal\"}}\n\
                 {\"v\": 1, \"id\": \"b\", \"specs\": [\"hdf5\"], \"options\": {\"site\": \"minimal\"}}\n\
                 {\"v\": 1, \"id\": \"c\", \"specs\": [\"zlib\"], \"options\": {\"site\": \"quartz\"}}\n\
                 {\"v\": 1, \"id\": \"d\", \"specs\": [\"zlib\"], \"options\": {\"reuse\": true}}\n\
                 {\"v\": 1, \"id\": \"s\", \"cmd\": \"stats\"}\n";
    let (lines, stats) = serve(true, &config, input);
    assert_eq!(lines.len(), 5, "{lines:?}");
    // With one worker, responses come back in admission order and the stats
    // line (queued like any job) reflects all four completed solves.
    let stats_line = &lines[4];
    assert!(stats_line.contains("\"id\": \"s\""), "{stats_line}");
    assert!(stats_line.contains("\"jobs_completed\": 4"), "{stats_line}");

    assert_eq!(stats.shards.len(), 3, "{:?}", stats.shards);
    let minimal = &stats.shards[0];
    assert_eq!((minimal.site.as_str(), minimal.reuse), ("minimal", false));
    assert_eq!(minimal.requests, 2, "same key must reuse one session");
    let quartz_fresh = &stats.shards[1];
    let quartz_reuse = &stats.shards[2];
    assert_eq!((quartz_fresh.site.as_str(), quartz_fresh.reuse), ("quartz", false));
    assert_eq!((quartz_reuse.site.as_str(), quartz_reuse.reuse), ("quartz", true));
    for shard in &stats.shards {
        assert_eq!(shard.base_grounds, 1, "base ground exactly once per shard: {shard:?}");
    }
    let mut digests: Vec<u64> = stats.shards.iter().map(|s| s.digest).collect();
    digests.sort_unstable();
    digests.dedup();
    assert_eq!(digests.len(), 3, "distinct shard keys must have distinct base digests");
    // The reused install shows up in the reuse shard's response.
    let reused = response(&lines[3]);
    assert_eq!(reused.id, "d");
    assert!(!reused.result.expect("solved").reused.is_empty(), "reuse shard must reuse");
}

#[test]
fn per_request_budgets_come_back_as_budget_status() {
    // A zero wall deadline arms synchronously, so the budget response (with its
    // budget-exhausted diagnostic) is deterministic; the sibling request on the
    // same shard is untouched.
    let config = ServerConfig { workers: 1, ..ServerConfig::default() };
    let input = "{\"v\": 1, \"id\": \"cut\", \"specs\": [\"zlib\"], \"options\": {\"deadline_ms\": 0, \"retries\": 0}}\n\
                 {\"v\": 1, \"id\": \"ok\", \"specs\": [\"zlib\"]}\n";
    let (lines, _) = serve(false, &config, input);
    assert_eq!(lines.len(), 2, "{lines:?}");
    let cut = response(&lines[0]);
    assert_eq!(cut.status, wire::SolveStatus::Budget);
    assert_eq!(cut.retries, 0);
    assert!(
        cut.diagnostics.iter().any(|d| d.code == "budget-exhausted"),
        "budget responses carry the budget diagnostic: {cut:?}"
    );
    let ok = response(&lines[1]);
    assert_eq!(ok.status, wire::SolveStatus::Ok, "the sibling must be unaffected");
    assert!(ok.result.expect("solved").optimal);
}

#[test]
fn malformed_requests_get_parse_responses_and_the_stream_survives() {
    let config = ServerConfig { workers: 1, ..ServerConfig::default() };
    let input = "this is not json\n\
                 {\"v\": 99, \"id\": \"future\", \"specs\": [\"zlib\"]}\n\
                 {\"v\": 1, \"id\": \"empty\", \"specs\": []}\n\
                 {\"v\": 1, \"id\": \"good\", \"specs\": [\"zlib\"]}\n";
    let (lines, stats) = serve(false, &config, input);
    assert_eq!(lines.len(), 4, "every line gets an answer: {lines:?}");
    for line in &lines[..3] {
        let r = response(line);
        assert_eq!(r.status, wire::SolveStatus::Parse, "{line}");
        assert!(r.message.is_some(), "{line}");
    }
    let good = response(&lines[3]);
    assert_eq!(good.id, "good");
    assert_eq!(good.status, wire::SolveStatus::Ok, "the stream must survive bad lines");
    assert_eq!(stats.jobs_received, 1, "only the well-formed solve is admitted");
}

#[test]
fn shutdown_drains_queued_jobs_and_acks_last() {
    // One worker, three queued solves, then shutdown, then a request that must
    // never be admitted. All three queued jobs complete (drain), the ack is the
    // final line, and the post-shutdown request is never answered.
    let config = ServerConfig { workers: 1, ..ServerConfig::default() };
    let input = "{\"v\": 1, \"id\": \"q1\", \"specs\": [\"zlib\"]}\n\
                 {\"v\": 1, \"id\": \"q2\", \"specs\": [\"zlib@9.9\"]}\n\
                 {\"v\": 1, \"id\": \"q3\", \"specs\": [\"hdf5\"]}\n\
                 {\"v\": 1, \"id\": \"bye\", \"cmd\": \"shutdown\"}\n\
                 {\"v\": 1, \"id\": \"late\", \"specs\": [\"zlib\"]}\n";
    let (lines, stats) = serve(false, &config, input);
    assert_eq!(lines.len(), 4, "three drained responses plus the ack: {lines:?}");
    let mut ids: Vec<String> = lines[..3].iter().map(|l| response(l).id).collect();
    ids.sort();
    assert_eq!(ids, ["q1", "q2", "q3"], "every queued job must drain");
    let ack = response(&lines[3]);
    assert_eq!(ack.id, "bye");
    assert_eq!(ack.status, wire::SolveStatus::Ok);
    assert_eq!(ack.message.as_deref(), Some("shutdown complete"));
    assert_eq!(stats.jobs_received, 3, "the post-shutdown request is never admitted");
    assert_eq!(stats.jobs_completed, 3);
}

#[test]
fn update_interleaves_with_an_in_flight_solve_without_losing_it() {
    // A stalled solve holds its shard's read lock while the update waits for the
    // write lock on another worker: the in-flight response must still arrive
    // intact, and the update must patch (not tear down) the shard it waited on.
    // The warm-up solve completes before the update job is dequeued (two
    // workers, the second busy stalling), so the shard is deterministically
    // built — and occupied — when the update lands.
    let config = ServerConfig {
        workers: 2,
        stall: Some(("hdf5".to_string(), Duration::from_secs(1))),
        ..ServerConfig::default()
    };
    let input = "{\"v\": 1, \"id\": \"warm\", \"specs\": [\"zlib\"]}\n\
                 {\"v\": 1, \"id\": \"inflight\", \"specs\": [\"hdf5\"]}\n\
                 {\"v\": 1, \"id\": \"up\", \"cmd\": \"update\", \"add_versions\": [{\"package\": \"zlib\", \"version\": \"2.0\"}]}\n";
    let (lines, stats) = serve(false, &config, input);
    assert_eq!(lines.len(), 3, "no response may be lost across an update: {lines:?}");
    for id in ["warm", "inflight"] {
        let line = lines.iter().find(|l| l.contains(&format!("\"id\": \"{id}\""))).unwrap();
        assert_eq!(response(line).status, wire::SolveStatus::Ok, "{line}");
    }
    let up_line = lines.iter().find(|l| l.contains("\"id\": \"up\"")).unwrap();
    assert!(up_line.contains("\"shards_patched\": 1"), "{up_line}");
    assert!(up_line.contains("\"shards_refrozen\": 0"), "{up_line}");
    assert_eq!(stats.jobs_completed, 2);
    assert_eq!(stats.shards.len(), 1);
    assert_eq!(stats.shards[0].patches, 1, "{:?}", stats.shards[0]);
    assert_eq!(stats.shards[0].base_grounds, 1, "an in-place patch never re-grounds");
}

#[test]
fn post_update_solves_see_the_new_version() {
    // Single worker, so the pipeline is strictly ordered: UNSAT before the
    // update, the update patches in place, SAT after it.
    let config = ServerConfig { workers: 1, ..ServerConfig::default() };
    let input = "{\"v\": 1, \"id\": \"pre\", \"specs\": [\"zlib@2.0\"]}\n\
                 {\"v\": 1, \"id\": \"up\", \"cmd\": \"update\", \"add_versions\": [{\"package\": \"zlib\", \"version\": \"2.0\"}]}\n\
                 {\"v\": 1, \"id\": \"post\", \"specs\": [\"zlib@2.0\"]}\n\
                 {\"v\": 1, \"id\": \"s\", \"cmd\": \"stats\"}\n";
    let (lines, stats) = serve(false, &config, input);
    assert_eq!(lines.len(), 4, "{lines:?}");
    let pre = response(&lines[0]);
    assert_eq!((pre.id.as_str(), pre.status), ("pre", wire::SolveStatus::Unsat), "{pre:?}");
    assert!(lines[1].contains("\"shards_patched\": 1"), "{}", lines[1]);
    let post = response(&lines[2]);
    assert_eq!(post.status, wire::SolveStatus::Ok, "post-update solves see the new version");
    assert!(post.result.expect("solved").dag.contains("zlib@2.0"), "must pick the new version");
    assert!(lines[3].contains("\"patches\": 1"), "{}", lines[3]);
    assert_eq!(stats.shards[0].patches, 1);
    assert_eq!(stats.shards[0].base_grounds, 1);
}

#[test]
fn forced_refreeze_is_reported_in_stats_not_as_a_failed_update() {
    let config = ServerConfig { workers: 1, force_refreeze: true, ..ServerConfig::default() };
    let input = "{\"v\": 1, \"id\": \"pre\", \"specs\": [\"zlib\"]}\n\
                 {\"v\": 1, \"id\": \"up\", \"cmd\": \"update\", \"add_versions\": [{\"package\": \"zlib\", \"version\": \"2.0\"}]}\n\
                 {\"v\": 1, \"id\": \"post\", \"specs\": [\"zlib@2.0\"]}\n\
                 {\"v\": 1, \"id\": \"s\", \"cmd\": \"stats\"}\n";
    let (lines, stats) = serve(false, &config, input);
    assert_eq!(lines.len(), 4, "{lines:?}");
    assert!(lines[1].contains("\"shards_refrozen\": 1"), "{}", lines[1]);
    assert_eq!(response(&lines[2]).status, wire::SolveStatus::Ok);
    assert!(lines[3].contains("\"evictions\": 1"), "{}", lines[3]);
    assert!(lines[3].contains("\"last_refreeze\""), "{}", lines[3]);
    assert_eq!(stats.shards[0].refreezes, 1);
    assert!(stats.shards[0].last_refreeze.as_deref().is_some());
}

#[test]
fn spack_solved_pipe_applies_updates_end_to_end() {
    // The same interleave through the real binary: a solve that is UNSAT before
    // the update becomes SAT after it, over one `--pipe` session.
    let input = "{\"v\": 1, \"id\": \"pre\", \"specs\": [\"zlib@2.0\"]}\n\
                 {\"v\": 1, \"id\": \"up\", \"cmd\": \"update\", \"add_versions\": [{\"package\": \"zlib\", \"version\": \"2.0\"}]}\n\
                 {\"v\": 1, \"id\": \"post\", \"specs\": [\"zlib@2.0\"]}\n";
    let served = Command::new(env!("CARGO_BIN_EXE_spack-solved"))
        .args(["--pipe", "--workers", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .and_then(|mut child| {
            use std::io::Write;
            child.stdin.take().expect("stdin").write_all(input.as_bytes())?;
            child.wait_with_output()
        })
        .expect("run spack-solved");
    let lines: Vec<String> =
        String::from_utf8(served.stdout).expect("utf8").lines().map(String::from).collect();
    assert_eq!(lines.len(), 3, "{lines:?}");
    let pre = response(&lines[0]);
    assert_eq!((pre.id.as_str(), pre.status), ("pre", wire::SolveStatus::Unsat), "{:?}", pre);
    assert!(lines[1].contains("\"shards_patched\": 1"), "{}", lines[1]);
    let post = response(&lines[2]);
    assert_eq!((post.id.as_str(), post.status), ("post", wire::SolveStatus::Ok), "{:?}", post);
}

#[test]
fn pipe_responses_are_byte_identical_to_batch_json() {
    // The acceptance bar for the service: for the same specs and options,
    // `spack-solved --pipe` (4 workers, out-of-order) and the one-shot
    // `spack-solve batch --json` emit byte-identical response lines — SAT,
    // UNSAT (with diagnostics), parse, and budget classes alike.
    let specs = ["zlib", "zlib@9.9", "hdf5", "example~bzip", "zlib@@bad", "hpctoolkit ^mpich"];
    let batch_input = specs.join("\n");
    let batch = Command::new(env!("CARGO_BIN_EXE_spack-solve"))
        .args(["batch", "--json", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .and_then(|mut child| {
            use std::io::Write;
            child.stdin.take().expect("stdin").write_all(batch_input.as_bytes())?;
            child.wait_with_output()
        })
        .expect("run spack-solve batch");

    let serve_input: String = specs
        .iter()
        .enumerate()
        .map(|(i, s)| format!("{{\"v\": 1, \"id\": \"{i}\", \"specs\": [\"{s}\"]}}\n"))
        .collect();
    let served = Command::new(env!("CARGO_BIN_EXE_spack-solved"))
        .args(["--pipe", "--workers", "4"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .and_then(|mut child| {
            use std::io::Write;
            child.stdin.take().expect("stdin").write_all(serve_input.as_bytes())?;
            child.wait_with_output()
        })
        .expect("run spack-solved");

    let mut batch_lines: Vec<String> =
        String::from_utf8(batch.stdout).expect("utf8").lines().map(String::from).collect();
    let mut served_lines: Vec<String> =
        String::from_utf8(served.stdout).expect("utf8").lines().map(String::from).collect();
    assert_eq!(batch_lines.len(), specs.len());
    assert_eq!(served_lines.len(), specs.len());
    // The server streams out of order; compare as sorted multisets of lines.
    batch_lines.sort();
    served_lines.sort();
    assert_eq!(batch_lines, served_lines, "server and batch --json must agree byte-for-byte");
}

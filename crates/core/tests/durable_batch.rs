//! End-to-end harness for durable batch concretization: kill-and-resume byte
//! identity, checkpoint corruption recovery, solve budgets with dead-lettering and
//! retry counters, panic isolation, and the per-class exit-code contract. Drives the
//! actual `spack-solve` binary the way CI and operators do.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use spack_concretizer::{ConcretizeError, Concretizer, SiteConfig};
use spack_repo::{synth_repo, SynthConfig};

/// A fresh scratch directory per call, cleaned up on drop (best effort).
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "spack-durable-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }

    fn write(&self, name: &str, contents: &str) -> PathBuf {
        let path = self.path(name);
        std::fs::write(&path, contents).expect("write scratch file");
        path
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn spack_solve(args: &[&str], env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_spack-solve"));
    cmd.args(args);
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("run spack-solve")
}

fn stdout_of(output: &Output) -> String {
    String::from_utf8(output.stdout.clone()).expect("utf8 stdout")
}

fn stderr_of(output: &Output) -> String {
    String::from_utf8(output.stderr.clone()).expect("utf8 stderr")
}

fn exit_code(output: &Output) -> i32 {
    output.status.code().expect("exit code")
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// A batch mixing every happy/unhappy class except budget: solved, unsatisfiable,
/// and a parse error, with comment and blank lines so line numbers are exercised.
const MIXED_BATCH: &str = "# mixed batch\nzlib\n\nzlib@9.9\nzlib@@bad\nhdf5\nexample~bzip\n";

#[test]
fn kill_and_resume_output_is_byte_identical() {
    let scratch = Scratch::new("resume");
    let batch = scratch.write("batch.txt", MIXED_BATCH);
    let batch = batch.to_str().unwrap();
    let clean_state = scratch.path("clean-state");
    let killed_state = scratch.path("killed-state");

    // Uninterrupted reference run.
    let clean = spack_solve(&["batch", "--state-dir", clean_state.to_str().unwrap(), batch], &[]);
    assert_eq!(exit_code(&clean), 3, "parse error is the worst class: {}", stderr_of(&clean));

    // Killed run: the SPACK_SOLVE_BATCH_KILL_AFTER hook aborts the process (the
    // moral equivalent of SIGKILL) after two records are durably stored.
    let killed = spack_solve(
        &["batch", "--state-dir", killed_state.to_str().unwrap(), batch],
        &[("SPACK_SOLVE_BATCH_KILL_AFTER", "2")],
    );
    assert!(!killed.status.success(), "the killed run must not exit cleanly");
    let stored = std::fs::read_dir(killed_state.join("items")).expect("items dir").count();
    assert!(stored >= 2, "at least two records must have survived the kill, found {stored}");
    assert!(stored < 5, "the kill must interrupt the batch, found {stored} records");

    // Resume: completed items replay from checkpoints, the rest are solved.
    let resumed =
        spack_solve(&["batch", "--state-dir", killed_state.to_str().unwrap(), batch], &[]);
    assert_eq!(exit_code(&resumed), exit_code(&clean), "exit codes must match");
    assert_eq!(stdout_of(&resumed), stdout_of(&clean), "stdout must be byte-identical");
    assert_eq!(
        read(&killed_state.join("dlq.jsonl")),
        read(&clean_state.join("dlq.jsonl")),
        "the dead-letter queue must be byte-identical"
    );

    // A second resume replays everything (no work left) with identical output.
    let replayed = spack_solve(
        &["batch", "--stats", "--state-dir", killed_state.to_str().unwrap(), batch],
        &[],
    );
    assert_eq!(stdout_of(&replayed), stdout_of(&clean));
    assert!(
        stderr_of(&replayed).contains("5 resumed from checkpoints"),
        "all five items must resume: {}",
        stderr_of(&replayed)
    );
}

#[test]
fn corrupt_checkpoint_record_is_resolved_exactly_once() {
    let scratch = Scratch::new("corrupt");
    let batch = scratch.write("batch.txt", MIXED_BATCH);
    let batch = batch.to_str().unwrap();
    let state = scratch.path("state");
    let state_arg = state.to_str().unwrap();

    let clean = spack_solve(&["batch", "--state-dir", state_arg, batch], &[]);
    assert_eq!(exit_code(&clean), 3, "{}", stderr_of(&clean));

    // Truncate one record mid-file, as a crash racing the rename (or disk
    // corruption) would.
    let victim = state.join("items").join("1.json");
    let bytes = std::fs::read(&victim).expect("read record");
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).expect("truncate record");

    let recovered = spack_solve(&["batch", "--stats", "--state-dir", state_arg, batch], &[]);
    assert_eq!(stdout_of(&recovered), stdout_of(&clean), "recovery must replay identical output");
    assert_eq!(exit_code(&recovered), exit_code(&clean));
    let stderr = stderr_of(&recovered);
    // Never silently skipped, never double-counted: exactly one re-solve, the
    // other four replayed.
    assert!(stderr.contains("1 corrupt records re-solved"), "{stderr}");
    assert!(stderr.contains("4 resumed from checkpoints"), "{stderr}");
}

#[test]
fn resuming_a_state_dir_against_a_different_batch_is_a_pipeline_error() {
    let scratch = Scratch::new("mismatch");
    let batch = scratch.write("batch.txt", "zlib\n");
    let other = scratch.write("other.txt", "hdf5\n");
    let state = scratch.path("state");
    let state_arg = state.to_str().unwrap();

    let first = spack_solve(&["batch", "--state-dir", state_arg, batch.to_str().unwrap()], &[]);
    assert_eq!(exit_code(&first), 0, "{}", stderr_of(&first));
    let second = spack_solve(&["batch", "--state-dir", state_arg, other.to_str().unwrap()], &[]);
    assert_eq!(exit_code(&second), 1, "manifest mismatch is a pipeline error (exit 1)");
    assert!(stderr_of(&second).contains("different batch"), "{}", stderr_of(&second));
}

#[test]
fn conflict_limit_dead_letters_the_pathological_spec_but_not_its_siblings() {
    // zlib solves without a single conflict; hdf5's optimality proof needs several.
    // A conflict limit of 1 therefore deterministically cuts hdf5 off *after* its
    // first stable model was proven — graceful degradation to a non-optimal model —
    // while the sibling request is untouched. (Conflict limits have no wall-clock
    // component, so this is deterministic, unlike a deadline.)
    let scratch = Scratch::new("budget");
    let batch = scratch.write("batch.txt", "zlib\nhdf5\n");
    let state = scratch.path("state");

    let output = spack_solve(
        &[
            "batch",
            "--stats",
            "--conflict-limit",
            "1",
            "--retries",
            "1",
            "--state-dir",
            state.to_str().unwrap(),
            batch.to_str().unwrap(),
        ],
        &[],
    );
    assert_eq!(exit_code(&output), 4, "budget exhaustion exits 4: {}", stderr_of(&output));
    let stdout = stdout_of(&output);
    assert!(stdout.contains("ok     zlib"), "the sibling must solve normally: {stdout}");
    assert!(
        stdout.contains("budget hdf5: non-optimal model proven"),
        "hdf5 must degrade to its partial model: {stdout}"
    );
    let stderr = stderr_of(&output);
    // --stats reports the timeout/retry/DLQ counters.
    assert!(stderr.contains("1 budget-exhausted"), "{stderr}");
    assert!(stderr.contains("1 budget retries"), "{stderr}");
    assert!(stderr.contains("1 dead-lettered"), "{stderr}");
    let dlq = read(&state.join("dlq.jsonl"));
    assert_eq!(dlq.lines().count(), 1, "only hdf5 is dead-lettered: {dlq}");
    // DLQ entries are full wire-shaped SolveResponse lines (the same shape the
    // server and `batch --json` emit), with the file line number attached.
    assert!(dlq.contains("\"status\": \"budget\""), "{dlq}");
    assert!(dlq.contains("budget-exhausted"), "{dlq}");
    assert!(dlq.contains("\"retries\": 1"), "{dlq}");
    assert!(dlq.contains("\"lineno\": 2"), "{dlq}");
    assert!(dlq.contains("\"v\": 1"), "{dlq}");
}

#[test]
fn zero_deadline_terminates_within_bound_and_dead_letters_everything() {
    // A zero wall deadline is the degenerate hang-inducing case: every solve is cut
    // off before its first model. The batch must still terminate promptly (the
    // budget interrupts the search loop), route every item to the DLQ with a budget
    // diagnostic, and exit 4.
    let scratch = Scratch::new("deadline");
    let batch = scratch.write("batch.txt", "zlib\nhdf5\n");
    let state = scratch.path("state");

    let started = Instant::now();
    let output = spack_solve(
        &[
            "batch",
            "--deadline-ms",
            "0",
            "--retries",
            "1",
            "--state-dir",
            state.to_str().unwrap(),
            batch.to_str().unwrap(),
        ],
        &[],
    );
    let elapsed = started.elapsed();
    assert_eq!(exit_code(&output), 4, "{}", stderr_of(&output));
    assert!(
        elapsed < Duration::from_secs(60),
        "a deadline-bounded batch must terminate promptly, took {elapsed:?}"
    );
    let stdout = stdout_of(&output);
    assert!(stdout.contains("budget zlib"), "{stdout}");
    assert!(stdout.contains("budget hdf5"), "{stdout}");
    let dlq = read(&state.join("dlq.jsonl"));
    assert_eq!(dlq.lines().count(), 2, "{dlq}");
    assert!(dlq.contains("exhausted before any model was found"), "{dlq}");
}

#[test]
fn wall_deadline_on_a_synth_repo_returns_budget_within_bound() {
    // Library-level version of the deadline guarantee, on a synthetic repository:
    // the budgeted request fails with ConcretizeError::Budget within bound, and a
    // sibling request on the same session (its budget cleared per-request through
    // concretize_tuned) is completely unaffected.
    let repo = synth_repo(&SynthConfig { packages: 60, ..Default::default() });
    let concretizer =
        Concretizer::new(&repo).with_site(SiteConfig::minimal()).with_budget(asp::SolveBudget {
            wall_deadline: Some(Duration::ZERO),
            conflict_limit: None,
        });
    let session = concretizer.session().expect("session");

    let started = Instant::now();
    let err = session.concretize_str("app-00").expect_err("zero deadline must cut the solve off");
    let elapsed = started.elapsed();
    assert!(elapsed < Duration::from_secs(60), "took {elapsed:?}");
    match err {
        ConcretizeError::Budget { partial_best, stats } => {
            assert!(partial_best.is_none(), "no model can be proven under a zero deadline");
            assert!(stats.budget_exhausted);
        }
        other => panic!("expected ConcretizeError::Budget, got: {other}"),
    }

    // Sibling isolation: the same session still answers unbudgeted requests.
    let sibling = session
        .concretize_tuned(&[spack_spec::parse_spec("app-00").unwrap()], |cfg| cfg.budget = None)
        .expect("the sibling request must be unaffected");
    assert!(sibling.optimal, "an unbudgeted solve is proven optimal");
    assert!(sibling.spec.len() > 1);
}

#[test]
fn conflict_limit_partial_is_marked_non_optimal() {
    // Graceful degradation at the library level: the partial model carried by
    // ConcretizeError::Budget is a real, extracted DAG marked non-optimal.
    let repo = spack_repo::builtin_repo();
    let concretizer = Concretizer::new(&repo)
        .with_site(SiteConfig::quartz())
        .with_budget(asp::SolveBudget { wall_deadline: None, conflict_limit: Some(1) });
    let session = concretizer.session().expect("session");
    match session.concretize_str("hdf5").expect_err("conflict limit 1 must interrupt hdf5") {
        ConcretizeError::Budget { partial_best: Some(partial), stats } => {
            assert!(!partial.optimal, "the partial model must be marked non-optimal");
            assert!(partial.spec.contains("hdf5"));
            assert!(partial.spec.len() > 1, "the partial is a full DAG");
            assert!(stats.budget_exhausted);
        }
        other => panic!("expected a partial budget outcome, got: {other:?}"),
    }
}

#[test]
fn panic_isolation_turns_one_poisoned_request_into_a_per_item_error() {
    let scratch = Scratch::new("panic");
    let batch = scratch.write("batch.txt", "zlib\nhdf5\n");
    let state = scratch.path("state");

    let output = spack_solve(
        &["batch", "--state-dir", state.to_str().unwrap(), batch.to_str().unwrap()],
        &[("SPACK_CONCRETIZE_PANIC_ON", "zlib")],
    );
    assert_eq!(exit_code(&output), 5, "an isolated panic exits 5: {}", stderr_of(&output));
    let stdout = stdout_of(&output);
    assert!(stdout.contains("error  zlib: internal error: panic: injected panic"), "{stdout}");
    assert!(stdout.contains("ok     hdf5"), "the sibling must survive the panic: {stdout}");
    let dlq = read(&state.join("dlq.jsonl"));
    assert_eq!(dlq.lines().count(), 1, "{dlq}");
    assert!(dlq.contains("\"status\": \"internal\""), "{dlq}");
}

#[test]
fn parse_errors_report_line_numbers_and_continue() {
    let scratch = Scratch::new("parse");
    // The bad spec sits on line 5: a comment, a good spec, a blank, another
    // comment, then the typo. Filtering must not renumber it.
    let batch = scratch.write("batch.txt", "# header\nzlib\n\n# more\nzlib@@bad\nhdf5\n");

    let output = spack_solve(&["batch", batch.to_str().unwrap()], &[]);
    assert_eq!(exit_code(&output), 3, "a parse error exits 3: {}", stderr_of(&output));
    let stdout = stdout_of(&output);
    assert!(stdout.contains("parse  zlib@@bad:"), "{stdout}");
    assert!(stdout.contains("(line 5)"), "the 1-based file line must be reported: {stdout}");
    assert!(stdout.contains("ok     zlib"), "{stdout}");
    assert!(stdout.contains("ok     hdf5"), "parsing must continue past the bad line: {stdout}");
}

#[test]
fn batch_json_emits_one_wire_response_per_item() {
    // --json swaps the human per-line report for SolveResponse wire lines — the
    // exact shape `spack-solved` emits — with the item index as the id. Classes
    // and the exit code are unchanged.
    let scratch = Scratch::new("json");
    let batch = scratch.write("batch.txt", MIXED_BATCH);
    let output = spack_solve(&["batch", "--json", batch.to_str().unwrap()], &[]);
    assert_eq!(exit_code(&output), 3, "{}", stderr_of(&output));
    let stdout = stdout_of(&output);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 5, "one response line per item: {stdout}");
    for (i, line) in lines.iter().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"v\": 1, \"id\": \"{i}\", ")),
            "line {i} must be a v1 response with the item index as id: {line}"
        );
    }
    assert!(stdout.contains("\"status\": \"ok\""), "{stdout}");
    assert!(stdout.contains("\"status\": \"unsat\""), "{stdout}");
    assert!(stdout.contains("\"status\": \"parse\""), "{stdout}");
    assert!(stdout.contains("\"diagnostics\": [{"), "unsat carries diagnostics: {stdout}");
}

#[test]
fn unsat_alone_still_exits_2() {
    // The old contract for "solved + unsat" batches is preserved by the new
    // per-class scheme: nothing worse than unsat means exit 2.
    let scratch = Scratch::new("unsat");
    let batch = scratch.write("batch.txt", "zlib\nzlib@9.9\n");
    let output = spack_solve(&["batch", batch.to_str().unwrap()], &[]);
    assert_eq!(exit_code(&output), 2, "{}", stderr_of(&output));
    assert!(stdout_of(&output).contains("UNSAT  zlib@9.9"), "{}", stdout_of(&output));
}

//! `spack-solved` — the concretizer as a long-running service.
//!
//! All the machinery lives in [`spack_concretizer::server`]; this binary only
//! parses flags, builds the repository and the synthesized buildcache, and picks
//! a transport:
//!
//! ```text
//! spack-solved --pipe                       # NDJSON requests on stdin, responses on stdout
//! spack-solved --socket /run/spack.sock     # same protocol over a Unix socket
//! spack-solved --pipe --workers 8 --queue 128
//! spack-solved --pipe --synthetic 500       # serve a synthetic repository
//! ```
//!
//! One line in, one line out (out of order, tagged by `id`):
//!
//! ```text
//! {"v": 1, "id": "a", "specs": ["hdf5 +mpi"], "options": {"site": "lassen", "reuse": true}}
//! {"v": 1, "id": "u", "cmd": "update", "add_versions": [{"package": "zlib", "version": "2.0"}]}
//! {"v": 1, "id": "b", "cmd": "stats"}
//! {"v": 1, "id": "c", "cmd": "shutdown"}
//! ```
//!
//! Requests route to a shard per `(site, reuse)` base-facts digest; each shard
//! grounds its base exactly once and answers every request incrementally. An
//! `update` request patches every built shard in place with a base delta
//! (published/yanked versions, buildcache pushes/removals) between in-flight
//! requests — no session teardown, no lost responses. The
//! responses are byte-identical to `spack-solve batch --json` for the same spec
//! and options. Exit code 0 after a clean shutdown/EOF, 1 for setup errors.

use std::io::Write;
use std::process::ExitCode;

use spack_concretizer::server::{serve_pipe, ServerConfig};
use spack_repo::{builtin_repo, synth_repo, SynthConfig};
use spack_store::{synthesize_buildcache, BuildcacheConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut pipe = false;
    let mut socket: Option<String> = None;
    let mut config = ServerConfig::default();
    let mut synthetic: Option<usize> = None;
    let mut summary = false;

    let mut iter = args.iter();
    let parsed: Result<(), String> = (|| {
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--pipe" => pipe = true,
                "--socket" => {
                    let path = iter.next().ok_or_else(|| "--socket requires a path".to_string())?;
                    socket = Some(path.to_string());
                }
                "--workers" => {
                    let n = iter.next().ok_or_else(|| "--workers requires a count".to_string())?;
                    config.workers =
                        n.parse().map_err(|_| format!("invalid worker count '{n}'"))?;
                }
                "--queue" => {
                    let n = iter.next().ok_or_else(|| "--queue requires a depth".to_string())?;
                    config.queue_depth =
                        n.parse().map_err(|_| format!("invalid queue depth '{n}'"))?;
                }
                "--synthetic" => {
                    let n = iter
                        .next()
                        .ok_or_else(|| "--synthetic requires a package count".to_string())?;
                    synthetic =
                        Some(n.parse().map_err(|_| format!("invalid package count '{n}'"))?);
                }
                "--summary" => summary = true,
                "--help" | "-h" => {
                    usage();
                    std::process::exit(0);
                }
                other => return Err(format!("unexpected argument '{other}'")),
            }
        }
        Ok(())
    })();
    if let Err(e) = parsed {
        eprintln!("==> Error: {e}");
        usage();
        return ExitCode::FAILURE;
    }
    if pipe == socket.is_some() {
        eprintln!("==> Error: pick exactly one transport: --pipe or --socket PATH");
        usage();
        return ExitCode::FAILURE;
    }

    let repo = match synthetic {
        Some(n) => synth_repo(&SynthConfig { packages: n, ..Default::default() }),
        None => builtin_repo(),
    };
    // The buildcache is synthesized eagerly so `"reuse": true` requests on any
    // shard share one database, exactly like `spack-solve --reuse`.
    let cache = synthesize_buildcache(&repo, &BuildcacheConfig::default());

    let stats = if pipe {
        let stdin = std::io::stdin();
        // `StdoutLock` is not `Send`, so workers write through the unlocked
        // handle; the server serializes response lines behind its own mutex.
        serve_pipe(&repo, Some(&cache), &config, stdin.lock(), std::io::stdout())
    } else {
        let path = socket.expect("checked above");
        serve_on_socket(&repo, &cache, &config, &path).unwrap_or_else(|e| {
            eprintln!("==> Error: serving on {path} failed: {e}");
            std::process::exit(1);
        })
    };
    if summary {
        let mut err = std::io::stderr().lock();
        let _ = writeln!(
            err,
            "served {} requests ({} completed) on {} workers across {} shards",
            stats.jobs_received,
            stats.jobs_completed,
            stats.workers,
            stats.shards.len()
        );
        for shard in &stats.shards {
            let _ = writeln!(
                err,
                "  shard {}/reuse={}: digest {:016x}, {} requests, {} base grounds, \
                 {} patches, {} refreezes, {} evictions{}",
                shard.site,
                shard.reuse,
                shard.digest,
                shard.requests,
                shard.base_grounds,
                shard.patches,
                shard.refreezes,
                shard.evictions,
                match &shard.last_refreeze {
                    Some(reason) => format!(" (last refreeze: {reason})"),
                    None => String::new(),
                },
            );
        }
    }
    ExitCode::SUCCESS
}

#[cfg(unix)]
fn serve_on_socket(
    repo: &spack_repo::Repository,
    cache: &spack_store::Database,
    config: &ServerConfig,
    path: &str,
) -> std::io::Result<spack_concretizer::server::ServerStats> {
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    let stats = spack_concretizer::server::serve_socket(repo, Some(cache), config, listener);
    let _ = std::fs::remove_file(path);
    stats
}

#[cfg(not(unix))]
fn serve_on_socket(
    _repo: &spack_repo::Repository,
    _cache: &spack_store::Database,
    _config: &ServerConfig,
    _path: &str,
) -> std::io::Result<spack_concretizer::server::ServerStats> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "--socket requires a Unix platform; use --pipe",
    ))
}

fn usage() {
    eprintln!(
        "spack-solved — concretization service over newline-delimited JSON\n\n\
         USAGE:\n  spack-solved --pipe [--workers N] [--queue N] [--synthetic N] [--summary]\n  \
         spack-solved --socket PATH [--workers N] [--queue N] [--synthetic N] [--summary]\n\n\
         REQUESTS (one JSON object per line):\n  \
         {{\"v\": 1, \"id\": \"a\", \"specs\": [\"hdf5 +mpi\"], \"options\": {{\"site\": \"lassen\", \"reuse\": true}}}}\n  \
         {{\"v\": 1, \"id\": \"u\", \"cmd\": \"update\", \"add_versions\": [{{\"package\": \"zlib\", \"version\": \"2.0\"}}]}}\n  \
         {{\"v\": 1, \"id\": \"b\", \"cmd\": \"stats\"}}\n  \
         {{\"v\": 1, \"id\": \"c\", \"cmd\": \"shutdown\"}}\n"
    );
    let _ = std::io::stderr().flush();
}
